// toposense_lint — repo-specific static analysis for the TopoSense simulator:
// a registry of domain checks over a shared scanning engine. See
// docs/static-analysis.md for the check catalogue and workflow.
//
// Usage:
//   toposense_lint [options] <file-or-dir>...
//     --checks a,b           run only the named checks (default: all)
//     --baseline FILE        grandfathered findings; only new ones fail
//     --write-baseline FILE  write all current findings as the new baseline
//     --sarif FILE           also emit SARIF 2.1.0
//     --list-checks          print the registered checks and exit
//
// Exit: 0 clean (no non-baseline findings), 1 new findings, 2 usage/IO error.
//
// Run from the repository root so paths (and so baseline keys) are stable.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "baseline.hpp"
#include "engine.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::vector<fs::path> roots;
  std::vector<std::string> only_checks;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  bool list_checks{false};
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--checks a,b] [--baseline FILE] [--write-baseline FILE]\n"
               "           [--sarif FILE] [--list-checks] <file-or-dir>...\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    if (arg == "--list-checks") {
      opts.list_checks = true;
    } else if (arg == "--checks") {
      std::string list;
      if (!value(list)) return false;
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        const std::string name = list.substr(start, comma - start);
        if (!name.empty()) opts.only_checks.push_back(name);
        start = comma + 1;
      }
    } else if (arg == "--baseline") {
      if (!value(opts.baseline_path)) return false;
    } else if (arg == "--write-baseline") {
      if (!value(opts.write_baseline_path)) return false;
    } else if (arg == "--sarif") {
      if (!value(opts.sarif_path)) return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      opts.roots.emplace_back(arg);
    }
  }
  return opts.list_checks || !opts.roots.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage(argv[0]);

  lint::CheckRegistry registry;
  lint::register_builtin_checks(registry);

  if (opts.list_checks) {
    for (const auto& check : registry.checks()) {
      std::printf("%-20s %s\n", std::string{check->name()}.c_str(),
                  std::string{check->description()}.c_str());
    }
    return 0;
  }

  std::vector<const lint::Check*> enabled;
  if (opts.only_checks.empty()) {
    for (const auto& check : registry.checks()) enabled.push_back(check.get());
  } else {
    for (const std::string& name : opts.only_checks) {
      const lint::Check* check = registry.find(name);
      if (check == nullptr) {
        std::fprintf(stderr, "error: unknown check '%s' (try --list-checks)\n", name.c_str());
        return 2;
      }
      enabled.push_back(check);
    }
  }

  std::vector<fs::path> paths;
  for (const fs::path& root : opts.roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lint::lintable(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      std::fprintf(stderr, "error: cannot read '%s'\n", root.string().c_str());
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  try {
    std::vector<lint::SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path& p : paths) files.push_back(lint::load_file(p));

    // Pre-pass: cross-file context (e.g. unordered member names declared in
    // headers, iterated in .cpp files) before any per-file scan.
    lint::GlobalContext ctx;
    for (const lint::Check* check : enabled) {
      for (const lint::SourceFile& file : files) {
        if (check->applies_to(file)) check->collect(file, ctx);
      }
    }

    std::vector<lint::Finding> findings;
    for (const lint::Check* check : enabled) {
      for (const lint::SourceFile& file : files) {
        if (check->applies_to(file)) check->scan(file, ctx, findings);
      }
    }
    for (lint::Finding& f : findings) {
      // Baseline keys match on content, not line numbers, so edits above a
      // grandfathered site do not invalidate it.
      for (const lint::SourceFile& file : files) {
        if (file.path == f.file && f.line >= 1 && f.line <= file.raw.size()) {
          f.text = lint::trim(file.raw[f.line - 1]);
          break;
        }
      }
    }
    std::sort(findings.begin(), findings.end(),
              [](const lint::Finding& a, const lint::Finding& b) {
                return std::tie(a.file, a.line, a.check, a.rule, a.message) <
                       std::tie(b.file, b.line, b.check, b.rule, b.message);
              });

    if (!opts.write_baseline_path.empty()) {
      lint::Baseline::write(opts.write_baseline_path, findings);
      std::printf("toposense_lint: wrote %zu baseline entr%s to %s\n", findings.size(),
                  findings.size() == 1 ? "y" : "ies", opts.write_baseline_path.c_str());
      return 0;
    }

    std::vector<lint::Finding> baselined;
    std::vector<lint::Finding> fresh;
    if (!opts.baseline_path.empty()) {
      const lint::Baseline baseline = lint::Baseline::load(opts.baseline_path);
      baseline.partition(findings, baselined, fresh);
    } else {
      fresh = findings;
    }

    for (const lint::Finding& f : fresh) {
      std::printf("%s:%zu: [%s/%s] %s (suppress with // NOLINT(%s))\n", f.file.c_str(),
                  f.line, f.check.c_str(), f.rule.c_str(), f.message.c_str(),
                  f.check.c_str());
    }
    if (!opts.sarif_path.empty()) {
      lint::write_sarif(opts.sarif_path, registry, baselined, fresh);
    }

    if (!fresh.empty()) {
      std::printf("toposense_lint: %zu new finding(s), %zu baselined, %zu file(s)\n",
                  fresh.size(), baselined.size(), files.size());
      return 1;
    }
    std::printf("toposense_lint: clean (%zu file(s), %zu baselined finding(s))\n",
                files.size(), baselined.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
