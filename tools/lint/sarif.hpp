// SARIF 2.1.0 writer — one run, one result per finding, rules drawn from the
// registry. Baselined findings carry baselineState "unchanged" so CI viewers
// can hide them; fresh ones carry "new". The generic overload lets other
// analyzers (tools/hotpath) emit SARIF with their own driver name and rule
// catalogue while sharing the result layout.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

/// Rule catalogue entry for the generic writer.
struct SarifRule {
  std::string id;
  std::string description;
};

/// Generic writer: `notes` are informational results (level "note", no
/// baseline state) that never gate; fresh results are "new", baselined ones
/// "unchanged".
void write_sarif(const std::filesystem::path& path, const std::string& tool_name,
                 const std::vector<SarifRule>& rules, const std::vector<Finding>& baselined,
                 const std::vector<Finding>& fresh, const std::vector<Finding>& notes = {});

void write_sarif(const std::filesystem::path& path, const CheckRegistry& registry,
                 const std::vector<Finding>& baselined, const std::vector<Finding>& fresh);

}  // namespace lint
