// SARIF 2.1.0 writer — one run, one result per finding, rules drawn from the
// registry. Baselined findings carry baselineState "unchanged" so CI viewers
// can hide them; fresh ones carry "new".
#pragma once

#include <filesystem>
#include <vector>

#include "engine.hpp"

namespace lint {

void write_sarif(const std::filesystem::path& path, const CheckRegistry& registry,
                 const std::vector<Finding>& baselined, const std::vector<Finding>& fresh);

}  // namespace lint
