// unstamped-cross-shard-id — per-network identities crossing a shard
// boundary without being re-stamped. Packet uids, dense group-stats ids and
// interned LinkIds are all allocated per-Network: a value minted by the
// source shard means nothing (or worse, means *something else*) in the
// destination shard's tables. PR 7's `cross-shard-ref` rule covers the
// capture-by-reference hazard; this check extends the same boundary to the
// *payload* — state captured by value is safe to carry but still wrong to
// use if it embeds a per-network id and nothing re-stamps it on arrival.
//
// Rule [unstamped-payload]: a `ShardExecutor::Channel::post(...)` statement
// whose span (the full multi-line call) mentions a per-network id carrier —
// a variable declared as `Packet`/`PacketRef` in this file, or the id fields
// `uid` / `group_stats_id` / a `LinkId` — while containing none of the
// re-stamp markers (`next_packet_uid(`, `intern_group(`,
// `kInvalidGroupStatsId`). net::ShardLink::send is the canonical clean shape:
// it clears the ids before posting and re-stamps from the destination's
// counters inside the action.
#include <set>
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

const char* const kIdTokens[] = {"uid", "group_stats_id", "link_id", "LinkId", "stats_id"};
const char* const kRestampTokens[] = {"next_packet_uid", "intern_group",
                                      "kInvalidGroupStatsId"};

/// Identifiers declared as Packet / PacketRef values anywhere in the file —
/// the usual way a per-network id travels is inside one of these.
std::set<std::string> packet_vars(const std::vector<std::string>& clean) {
  std::set<std::string> names;
  for (const std::string& line : clean) {
    for (const char* type : {"Packet", "PacketRef"}) {
      const std::string_view type_sv{type};
      std::size_t pos = 0;
      while ((pos = line.find(type, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        std::size_t j = pos + type_sv.size();
        pos = j;
        // Whole-token match only ("Packet" must not hit inside "PacketRef").
        if (!left_ok || (j < line.size() && is_ident_char(line[j]))) continue;
        while (j < line.size() && (line[j] == ' ' || line[j] == '&' || line[j] == '*')) ++j;
        std::string ident;
        while (j < line.size() && is_ident_char(line[j])) ident += line[j++];
        // A following '(' is a function/constructor name, not a variable.
        if (!ident.empty() && (j >= line.size() || line[j] != '(')) names.insert(ident);
      }
    }
  }
  return names;
}

class CrossShardIdCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "unstamped-cross-shard-id"; }
  [[nodiscard]] std::string_view description() const override {
    return "per-network ids posted across a shard channel without the re-stamp path";
  }
  [[nodiscard]] bool applies_to(const SourceFile& file) const override {
    return file.has_component("src") || file.has_component("bench");
  }

  void scan(const SourceFile& file, const GlobalContext& /*ctx*/,
            std::vector<Finding>& out) const override {
    const std::set<std::string> carriers = packet_vars(file.clean);

    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      const std::size_t call = line.find(".post(");
      if (call == std::string::npos) continue;

      // Collect the full call statement: from the opening '(' of .post(
      // until parentheses balance, bounded so a stray line never swallows
      // the rest of the file.
      int depth = 0;
      bool id_seen = false;
      bool restamp_seen = false;
      std::size_t last = i;
      for (std::size_t j = i; j < file.clean.size() && j < i + 40; ++j) {
        const std::string& span = file.clean[j];
        const std::size_t from = j == i ? call : 0;
        for (std::size_t k = from; k < span.size(); ++k) {
          if (span[k] == '(') ++depth;
          if (span[k] == ')') --depth;
        }
        const std::string body = span.substr(from);
        for (const char* token : kIdTokens) {
          if (contains_token(body, token)) id_seen = true;
        }
        for (const char* token : kRestampTokens) {
          if (body.find(token) != std::string::npos) restamp_seen = true;
        }
        for (const std::string& carrier : carriers) {
          if (contains_token(body, carrier)) id_seen = true;
        }
        last = j;
        if (depth <= 0 && j > i) break;
        if (depth <= 0 && j == i && span.find(')', call) != std::string::npos) break;
      }
      (void)last;

      if (!id_seen || restamp_seen) continue;
      if (suppressed(file, i, name())) continue;
      out.push_back({file.path, i + 1, std::string{name()}, "unstamped-payload",
                     "a per-network id (packet uid / group-stats id / interned LinkId) "
                     "crosses this shard channel without the re-stamp path — clear it "
                     "before posting and re-stamp from the destination Network's "
                     "counters inside the action (see net::ShardLink::send)",
                     {}});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_cross_shard_id_check() {
  return std::make_unique<CrossShardIdCheck>();
}

}  // namespace lint
