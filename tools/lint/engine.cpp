#include "engine.hpp"

#include <cctype>
#include <fstream>
#include <stdexcept>

namespace lint {

void Check::collect(const SourceFile& /*file*/, GlobalContext& /*ctx*/) const {}

bool SourceFile::has_component(std::string_view name) const {
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    if (path.compare(start, end - start, name) == 0) return true;
    start = end + 1;
  }
  return false;
}

bool SourceFile::has_components(std::string_view a, std::string_view b) const {
  std::string pattern;
  pattern.reserve(a.size() + b.size() + 1);
  pattern.append(a);
  pattern += '/';
  pattern.append(b);
  std::size_t pos = 0;
  while ((pos = path.find(pattern, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || path[pos - 1] == '/';
    const std::size_t after = pos + pattern.size();
    const bool right_ok = after == path.size() || path[after] == '/';
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

bool SourceFile::is_header() const {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hxx";
}

void CheckRegistry::add(std::unique_ptr<Check> check) { checks_.push_back(std::move(check)); }

const Check* CheckRegistry::find(std::string_view name) const {
  for (const auto& c : checks_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

void register_builtin_checks(CheckRegistry& registry) {
  registry.add(make_determinism_check());
  registry.add(make_raw_units_check());
  registry.add(make_callback_lifetime_check());
  registry.add(make_float_accumulation_check());
  registry.add(make_shared_mutable_static_check());
  registry.add(make_nondeterministic_source_check());
  registry.add(make_cross_shard_id_check());
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_token(const std::string& text, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    if (left_ok) return true;
    pos += token.size();
  }
  return false;
}

namespace {

/// When the '"' at `quote` opens a raw string literal (R", uR", u8R", ...),
/// returns the index where the literal's prefix starts; npos otherwise.
std::size_t raw_string_prefix(const std::string& line, std::size_t quote) {
  if (quote == 0 || line[quote - 1] != 'R') return std::string::npos;
  std::size_t start = quote - 1;
  if (start >= 2 && line[start - 2] == 'u' && line[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 &&
             (line[start - 1] == 'u' || line[start - 1] == 'U' || line[start - 1] == 'L')) {
    start -= 1;
  }
  if (start > 0 && is_ident_char(line[start - 1])) return std::string::npos;
  return start;
}

}  // namespace

std::vector<std::string> strip_comments(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  std::string raw_terminator;  ///< non-empty while inside a raw string: ")delim\""
  for (const std::string& line : lines) {
    std::string clean;
    clean.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (!raw_terminator.empty()) {
        const std::size_t close = line.find(raw_terminator, i);
        if (close == std::string::npos) {
          i = line.size();
          break;
        }
        i = close + raw_terminator.size() - 1;  // land on the closing '"'
        clean += '"';
        raw_terminator.clear();
        continue;
      }
      if (in_block) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block = false;
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        in_block = true;
        ++i;
        continue;
      }
      if (line[i] == '"' && raw_string_prefix(line, i) != std::string::npos) {
        // R"delim( ... )delim" — no escapes inside; the only terminator is the
        // exact )delim" sequence, which may sit on a later line.
        const std::size_t paren = line.find('(', i + 1);
        if (paren == std::string::npos) break;  // ill-formed; drop the tail
        raw_terminator = ")" + line.substr(i + 1, paren - i - 1) + "\"";
        clean += '"';
        i = paren;
        continue;
      }
      if (line[i] == '\'' && i > 0 && is_ident_char(line[i - 1])) {
        // Digit separator (32'000) — a char literal can never directly
        // follow an identifier character, so keep the quote as plain text
        // instead of stripping the rest of the line as a "literal".
        clean += line[i];
        continue;
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        clean += quote;
        ++i;
        while (i < line.size() && line[i] != quote) {
          if (line[i] == '\\') ++i;
          ++i;
        }
        if (i < line.size()) clean += quote;
        continue;
      }
      clean += line[i];
    }
    out.push_back(std::move(clean));
  }
  return out;
}

std::string range_for_target(const std::string& line) {
  const std::size_t f = line.find("for ");
  const std::size_t f2 = f == std::string::npos ? line.find("for(") : f;
  if (f2 == std::string::npos) return {};
  const std::size_t colon = line.find(" : ", f2);
  if (colon == std::string::npos) return {};
  std::size_t end = line.size();
  // Trim to the closing ')' of the for header if present.
  const std::size_t close = line.find(')', colon);
  if (close != std::string::npos) end = close;
  std::string expr = line.substr(colon + 3, end - colon - 3);
  // Drop a trailing call/index — "foo.bar()" orders by bar's result, not bar.
  if (!expr.empty() && (expr.back() == ')' || expr.back() == ']')) return {};
  std::size_t i = expr.size();
  while (i > 0 && is_ident_char(expr[i - 1])) --i;
  return expr.substr(i);
}

std::set<std::string> unordered_names(const std::string& text) {
  std::set<std::string> names;
  for (const char* kind : {"unordered_map<", "unordered_set<"}) {
    std::size_t pos = 0;
    while ((pos = text.find(kind, pos)) != std::string::npos) {
      std::size_t i = pos + std::string{kind}.size();
      int depth = 1;
      while (i < text.size() && depth > 0) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>') --depth;
        ++i;
      }
      // Skip refs/pointers/whitespace, then read the declared identifier.
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) != 0 || text[i] == '&' ||
              text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && is_ident_char(text[i])) name += text[i++];
      if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]))) {
        names.insert(name);
      }
      pos += std::string{kind}.size();
    }
  }
  return names;
}

bool first_template_arg_is_pointer(const std::string& text, std::size_t args_begin) {
  int depth = 1;
  for (std::size_t i = args_begin; i < text.size() && depth > 0; ++i) {
    if (text[i] == '<' || text[i] == '(') ++depth;
    if (text[i] == '>' || text[i] == ')') --depth;
    if (depth == 1 && text[i] == ',') return false;  // first argument ended
    if (depth >= 1 && text[i] == '*') return true;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) --end;
  return s.substr(begin, end - begin);
}

namespace {

/// True when `line` carries a generic NOLINT(...) list naming `check` or `*`.
bool generic_marker(const std::string& line, std::string_view check) {
  std::size_t pos = 0;
  while ((pos = line.find("NOLINT(", pos)) != std::string::npos) {
    // Exclude the legacy "NOLINT-determinism(" form and clang-tidy's
    // NOLINTNEXTLINE (left alone for clang-tidy itself).
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    pos += std::string_view{"NOLINT("}.size();
    if (!left_ok) continue;
    const std::size_t close = line.find(')', pos);
    if (close == std::string::npos) return false;
    // Split the comma-separated list.
    std::size_t item = pos;
    while (item < close) {
      std::size_t comma = line.find(',', item);
      if (comma == std::string::npos || comma > close) comma = close;
      const std::string name = trim(line.substr(item, comma - item));
      if (name == "*" || name == check) return true;
      item = comma + 1;
    }
  }
  return false;
}

/// Legacy form: NOLINT-determinism(reason) with a non-empty reason.
bool legacy_determinism_marker(const std::string& line) {
  const std::size_t pos = line.find("NOLINT-determinism(");
  if (pos == std::string::npos) return false;
  const std::size_t open = pos + std::string_view{"NOLINT-determinism("}.size() - 1;
  const std::size_t close = line.find(')', open);
  return close != std::string::npos && close > open + 1;
}

}  // namespace

bool suppressed(const SourceFile& file, std::size_t idx, std::string_view check) {
  const auto marker = [&](const std::string& line) {
    if (generic_marker(line, check)) return true;
    return check == "determinism" && legacy_determinism_marker(line);
  };
  if (marker(file.raw[idx])) return true;
  return idx > 0 && marker(file.raw[idx - 1]);
}

SourceFile load_file(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot read '" + path.string() + "'");
  SourceFile file;
  file.path = path.lexically_normal().generic_string();
  for (std::string line; std::getline(in, line);) file.raw.push_back(std::move(line));
  file.clean = strip_comments(file.raw);
  for (const std::string& line : file.clean) {
    file.clean_joined += line;
    file.clean_joined += '\n';
  }
  return file;
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".h";
}

}  // namespace lint
