// shared-mutable-static — mutable `static` state in simulator code. With
// sim::ShardExecutor running per-domain Simulations on a worker pool, any
// namespace-scope or function-local static that is written after startup is
// shared across shard threads: a data race at worst, a silent break of the
// bit-identical-at-every-thread-count guarantee at best (docs/sharding.md).
//
// Rule [mutable-static]: a `static` data declaration that is not `const`,
// `constexpr`/`constinit`/`consteval`, or `thread_local`. The thread-local
// pattern is the allowlisted alternative — per-thread PacketRef pools
// (src/net/packet.hpp) are exactly how per-shard scratch state should be
// held. Deliberately shared state (e.g. an atomic settings knob set before
// the run) carries a NOLINT(shared-mutable-static) with its justification.
//
// Function *declarations* (`static void f(...)`) and class-static member
// functions are skipped: the heuristic treats a '(' before any '=', '{' or
// ';' as a function signature, which matches this codebase's style
// (constructor-call initializers for statics are not used here).
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

class SharedMutableStaticCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "shared-mutable-static"; }
  [[nodiscard]] std::string_view description() const override {
    return "mutable static state shared across shard threads (thread_local is the allowlisted pattern)";
  }
  [[nodiscard]] bool applies_to(const SourceFile& file) const override {
    return file.has_component("src");
  }

  void scan(const SourceFile& file, const GlobalContext& /*ctx*/,
            std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      if (!contains_token(line, "static")) continue;
      // Immutable, compile-time, or per-thread declarations are all fine.
      if (contains_token(line, "static_cast") || contains_token(line, "static_assert")) {
        continue;
      }
      if (contains_token(line, "const") || contains_token(line, "constexpr") ||
          contains_token(line, "constinit") || contains_token(line, "consteval") ||
          contains_token(line, "thread_local")) {
        continue;
      }
      const std::size_t kw = line.find("static");
      const std::string rest = line.substr(kw + std::string_view{"static"}.size());
      // Data declaration: the statement reaches '=', a brace initializer, or
      // ';' before any '(' — a '(' first means a function signature.
      const std::size_t paren = rest.find('(');
      std::size_t decl = std::string::npos;
      for (const char c : {'=', '{', ';'}) {
        decl = std::min(decl, rest.find(c));
      }
      if (decl == std::string::npos || (paren != std::string::npos && paren < decl)) {
        continue;
      }
      if (suppressed(file, i, name())) continue;
      out.push_back({file.path, i + 1, std::string{name()}, "mutable-static",
                     "mutable static state is shared across shard worker threads — use "
                     "thread_local (the PacketRef-pool pattern), pass the state through the "
                     "owning object, or justify with NOLINT(shared-mutable-static)",
                     {}});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_shared_mutable_static_check() {
  return std::make_unique<SharedMutableStaticCheck>();
}

}  // namespace lint
