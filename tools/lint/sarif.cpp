#include "sarif.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_result(std::ofstream& out, const Finding& f, const char* level,
                  const char* baseline_state, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "      {\n"
      << "        \"ruleId\": \"" << json_escape(f.check + "/" + f.rule) << "\",\n"
      << "        \"level\": \"" << level << "\",\n";
  if (baseline_state != nullptr) {
    out << "        \"baselineState\": \"" << baseline_state << "\",\n";
  }
  out << "        \"message\": {\"text\": \"" << json_escape(f.message) << "\"},\n"
      << "        \"locations\": [{\n"
      << "          \"physicalLocation\": {\n"
      << "            \"artifactLocation\": {\"uri\": \"" << json_escape(f.file) << "\"},\n"
      << "            \"region\": {\"startLine\": " << f.line << "}\n"
      << "          }\n"
      << "        }]\n"
      << "      }";
}

}  // namespace

void write_sarif(const std::filesystem::path& path, const std::string& tool_name,
                 const std::vector<SarifRule>& rules, const std::vector<Finding>& baselined,
                 const std::vector<Finding>& fresh, const std::vector<Finding>& notes) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("cannot write SARIF '" + path.string() + "'");
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"" << json_escape(tool_name) << "\",\n"
      << "      \"version\": \"1.0.0\",\n"
      << "      \"rules\": [\n";
  bool first = true;
  for (const SarifRule& rule : rules) {
    if (!first) out << ",\n";
    first = false;
    out << "        {\"id\": \"" << json_escape(rule.id)
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(rule.description) << "\"}}";
  }
  out << "\n      ]\n"
      << "    }},\n"
      << "    \"results\": [\n";
  first = true;
  for (const Finding& f : fresh) write_result(out, f, "warning", "new", first);
  for (const Finding& f : baselined) write_result(out, f, "warning", "unchanged", first);
  for (const Finding& f : notes) write_result(out, f, "note", nullptr, first);
  out << "\n    ]\n"
      << "  }]\n"
      << "}\n";
}

void write_sarif(const std::filesystem::path& path, const CheckRegistry& registry,
                 const std::vector<Finding>& baselined, const std::vector<Finding>& fresh) {
  std::vector<SarifRule> rules;
  rules.reserve(registry.checks().size());
  for (const auto& check : registry.checks()) {
    rules.push_back({std::string{check->name()}, std::string{check->description()}});
  }
  write_sarif(path, "toposense_lint", rules, baselined, fresh);
}

}  // namespace lint
