// toposense_lint engine — shared scanning machinery for all checks: file
// loading with comment/string stripping, token helpers, the check registry,
// and the NOLINT suppression protocol.
//
// Suppression forms (on the offending line or the line directly above):
//   // NOLINT(check-name)            suppress one check
//   // NOLINT(check-a,check-b)      suppress several checks
//   // NOLINT(*)                    suppress every check on this line
//   // NOLINT-determinism(reason)   legacy form, determinism check only;
//                                   the reason is mandatory and audited
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace lint {

struct Finding {
  std::string file;     ///< path as scanned (normalized, '/'-separated)
  std::size_t line{0};  ///< 1-based
  std::string check;    ///< check name, e.g. "determinism"
  std::string rule;     ///< rule id inside the check, e.g. "wall-clock"
  std::string message;
  std::string text;  ///< trimmed raw source line (baseline key component)
};

struct SourceFile {
  std::string path;                ///< normalized generic path
  std::vector<std::string> raw;    ///< original lines
  std::vector<std::string> clean;  ///< comment/string-stripped lines
  std::string clean_joined;        ///< clean lines joined with '\n'

  /// True when `name` appears as a whole path component ("src" matches
  /// "src/core/x.hpp" and "/root/repo/src/x.hpp", not "mysrc/x.hpp").
  [[nodiscard]] bool has_component(std::string_view name) const;
  /// True when components `a` then `b` appear adjacent ("src", "core").
  [[nodiscard]] bool has_components(std::string_view a, std::string_view b) const;
  [[nodiscard]] bool is_header() const;
};

/// Cross-file knowledge gathered before any per-file scan: headers declare
/// the members that .cpp files iterate, so container kinds are resolved over
/// the whole scanned set.
struct GlobalContext {
  std::set<std::string> unordered_names;
  /// `using Name = T*;` aliases — pointer types hiding behind a name, so a
  /// hash/ordering keyed by the alias is keyed by an address.
  std::set<std::string> pointer_aliases;
};

class Check {
 public:
  virtual ~Check() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  [[nodiscard]] virtual bool applies_to(const SourceFile& file) const = 0;
  /// Pre-pass over every applicable file; runs before any scan() call.
  virtual void collect(const SourceFile& file, GlobalContext& ctx) const;
  virtual void scan(const SourceFile& file, const GlobalContext& ctx,
                    std::vector<Finding>& out) const = 0;
};

class CheckRegistry {
 public:
  void add(std::unique_ptr<Check> check);
  [[nodiscard]] const std::vector<std::unique_ptr<Check>>& checks() const { return checks_; }
  [[nodiscard]] const Check* find(std::string_view name) const;

 private:
  std::vector<std::unique_ptr<Check>> checks_;
};

/// Registers the built-in checks in their canonical (report) order.
void register_builtin_checks(CheckRegistry& registry);

std::unique_ptr<Check> make_determinism_check();
std::unique_ptr<Check> make_raw_units_check();
std::unique_ptr<Check> make_callback_lifetime_check();
std::unique_ptr<Check> make_float_accumulation_check();
std::unique_ptr<Check> make_shared_mutable_static_check();
std::unique_ptr<Check> make_nondeterministic_source_check();
std::unique_ptr<Check> make_cross_shard_id_check();

// Shared token-scanning utilities.
[[nodiscard]] bool is_ident_char(char c);
/// True when `text` contains `token` with a non-identifier char on its left.
[[nodiscard]] bool contains_token(const std::string& text, std::string_view token);
/// Strips // and /* */ comments plus string/char literal contents.
[[nodiscard]] std::vector<std::string> strip_comments(const std::vector<std::string>& lines);
/// Last identifier of the range expression of a range-for on this line
/// ("state.members" -> "members"); empty when there is none or it is a call.
[[nodiscard]] std::string range_for_target(const std::string& line);
/// Names declared as std::unordered_{map,set} anywhere in `text`.
[[nodiscard]] std::set<std::string> unordered_names(const std::string& text);
/// True when the template argument list starting at `args_begin` (just past
/// the '<') opens with a pointer-typed first argument.
[[nodiscard]] bool first_template_arg_is_pointer(const std::string& text,
                                                 std::size_t args_begin);
[[nodiscard]] std::string trim(const std::string& s);

/// True when raw line `idx` (or the line above) suppresses `check`.
[[nodiscard]] bool suppressed(const SourceFile& file, std::size_t idx, std::string_view check);

/// Loads and pre-processes one file. Throws std::runtime_error on IO failure.
[[nodiscard]] SourceFile load_file(const std::filesystem::path& path);

/// True for the C++ source extensions the linter understands.
[[nodiscard]] bool lintable(const std::filesystem::path& p);

}  // namespace lint
