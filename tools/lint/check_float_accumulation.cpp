// float-accumulation — flags `+=` accumulation into a raw double inside a
// container loop, in the fingerprint-relevant subtrees (src/core/,
// src/metrics/).
//
// Rule [loop-sum]: `sum += x` over a container's elements makes the result
// depend on iteration order (float addition is not associative), so a
// reordered container silently changes fingerprints. Accumulate into a
// strong unit type (units::Bytes is exact; units::BitsPerSec documents the
// intent and keeps the order-sensitivity visible), use integer arithmetic,
// or sort before summing. Deliberate order-fixed sums are grandfathered via
// the baseline or carry a NOLINT(float-accumulation) marker.
#include <set>
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

/// Identifiers declared as raw `double`/`float` anywhere in the file.
std::set<std::string> double_names(const std::vector<std::string>& clean) {
  std::set<std::string> names;
  for (const std::string& line : clean) {
    for (const char* type : {"double", "float"}) {
      std::size_t pos = 0;
      while ((pos = line.find(type, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        std::size_t j = pos + std::string{type}.size();
        pos = j;
        if (!left_ok || (j < line.size() && is_ident_char(line[j]))) continue;
        while (j < line.size() && (line[j] == ' ' || line[j] == '\t' || line[j] == '&')) ++j;
        std::string ident;
        while (j < line.size() && is_ident_char(line[j])) ident += line[j++];
        if (!ident.empty()) names.insert(ident);
      }
    }
  }
  return names;
}

class FloatAccumulationCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "float-accumulation"; }
  [[nodiscard]] std::string_view description() const override {
    return "order-sensitive double += accumulation inside container loops";
  }
  [[nodiscard]] bool applies_to(const SourceFile& file) const override {
    return file.has_components("src", "core") || file.has_components("src", "metrics");
  }

  void scan(const SourceFile& file, const GlobalContext& /*ctx*/,
            std::vector<Finding>& out) const override {
    const std::set<std::string> doubles = double_names(file.clean);

    int depth = 0;
    std::vector<int> loop_depths;  // brace depth at each open range-for body
    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      const bool is_range_for = !range_for_target_or_call(line).empty();

      // Flag before brace bookkeeping: the accumulation sits inside bodies
      // that were opened on earlier lines.
      if (!loop_depths.empty() && !is_range_for) {
        flag_accumulations(file, i, doubles, out);
      }

      for (const char c : line) {
        if (c == '{') {
          ++depth;
          if (is_range_for && (loop_depths.empty() || loop_depths.back() != depth)) {
            loop_depths.push_back(depth);
          }
        }
        if (c == '}') {
          if (!loop_depths.empty() && loop_depths.back() == depth) loop_depths.pop_back();
          --depth;
        }
      }
      // Braceless single-statement range-for: treat the next line as body.
      if (is_range_for && line.find('{') == std::string::npos && i + 1 < file.clean.size()) {
        flag_accumulations(file, i + 1, doubles, out);
      }
    }
  }

 private:
  /// Like range_for_target but keeps call-expression ranges ("tree.children(i)")
  /// which the shared helper deliberately drops.
  static std::string range_for_target_or_call(const std::string& line) {
    const std::size_t f = line.find("for ");
    const std::size_t f2 = f == std::string::npos ? line.find("for(") : f;
    if (f2 == std::string::npos) return {};
    const std::size_t colon = line.find(" : ", f2);
    if (colon == std::string::npos) return {};
    return trim(line.substr(colon + 3));
  }

  void flag_accumulations(const SourceFile& file, std::size_t i,
                          const std::set<std::string>& doubles,
                          std::vector<Finding>& out) const {
    const std::string& line = file.clean[i];
    std::size_t pos = 0;
    while ((pos = line.find("+=", pos)) != std::string::npos) {
      // Read the identifier immediately left of the operator.
      std::size_t end = pos;
      while (end > 0 && (line[end - 1] == ' ' || line[end - 1] == '\t')) --end;
      std::size_t begin = end;
      while (begin > 0 && is_ident_char(line[begin - 1])) --begin;
      const std::string ident = line.substr(begin, end - begin);
      pos += 2;
      // Member-access LHS ("a.b += x") accumulates into a field whose type
      // lives elsewhere; only locally-declared raw doubles are flagged.
      if (begin > 0 && (line[begin - 1] == '.' || line[begin - 1] == '>')) continue;
      if (ident.empty() || doubles.count(ident) == 0) continue;
      if (suppressed(file, i, name())) continue;
      out.push_back({file.path, i + 1, std::string{name()}, "loop-sum",
                     "double '" + ident +
                         "' accumulates container elements; float addition is not "
                         "associative, so iteration order changes the fingerprint — use a "
                         "strong unit type, integer arithmetic, or an order-fixed sum",
                     {}});
      return;  // one finding per line is enough
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_float_accumulation_check() {
  return std::make_unique<FloatAccumulationCheck>();
}

}  // namespace lint
