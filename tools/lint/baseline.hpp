// Baseline — grandfathered findings. The committed file maps a finding key
// `check|rule|file|trimmed-line-text` to an allowed multiplicity; scans match
// findings against it by key (not line number, so unrelated edits above a
// grandfathered line do not break CI) and only unmatched findings fail.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

class Baseline {
 public:
  /// One baseline line per grandfathered finding instance; '#' comments and
  /// blank lines are skipped. Throws std::runtime_error on IO failure.
  [[nodiscard]] static Baseline load(const std::filesystem::path& path);

  [[nodiscard]] static std::string key(const Finding& finding);

  /// Splits `findings` into (baselined, fresh), consuming one baseline slot
  /// per matched finding so removed offenders cannot mask new ones.
  void partition(const std::vector<Finding>& findings, std::vector<Finding>& baselined,
                 std::vector<Finding>& fresh) const;

  /// Writes `findings` as a sorted baseline file.
  static void write(const std::filesystem::path& path, const std::vector<Finding>& findings);

  [[nodiscard]] std::size_t size() const { return total_; }

 private:
  std::map<std::string, int> allowed_;
  std::size_t total_{0};
};

}  // namespace lint
