#include "baseline.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace lint {

Baseline Baseline::load(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot read baseline '" + path.string() + "'");
  Baseline b;
  for (std::string line; std::getline(in, line);) {
    const std::string entry = trim(line);
    if (entry.empty() || entry[0] == '#') continue;
    ++b.allowed_[entry];
    ++b.total_;
  }
  return b;
}

std::string Baseline::key(const Finding& finding) {
  return finding.check + "|" + finding.rule + "|" + finding.file + "|" + finding.text;
}

void Baseline::partition(const std::vector<Finding>& findings, std::vector<Finding>& baselined,
                         std::vector<Finding>& fresh) const {
  std::map<std::string, int> remaining = allowed_;
  for (const Finding& f : findings) {
    const auto it = remaining.find(key(f));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      baselined.push_back(f);
    } else {
      fresh.push_back(f);
    }
  }
}

void Baseline::write(const std::filesystem::path& path, const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(key(f));
  std::sort(keys.begin(), keys.end());
  std::ofstream out{path};
  if (!out) throw std::runtime_error("cannot write baseline '" + path.string() + "'");
  out << "# toposense_lint baseline — grandfathered findings, one per line:\n"
         "#   check|rule|file|trimmed-line-text\n"
         "# Matched by content (not line number). Regenerate with\n"
         "#   toposense_lint --write-baseline <this file> <paths...>\n"
         "# from the repository root. Do not add new entries by hand without\n"
         "# a review; shrink it whenever a grandfathered site is migrated.\n";
  for (const std::string& k : keys) out << k << '\n';
}

}  // namespace lint
