// callback-lifetime — flags `this`-capturing lambdas handed to the event
// scheduler with the returned cancellation handle discarded.
//
// Rule [dangling-this]: a statement that passes a `[this]`-capturing lambda
// to Simulation::at / Simulation::after / Scheduler::schedule_at /
// Scheduler::schedule_after without retaining the returned sim::EventId. If
// the object dies before the event fires, the scheduler invokes a callback
// into freed memory; keeping the EventId lets the destructor cancel it.
// Components whose lifetime provably spans the whole simulation (agents owned
// by the Scenario) are grandfathered via the committed baseline.
//
// Rule [cross-shard-ref]: a by-reference capture in an action handed to a
// ShardExecutor::Channel via `.post(`. Posted actions outlive the posting
// stack frame by construction — they run on the *destination shard's thread*
// at the next window barrier or later — so a `[&]` / `[&var]` capture of
// anything on the posting path is a use-after-return waiting for load, and a
// reference to source-shard state is a data race even when it stays alive.
// Capture by value (ShardLink deep-copies the packet for exactly this
// reason); destination-owned state is reached through a by-value pointer.
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

const char* const kScheduleCalls[] = {".at(", ".after(", "schedule_at(", "schedule_after("};

class CallbackLifetimeCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "callback-lifetime"; }
  [[nodiscard]] std::string_view description() const override {
    return "this-capturing lambdas scheduled without a retained cancellation handle";
  }
  [[nodiscard]] bool applies_to(const SourceFile& file) const override {
    return file.has_component("src");
  }

  void scan(const SourceFile& file, const GlobalContext& /*ctx*/,
            std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      std::size_t call = std::string::npos;
      for (const char* token : kScheduleCalls) {
        const std::size_t pos = line.find(token);
        if (pos != std::string::npos && (call == std::string::npos || pos < call)) call = pos;
      }
      if (call == std::string::npos) continue;
      // The lambda may open on the call line or the next (clang-format wraps
      // long argument lists); look no further so unrelated lambdas below the
      // statement are not attributed to this call.
      const bool captures_this = line.find("[this]", call) != std::string::npos ||
                                 (i + 1 < file.clean.size() &&
                                  trim(file.clean[i + 1]).rfind("[this]", 0) == 0);
      if (!captures_this) continue;
      // Retained handle: the call's result is assigned or returned. Anything
      // before the call site counts ("id_ = sim.after(...)", "return
      // sim.at(...)", "EventId id = ...").
      const std::string head = line.substr(0, call);
      const bool retained =
          head.find('=') != std::string::npos || contains_token(head, "return");
      if (retained || suppressed(file, i, name())) continue;
      out.push_back({file.path, i + 1, std::string{name()}, "dangling-this",
                     "this-capturing callback scheduled without retaining the EventId; "
                     "if *this dies before the event fires the scheduler calls into freed "
                     "memory — keep the handle and cancel it in the destructor",
                     {}});
    }

    scan_handoff_posts(file, out);
  }

 private:
  /// [cross-shard-ref]: by-reference captures in Channel::post actions.
  void scan_handoff_posts(const SourceFile& file, std::vector<Finding>& out) const {
    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      const std::size_t call = line.find(".post(");
      if (call == std::string::npos) continue;
      // The action lambda opens on the call line or the next (wrapped
      // argument lists); the capture list is everything up to the matching
      // ']' of the first '[' after the call.
      std::size_t open = line.find('[', call);
      const std::string* capture_line = &line;
      if (open == std::string::npos && i + 1 < file.clean.size()) {
        capture_line = &file.clean[i + 1];
        open = capture_line->find('[');
      }
      if (open == std::string::npos) continue;
      const std::size_t close = capture_line->find(']', open);
      if (close == std::string::npos) continue;
      const std::string captures = capture_line->substr(open + 1, close - open - 1);
      if (captures.find('&') == std::string::npos) continue;
      if (suppressed(file, i, name())) continue;
      out.push_back({file.path, i + 1, std::string{name()}, "cross-shard-ref",
                     "by-reference capture in a cross-shard handoff action; the action "
                     "runs on the destination shard's thread after this frame returns — "
                     "capture by value (deep-copy shard-crossing state)",
                     {}});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_callback_lifetime_check() {
  return std::make_unique<CallbackLifetimeCheck>();
}

}  // namespace lint
