// callback-lifetime — flags `this`-capturing lambdas handed to the event
// scheduler with the returned cancellation handle discarded.
//
// Rule [dangling-this]: a statement that passes a `[this]`-capturing lambda
// to Simulation::at / Simulation::after / Scheduler::schedule_at /
// Scheduler::schedule_after without retaining the returned sim::EventId. If
// the object dies before the event fires, the scheduler invokes a callback
// into freed memory; keeping the EventId lets the destructor cancel it.
// Components whose lifetime provably spans the whole simulation (agents owned
// by the Scenario) are grandfathered via the committed baseline.
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

const char* const kScheduleCalls[] = {".at(", ".after(", "schedule_at(", "schedule_after("};

class CallbackLifetimeCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "callback-lifetime"; }
  [[nodiscard]] std::string_view description() const override {
    return "this-capturing lambdas scheduled without a retained cancellation handle";
  }
  [[nodiscard]] bool applies_to(const SourceFile& file) const override {
    return file.has_component("src");
  }

  void scan(const SourceFile& file, const GlobalContext& /*ctx*/,
            std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      std::size_t call = std::string::npos;
      for (const char* token : kScheduleCalls) {
        const std::size_t pos = line.find(token);
        if (pos != std::string::npos && (call == std::string::npos || pos < call)) call = pos;
      }
      if (call == std::string::npos) continue;
      // The lambda may open on the call line or the next (clang-format wraps
      // long argument lists); look no further so unrelated lambdas below the
      // statement are not attributed to this call.
      const bool captures_this = line.find("[this]", call) != std::string::npos ||
                                 (i + 1 < file.clean.size() &&
                                  trim(file.clean[i + 1]).rfind("[this]", 0) == 0);
      if (!captures_this) continue;
      // Retained handle: the call's result is assigned or returned. Anything
      // before the call site counts ("id_ = sim.after(...)", "return
      // sim.at(...)", "EventId id = ...").
      const std::string head = line.substr(0, call);
      const bool retained =
          head.find('=') != std::string::npos || contains_token(head, "return");
      if (retained || suppressed(file, i, name())) continue;
      out.push_back({file.path, i + 1, std::string{name()}, "dangling-this",
                     "this-capturing callback scheduled without retaining the EventId; "
                     "if *this dies before the event fires the scheduler calls into freed "
                     "memory — keep the handle and cancel it in the destructor",
                     {}});
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_callback_lifetime_check() {
  return std::make_unique<CallbackLifetimeCheck>();
}

}  // namespace lint
