// determinism_lint — standalone checker for sources that must stay bit-for-bit
// deterministic across runs and platforms (the whole simulator under src/).
//
// Rules (each finding names its rule id):
//   [wall-clock]         calls that read host time (std::chrono clocks,
//                        gettimeofday, time(), localtime, ...). Simulated code
//                        must use sim::Time only.
//   [unseeded-rand]      std::random_device, rand()/srand()/drand48 — all
//                        randomness must come from the seeded sim::Rng streams.
//   [unordered-iteration] range-for over a std::unordered_{map,set}: iteration
//                        order is implementation-defined, so anything it feeds
//                        (output, event ordering, aggregate float sums) can
//                        differ between libstdc++ versions. Iterate a sorted
//                        copy or an ordered container instead.
//   [pointer-ordering]   ordered containers keyed by pointer (std::map<T*,...>,
//                        std::set<T*>, std::less<T*>): addresses vary run to
//                        run, so the order is nondeterministic.
//
// Suppression: append  // NOLINT-determinism(reason)  to the offending line
// (or the line directly above). The reason is mandatory; every suppression is
// part of the audited allowlist in docs/invariants.md.
//
// Usage: determinism_lint <file-or-dir>...
// Exit:  0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

bool is_ident(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// True when `text` contains `token` starting at a non-identifier boundary.
bool contains_token(const std::string& text, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    if (left_ok) return true;
    pos += token.size();
  }
  return false;
}

/// Strips // and /* */ comments and string/char literals so tokens inside
/// them are not flagged (the NOLINT marker is read from the raw line).
std::vector<std::string> strip_comments(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& line : lines) {
    std::string clean;
    clean.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block = false;
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        in_block = true;
        ++i;
        continue;
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        clean += quote;
        ++i;
        while (i < line.size() && line[i] != quote) {
          if (line[i] == '\\') ++i;
          ++i;
        }
        if (i < line.size()) clean += quote;
        continue;
      }
      clean += line[i];
    }
    out.push_back(std::move(clean));
  }
  return out;
}

/// True when raw line `idx` (or the line above) carries a NOLINT-determinism
/// marker with a non-empty reason.
bool suppressed(const std::vector<std::string>& raw, std::size_t idx) {
  const auto has_marker = [](const std::string& line) {
    const std::size_t pos = line.find("NOLINT-determinism(");
    if (pos == std::string::npos) return false;
    const std::size_t open = pos + std::string{"NOLINT-determinism("}.size() - 1;
    const std::size_t close = line.find(')', open);
    return close != std::string::npos && close > open + 1;
  };
  if (has_marker(raw[idx])) return true;
  return idx > 0 && has_marker(raw[idx - 1]);
}

/// Names of variables/members declared as std::unordered_{map,set} in `text`
/// (comment-stripped lines joined). Handles multi-line template arguments by
/// matching angle brackets.
std::set<std::string> unordered_names(const std::string& text) {
  std::set<std::string> names;
  for (const char* kind : {"unordered_map<", "unordered_set<"}) {
    std::size_t pos = 0;
    while ((pos = text.find(kind, pos)) != std::string::npos) {
      std::size_t i = pos + std::string{kind}.size();
      int depth = 1;
      while (i < text.size() && depth > 0) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>') --depth;
        ++i;
      }
      // Skip refs/pointers/whitespace, then read the declared identifier.
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) != 0 || text[i] == '&' ||
              text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && is_ident(text[i])) name += text[i++];
      if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]))) {
        names.insert(name);
      }
      pos += std::string{kind}.size();
    }
  }
  return names;
}

/// The last identifier of the range expression in a range-for on this line,
/// e.g. "state.members" -> "members"; empty when the line has no range-for.
std::string range_for_target(const std::string& line) {
  const std::size_t f = line.find("for ");
  const std::size_t f2 = f == std::string::npos ? line.find("for(") : f;
  if (f2 == std::string::npos) return {};
  const std::size_t colon = line.find(" : ", f2);
  if (colon == std::string::npos) return {};
  std::size_t end = line.size();
  // Trim to the closing ')' of the for header if present.
  const std::size_t close = line.find(')', colon);
  if (close != std::string::npos) end = close;
  std::string expr = line.substr(colon + 3, end - colon - 3);
  // Drop a trailing call/index — "foo.bar()" orders by bar's result, not bar.
  if (!expr.empty() && (expr.back() == ')' || expr.back() == ']')) return {};
  std::size_t i = expr.size();
  while (i > 0 && is_ident(expr[i - 1])) --i;
  return expr.substr(i);
}

struct PointerKeyRule {
  const char* prefix;
  const char* what;
};

/// True when the template argument list opening right after `pos` starts with
/// a type whose first top-level component is a pointer.
bool first_arg_is_pointer(const std::string& text, std::size_t args_begin) {
  int depth = 1;
  for (std::size_t i = args_begin; i < text.size() && depth > 0; ++i) {
    if (text[i] == '<' || text[i] == '(') ++depth;
    if (text[i] == '>' || text[i] == ')') --depth;
    if (depth == 1 && text[i] == ',') return false;  // first argument ended
    if (depth >= 1 && text[i] == '*') return true;
  }
  return false;
}

void scan_file(const fs::path& path, const std::set<std::string>& extra_unordered,
               std::vector<Finding>& findings) {
  std::ifstream in{path};
  std::vector<std::string> raw;
  for (std::string line; std::getline(in, line);) raw.push_back(std::move(line));
  const std::vector<std::string> clean = strip_comments(raw);

  std::string joined;
  for (const std::string& line : clean) {
    joined += line;
    joined += '\n';
  }
  std::set<std::string> unordered = unordered_names(joined);
  unordered.insert(extra_unordered.begin(), extra_unordered.end());

  static const std::vector<std::pair<const char*, const char*>> kWallClock = {
      {"system_clock", "std::chrono::system_clock reads host time"},
      {"steady_clock", "std::chrono::steady_clock reads host time"},
      {"high_resolution_clock", "std::chrono::high_resolution_clock reads host time"},
      {"gettimeofday", "gettimeofday reads host time"},
      {"clock_gettime", "clock_gettime reads host time"},
      {"localtime", "localtime reads host time"},
      {"gmtime", "gmtime reads host time"},
  };
  static const std::vector<std::pair<const char*, const char*>> kRand = {
      {"random_device", "std::random_device is nondeterministic; fork a seeded sim::Rng"},
      {"srand", "srand/rand is un-seeded global state; fork a seeded sim::Rng"},
      {"drand48", "drand48 is un-seeded global state; fork a seeded sim::Rng"},
      {"lrand48", "lrand48 is un-seeded global state; fork a seeded sim::Rng"},
  };
  static const std::vector<PointerKeyRule> kPointerKeyed = {
      {"std::map<", "std::map keyed by pointer"},
      {"std::set<", "std::set keyed by pointer"},
      {"std::less<", "std::less over a pointer type"},
  };

  for (std::size_t i = 0; i < clean.size(); ++i) {
    const std::string& line = clean[i];
    if (line.empty()) continue;

    for (const auto& [token, message] : kWallClock) {
      if (contains_token(line, token) && !suppressed(raw, i)) {
        findings.push_back({path.string(), i + 1, "wall-clock", message});
      }
    }
    for (const auto& [token, message] : kRand) {
      if (contains_token(line, token) && !suppressed(raw, i)) {
        findings.push_back({path.string(), i + 1, "unseeded-rand", message});
      }
    }
    // rand() needs the call parenthesis to avoid flagging e.g. "operand".
    if ((contains_token(line, "rand ()") || contains_token(line, "rand()")) &&
        !suppressed(raw, i)) {
      findings.push_back({path.string(), i + 1, "unseeded-rand",
                          "rand() is un-seeded global state; fork a seeded sim::Rng"});
    }

    for (const PointerKeyRule& rule : kPointerKeyed) {
      std::size_t pos = 0;
      while ((pos = line.find(rule.prefix, pos)) != std::string::npos) {
        pos += std::string{rule.prefix}.size();
        if (first_arg_is_pointer(line, pos) && !suppressed(raw, i)) {
          findings.push_back({path.string(), i + 1, "pointer-ordering",
                              std::string{rule.what} +
                                  ": addresses differ between runs, so does the order"});
          break;
        }
      }
    }

    const std::string target = range_for_target(line);
    if (!target.empty() && unordered.count(target) != 0 && !suppressed(raw, i)) {
      findings.push_back(
          {path.string(), i + 1, "unordered-iteration",
           "range-for over unordered container '" + target +
               "': iteration order is implementation-defined; iterate a sorted copy"});
    }
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-dir>...\n", argv[0]);
    return 2;
  }

  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path p{argv[i]};
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "error: cannot read '%s'\n", argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Headers declare the members that .cpp files iterate, so unordered names
  // are collected globally across the scanned set before any file is linted.
  std::set<std::string> global_unordered;
  for (const fs::path& file : files) {
    std::ifstream in{file};
    std::string text;
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(std::move(line));
    for (const std::string& line : strip_comments(lines)) {
      text += line;
      text += '\n';
    }
    const std::set<std::string> names = unordered_names(text);
    global_unordered.insert(names.begin(), names.end());
  }

  std::vector<Finding> findings;
  for (const fs::path& file : files) scan_file(file, global_unordered, findings);

  for (const Finding& f : findings) {
    std::printf("%s:%zu: [%s] %s (suppress with // NOLINT-determinism(reason))\n",
                f.file.c_str(), f.line, f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("determinism_lint: %zu finding(s) in %zu file(s)\n", findings.size(),
                files.size());
    return 1;
  }
  std::printf("determinism_lint: clean (%zu files)\n", files.size());
  return 0;
}
