// raw-units — bans new raw floating-point quantities in public headers.
//
// Rule [raw-double]: a parameter or member declared as a raw `double`/`float`
// whose name ends in `_bps`, `_bytes`, or `_fraction` in a header under src/.
// These names encode a unit the compiler cannot see; use the strong types in
// core/units.hpp (units::BitsPerSec, units::Bytes, units::LossFraction)
// instead, unwrapping with .bps()/.count()/.value() at arithmetic sites.
// Grandfathered declarations live in the committed baseline; function names
// ending in a unit suffix (e.g. `double capacity_bps(...)`) are accessors,
// not storage, and are not flagged.
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

const char* const kSuffixes[] = {"_bps", "_bytes", "_fraction"};

bool has_unit_suffix(const std::string& ident) {
  for (const char* suffix : kSuffixes) {
    const std::string s{suffix};
    if (ident.size() > s.size() && ident.compare(ident.size() - s.size(), s.size(), s) == 0) {
      return true;
    }
  }
  return false;
}

class RawUnitsCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "raw-units"; }
  [[nodiscard]] std::string_view description() const override {
    return "raw double *_bps/*_bytes/*_fraction members and parameters in public headers";
  }
  [[nodiscard]] bool applies_to(const SourceFile& file) const override {
    return file.is_header() && file.has_component("src");
  }

  void scan(const SourceFile& file, const GlobalContext& /*ctx*/,
            std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      std::size_t pos = 0;
      bool flagged = false;
      while (!flagged && (pos = line.find("double", pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        std::size_t j = pos + std::string{"double"}.size();
        pos = j;
        if (!left_ok || (j < line.size() && is_ident_char(line[j]))) continue;
        // Skip whitespace and reference/pointer sigils to the declared name.
        while (j < line.size() && (line[j] == ' ' || line[j] == '\t' || line[j] == '&')) ++j;
        if (j < line.size() && line[j] == '*') continue;  // pointer: not a quantity
        std::string ident;
        while (j < line.size() && is_ident_char(line[j])) ident += line[j++];
        if (ident.empty() || !has_unit_suffix(ident)) continue;
        while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
        if (j < line.size() && line[j] == '(') continue;  // function declaration
        if (!suppressed(file, i, name())) {
          out.push_back({file.path, i + 1, std::string{name()}, "raw-double",
                         "raw double '" + ident +
                             "' encodes a unit the compiler cannot check; use the strong "
                             "types in core/units.hpp (units::BitsPerSec / units::Bytes / "
                             "units::LossFraction)",
                         {}});
          flagged = true;
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_raw_units_check() { return std::make_unique<RawUnitsCheck>(); }

}  // namespace lint
