// determinism — sources that must stay bit-for-bit deterministic across runs
// and platforms (the simulator under src/; bench and tools read wall clocks
// legitimately and carry baseline entries instead).
//
// Rules:
//   [wall-clock]          calls that read host time (std::chrono clocks,
//                         gettimeofday, time(), localtime, ...). Simulated
//                         code must use sim::Time only.
//   [unseeded-rand]       std::random_device, rand()/srand()/drand48 — all
//                         randomness must come from seeded sim::Rng streams.
//   [unordered-iteration] range-for over a std::unordered_{map,set}:
//                         iteration order is implementation-defined, so
//                         anything it feeds (output, event ordering, float
//                         sums) can differ between libstdc++ versions.
//   [pointer-ordering]    ordered containers keyed by pointer: addresses
//                         differ run to run, so the order does too.
#include <string>
#include <utility>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

struct PointerKeyRule {
  const char* prefix;
  const char* what;
};

class DeterminismCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "determinism"; }
  [[nodiscard]] std::string_view description() const override {
    return "host time, unseeded randomness, and iteration-order nondeterminism";
  }
  [[nodiscard]] bool applies_to(const SourceFile& /*file*/) const override { return true; }

  void collect(const SourceFile& file, GlobalContext& ctx) const override {
    // Headers declare the members that .cpp files iterate, so unordered
    // names are pooled across the whole scanned set before any file scan.
    const std::set<std::string> names = unordered_names(file.clean_joined);
    ctx.unordered_names.insert(names.begin(), names.end());
  }

  void scan(const SourceFile& file, const GlobalContext& ctx,
            std::vector<Finding>& out) const override {
    static const std::vector<std::pair<const char*, const char*>> kWallClock = {
        {"system_clock", "std::chrono::system_clock reads host time"},
        {"steady_clock", "std::chrono::steady_clock reads host time"},
        {"high_resolution_clock", "std::chrono::high_resolution_clock reads host time"},
        {"gettimeofday", "gettimeofday reads host time"},
        {"clock_gettime", "clock_gettime reads host time"},
        {"localtime", "localtime reads host time"},
        {"gmtime", "gmtime reads host time"},
    };
    static const std::vector<std::pair<const char*, const char*>> kRand = {
        {"random_device", "std::random_device is nondeterministic; fork a seeded sim::Rng"},
        {"srand", "srand/rand is un-seeded global state; fork a seeded sim::Rng"},
        {"drand48", "drand48 is un-seeded global state; fork a seeded sim::Rng"},
        {"lrand48", "lrand48 is un-seeded global state; fork a seeded sim::Rng"},
    };
    static const std::vector<PointerKeyRule> kPointerKeyed = {
        {"std::map<", "std::map keyed by pointer"},
        {"std::set<", "std::set keyed by pointer"},
        {"std::less<", "std::less over a pointer type"},
    };

    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      if (line.empty()) continue;

      for (const auto& [token, message] : kWallClock) {
        if (contains_token(line, token) && !suppressed(file, i, name())) {
          out.push_back({file.path, i + 1, std::string{name()}, "wall-clock", message, {}});
        }
      }
      for (const auto& [token, message] : kRand) {
        if (contains_token(line, token) && !suppressed(file, i, name())) {
          out.push_back({file.path, i + 1, std::string{name()}, "unseeded-rand", message, {}});
        }
      }
      // rand() needs the call parenthesis to avoid flagging e.g. "operand".
      if ((contains_token(line, "rand ()") || contains_token(line, "rand()")) &&
          !suppressed(file, i, name())) {
        out.push_back({file.path, i + 1, std::string{name()}, "unseeded-rand",
                       "rand() is un-seeded global state; fork a seeded sim::Rng", {}});
      }

      for (const PointerKeyRule& rule : kPointerKeyed) {
        std::size_t pos = 0;
        while ((pos = line.find(rule.prefix, pos)) != std::string::npos) {
          pos += std::string{rule.prefix}.size();
          if (first_template_arg_is_pointer(line, pos) && !suppressed(file, i, name())) {
            out.push_back({file.path, i + 1, std::string{name()}, "pointer-ordering",
                           std::string{rule.what} +
                               ": addresses differ between runs, so does the order",
                           {}});
            break;
          }
        }
      }

      const std::string target = range_for_target(line);
      if (!target.empty() && ctx.unordered_names.count(target) != 0 &&
          !suppressed(file, i, name())) {
        out.push_back(
            {file.path, i + 1, std::string{name()}, "unordered-iteration",
             "range-for over unordered container '" + target +
                 "': iteration order is implementation-defined; iterate a sorted copy",
             {}});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_determinism_check() {
  return std::make_unique<DeterminismCheck>();
}

}  // namespace lint
