// nondeterministic-source — inputs that silently break the shard layer's
// bit-identical-at-every-thread-count guarantee, scoped to the code that
// runs inside or between shards (src/sim, src/control, src/net). The
// determinism check flags clock *types* and unordered iteration everywhere;
// this check covers the call-site shapes that slip past it once an alias or
// a pointer stands between the type and the use.
//
// Rules:
//   [wall-clock-now]  any statically-qualified `::now()` call. sim code reads
//                     time as `simulation.now()` (instance call, simulated
//                     clock); `X::now()` is a host clock no matter what X is
//                     aliased to — the alias line may live in another file,
//                     so the type-name rules never see it.
//   [unseeded-rand]   rand()/srand/drand48/std::random_device — all
//                     randomness must come from seeded sim::Rng streams, or
//                     two shards draw correlated (or host-entropy) values.
//   [pointer-hash]    std::unordered_{map,set} or std::hash keyed by a
//                     pointer type — including `using H = T*;` aliases
//                     gathered in the cross-file collect pass. Hash order and
//                     bucket layout follow the address, which differs run to
//                     run and thread count to thread count.
//   [pointer-value]   reinterpret_cast to [u]intptr_t: an address turned
//                     into an ordinary integer is an address-ordering /
//                     address-hashing primitive in disguise.
#include <string>
#include <vector>

#include "engine.hpp"

namespace lint {

namespace {

const char* const kHashedContainers[] = {"unordered_map<", "unordered_set<", "std::hash<"};

class NondeterministicSourceCheck final : public Check {
 public:
  [[nodiscard]] std::string_view name() const override { return "nondeterministic-source"; }
  [[nodiscard]] std::string_view description() const override {
    return "host clocks, unseeded randomness, and address-keyed hashing in shard-resident code";
  }
  [[nodiscard]] bool applies_to(const SourceFile& file) const override {
    return file.has_components("src", "sim") || file.has_components("src", "control") ||
           file.has_components("src", "net");
  }

  void collect(const SourceFile& file, GlobalContext& ctx) const override {
    // `using Name = T*;` — the alias may be declared in a header and used as
    // a container key in a .cpp, so aliases pool across the scanned set.
    for (const std::string& line : file.clean) {
      std::size_t pos = 0;
      while ((pos = line.find("using ", pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        pos += std::string_view{"using "}.size();
        if (!left_ok) continue;
        std::size_t j = pos;
        std::string alias;
        while (j < line.size() && is_ident_char(line[j])) alias += line[j++];
        while (j < line.size() && line[j] == ' ') ++j;
        if (alias.empty() || j >= line.size() || line[j] != '=') continue;
        const std::size_t semi = line.find(';', j);
        if (semi == std::string::npos) continue;
        const std::string target = trim(line.substr(j + 1, semi - j - 1));
        if (!target.empty() && target.back() == '*') ctx.pointer_aliases.insert(alias);
      }
    }
  }

  void scan(const SourceFile& file, const GlobalContext& ctx,
            std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.clean.size(); ++i) {
      const std::string& line = file.clean[i];
      if (line.empty()) continue;

      scan_wall_clock(file, i, out);
      scan_rand(file, i, out);
      scan_pointer_keys(file, i, ctx, out);

      if ((line.find("reinterpret_cast<std::uintptr_t>") != std::string::npos ||
           line.find("reinterpret_cast<uintptr_t>") != std::string::npos ||
           line.find("reinterpret_cast<std::intptr_t>") != std::string::npos ||
           line.find("reinterpret_cast<intptr_t>") != std::string::npos) &&
          !suppressed(file, i, name())) {
        out.push_back({file.path, i + 1, std::string{name()}, "pointer-value",
                       "pointer cast to an integer: the value is the allocation address, "
                       "which differs between runs and thread counts — key by a stable "
                       "dense id instead",
                       {}});
      }
    }
  }

 private:
  void scan_wall_clock(const SourceFile& file, std::size_t i,
                       std::vector<Finding>& out) const {
    const std::string& line = file.clean[i];
    const std::size_t pos = line.find("::now(");
    if (pos == std::string::npos) return;
    // `Time InvariantAuditor::now() const {` is a member *definition*, not a
    // clock read; a real call is never followed by a cv-qualifier.
    if (line.find("::now() const") != std::string::npos) return;
    if (suppressed(file, i, name())) return;
    out.push_back({file.path, i + 1, std::string{name()}, "wall-clock-now",
                   "statically-qualified ::now() reads a host clock (whatever the "
                   "qualifier aliases); shard-resident code must use the simulated "
                   "clock, simulation.now()",
                   {}});
  }

  void scan_rand(const SourceFile& file, std::size_t i, std::vector<Finding>& out) const {
    const std::string& line = file.clean[i];
    const bool hit = contains_token(line, "random_device") || contains_token(line, "srand") ||
                     contains_token(line, "drand48") || contains_token(line, "lrand48") ||
                     contains_token(line, "rand()") || contains_token(line, "rand ()");
    if (!hit || suppressed(file, i, name())) return;
    out.push_back({file.path, i + 1, std::string{name()}, "unseeded-rand",
                   "unseeded/host randomness: two shards must draw from independent "
                   "seeded sim::Rng streams or the run is not reproducible at any "
                   "thread count",
                   {}});
  }

  void scan_pointer_keys(const SourceFile& file, std::size_t i, const GlobalContext& ctx,
                         std::vector<Finding>& out) const {
    const std::string& line = file.clean[i];
    for (const char* prefix : kHashedContainers) {
      std::size_t pos = 0;
      while ((pos = line.find(prefix, pos)) != std::string::npos) {
        const std::size_t args = pos + std::string_view{prefix}.size();
        pos = args;
        bool pointer_key = first_template_arg_is_pointer(line, args);
        if (!pointer_key) {
          // The key may be an alias of a pointer type (cross-file collect).
          std::size_t j = args;
          std::string ident;
          while (j < line.size() && is_ident_char(line[j])) ident += line[j++];
          pointer_key = !ident.empty() && ctx.pointer_aliases.count(ident) != 0;
        }
        if (!pointer_key || suppressed(file, i, name())) continue;
        out.push_back({file.path, i + 1, std::string{name()}, "pointer-hash",
                       std::string{prefix} + "...> keyed by a pointer: hash order follows "
                       "the allocation address, which differs between runs — key by a "
                       "dense interned id",
                       {}});
        break;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_nondeterministic_source_check() {
  return std::make_unique<NondeterministicSourceCheck>();
}

}  // namespace lint
