// JSON (de)serialization of TU summaries — the contract between the
// summarize and link passes — plus the compile_commands.json reader. The
// parser is a minimal recursive-descent JSON reader covering exactly what
// those two formats need (objects, arrays, strings, integers, booleans).
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "model.hpp"

namespace hotpath {

namespace {

// --- writing ---------------------------------------------------------------

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kCall: return "call";
    case OpKind::kToken: return "token";
    case OpKind::kNew: return "new";
    case OpKind::kDelete: return "delete";
    case OpKind::kThrow: return "throw";
  }
  return "call";
}

OpKind kind_from_name(const std::string& name) {
  if (name == "token") return OpKind::kToken;
  if (name == "new") return OpKind::kNew;
  if (name == "delete") return OpKind::kDelete;
  if (name == "throw") return OpKind::kThrow;
  return OpKind::kCall;
}

void write_string_array(std::string& out, const char* key, const std::vector<std::string>& values) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += escape(values[i]);
    out += '"';
  }
  out += ']';
}

void write_op(std::string& out, const Op& op) {
  out += "{\"kind\":\"";
  out += kind_name(op.kind);
  out += "\",\"name\":\"";
  out += escape(op.name);
  out += "\",\"qual\":\"";
  out += escape(op.qualifier);
  out += "\",\"member\":";
  out += op.member ? "true" : "false";
  out += ",\"scoped\":";
  out += op.scoped ? "true" : "false";
  out += ",\"file\":\"";
  out += escape(op.file);
  out += "\",\"line\":";
  out += std::to_string(op.line);
  out += ",\"text\":\"";
  out += escape(op.text);
  out += "\",";
  write_string_array(out, "allow", op.allowed_rules);
  out += ",\"allow_reason\":\"";
  out += escape(op.allow_reason);
  out += "\",\"allow_missing\":";
  out += op.allow_missing_reason ? "true" : "false";
  out += '}';
}

void write_function(std::string& out, const FunctionInfo& fn) {
  out += "{\"qname\":\"";
  out += escape(fn.qname);
  out += "\",\"file\":\"";
  out += escape(fn.file);
  out += "\",\"line\":";
  out += std::to_string(fn.line);
  out += ",\"def\":";
  out += fn.is_definition ? "true" : "false";
  out += ",\"hot\":";
  out += fn.hot ? "true" : "false";
  out += ",\"exempt\":";
  out += fn.exempt ? "true" : "false";
  out += ",\"exempt_reason\":\"";
  out += escape(fn.exempt_reason);
  out += "\",\"ops\":[";
  for (std::size_t i = 0; i < fn.ops.size(); ++i) {
    if (i > 0) out += ',';
    write_op(out, fn.ops[i]);
  }
  out += "]}";
}

// --- reading ---------------------------------------------------------------

struct Value {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject } type{kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] const Value& at(const std::string& key) const {
    static const Value kEmpty{};
    const auto it = object.find(key);
    return it == object.end() ? kEmpty : it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_{text} {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  Value value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  Value object() {
    Value v;
    v.type = Value::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Value key = string_value();
      expect(':');
      v.object.emplace(std::move(key.string), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    v.type = Value::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    Value v;
    v.type = Value::kString;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const unsigned code = static_cast<unsigned>(std::stoul(hex, nullptr, 16));
          // Summaries only escape control characters; anything else is kept
          // as a replacement byte rather than full UTF-8 encoding.
          v.string += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  Value boolean() {
    Value v;
    v.type = Value::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Value null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return Value{};
  }

  Value number() {
    Value v;
    v.type = Value::kNumber;
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) != 0 || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) fail("expected value");
    v.number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& text_;
  std::size_t pos_{0};
};

std::vector<std::string> string_array(const Value& v) {
  std::vector<std::string> out;
  out.reserve(v.array.size());
  for (const Value& item : v.array) out.push_back(item.string);
  return out;
}

Op op_from_value(const Value& v) {
  Op op;
  op.kind = kind_from_name(v.at("kind").string);
  op.name = v.at("name").string;
  op.qualifier = v.at("qual").string;
  op.member = v.at("member").boolean;
  op.scoped = v.at("scoped").boolean;
  op.file = v.at("file").string;
  op.line = static_cast<std::size_t>(v.at("line").number);
  op.text = v.at("text").string;
  op.allowed_rules = string_array(v.at("allow"));
  op.allow_reason = v.at("allow_reason").string;
  op.allow_missing_reason = v.at("allow_missing").boolean;
  return op;
}

FunctionInfo function_from_value(const Value& v) {
  FunctionInfo fn;
  fn.qname = v.at("qname").string;
  fn.file = v.at("file").string;
  fn.line = static_cast<std::size_t>(v.at("line").number);
  fn.is_definition = v.at("def").boolean;
  fn.hot = v.at("hot").boolean;
  fn.exempt = v.at("exempt").boolean;
  fn.exempt_reason = v.at("exempt_reason").string;
  for (const Value& op : v.at("ops").array) fn.ops.push_back(op_from_value(op));
  return fn;
}

}  // namespace

std::string summaries_to_json(const std::vector<TuSummary>& summaries) {
  std::string out;
  out += "[";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const TuSummary& tu = summaries[i];
    if (i > 0) out += ',';
    out += "\n{\"file\":\"";
    out += escape(tu.file);
    out += "\",";
    write_string_array(out, "virtual_methods", tu.virtual_methods);
    out += ',';
    write_string_array(out, "callable_members", tu.callable_members);
    out += ",\"functions\":[";
    for (std::size_t j = 0; j < tu.functions.size(); ++j) {
      if (j > 0) out += ',';
      out += '\n';
      write_function(out, tu.functions[j]);
    }
    out += "]}";
  }
  out += "\n]\n";
  return out;
}

std::vector<TuSummary> summaries_from_json(const std::string& json) {
  const Value root = Parser{json}.parse();
  if (root.type != Value::kArray) throw std::runtime_error("summary JSON: expected array");
  std::vector<TuSummary> out;
  out.reserve(root.array.size());
  for (const Value& tu : root.array) {
    TuSummary summary;
    summary.file = tu.at("file").string;
    summary.virtual_methods = string_array(tu.at("virtual_methods"));
    summary.callable_members = string_array(tu.at("callable_members"));
    for (const Value& fn : tu.at("functions").array) {
      summary.functions.push_back(function_from_value(fn));
    }
    out.push_back(std::move(summary));
  }
  return out;
}

std::vector<std::string> compile_commands_files(const std::string& json) {
  const Value root = Parser{json}.parse();
  std::vector<std::string> files;
  files.reserve(root.array.size());
  for (const Value& entry : root.array) {
    const Value& file = entry.at("file");
    if (file.type == Value::kString && !file.string.empty()) files.push_back(file.string);
  }
  return files;
}

}  // namespace hotpath
