// toposense_hotpath data model — the per-TU summary a summarize pass extracts
// and the link pass consumes. The two passes only communicate through
// TuSummary (serialized to JSON between processes, round-tripped in memory in
// single-process mode), which is the seam where a Clang libTooling frontend
// can substitute for the built-in syntactic summarizer: any producer that
// emits the same JSON plugs into the same link step.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine.hpp"  // lint::Finding et al (tools/lint)

namespace hotpath {

enum class OpKind {
  kCall,   ///< name(...) — member / scoped / plain
  kToken,  ///< type or object token implying an effect (LockGuard, cout, ...)
  kNew,    ///< non-placement new-expression
  kDelete, ///< delete-expression
  kThrow,  ///< throw-expression
};

/// One effect-relevant operation inside a function body.
struct Op {
  OpKind kind{OpKind::kCall};
  std::string name;       ///< callee name or token text
  std::string qualifier;  ///< "Logger" in Logger::log(...); empty otherwise
  bool member{false};     ///< called through . or ->
  bool scoped{false};     ///< called through ::
  std::string file;       ///< file the op sits in (ops of overloads may merge)
  std::size_t line{0};    ///< 1-based line in `file`
  std::string text;       ///< trimmed raw source line (baseline key component)
  /// HOTPATH_ALLOW(rule[,rule]: reason) grants covering this line.
  std::vector<std::string> allowed_rules;
  std::string allow_reason;
  bool allow_missing_reason{false};
};

/// One function declaration or definition found in a TU.
struct FunctionInfo {
  std::string qname;  ///< scope-qualified, e.g. "tsim::sim::Scheduler::pop_min_upto"
  std::string file;
  std::size_t line{0};
  bool is_definition{false};
  bool hot{false};     ///< carried a HOT_PATH annotation
  bool exempt{false};  ///< carried a HOT_PATH_EXEMPT annotation
  std::string exempt_reason;
  std::vector<Op> ops;  ///< definition bodies only
};

/// Everything the link step needs from one translation unit (one file).
struct TuSummary {
  std::string file;
  std::vector<FunctionInfo> functions;
  /// Method names declared `virtual` (or pure) — member calls to these with
  /// no definition anywhere in the summary set are the virtual frontier.
  std::vector<std::string> virtual_methods;
  /// Names of std::function-typed members/globals — calls through these are
  /// the indirect-call frontier.
  std::vector<std::string> callable_members;
};

/// Summarize pass: parse one already-loaded file into a TU summary.
[[nodiscard]] TuSummary summarize(const lint::SourceFile& file);

/// JSON (de)serialization of summary sets. The format is an array of TU
/// summary objects; see docs/static-analysis.md for the schema.
[[nodiscard]] std::string summaries_to_json(const std::vector<TuSummary>& summaries);
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<TuSummary> summaries_from_json(const std::string& json);

/// Parses the "file" entries out of a CMake compile_commands.json.
[[nodiscard]] std::vector<std::string> compile_commands_files(const std::string& json);

/// Link-pass configuration.
struct AnalyzeOptions {
  /// Root qnames (or ::-suffixes) whose HOT_PATH annotation is ignored —
  /// used by tests to prove each root contributes to the reachable set.
  std::vector<std::string> drop_roots;
};

/// Link-pass output.
struct AnalyzeResult {
  std::vector<lint::Finding> findings;  ///< gating (rule violations)
  std::vector<lint::Finding> notes;     ///< informational (call-graph frontier)
  /// Deterministic reachable-set report: one section per root, listing the
  /// functions its cone reaches and the exempt boundaries that stop the walk.
  std::string reachable_report;
  std::size_t root_count{0};
  std::size_t reached_count{0};
};

/// Link pass: merge summaries, build the call graph, walk reachability from
/// HOT_PATH roots, and classify effects against the rule catalogue.
[[nodiscard]] AnalyzeResult analyze(const std::vector<TuSummary>& summaries,
                                    const AnalyzeOptions& options);

/// Rule catalogue (id -> one-line description), in report order.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>& rule_catalogue();

}  // namespace hotpath
