// Link pass — merges per-TU summaries into a whole-program call graph, walks
// reachability from every HOT_PATH root, and classifies the operations inside
// reached functions against the purity rule catalogue.
//
// Resolution policy (sound over-approximation): a call edge is added to EVERY
// definition sharing the callee's name — virtual dispatch and overloads all
// stay inside the walked cone. A qualified call (`Q::f`) resolves only
// against `...Q::f` suffixes so `steady_clock::now()` cannot hide behind an
// unrelated project `now()`. Calls that resolve nowhere are classified
// against the primitive tables; member/indirect calls that are neither
// resolvable nor classifiable surface as informational `unresolved-call`
// notes at the graph frontier.
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.hpp"

namespace hotpath {

namespace {

std::string last_component(const std::string& qname) {
  const std::size_t pos = qname.rfind("::");
  return pos == std::string::npos ? qname : qname.substr(pos + 2);
}

bool ends_with_component(const std::string& qname, const std::string& suffix) {
  if (qname == suffix) return true;
  if (qname.size() <= suffix.size() + 2) return false;
  return qname.compare(qname.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         qname.compare(qname.size() - suffix.size() - 2, 2, "::") == 0;
}

/// Calls whose names imply an effect when they resolve to no project
/// definition. Keyed name -> rule id.
const std::map<std::string, std::string>& call_rules() {
  static const std::map<std::string, std::string> kRules{
      // heap-alloc: the malloc family plus std allocation helpers.
      {"malloc", "heap-alloc"},
      {"calloc", "heap-alloc"},
      {"realloc", "heap-alloc"},
      {"free", "heap-alloc"},
      {"strdup", "heap-alloc"},
      {"aligned_alloc", "heap-alloc"},
      {"posix_memalign", "heap-alloc"},
      {"make_unique", "heap-alloc"},
      {"make_shared", "heap-alloc"},
      {"allocate", "heap-alloc"},
      {"deallocate", "heap-alloc"},
      {"to_string", "heap-alloc"},
      {"substr", "heap-alloc"},
      // container-growth: calls that may reallocate or rehash.
      {"push_back", "container-growth"},
      {"emplace_back", "container-growth"},
      {"push_front", "container-growth"},
      {"emplace_front", "container-growth"},
      {"insert", "container-growth"},
      {"emplace", "container-growth"},
      {"emplace_hint", "container-growth"},
      {"resize", "container-growth"},
      {"reserve", "container-growth"},
      {"assign", "container-growth"},
      {"append", "container-growth"},
      {"shrink_to_fit", "container-growth"},
      {"rehash", "container-growth"},
      // lock: acquisition and CV traffic.
      {"lock", "lock"},
      {"unlock", "lock"},
      {"try_lock", "lock"},
      {"wait", "lock"},
      {"wait_for", "lock"},
      {"wait_until", "lock"},
      {"notify_one", "lock"},
      {"notify_all", "lock"},
      // io: stdio, streams, process control.
      {"printf", "io"},
      {"fprintf", "io"},
      {"sprintf", "io"},
      {"snprintf", "io"},
      {"vsnprintf", "io"},
      {"puts", "io"},
      {"fputs", "io"},
      {"fputc", "io"},
      {"putchar", "io"},
      {"fwrite", "io"},
      {"fread", "io"},
      {"fopen", "io"},
      {"fclose", "io"},
      {"fflush", "io"},
      {"fgets", "io"},
      {"getline", "io"},
      {"perror", "io"},
      {"syslog", "io"},
      {"system", "io"},
      // throw-expr companions.
      {"rethrow_exception", "throw-expr"},
      {"throw_with_nested", "throw-expr"},
      // nondeterministic-source: ambient clocks/entropy (the deterministic
      // sim::Rng / simulation.now() resolve to project definitions instead).
      {"rand", "nondeterministic-source"},
      {"srand", "nondeterministic-source"},
      {"drand48", "nondeterministic-source"},
      {"lrand48", "nondeterministic-source"},
      {"random", "nondeterministic-source"},
      {"time", "nondeterministic-source"},
      {"gettimeofday", "nondeterministic-source"},
      {"clock_gettime", "nondeterministic-source"},
      {"getenv", "nondeterministic-source"},
  };
  return kRules;
}

/// Presence-implies-effect tokens (scoped-lock constructions, stream
/// objects, ambient clock types) — matched without call syntax.
const std::map<std::string, std::string>& token_rules() {
  static const std::map<std::string, std::string> kRules{
      {"LockGuard", "lock"},
      {"UniqueLock", "lock"},
      {"lock_guard", "lock"},
      {"unique_lock", "lock"},
      {"scoped_lock", "lock"},
      {"shared_lock", "lock"},
      {"condition_variable", "lock"},
      {"ConditionVariable", "lock"},
      {"cout", "io"},
      {"cerr", "io"},
      {"clog", "io"},
      {"ifstream", "io"},
      {"ofstream", "io"},
      {"fstream", "io"},
      {"stringstream", "io"},
      {"ostringstream", "io"},
      {"istringstream", "io"},
      {"random_device", "nondeterministic-source"},
      {"steady_clock", "nondeterministic-source"},
      {"system_clock", "nondeterministic-source"},
      {"high_resolution_clock", "nondeterministic-source"},
  };
  return kRules;
}

/// std members that neither allocate nor block — unresolved member calls to
/// these are not frontier-worthy.
const std::set<std::string>& benign_members() {
  static const std::set<std::string> kBenign{
      "begin",     "end",       "cbegin",     "cend",       "rbegin",     "rend",
      "size",      "empty",     "clear",      "front",      "back",       "data",
      "at",        "count",     "find",       "contains",   "lower_bound", "upper_bound",
      "equal_range", "top",     "pop",        "pop_back",   "pop_front",  "erase",
      "c_str",     "length",    "capacity",   "compare",    "starts_with", "ends_with",
      "fill",      "swap",      "get",        "release",    "reset",      "value",
      "has_value", "value_or",  "load",       "store",      "exchange",   "fetch_add",
      "fetch_sub", "compare_exchange_weak",   "compare_exchange_strong",  "test_and_set",
      "min",       "max",       "first",      "second",     "native_handle",
  };
  return kBenign;
}

struct Node {
  FunctionInfo info;       ///< merged across declarations and definitions
  bool has_definition{false};
};

struct Graph {
  std::map<std::string, Node> nodes;                       ///< by qname
  std::map<std::string, std::vector<std::string>> by_name; ///< last component -> qnames (defs)
  std::set<std::string> virtual_methods;
  std::set<std::string> callable_members;
};

Graph build_graph(const std::vector<TuSummary>& summaries) {
  Graph graph;
  for (const TuSummary& tu : summaries) {
    graph.virtual_methods.insert(tu.virtual_methods.begin(), tu.virtual_methods.end());
    graph.callable_members.insert(tu.callable_members.begin(), tu.callable_members.end());
    for (const FunctionInfo& fn : tu.functions) {
      Node& node = graph.nodes[fn.qname];
      if (node.info.qname.empty()) {
        node.info = fn;
      } else {
        node.info.hot = node.info.hot || fn.hot;
        node.info.exempt = node.info.exempt || fn.exempt;
        if (node.info.exempt_reason.empty()) node.info.exempt_reason = fn.exempt_reason;
        if (fn.is_definition && !node.info.is_definition) {
          node.info.file = fn.file;
          node.info.line = fn.line;
          node.info.is_definition = true;
        }
        node.info.ops.insert(node.info.ops.end(), fn.ops.begin(), fn.ops.end());
      }
      node.has_definition = node.has_definition || fn.is_definition;
    }
  }
  for (const auto& [qname, node] : graph.nodes) {
    if (node.has_definition) graph.by_name[last_component(qname)].push_back(qname);
  }
  return graph;
}

/// Definitions a call may dispatch to. Qualified calls only match
/// `...Q::name` suffixes; everything else matches by name.
std::vector<std::string> resolve(const Graph& graph, const Op& op) {
  const auto it = graph.by_name.find(op.name);
  if (it == graph.by_name.end()) return {};
  if (op.scoped && !op.qualifier.empty()) {
    std::vector<std::string> exact;
    const std::string suffix = op.qualifier + "::" + op.name;
    for (const std::string& qname : it->second) {
      if (ends_with_component(qname, suffix)) exact.push_back(qname);
    }
    return exact;  // empty on purpose when the qualifier matches nothing
  }
  return it->second;
}

bool allow_covers(const Op& op, const std::string& rule) {
  for (const std::string& granted : op.allowed_rules) {
    if (granted == "*" || granted == rule) return true;
  }
  return false;
}

std::string describe_op(const Op& op) {
  switch (op.kind) {
    case OpKind::kNew: return "`new` expression";
    case OpKind::kDelete: return "`delete` expression";
    case OpKind::kThrow: return "`throw` expression";
    case OpKind::kToken: return "`" + op.name + "`";
    case OpKind::kCall: break;
  }
  std::string label;
  if (!op.qualifier.empty()) label = op.qualifier + "::";
  return "call `" + label + op.name + "(...)`";
}

class Analyzer {
 public:
  Analyzer(const std::vector<TuSummary>& summaries, const AnalyzeOptions& options)
      : graph_{build_graph(summaries)}, options_{options} {}

  AnalyzeResult run() {
    collect_roots();
    walk_all();
    audit_exempt_reasons();
    build_report();
    sort_findings(result_.findings);
    sort_findings(result_.notes);
    result_.root_count = roots_.size();
    result_.reached_count = reached_.size();
    return std::move(result_);
  }

 private:
  static bool dropped(const AnalyzeOptions& options, const std::string& qname) {
    for (const std::string& drop : options.drop_roots) {
      if (qname == drop || last_component(qname) == drop || ends_with_component(qname, drop)) {
        return true;
      }
    }
    return false;
  }

  void collect_roots() {
    for (const auto& [qname, node] : graph_.nodes) {
      if (node.info.hot && !dropped(options_, qname)) roots_.push_back(qname);
    }
  }

  /// Global walk: every reached function's ops are classified exactly once,
  /// attributed to the first root (in sorted order) that reaches it.
  void walk_all() {
    for (const std::string& root : roots_) {
      std::deque<std::string> queue{root};
      if (reached_.emplace(root, Origin{root, {}}).second) {
        while (!queue.empty()) {
          const std::string current = queue.front();
          queue.pop_front();
          visit(current, queue);
        }
      } else {
        // Root already inside another root's cone: still walk its own cone
        // for the per-root report, but ops were classified already.
      }
      per_root_[root] = cone_of(root);
    }
  }

  struct Origin {
    std::string root;
    std::string parent;  ///< empty for roots
  };

  void visit(const std::string& qname, std::deque<std::string>& queue) {
    const Node& node = graph_.nodes.at(qname);
    if (node.info.exempt) return;  // audited boundary: do not classify or descend
    for (const Op& op : node.info.ops) {
      classify(qname, op, &queue);
    }
  }

  void classify(const std::string& qname, const Op& op, std::deque<std::string>* queue) {
    if (op.allow_missing_reason) {
      add_finding(op, "allow-without-reason",
                  "HOTPATH_ALLOW grant without a reason string in " + qname +
                      " — every grant must say why the operation is safe");
      return;
    }
    if (op.kind == OpKind::kCall) {
      const std::vector<std::string> targets = resolve(graph_, op);
      if (!targets.empty()) {
        for (const std::string& target : targets) {
          if (queue != nullptr && reached_.emplace(target, Origin{reached_.at(qname).root, qname}).second) {
            queue->push_back(target);
          }
        }
        return;
      }
    }
    const std::string rule = rule_for(op);
    if (!rule.empty()) {
      if (allow_covers(op, rule)) return;  // audited line-level grant
      add_finding(op, rule,
                  describe_op(op) + " in " + qname + " — " + rule_blurb(rule) + chain_of(qname));
      return;
    }
    frontier_note(qname, op);
  }

  [[nodiscard]] std::string rule_for(const Op& op) const {
    switch (op.kind) {
      case OpKind::kNew:
      case OpKind::kDelete: return "heap-alloc";
      case OpKind::kThrow: return "throw-expr";
      case OpKind::kToken: {
        const auto it = token_rules().find(op.name);
        return it == token_rules().end() ? std::string{} : it->second;
      }
      case OpKind::kCall: break;
    }
    if (op.scoped && op.name == "now") return "nondeterministic-source";
    // `time(...)` as a member call is a project accessor, not ::time(2).
    if (op.member && op.name == "time") return {};
    const auto it = call_rules().find(op.name);
    return it == call_rules().end() ? std::string{} : it->second;
  }

  void frontier_note(const std::string& qname, const Op& op) {
    if (op.kind != OpKind::kCall) return;
    if (!op.member && graph_.callable_members.count(op.name) == 0) return;
    if (benign_members().count(op.name) != 0) return;
    std::string detail = "unresolved call";
    if (graph_.virtual_methods.count(op.name) != 0) detail = "virtual call with no visible override";
    if (graph_.callable_members.count(op.name) != 0) detail = "indirect call through std::function";
    add_note(op, "unresolved-call",
             describe_op(op) + " in " + qname + " — " + detail +
                 "; the walk cannot see past this frontier" + chain_of(qname));
  }

  [[nodiscard]] std::string rule_blurb(const std::string& rule) const {
    for (const auto& [id, description] : rule_catalogue()) {
      if (id == rule) return description;
    }
    return rule;
  }

  [[nodiscard]] std::string chain_of(const std::string& qname) const {
    std::vector<std::string> chain;
    std::string current = qname;
    while (true) {
      chain.push_back(current);
      const auto it = reached_.find(current);
      if (it == reached_.end() || it->second.parent.empty()) break;
      current = it->second.parent;
    }
    std::string out = " [reachable: ";
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (it != chain.rbegin()) out += " -> ";
      out += *it;
    }
    out += "]";
    return out;
  }

  void add_finding(const Op& op, const std::string& rule, const std::string& message) {
    lint::Finding f;
    f.file = op.file;
    f.line = op.line;
    f.check = "hotpath";
    f.rule = rule;
    f.message = message;
    f.text = op.text;
    result_.findings.push_back(std::move(f));
  }

  void add_note(const Op& op, const std::string& rule, const std::string& message) {
    lint::Finding f;
    f.file = op.file;
    f.line = op.line;
    f.check = "hotpath";
    f.rule = rule;
    f.message = message;
    f.text = op.text;
    result_.notes.push_back(std::move(f));
  }

  void audit_exempt_reasons() {
    for (const auto& [qname, node] : graph_.nodes) {
      if (!node.info.exempt || !node.info.exempt_reason.empty()) continue;
      lint::Finding f;
      f.file = node.info.file;
      f.line = node.info.line;
      f.check = "hotpath";
      f.rule = "exempt-without-reason";
      f.message = "HOT_PATH_EXEMPT on " + qname +
                  " carries no reason string — audited cold branches must say why";
      f.text = qname;
      result_.findings.push_back(std::move(f));
    }
  }

  /// Per-root cone for the reachable-set report (independent BFS so the
  /// report shows each root's full cone even where cones overlap).
  [[nodiscard]] std::pair<std::set<std::string>, std::set<std::string>> cone_of(
      const std::string& root) const {
    std::set<std::string> reached;
    std::set<std::string> boundaries;
    std::deque<std::string> queue{root};
    reached.insert(root);
    while (!queue.empty()) {
      const std::string current = queue.front();
      queue.pop_front();
      const Node& node = graph_.nodes.at(current);
      if (node.info.exempt) {
        boundaries.insert(current);
        continue;
      }
      for (const Op& op : node.info.ops) {
        if (op.kind != OpKind::kCall) continue;
        for (const std::string& target : resolve(graph_, op)) {
          if (reached.insert(target).second) queue.push_back(target);
        }
      }
    }
    for (const std::string& b : boundaries) reached.erase(b);
    return {reached, boundaries};
  }

  void build_report() {
    std::string& out = result_.reachable_report;
    out += "hot-path reachable-set report: " + std::to_string(roots_.size()) + " root(s)\n";
    for (const std::string& root : roots_) {
      const auto& [cone, boundaries] = per_root_.at(root);
      out += "root " + root + "\n";
      out += "  reaches " + std::to_string(cone.size()) + " function(s):\n";
      for (const std::string& fn : cone) out += "    " + fn + "\n";
      out += "  exempt boundaries (" + std::to_string(boundaries.size()) + "):\n";
      for (const std::string& fn : boundaries) {
        out += "    " + fn + " (" + graph_.nodes.at(fn).info.exempt_reason + ")\n";
      }
    }
  }

  static void sort_findings(std::vector<lint::Finding>& findings) {
    std::sort(findings.begin(), findings.end(),
              [](const lint::Finding& a, const lint::Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                if (a.rule != b.rule) return a.rule < b.rule;
                return a.message < b.message;
              });
    // Multiple ops on one line (one HOTPATH_ALLOW marker covers all of them)
    // can produce identical findings; report each site once.
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const lint::Finding& a, const lint::Finding& b) {
                                 return a.file == b.file && a.line == b.line &&
                                        a.rule == b.rule && a.message == b.message;
                               }),
                   findings.end());
  }

  Graph graph_;
  AnalyzeOptions options_;
  AnalyzeResult result_;
  std::vector<std::string> roots_;  ///< sorted (map iteration order)
  std::map<std::string, Origin> reached_;
  std::map<std::string, std::pair<std::set<std::string>, std::set<std::string>>> per_root_;
};

}  // namespace

const std::vector<std::pair<std::string, std::string>>& rule_catalogue() {
  static const std::vector<std::pair<std::string, std::string>> kCatalogue{
      {"heap-alloc", "heap allocation (new/delete, malloc family, allocating std helpers)"},
      {"container-growth", "container call that may reallocate or rehash"},
      {"lock", "mutex/CV acquisition or scoped-lock construction"},
      {"io", "I/O, logging, or formatting-stream traffic"},
      {"throw-expr", "throw expression or rethrow helper"},
      {"nondeterministic-source", "wall-clock or ambient-entropy source"},
      {"exempt-without-reason", "HOT_PATH_EXEMPT with no reason string"},
      {"allow-without-reason", "HOTPATH_ALLOW grant with no reason string"},
      {"unresolved-call", "informational: call the graph walk cannot resolve"},
  };
  return kCatalogue;
}

AnalyzeResult analyze(const std::vector<TuSummary>& summaries, const AnalyzeOptions& options) {
  return Analyzer{summaries, options}.run();
}

}  // namespace hotpath
