// Summarize pass — a syntactic C++ scanner that extracts, per file: function
// definitions/declarations with their scope-qualified names, the HOT_PATH /
// HOT_PATH_EXEMPT annotations they carry, and the effect-relevant operations
// (calls, new/delete/throw, lock & I/O tokens) inside each body.
//
// This is deliberately NOT a full C++ parser: it runs on the lint engine's
// comment/string-stripped text, tracks namespace/class scope by brace
// structure, and recognizes function definitions by the `name(params)
// {` shape (including ctor-init lists and trailing-return types). Constructs
// it cannot attribute (lambda objects invoked through locals, SmallCallback's
// type-erased ops table) surface at the link step as informational frontier
// notes rather than silent gaps. The JSON summary it emits is the contract: a
// Clang libTooling summarizer can replace this file without touching the
// link step.
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "model.hpp"

namespace hotpath {

namespace {

using lint::is_ident_char;
using lint::trim;

/// contains_token with BOTH boundaries checked (lint's version only checks
/// the left one, which would make "HOT_PATH" match "HOT_PATH_EXEMPT").
bool has_token(const std::string& text, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

bool is_keyword(const std::string& word) {
  static const std::set<std::string> kKeywords{
      "if",       "for",     "while",    "switch",  "return",   "sizeof",
      "alignof",  "alignas", "noexcept", "decltype", "catch",    "static_assert",
      "assert",   "defined", "new",      "delete",  "throw",    "case",
      "do",       "else",    "operator", "typeid",  "co_await", "co_return",
      "co_yield", "requires"};
  return kKeywords.count(word) != 0;
}

struct Scope {
  enum Kind { kNamespace, kClass, kBlock } kind{kBlock};
  std::string name;
};

/// Extracts the HOTPATH_ALLOW(rule[,rule]: reason) grant from a raw line.
struct AllowGrant {
  bool present{false};
  std::vector<std::string> rules;
  std::string reason;
};

AllowGrant parse_allow(const std::string& raw_line) {
  AllowGrant grant;
  const std::size_t pos = raw_line.find("HOTPATH_ALLOW(");
  if (pos == std::string::npos) return grant;
  grant.present = true;
  const std::size_t open = pos + std::string_view{"HOTPATH_ALLOW("}.size();
  const std::size_t close = raw_line.rfind(')');
  if (close == std::string::npos || close <= open) return grant;
  const std::string body = raw_line.substr(open, close - open);
  const std::size_t colon = body.find(':');
  const std::string rules = colon == std::string::npos ? body : body.substr(0, colon);
  if (colon != std::string::npos) grant.reason = trim(body.substr(colon + 1));
  std::size_t item = 0;
  while (item <= rules.size()) {
    std::size_t comma = rules.find(',', item);
    if (comma == std::string::npos) comma = rules.size();
    const std::string name = trim(rules.substr(item, comma - item));
    if (!name.empty()) grant.rules.push_back(name);
    item = comma + 1;
  }
  return grant;
}

/// Lock/IO/nondeterminism tokens flagged by presence alone (no call syntax):
/// scoped-lock constructions, stream objects, ambient clocks.
const std::vector<std::string>& effect_tokens() {
  static const std::vector<std::string> kTokens{
      // lock
      "LockGuard", "UniqueLock", "lock_guard", "unique_lock", "scoped_lock",
      "shared_lock", "condition_variable", "ConditionVariable",
      // io
      "cout", "cerr", "clog", "ifstream", "ofstream", "fstream", "stringstream",
      "ostringstream", "istringstream",
      // nondeterministic-source
      "random_device", "steady_clock", "system_clock", "high_resolution_clock"};
  return kTokens;
}

class Summarizer {
 public:
  explicit Summarizer(const lint::SourceFile& file) : file_{file} { summary_.file = file.path; }

  TuSummary run() {
    // Single flat loop over (li_, ci_): helpers (skip_balanced_braces,
    // preprocessor continuations) advance the cursor themselves, so no
    // per-line reference survives a position change.
    li_ = 0;
    ci_ = 0;
    while (li_ < file_.clean.size()) {
      if (ci_ == 0 && preprocessor_line()) {
        ++li_;
        continue;
      }
      const std::string& line = file_.clean[li_];
      if (ci_ >= line.size()) {
        ++li_;
        ci_ = 0;
        continue;
      }
      step(line);
      ++ci_;
    }
    return std::move(summary_);
  }

 private:
  // --- declaration scanning -------------------------------------------------

  void step(const std::string& line) {
    if (in_body_) {
      body_step(line);
      return;
    }
    const char c = line[ci_];
    if (decl_.empty() && !std::isspace(static_cast<unsigned char>(c))) decl_line_ = li_;
    if (c == '(') ++decl_paren_;
    if (c == ')' && decl_paren_ > 0) --decl_paren_;
    if (decl_paren_ > 0) {
      decl_ += c;
      if (c != ' ') last_significant_ = c;
      return;
    }
    if (c == ';') {
      end_declaration();
      return;
    }
    if (c == '}') {
      if (!scopes_.empty()) scopes_.pop_back();
      decl_.clear();
      return;
    }
    if (c == '{') {
      open_brace();
      return;
    }
    decl_ += c;
    if (!std::isspace(static_cast<unsigned char>(c))) last_significant_ = c;
  }

  /// A `{` at declaration scope: scope opener, function body, ctor-init
  /// group, or braced initializer.
  void open_brace(bool nested_init = false) {
    const std::string head = trim(decl_);
    if (!nested_init && has_token(head, "namespace")) {
      scopes_.push_back({Scope::kNamespace, namespace_name(head)});
      decl_.clear();
      return;
    }
    if (!nested_init && class_like(head)) {
      scopes_.push_back({Scope::kClass, class_name(head)});
      decl_.clear();
      return;
    }
    if (!nested_init && (has_token(head, "enum") || head == "extern \"\"")) {
      skip_balanced_braces();
      return;
    }
    std::string name = function_name(head);
    const bool ctor_init = !name.empty() && has_ctor_colon(head);
    if (!name.empty() && (!ctor_init || last_significant_ == ')' || last_significant_ == '}')) {
      begin_function(name, head);
      return;
    }
    // Braced initializer (possibly a ctor-init group): consume balanced and
    // keep accumulating the same declaration.
    skip_balanced_braces();
    last_significant_ = '}';
  }

  void end_declaration() {
    const std::string head = trim(decl_);
    decl_.clear();
    last_significant_ = ';';
    if (head.empty()) return;
    record_virtuals_and_callables(head);
    if (!has_token(head, "HOT_PATH") && !has_token(head, "HOT_PATH_EXEMPT")) return;
    const std::string name = function_name(head);
    if (name.empty()) return;
    FunctionInfo info;
    info.qname = qualify(name);
    info.file = file_.path;
    info.line = decl_line_ + 1;
    info.is_definition = false;
    apply_annotations(info, head);
    summary_.functions.push_back(std::move(info));
  }

  void record_virtuals_and_callables(const std::string& head) {
    if (has_token(head, "virtual") || head.find("= 0") != std::string::npos) {
      const std::string name = function_name(head);
      if (!name.empty()) summary_.virtual_methods.push_back(last_component(name));
    }
    if (head.find("std::function<") != std::string::npos && head.find('=') == std::string::npos) {
      // Member/global declaration `std::function<...> name;` — record the
      // declared name so calls through it surface as the indirect frontier.
      std::size_t end = head.size();
      while (end > 0 && !is_ident_char(head[end - 1])) --end;
      std::size_t begin = end;
      while (begin > 0 && is_ident_char(head[begin - 1])) --begin;
      if (end > begin) summary_.callable_members.push_back(head.substr(begin, end - begin));
    }
  }

  void apply_annotations(FunctionInfo& info, const std::string& head) {
    info.hot = has_token(head, "HOT_PATH");
    info.exempt = has_token(head, "HOT_PATH_EXEMPT");
    if (info.exempt) info.exempt_reason = exempt_reason_from_raw();
  }

  /// Pulls the string literal out of HOT_PATH_EXEMPT("...") on the raw lines
  /// of the current declaration (the clean text has literal contents
  /// stripped).
  std::string exempt_reason_from_raw() const {
    // The macro argument may span several lines and be split into adjacent
    // literals ("a" "b"); join the raw declaration lines from the macro's
    // opening parenthesis and concatenate every literal until it closes.
    std::string joined;
    bool found = false;
    for (std::size_t i = decl_line_; i <= li_ && i < file_.raw.size(); ++i) {
      const std::string& raw = file_.raw[i];
      if (!found) {
        const std::size_t pos = raw.find("HOT_PATH_EXEMPT(");
        if (pos == std::string::npos) continue;
        found = true;
        joined = raw.substr(pos + std::string_view{"HOT_PATH_EXEMPT("}.size());
      } else {
        joined += raw;
      }
      joined += ' ';
    }
    if (!found) return {};
    std::string reason;
    int depth = 1;
    for (std::size_t i = 0; i < joined.size() && depth > 0; ++i) {
      const char c = joined[i];
      if (c == '"') {
        ++i;
        while (i < joined.size() && joined[i] != '"') {
          if (joined[i] == '\\' && i + 1 < joined.size()) {
            reason += joined[i + 1];
            i += 2;
            continue;
          }
          reason += joined[i++];
        }
        continue;
      }
      if (c == '(') ++depth;
      if (c == ')') --depth;
    }
    return reason;
  }

  // --- scope/name helpers ---------------------------------------------------

  static std::string namespace_name(const std::string& head) {
    const std::size_t kw = head.rfind("namespace");
    std::string name = trim(head.substr(kw + std::string_view{"namespace"}.size()));
    // Anonymous namespaces contribute no scope component.
    std::string out;
    for (const char c : name) {
      if (is_ident_char(c) || c == ':') out += c;
    }
    return out;
  }

  static bool class_like(const std::string& head) {
    if (!(has_token(head, "class") || has_token(head, "struct") || has_token(head, "union"))) {
      return false;
    }
    // `enum class` opens no member scope; a `(` before the keyword means the
    // keyword sits inside a parameter list (elaborated type), not a
    // definition head.
    return !has_token(head, "enum");
  }

  static std::string class_name(const std::string& head) {
    std::size_t kw = std::string::npos;
    for (const char* key : {"class", "struct", "union"}) {
      std::size_t pos = 0;
      const std::size_t len = std::string_view{key}.size();
      while ((pos = head.find(key, pos)) != std::string::npos) {
        const bool left = pos == 0 || !is_ident_char(head[pos - 1]);
        const bool right = pos + len >= head.size() || !is_ident_char(head[pos + len]);
        if (left && right) {
          kw = pos + len;
          break;
        }
        pos += len;
      }
      if (kw != std::string::npos) break;
    }
    if (kw == std::string::npos) return {};
    std::string tail = head.substr(kw);
    // Cut the base-clause at a ':' that is not part of '::'.
    for (std::size_t i = 0; i + 1 <= tail.size(); ++i) {
      if (tail[i] != ':') continue;
      const bool scoped = (i + 1 < tail.size() && tail[i + 1] == ':') || (i > 0 && tail[i - 1] == ':');
      if (!scoped) {
        tail = tail.substr(0, i);
        break;
      }
    }
    // The name is the last identifier not immediately followed by '(' (skips
    // attribute macros like TS_CAPABILITY("mutex")) and not `final`.
    std::string name;
    std::size_t i = 0;
    while (i < tail.size()) {
      if (!is_ident_char(tail[i])) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < tail.size() && is_ident_char(tail[end])) ++end;
      std::size_t after = end;
      while (after < tail.size() && tail[after] == ' ') ++after;
      const std::string word = tail.substr(i, end - i);
      const bool macro_like = after < tail.size() && tail[after] == '(';
      if (!macro_like && word != "final" && word != "alignas") name = word;
      if (macro_like || word == "alignas") {
        // Skip the attached (...) group.
        int depth = 0;
        while (after < tail.size()) {
          if (tail[after] == '(') ++depth;
          if (tail[after] == ')' && --depth == 0) break;
          ++after;
        }
        end = after;
      }
      i = end + 1;
    }
    return name;
  }

  /// True for ALL_CAPS identifiers — attribute/annotation macros in this
  /// codebase (TS_REQUIRES, HOT_PATH_EXEMPT) that must not be mistaken for
  /// function names.
  static bool macro_cased(const std::string& word) {
    if (word.size() < 2) return false;
    bool has_alpha = false;
    for (const char c : word) {
      if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
      if (std::isalpha(static_cast<unsigned char>(c)) != 0) has_alpha = true;
    }
    return has_alpha;
  }

  /// The (possibly qualified) name of the function a declaration head
  /// declares, or "" when the head is not function-shaped. Scans for the last
  /// top-level (...) group preceded by a plausible identifier.
  static std::string function_name(const std::string& head) {
    if (class_like(head) || has_token(head, "namespace")) return {};
    int angle = 0;
    int paren = 0;
    std::string best;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '<' && i > 0 && (is_ident_char(head[i - 1]) || head[i - 1] == ' ')) ++angle;
      if (c == '>' && angle > 0 && (i == 0 || head[i - 1] != '-')) --angle;
      if (c == '(') {
        if (paren == 0 && angle == 0) {
          const std::string name = identifier_before(head, i);
          const bool op_name = name.empty() || last_component(name) == "operator";
          if (op_name) {
            // `operator<(...)` / `operator()(...)`: the symbols between the
            // keyword and the paren group are part of the name.
            const std::string op = operator_name(head, i);
            if (!op.empty()) best = op;
          } else if (!is_keyword(name) && !macro_cased(last_component(name))) {
            best = name;
          }
        }
        ++paren;
      }
      if (c == ')' && paren > 0) --paren;
    }
    return best;
  }

  /// Walks back over an identifier / qualified-id / destructor name ending
  /// just before position `pos`.
  static std::string identifier_before(const std::string& head, std::size_t pos) {
    std::size_t end = pos;
    while (end > 0 && head[end - 1] == ' ') --end;
    std::size_t begin = end;
    while (begin > 0) {
      const char c = head[begin - 1];
      if (is_ident_char(c) || c == '~') {
        --begin;
      } else if (c == ':' && begin >= 2 && head[begin - 2] == ':') {
        begin -= 2;
      } else {
        break;
      }
    }
    if (begin == end) return {};
    const std::string name = head.substr(begin, end - begin);
    // Reject pure scope (":...") artifacts and names starting with a digit.
    if (name.front() == ':' || std::isdigit(static_cast<unsigned char>(name.front())) != 0) {
      return {};
    }
    // An `operator` token directly before the identifier means this is a
    // conversion/operator name; report it via operator_name instead.
    return name;
  }

  static std::string operator_name(const std::string& head, std::size_t paren) {
    const std::size_t kw = head.rfind("operator", paren);
    if (kw == std::string::npos) return {};
    return "operator" + trim(head.substr(kw + std::string_view{"operator"}.size(),
                                         paren - kw - std::string_view{"operator"}.size()));
  }

  static bool has_ctor_colon(const std::string& head) {
    // A ':' at top level after the parameter list, not part of '::'.
    int paren = 0;
    bool past_params = false;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '(') ++paren;
      if (c == ')') {
        if (--paren == 0) past_params = true;
        continue;
      }
      if (!past_params || paren != 0) continue;
      if (c == ':') {
        const bool scoped =
            (i + 1 < head.size() && head[i + 1] == ':') || (i > 0 && head[i - 1] == ':');
        if (!scoped) return true;
        ++i;  // skip the second ':' of '::'
      }
    }
    return false;
  }

  std::string qualify(const std::string& name) const {
    std::string qname;
    for (const Scope& scope : scopes_) {
      if (scope.kind == Scope::kBlock || scope.name.empty()) continue;
      qname += scope.name;
      qname += "::";
    }
    return qname + name;
  }

  static std::string last_component(const std::string& qname) {
    const std::size_t pos = qname.rfind("::");
    return pos == std::string::npos ? qname : qname.substr(pos + 2);
  }

  // --- function bodies ------------------------------------------------------

  void begin_function(const std::string& name, const std::string& head) {
    current_ = FunctionInfo{};
    current_.qname = qualify(name);
    current_.file = file_.path;
    current_.line = decl_line_ + 1;
    current_.is_definition = true;
    apply_annotations(current_, head);
    record_virtuals_and_callables(head);
    decl_.clear();
    in_body_ = true;
    body_depth_ = 1;
  }

  void body_step(const std::string& line) {
    const char c = line[ci_];
    if (c == '{') {
      ++body_depth_;
      return;
    }
    if (c == '}') {
      if (--body_depth_ == 0) {
        summary_.functions.push_back(std::move(current_));
        in_body_ = false;
        decl_.clear();
        last_significant_ = '}';
      }
      return;
    }
    if (is_ident_char(c) && (ci_ == 0 || !is_ident_char(line[ci_ - 1]))) {
      scan_word(line);
    }
  }

  /// Identifier starting at ci_: record calls and new/delete/throw.
  void scan_word(const std::string& line) {
    std::size_t end = ci_;
    while (end < line.size() && is_ident_char(line[end])) ++end;
    const std::string word = line.substr(ci_, end - ci_);
    std::size_t after = end;
    while (after < line.size() && line[after] == ' ') ++after;

    if (word == "new") {
      // Placement new (`new (addr) T`) constructs in existing storage.
      if (after >= line.size() || line[after] != '(') add_op(OpKind::kNew, word);
    } else if (word == "delete") {
      const std::size_t before = prev_significant(line, ci_);
      if (before == std::string::npos || line[before] != '=') add_op(OpKind::kDelete, word);
    } else if (word == "throw") {
      add_op(OpKind::kThrow, word);
    } else if (after < line.size() && line[after] == '(' && !is_keyword(word)) {
      record_call(line, word);
    } else {
      maybe_effect_token(word);
    }
    ci_ = end - 1;
  }

  void maybe_effect_token(const std::string& word) {
    for (const std::string& token : effect_tokens()) {
      if (word == token) {
        add_op(OpKind::kToken, word);
        return;
      }
    }
  }

  void record_call(const std::string& line, const std::string& word) {
    Op op;
    op.kind = OpKind::kCall;
    op.name = word;
    const std::size_t before = prev_significant(line, ci_);
    if (before != std::string::npos) {
      const char c = line[before];
      if (c == '.' || (c == '>' && before > 0 && line[before - 1] == '-')) {
        op.member = true;
      } else if (c == ':' && before > 0 && line[before - 1] == ':') {
        op.scoped = true;
        std::size_t qend = before - 1;
        std::size_t qbegin = qend;
        while (qbegin > 0 && is_ident_char(line[qbegin - 1])) --qbegin;
        if (qend > qbegin) op.qualifier = line.substr(qbegin, qend - qbegin);
      }
    }
    finish_op(std::move(op));
  }

  void add_op(OpKind kind, const std::string& name) {
    Op op;
    op.kind = kind;
    op.name = name;
    finish_op(std::move(op));
  }

  void finish_op(Op op) {
    op.file = file_.path;
    op.line = li_ + 1;
    op.text = trim(file_.raw[li_]);
    AllowGrant grant = parse_allow(file_.raw[li_]);
    if (!grant.present && li_ > 0) grant = parse_allow(file_.raw[li_ - 1]);
    if (grant.present) {
      op.allowed_rules = grant.rules;
      op.allow_reason = grant.reason;
      op.allow_missing_reason = grant.reason.empty();
    }
    current_.ops.push_back(std::move(op));
  }

  static std::size_t prev_significant(const std::string& line, std::size_t pos) {
    while (pos > 0) {
      --pos;
      if (line[pos] != ' ') return pos;
    }
    return std::string::npos;
  }

  // --- structure helpers ----------------------------------------------------

  /// Consumes a balanced {...} group starting at the current '{', leaving
  /// the cursor on the closing '}' (or at EOF for unbalanced input).
  void skip_balanced_braces() {
    int depth = 0;
    while (li_ < file_.clean.size()) {
      const std::string& line = file_.clean[li_];
      if (ci_ >= line.size()) {
        ++li_;
        ci_ = 0;
        continue;
      }
      const char c = line[ci_];
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth <= 0) return;
      }
      ++ci_;
    }
  }

  bool preprocessor_line() {
    if (!preprocessor_line_at(li_)) return false;
    // Honor line continuations so multi-line macros stay opaque.
    while (li_ < file_.raw.size() && !file_.raw[li_].empty() && file_.raw[li_].back() == '\\') {
      ++li_;
    }
    return true;
  }

  bool preprocessor_line_at(std::size_t index) const {
    const std::string t = trim(file_.clean[index]);
    return !t.empty() && t[0] == '#';
  }

  const lint::SourceFile& file_;
  TuSummary summary_;
  std::size_t li_{0};
  std::size_t ci_{0};

  std::vector<Scope> scopes_;
  std::string decl_;
  std::size_t decl_line_{0};
  int decl_paren_{0};
  char last_significant_{';'};

  bool in_body_{false};
  int body_depth_{0};
  FunctionInfo current_;
};

}  // namespace

TuSummary summarize(const lint::SourceFile& file) { return Summarizer{file}.run(); }

}  // namespace hotpath
