// toposense_hotpath — hot-path purity analyzer for the TopoSense simulator.
// Proves the event datapath reachable from HOT_PATH roots stays allocation-,
// lock-, I/O-, throw-, and wall-clock-free. See docs/static-analysis.md
// ("Hot-path purity analyzer") for the rule catalogue and workflow.
//
// Usage:
//   toposense_hotpath [options] <file-or-dir>...
//     --summarize --out FILE   summarize pass only: write per-TU JSON summaries
//     --summaries FILE         link pre-built summaries (repeatable)
//     --compile-commands FILE  add the TUs listed in a compile_commands.json
//     --baseline FILE          grandfathered findings; only new ones fail
//     --write-baseline FILE    write all current findings as the new baseline
//     --sarif FILE             also emit SARIF 2.1.0 (notes included)
//     --reachable              print the per-root reachable-set report
//     --drop-root NAME         ignore HOT_PATH on NAME (repeatable; testing)
//     --notes                  print informational frontier notes
//     --list-rules             print the rule catalogue and exit
//
// Exit: 0 clean (no non-baseline findings), 1 new findings, 2 usage/IO error.
// Informational notes never gate. Run from the repository root so paths (and
// baseline keys) are stable.
//
// Two-pass shape: parsed files are serialized to the JSON summary format and
// re-parsed before linking even in single-process mode, so the wire contract
// between the passes is exercised on every run.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "engine.hpp"
#include "model.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace {

struct Options {
  std::vector<fs::path> roots;
  std::vector<std::string> summary_paths;
  std::string compile_commands_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string out_path;
  bool summarize_only{false};
  bool reachable{false};
  bool notes{false};
  bool list_rules{false};
  hotpath::AnalyzeOptions analyze;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--summarize --out FILE] [--summaries FILE]...\n"
               "           [--compile-commands FILE] [--baseline FILE]\n"
               "           [--write-baseline FILE] [--sarif FILE] [--reachable]\n"
               "           [--drop-root NAME]... [--notes] [--list-rules]\n"
               "           <file-or-dir>...\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    if (arg == "--summarize") {
      opts.summarize_only = true;
    } else if (arg == "--out") {
      if (!value(opts.out_path)) return false;
    } else if (arg == "--summaries") {
      std::string path;
      if (!value(path)) return false;
      opts.summary_paths.push_back(path);
    } else if (arg == "--compile-commands") {
      if (!value(opts.compile_commands_path)) return false;
    } else if (arg == "--baseline") {
      if (!value(opts.baseline_path)) return false;
    } else if (arg == "--write-baseline") {
      if (!value(opts.write_baseline_path)) return false;
    } else if (arg == "--sarif") {
      if (!value(opts.sarif_path)) return false;
    } else if (arg == "--reachable") {
      opts.reachable = true;
    } else if (arg == "--notes") {
      opts.notes = true;
    } else if (arg == "--drop-root") {
      std::string name;
      if (!value(name)) return false;
      opts.analyze.drop_roots.push_back(name);
    } else if (arg == "--list-rules") {
      opts.list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      opts.roots.emplace_back(arg);
    }
  }
  if (opts.summarize_only && opts.out_path.empty()) return false;
  return opts.list_rules || !opts.roots.empty() || !opts.summary_paths.empty() ||
         !opts.compile_commands_path.empty();
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage(argv[0]);

  if (opts.list_rules) {
    for (const auto& [id, description] : hotpath::rule_catalogue()) {
      std::printf("%-24s %s\n", id.c_str(), description.c_str());
    }
    return 0;
  }

  try {
    std::vector<fs::path> paths;
    for (const fs::path& root : opts.roots) {
      std::error_code ec;
      if (fs::is_directory(root, ec)) {
        for (const auto& entry : fs::recursive_directory_iterator(root)) {
          if (entry.is_regular_file() && lint::lintable(entry.path())) {
            paths.push_back(entry.path());
          }
        }
      } else if (fs::is_regular_file(root, ec)) {
        paths.push_back(root);
      } else {
        std::fprintf(stderr, "error: cannot read '%s'\n", root.string().c_str());
        return 2;
      }
    }
    if (!opts.compile_commands_path.empty()) {
      for (const std::string& file :
           hotpath::compile_commands_files(slurp(opts.compile_commands_path))) {
        std::error_code ec;
        const fs::path p = fs::proximate(file, ec);
        if (!ec && fs::is_regular_file(p) && lint::lintable(p)) paths.push_back(p);
      }
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    // Summarize pass over freshly parsed files.
    std::vector<hotpath::TuSummary> parsed;
    parsed.reserve(paths.size());
    for (const fs::path& p : paths) parsed.push_back(hotpath::summarize(lint::load_file(p)));

    if (opts.summarize_only) {
      std::ofstream out{opts.out_path};
      if (!out) throw std::runtime_error("cannot write '" + opts.out_path + "'");
      out << hotpath::summaries_to_json(parsed);
      std::printf("toposense_hotpath: summarized %zu file(s) to %s\n", parsed.size(),
                  opts.out_path.c_str());
      return 0;
    }

    // Link pass: round-trip the in-process summaries through the JSON wire
    // format, then merge in any pre-built summary files.
    std::vector<hotpath::TuSummary> summaries =
        hotpath::summaries_from_json(hotpath::summaries_to_json(parsed));
    for (const std::string& path : opts.summary_paths) {
      std::vector<hotpath::TuSummary> loaded = hotpath::summaries_from_json(slurp(path));
      summaries.insert(summaries.end(), std::make_move_iterator(loaded.begin()),
                       std::make_move_iterator(loaded.end()));
    }

    const hotpath::AnalyzeResult result = hotpath::analyze(summaries, opts.analyze);

    if (opts.reachable) std::fputs(result.reachable_report.c_str(), stdout);

    if (!opts.write_baseline_path.empty()) {
      lint::Baseline::write(opts.write_baseline_path, result.findings);
      std::printf("toposense_hotpath: wrote %zu baseline entr%s to %s\n", result.findings.size(),
                  result.findings.size() == 1 ? "y" : "ies", opts.write_baseline_path.c_str());
      return 0;
    }

    std::vector<lint::Finding> baselined;
    std::vector<lint::Finding> fresh;
    if (!opts.baseline_path.empty()) {
      const lint::Baseline baseline = lint::Baseline::load(opts.baseline_path);
      baseline.partition(result.findings, baselined, fresh);
    } else {
      fresh = result.findings;
    }

    for (const lint::Finding& f : fresh) {
      std::printf("%s:%zu: [%s/%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                  f.rule.c_str(), f.message.c_str());
    }
    if (opts.notes) {
      for (const lint::Finding& f : result.notes) {
        std::printf("%s:%zu: note: [%s/%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                    f.rule.c_str(), f.message.c_str());
      }
    }
    if (!opts.sarif_path.empty()) {
      std::vector<lint::SarifRule> rules;
      for (const auto& [id, description] : hotpath::rule_catalogue()) {
        rules.push_back({id, description});
      }
      lint::write_sarif(opts.sarif_path, "toposense_hotpath", rules, baselined, fresh,
                        result.notes);
    }

    if (!fresh.empty()) {
      std::printf(
          "toposense_hotpath: %zu new finding(s), %zu baselined, %zu note(s), "
          "%zu root(s), %zu reachable function(s)\n",
          fresh.size(), baselined.size(), result.notes.size(), result.root_count,
          result.reached_count);
      return 1;
    }
    std::printf(
        "toposense_hotpath: clean (%zu baselined, %zu note(s), %zu root(s), "
        "%zu reachable function(s))\n",
        baselined.size(), result.notes.size(), result.root_count, result.reached_count);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
