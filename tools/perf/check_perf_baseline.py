#!/usr/bin/env python3
"""Compare a fresh bench JSON against its committed baseline.

Usage: check_perf_baseline.py CANDIDATE BASELINE [THRESHOLD]

Handles both bench shapes:
  * BENCH_e2e.json — one top-level case (events_per_sec + fingerprint).
  * BENCH_scale.json — a "cases" array (star_fanout, tiered_closed_loop, ...)
    plus an optional seed "sweep"; every case named in the baseline is gated
    and must also report deterministic=true.

Fails (exit 1) when any gated case has:
  * events_per_sec below baseline/THRESHOLD (default 2.0 — generous on
    purpose: CI runners are noisy and differ from the machine that recorded
    the baseline, so this gates algorithmic regressions, not percent-level
    drift), or
  * a different fingerprint. Fingerprints are machine-independent, so they
    are compared exactly; an intentional behaviour change must re-record the
    baseline (see docs/benchmarking.md), or
  * deterministic=false (scale cases run twice; the two fingerprints must
    agree).

A baseline case may set "gate": "determinism" to skip the exact-fingerprint
pin while keeping the determinism and throughput gates. The multi-shard star
cases (star_sharded_2/4) use this: their fingerprints hash a partitioned
topology whose shape is a bench implementation detail, so re-partitioning is
not a behaviour change — but every run must still be bit-identical across
thread counts, and the 1-shard case stays exactly pinned (it must reduce to
star_fanout, which bench_runner itself asserts).

Both files must agree on "quick" mode — quick and full workloads are never
comparable.

When the candidate's "host" metadata reports hardware_concurrency == 1 the
throughput floors are skipped entirely (a 1-core runner cannot meaningfully
reproduce a parallel baseline); fingerprint and determinism gates still apply
because they are machine-independent.
"""

import json
import sys


def gate_case(label, candidate, baseline, threshold, failures, skip_throughput=False):
    """Gates one case dict (fingerprint, throughput, determinism)."""
    cand_fp = candidate.get("fingerprint")
    base_fp = baseline.get("fingerprint")
    exact_fingerprint = baseline.get("gate", "exact") != "determinism"
    if exact_fingerprint and cand_fp != base_fp:
        failures.append(
            f"{label}: fingerprint changed: {cand_fp} vs baseline {base_fp} — "
            "behaviour changed; if intentional, re-record the baseline"
        )
    if candidate.get("deterministic") is False:
        failures.append(f"{label}: run is not deterministic (re-run fingerprint differs)")
    base_eps = float(baseline["events_per_sec"])
    cand_eps = float(candidate["events_per_sec"])
    floor = base_eps / threshold
    if skip_throughput:
        print(
            f"perf gate [{label}]: {cand_eps / 1e6:.2f}M events/s "
            f"(floor skipped: 1-core host), fingerprint {cand_fp}"
        )
        return
    if cand_eps < floor:
        failures.append(
            f"{label}: throughput regression: {cand_eps:.0f} events/s is below "
            f"{floor:.0f} (baseline {base_eps:.0f} / threshold {threshold:g})"
        )
    print(
        f"perf gate [{label}]: {cand_eps / 1e6:.2f}M events/s "
        f"(baseline {base_eps / 1e6:.2f}M, floor {floor / 1e6:.2f}M), "
        f"fingerprint {cand_fp}"
    )


def report_informational(label, candidate):
    """Prints the ungated per-case metrics (peak RSS, fluid event reduction).

    These are recorded for the perf trajectory, not gated: RSS depends on the
    allocator and host, and the event-reduction factor is already enforced by
    bench_runner itself (hard 20x floor on the star_fluid case).
    """
    extras = []
    if "peak_rss_bytes" in candidate:
        extras.append(f"peak_rss={int(candidate['peak_rss_bytes']) / 1e6:.0f}MB")
    if "event_reduction" in candidate:
        extras.append(f"event_reduction={candidate['event_reduction']:.1f}x")
    if extras:
        print(f"perf info [{label}]: {' '.join(extras)}")


def main() -> int:
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        candidate = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    threshold = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    failures = []
    if candidate.get("quick") != baseline.get("quick"):
        failures.append(
            f"mode mismatch: candidate quick={candidate.get('quick')} "
            f"vs baseline quick={baseline.get('quick')}"
        )

    # The scale bench records the runner's core count; on a 1-core host the
    # throughput floor compares apples to oranges (the baseline was recorded
    # with real parallelism), so only the determinism and fingerprint gates
    # apply there — those are machine-independent.
    host = candidate.get("host") or {}
    one_core = host.get("hardware_concurrency") == 1
    if one_core:
        print("perf gate: candidate host reports hardware_concurrency=1 — "
              "skipping throughput floors, keeping fingerprint/determinism gates")

    if "cases" in baseline:
        # Scale tier: gate every case the baseline pins, by name.
        cand_cases = {c.get("name"): c for c in candidate.get("cases", [])}
        for base_case in baseline["cases"]:
            name = base_case.get("name")
            cand_case = cand_cases.get(name)
            if cand_case is None:
                failures.append(f"{name}: case missing from candidate")
                continue
            gate_case(name, cand_case, base_case, threshold, failures,
                      skip_throughput=one_core)
            report_informational(name, cand_case)
        base_sweep = baseline.get("sweep")
        cand_sweep = candidate.get("sweep")
        if base_sweep is not None:
            if cand_sweep is None:
                failures.append("sweep: missing from candidate")
            else:
                if cand_sweep.get("deterministic") is False:
                    failures.append("sweep: run is not deterministic")
                base_fps = {r["seed"]: r["fingerprint"] for r in base_sweep.get("results", [])}
                cand_fps = {r["seed"]: r["fingerprint"] for r in cand_sweep.get("results", [])}
                for seed, fp in base_fps.items():
                    if cand_fps.get(seed) != fp:
                        failures.append(
                            f"sweep seed {seed}: fingerprint changed: "
                            f"{cand_fps.get(seed)} vs baseline {fp}"
                        )
                print(
                    f"perf gate [sweep]: {len(base_fps)} seed fingerprints compared, "
                    f"deterministic={cand_sweep.get('deterministic')}"
                )
    else:
        gate_case("e2e", candidate, baseline, threshold, failures)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
