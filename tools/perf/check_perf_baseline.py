#!/usr/bin/env python3
"""Compare a fresh BENCH_e2e.json against the committed baseline.

Usage: check_perf_baseline.py CANDIDATE BASELINE [THRESHOLD]

Fails (exit 1) when either:
  * the candidate's events_per_sec is below baseline/THRESHOLD (default 2.0
    — generous on purpose: CI runners are noisy and differ from the machine
    that recorded the baseline, so this gates algorithmic regressions, not
    percent-level drift), or
  * the fingerprint differs. The fingerprint is machine-independent, so it
    is compared exactly; an intentional behaviour change must re-record the
    baseline (see docs/benchmarking.md).

Both files must agree on "quick" mode — quick and full workloads are never
comparable.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        candidate = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    threshold = float(sys.argv[3]) if len(sys.argv) == 4 else 2.0

    failures = []
    if candidate.get("quick") != baseline.get("quick"):
        failures.append(
            f"mode mismatch: candidate quick={candidate.get('quick')} "
            f"vs baseline quick={baseline.get('quick')}"
        )
    if candidate.get("fingerprint") != baseline.get("fingerprint"):
        failures.append(
            f"fingerprint changed: {candidate.get('fingerprint')} "
            f"vs baseline {baseline.get('fingerprint')} — behaviour changed; "
            "if intentional, re-record bench/baselines/e2e_quick_baseline.json"
        )
    base_eps = float(baseline["events_per_sec"])
    cand_eps = float(candidate["events_per_sec"])
    floor = base_eps / threshold
    if cand_eps < floor:
        failures.append(
            f"throughput regression: {cand_eps:.0f} events/s is below "
            f"{floor:.0f} (baseline {base_eps:.0f} / threshold {threshold:g})"
        )

    print(
        f"perf smoke: {cand_eps / 1e6:.2f}M events/s "
        f"(baseline {base_eps / 1e6:.2f}M, floor {floor / 1e6:.2f}M), "
        f"fingerprint {candidate.get('fingerprint')}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
