# Empty dependencies file for tsim_scenarios.
# This may be replaced when dependencies are built.
