file(REMOVE_RECURSE
  "libtsim_scenarios.a"
)
