file(REMOVE_RECURSE
  "CMakeFiles/tsim_scenarios.dir/scenario.cpp.o"
  "CMakeFiles/tsim_scenarios.dir/scenario.cpp.o.d"
  "CMakeFiles/tsim_scenarios.dir/topology_file.cpp.o"
  "CMakeFiles/tsim_scenarios.dir/topology_file.cpp.o.d"
  "libtsim_scenarios.a"
  "libtsim_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
