file(REMOVE_RECURSE
  "libtsim_baseline.a"
)
