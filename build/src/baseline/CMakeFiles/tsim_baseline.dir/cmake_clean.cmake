file(REMOVE_RECURSE
  "CMakeFiles/tsim_baseline.dir/receiver_driven.cpp.o"
  "CMakeFiles/tsim_baseline.dir/receiver_driven.cpp.o.d"
  "libtsim_baseline.a"
  "libtsim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
