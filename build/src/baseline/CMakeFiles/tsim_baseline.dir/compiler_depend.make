# Empty compiler generated dependencies file for tsim_baseline.
# This may be replaced when dependencies are built.
