# Empty dependencies file for tsim_transport.
# This may be replaced when dependencies are built.
