file(REMOVE_RECURSE
  "CMakeFiles/tsim_transport.dir/demux.cpp.o"
  "CMakeFiles/tsim_transport.dir/demux.cpp.o.d"
  "CMakeFiles/tsim_transport.dir/receiver_endpoint.cpp.o"
  "CMakeFiles/tsim_transport.dir/receiver_endpoint.cpp.o.d"
  "CMakeFiles/tsim_transport.dir/tcp_flow.cpp.o"
  "CMakeFiles/tsim_transport.dir/tcp_flow.cpp.o.d"
  "libtsim_transport.a"
  "libtsim_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
