file(REMOVE_RECURSE
  "libtsim_transport.a"
)
