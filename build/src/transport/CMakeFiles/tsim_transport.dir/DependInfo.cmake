
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/demux.cpp" "src/transport/CMakeFiles/tsim_transport.dir/demux.cpp.o" "gcc" "src/transport/CMakeFiles/tsim_transport.dir/demux.cpp.o.d"
  "/root/repo/src/transport/receiver_endpoint.cpp" "src/transport/CMakeFiles/tsim_transport.dir/receiver_endpoint.cpp.o" "gcc" "src/transport/CMakeFiles/tsim_transport.dir/receiver_endpoint.cpp.o.d"
  "/root/repo/src/transport/tcp_flow.cpp" "src/transport/CMakeFiles/tsim_transport.dir/tcp_flow.cpp.o" "gcc" "src/transport/CMakeFiles/tsim_transport.dir/tcp_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcast/CMakeFiles/tsim_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
