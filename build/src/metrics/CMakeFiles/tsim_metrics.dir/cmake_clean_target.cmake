file(REMOVE_RECURSE
  "libtsim_metrics.a"
)
