file(REMOVE_RECURSE
  "CMakeFiles/tsim_metrics.dir/fairness.cpp.o"
  "CMakeFiles/tsim_metrics.dir/fairness.cpp.o.d"
  "CMakeFiles/tsim_metrics.dir/sampler.cpp.o"
  "CMakeFiles/tsim_metrics.dir/sampler.cpp.o.d"
  "CMakeFiles/tsim_metrics.dir/subscription_metrics.cpp.o"
  "CMakeFiles/tsim_metrics.dir/subscription_metrics.cpp.o.d"
  "CMakeFiles/tsim_metrics.dir/trace_writer.cpp.o"
  "CMakeFiles/tsim_metrics.dir/trace_writer.cpp.o.d"
  "libtsim_metrics.a"
  "libtsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
