
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/fairness.cpp" "src/metrics/CMakeFiles/tsim_metrics.dir/fairness.cpp.o" "gcc" "src/metrics/CMakeFiles/tsim_metrics.dir/fairness.cpp.o.d"
  "/root/repo/src/metrics/sampler.cpp" "src/metrics/CMakeFiles/tsim_metrics.dir/sampler.cpp.o" "gcc" "src/metrics/CMakeFiles/tsim_metrics.dir/sampler.cpp.o.d"
  "/root/repo/src/metrics/subscription_metrics.cpp" "src/metrics/CMakeFiles/tsim_metrics.dir/subscription_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/tsim_metrics.dir/subscription_metrics.cpp.o.d"
  "/root/repo/src/metrics/trace_writer.cpp" "src/metrics/CMakeFiles/tsim_metrics.dir/trace_writer.cpp.o" "gcc" "src/metrics/CMakeFiles/tsim_metrics.dir/trace_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
