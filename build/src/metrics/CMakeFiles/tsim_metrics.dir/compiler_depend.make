# Empty compiler generated dependencies file for tsim_metrics.
# This may be replaced when dependencies are built.
