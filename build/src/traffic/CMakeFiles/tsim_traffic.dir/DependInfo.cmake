
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/cross_traffic.cpp" "src/traffic/CMakeFiles/tsim_traffic.dir/cross_traffic.cpp.o" "gcc" "src/traffic/CMakeFiles/tsim_traffic.dir/cross_traffic.cpp.o.d"
  "/root/repo/src/traffic/layer_spec.cpp" "src/traffic/CMakeFiles/tsim_traffic.dir/layer_spec.cpp.o" "gcc" "src/traffic/CMakeFiles/tsim_traffic.dir/layer_spec.cpp.o.d"
  "/root/repo/src/traffic/layered_source.cpp" "src/traffic/CMakeFiles/tsim_traffic.dir/layered_source.cpp.o" "gcc" "src/traffic/CMakeFiles/tsim_traffic.dir/layered_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
