file(REMOVE_RECURSE
  "libtsim_traffic.a"
)
