file(REMOVE_RECURSE
  "CMakeFiles/tsim_traffic.dir/cross_traffic.cpp.o"
  "CMakeFiles/tsim_traffic.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/tsim_traffic.dir/layer_spec.cpp.o"
  "CMakeFiles/tsim_traffic.dir/layer_spec.cpp.o.d"
  "CMakeFiles/tsim_traffic.dir/layered_source.cpp.o"
  "CMakeFiles/tsim_traffic.dir/layered_source.cpp.o.d"
  "libtsim_traffic.a"
  "libtsim_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
