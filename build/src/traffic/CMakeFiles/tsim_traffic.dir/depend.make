# Empty dependencies file for tsim_traffic.
# This may be replaced when dependencies are built.
