file(REMOVE_RECURSE
  "libtsim_mcast.a"
)
