file(REMOVE_RECURSE
  "CMakeFiles/tsim_mcast.dir/multicast_router.cpp.o"
  "CMakeFiles/tsim_mcast.dir/multicast_router.cpp.o.d"
  "libtsim_mcast.a"
  "libtsim_mcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_mcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
