# Empty compiler generated dependencies file for tsim_mcast.
# This may be replaced when dependencies are built.
