file(REMOVE_RECURSE
  "CMakeFiles/tsim_topo.dir/discovery.cpp.o"
  "CMakeFiles/tsim_topo.dir/discovery.cpp.o.d"
  "CMakeFiles/tsim_topo.dir/mtrace.cpp.o"
  "CMakeFiles/tsim_topo.dir/mtrace.cpp.o.d"
  "libtsim_topo.a"
  "libtsim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
