# Empty dependencies file for tsim_topo.
# This may be replaced when dependencies are built.
