file(REMOVE_RECURSE
  "libtsim_topo.a"
)
