file(REMOVE_RECURSE
  "libtsim_net.a"
)
