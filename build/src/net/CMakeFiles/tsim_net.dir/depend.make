# Empty dependencies file for tsim_net.
# This may be replaced when dependencies are built.
