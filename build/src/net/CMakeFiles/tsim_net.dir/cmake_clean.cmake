file(REMOVE_RECURSE
  "CMakeFiles/tsim_net.dir/dot_export.cpp.o"
  "CMakeFiles/tsim_net.dir/dot_export.cpp.o.d"
  "CMakeFiles/tsim_net.dir/link.cpp.o"
  "CMakeFiles/tsim_net.dir/link.cpp.o.d"
  "CMakeFiles/tsim_net.dir/network.cpp.o"
  "CMakeFiles/tsim_net.dir/network.cpp.o.d"
  "CMakeFiles/tsim_net.dir/routing.cpp.o"
  "CMakeFiles/tsim_net.dir/routing.cpp.o.d"
  "libtsim_net.a"
  "libtsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
