file(REMOVE_RECURSE
  "libtsim_sim.a"
)
