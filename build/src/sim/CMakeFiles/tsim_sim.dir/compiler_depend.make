# Empty compiler generated dependencies file for tsim_sim.
# This may be replaced when dependencies are built.
