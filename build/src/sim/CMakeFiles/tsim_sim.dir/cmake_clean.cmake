file(REMOVE_RECURSE
  "CMakeFiles/tsim_sim.dir/logging.cpp.o"
  "CMakeFiles/tsim_sim.dir/logging.cpp.o.d"
  "CMakeFiles/tsim_sim.dir/random.cpp.o"
  "CMakeFiles/tsim_sim.dir/random.cpp.o.d"
  "CMakeFiles/tsim_sim.dir/scheduler.cpp.o"
  "CMakeFiles/tsim_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/tsim_sim.dir/simulation.cpp.o"
  "CMakeFiles/tsim_sim.dir/simulation.cpp.o.d"
  "libtsim_sim.a"
  "libtsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
