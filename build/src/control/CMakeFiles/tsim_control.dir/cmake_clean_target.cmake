file(REMOVE_RECURSE
  "libtsim_control.a"
)
