# Empty compiler generated dependencies file for tsim_control.
# This may be replaced when dependencies are built.
