file(REMOVE_RECURSE
  "CMakeFiles/tsim_control.dir/accounting.cpp.o"
  "CMakeFiles/tsim_control.dir/accounting.cpp.o.d"
  "CMakeFiles/tsim_control.dir/controller_agent.cpp.o"
  "CMakeFiles/tsim_control.dir/controller_agent.cpp.o.d"
  "CMakeFiles/tsim_control.dir/receiver_agent.cpp.o"
  "CMakeFiles/tsim_control.dir/receiver_agent.cpp.o.d"
  "libtsim_control.a"
  "libtsim_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
