# Empty dependencies file for tsim_core.
# This may be replaced when dependencies are built.
