file(REMOVE_RECURSE
  "libtsim_core.a"
)
