file(REMOVE_RECURSE
  "CMakeFiles/tsim_core.dir/capacity_estimator.cpp.o"
  "CMakeFiles/tsim_core.dir/capacity_estimator.cpp.o.d"
  "CMakeFiles/tsim_core.dir/decision_table.cpp.o"
  "CMakeFiles/tsim_core.dir/decision_table.cpp.o.d"
  "CMakeFiles/tsim_core.dir/optimal_allocator.cpp.o"
  "CMakeFiles/tsim_core.dir/optimal_allocator.cpp.o.d"
  "CMakeFiles/tsim_core.dir/passes.cpp.o"
  "CMakeFiles/tsim_core.dir/passes.cpp.o.d"
  "CMakeFiles/tsim_core.dir/toposense.cpp.o"
  "CMakeFiles/tsim_core.dir/toposense.cpp.o.d"
  "CMakeFiles/tsim_core.dir/tree_index.cpp.o"
  "CMakeFiles/tsim_core.dir/tree_index.cpp.o.d"
  "libtsim_core.a"
  "libtsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
