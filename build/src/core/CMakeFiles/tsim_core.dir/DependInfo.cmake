
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity_estimator.cpp" "src/core/CMakeFiles/tsim_core.dir/capacity_estimator.cpp.o" "gcc" "src/core/CMakeFiles/tsim_core.dir/capacity_estimator.cpp.o.d"
  "/root/repo/src/core/decision_table.cpp" "src/core/CMakeFiles/tsim_core.dir/decision_table.cpp.o" "gcc" "src/core/CMakeFiles/tsim_core.dir/decision_table.cpp.o.d"
  "/root/repo/src/core/optimal_allocator.cpp" "src/core/CMakeFiles/tsim_core.dir/optimal_allocator.cpp.o" "gcc" "src/core/CMakeFiles/tsim_core.dir/optimal_allocator.cpp.o.d"
  "/root/repo/src/core/passes.cpp" "src/core/CMakeFiles/tsim_core.dir/passes.cpp.o" "gcc" "src/core/CMakeFiles/tsim_core.dir/passes.cpp.o.d"
  "/root/repo/src/core/toposense.cpp" "src/core/CMakeFiles/tsim_core.dir/toposense.cpp.o" "gcc" "src/core/CMakeFiles/tsim_core.dir/toposense.cpp.o.d"
  "/root/repo/src/core/tree_index.cpp" "src/core/CMakeFiles/tsim_core.dir/tree_index.cpp.o" "gcc" "src/core/CMakeFiles/tsim_core.dir/tree_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traffic/CMakeFiles/tsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
