file(REMOVE_RECURSE
  "CMakeFiles/test_scenarios.dir/scenarios/churn_test.cpp.o"
  "CMakeFiles/test_scenarios.dir/scenarios/churn_test.cpp.o.d"
  "CMakeFiles/test_scenarios.dir/scenarios/determinism_test.cpp.o"
  "CMakeFiles/test_scenarios.dir/scenarios/determinism_test.cpp.o.d"
  "CMakeFiles/test_scenarios.dir/scenarios/discovery_mode_test.cpp.o"
  "CMakeFiles/test_scenarios.dir/scenarios/discovery_mode_test.cpp.o.d"
  "CMakeFiles/test_scenarios.dir/scenarios/integration_test.cpp.o"
  "CMakeFiles/test_scenarios.dir/scenarios/integration_test.cpp.o.d"
  "CMakeFiles/test_scenarios.dir/scenarios/scenario_test.cpp.o"
  "CMakeFiles/test_scenarios.dir/scenarios/scenario_test.cpp.o.d"
  "CMakeFiles/test_scenarios.dir/scenarios/tiered_test.cpp.o"
  "CMakeFiles/test_scenarios.dir/scenarios/tiered_test.cpp.o.d"
  "CMakeFiles/test_scenarios.dir/scenarios/topology_file_test.cpp.o"
  "CMakeFiles/test_scenarios.dir/scenarios/topology_file_test.cpp.o.d"
  "test_scenarios"
  "test_scenarios.pdb"
  "test_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
