file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/capacity_estimator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/capacity_estimator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/decision_table_test.cpp.o"
  "CMakeFiles/test_core.dir/core/decision_table_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/optimal_allocator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/optimal_allocator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/passes_test.cpp.o"
  "CMakeFiles/test_core.dir/core/passes_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/stability_mechanisms_test.cpp.o"
  "CMakeFiles/test_core.dir/core/stability_mechanisms_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/toposense_test.cpp.o"
  "CMakeFiles/test_core.dir/core/toposense_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/tree_index_test.cpp.o"
  "CMakeFiles/test_core.dir/core/tree_index_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
