# Empty compiler generated dependencies file for ablation_controller_placement.
# This may be replaced when dependencies are built.
