file(REMOVE_RECURSE
  "CMakeFiles/ablation_controller_placement.dir/ablation_controller_placement.cpp.o"
  "CMakeFiles/ablation_controller_placement.dir/ablation_controller_placement.cpp.o.d"
  "ablation_controller_placement"
  "ablation_controller_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_controller_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
