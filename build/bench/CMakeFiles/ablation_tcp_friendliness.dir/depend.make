# Empty dependencies file for ablation_tcp_friendliness.
# This may be replaced when dependencies are built.
