file(REMOVE_RECURSE
  "CMakeFiles/ablation_tcp_friendliness.dir/ablation_tcp_friendliness.cpp.o"
  "CMakeFiles/ablation_tcp_friendliness.dir/ablation_tcp_friendliness.cpp.o.d"
  "ablation_tcp_friendliness"
  "ablation_tcp_friendliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcp_friendliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
