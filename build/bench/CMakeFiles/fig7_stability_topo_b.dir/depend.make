# Empty dependencies file for fig7_stability_topo_b.
# This may be replaced when dependencies are built.
