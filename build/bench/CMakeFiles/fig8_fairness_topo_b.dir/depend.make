# Empty dependencies file for fig8_fairness_topo_b.
# This may be replaced when dependencies are built.
