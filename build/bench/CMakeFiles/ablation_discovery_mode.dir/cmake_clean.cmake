file(REMOVE_RECURSE
  "CMakeFiles/ablation_discovery_mode.dir/ablation_discovery_mode.cpp.o"
  "CMakeFiles/ablation_discovery_mode.dir/ablation_discovery_mode.cpp.o.d"
  "ablation_discovery_mode"
  "ablation_discovery_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discovery_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
