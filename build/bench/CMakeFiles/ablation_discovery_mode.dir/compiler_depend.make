# Empty compiler generated dependencies file for ablation_discovery_mode.
# This may be replaced when dependencies are built.
