file(REMOVE_RECURSE
  "CMakeFiles/ablation_leave_latency.dir/ablation_leave_latency.cpp.o"
  "CMakeFiles/ablation_leave_latency.dir/ablation_leave_latency.cpp.o.d"
  "ablation_leave_latency"
  "ablation_leave_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_leave_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
