# Empty dependencies file for ablation_leave_latency.
# This may be replaced when dependencies are built.
