file(REMOVE_RECURSE
  "CMakeFiles/ablation_report_rate.dir/ablation_report_rate.cpp.o"
  "CMakeFiles/ablation_report_rate.dir/ablation_report_rate.cpp.o.d"
  "ablation_report_rate"
  "ablation_report_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_report_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
