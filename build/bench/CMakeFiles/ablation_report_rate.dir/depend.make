# Empty dependencies file for ablation_report_rate.
# This may be replaced when dependencies are built.
