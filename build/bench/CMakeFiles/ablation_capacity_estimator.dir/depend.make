# Empty dependencies file for ablation_capacity_estimator.
# This may be replaced when dependencies are built.
