file(REMOVE_RECURSE
  "CMakeFiles/ablation_capacity_estimator.dir/ablation_capacity_estimator.cpp.o"
  "CMakeFiles/ablation_capacity_estimator.dir/ablation_capacity_estimator.cpp.o.d"
  "ablation_capacity_estimator"
  "ablation_capacity_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capacity_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
