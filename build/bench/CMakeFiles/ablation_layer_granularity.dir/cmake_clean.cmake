file(REMOVE_RECURSE
  "CMakeFiles/ablation_layer_granularity.dir/ablation_layer_granularity.cpp.o"
  "CMakeFiles/ablation_layer_granularity.dir/ablation_layer_granularity.cpp.o.d"
  "ablation_layer_granularity"
  "ablation_layer_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layer_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
