# Empty compiler generated dependencies file for fig10_stale_info.
# This may be replaced when dependencies are built.
