file(REMOVE_RECURSE
  "CMakeFiles/fig10_stale_info.dir/fig10_stale_info.cpp.o"
  "CMakeFiles/fig10_stale_info.dir/fig10_stale_info.cpp.o.d"
  "fig10_stale_info"
  "fig10_stale_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_stale_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
