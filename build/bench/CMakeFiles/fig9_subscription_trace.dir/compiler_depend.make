# Empty compiler generated dependencies file for fig9_subscription_trace.
# This may be replaced when dependencies are built.
