
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_subscription_trace.cpp" "bench/CMakeFiles/fig9_subscription_trace.dir/fig9_subscription_trace.cpp.o" "gcc" "bench/CMakeFiles/fig9_subscription_trace.dir/fig9_subscription_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/scenarios/CMakeFiles/tsim_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/tsim_control.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/tsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tsim_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/tsim_mcast.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
