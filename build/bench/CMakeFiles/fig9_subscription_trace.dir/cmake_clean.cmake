file(REMOVE_RECURSE
  "CMakeFiles/fig9_subscription_trace.dir/fig9_subscription_trace.cpp.o"
  "CMakeFiles/fig9_subscription_trace.dir/fig9_subscription_trace.cpp.o.d"
  "fig9_subscription_trace"
  "fig9_subscription_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_subscription_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
