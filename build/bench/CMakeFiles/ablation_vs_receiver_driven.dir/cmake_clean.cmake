file(REMOVE_RECURSE
  "CMakeFiles/ablation_vs_receiver_driven.dir/ablation_vs_receiver_driven.cpp.o"
  "CMakeFiles/ablation_vs_receiver_driven.dir/ablation_vs_receiver_driven.cpp.o.d"
  "ablation_vs_receiver_driven"
  "ablation_vs_receiver_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vs_receiver_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
