# Empty dependencies file for ablation_vs_receiver_driven.
# This may be replaced when dependencies are built.
