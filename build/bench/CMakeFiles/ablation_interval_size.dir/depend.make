# Empty dependencies file for ablation_interval_size.
# This may be replaced when dependencies are built.
