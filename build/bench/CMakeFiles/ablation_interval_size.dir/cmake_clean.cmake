file(REMOVE_RECURSE
  "CMakeFiles/ablation_interval_size.dir/ablation_interval_size.cpp.o"
  "CMakeFiles/ablation_interval_size.dir/ablation_interval_size.cpp.o.d"
  "ablation_interval_size"
  "ablation_interval_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
