file(REMOVE_RECURSE
  "CMakeFiles/ablation_competing_flow.dir/ablation_competing_flow.cpp.o"
  "CMakeFiles/ablation_competing_flow.dir/ablation_competing_flow.cpp.o.d"
  "ablation_competing_flow"
  "ablation_competing_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_competing_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
