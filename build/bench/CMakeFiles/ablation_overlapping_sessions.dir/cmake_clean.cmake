file(REMOVE_RECURSE
  "CMakeFiles/ablation_overlapping_sessions.dir/ablation_overlapping_sessions.cpp.o"
  "CMakeFiles/ablation_overlapping_sessions.dir/ablation_overlapping_sessions.cpp.o.d"
  "ablation_overlapping_sessions"
  "ablation_overlapping_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overlapping_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
