# Empty compiler generated dependencies file for ablation_overlapping_sessions.
# This may be replaced when dependencies are built.
