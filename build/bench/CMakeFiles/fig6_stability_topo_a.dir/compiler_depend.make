# Empty compiler generated dependencies file for fig6_stability_topo_a.
# This may be replaced when dependencies are built.
