file(REMOVE_RECURSE
  "CMakeFiles/fig6_stability_topo_a.dir/fig6_stability_topo_a.cpp.o"
  "CMakeFiles/fig6_stability_topo_a.dir/fig6_stability_topo_a.cpp.o.d"
  "fig6_stability_topo_a"
  "fig6_stability_topo_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_stability_topo_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
