file(REMOVE_RECURSE
  "CMakeFiles/generalization_tiered.dir/generalization_tiered.cpp.o"
  "CMakeFiles/generalization_tiered.dir/generalization_tiered.cpp.o.d"
  "generalization_tiered"
  "generalization_tiered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalization_tiered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
