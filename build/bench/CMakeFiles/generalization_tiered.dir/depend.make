# Empty dependencies file for generalization_tiered.
# This may be replaced when dependencies are built.
