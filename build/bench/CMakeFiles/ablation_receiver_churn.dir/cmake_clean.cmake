file(REMOVE_RECURSE
  "CMakeFiles/ablation_receiver_churn.dir/ablation_receiver_churn.cpp.o"
  "CMakeFiles/ablation_receiver_churn.dir/ablation_receiver_churn.cpp.o.d"
  "ablation_receiver_churn"
  "ablation_receiver_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_receiver_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
