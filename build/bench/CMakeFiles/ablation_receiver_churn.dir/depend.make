# Empty dependencies file for ablation_receiver_churn.
# This may be replaced when dependencies are built.
