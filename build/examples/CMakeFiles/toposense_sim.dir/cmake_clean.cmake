file(REMOVE_RECURSE
  "CMakeFiles/toposense_sim.dir/toposense_sim.cpp.o"
  "CMakeFiles/toposense_sim.dir/toposense_sim.cpp.o.d"
  "toposense_sim"
  "toposense_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toposense_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
