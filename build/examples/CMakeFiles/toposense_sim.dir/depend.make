# Empty dependencies file for toposense_sim.
# This may be replaced when dependencies are built.
