# Empty compiler generated dependencies file for competing_sessions.
# This may be replaced when dependencies are built.
