file(REMOVE_RECURSE
  "CMakeFiles/competing_sessions.dir/competing_sessions.cpp.o"
  "CMakeFiles/competing_sessions.dir/competing_sessions.cpp.o.d"
  "competing_sessions"
  "competing_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/competing_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
