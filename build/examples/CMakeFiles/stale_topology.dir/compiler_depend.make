# Empty compiler generated dependencies file for stale_topology.
# This may be replaced when dependencies are built.
