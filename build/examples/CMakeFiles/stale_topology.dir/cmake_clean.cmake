file(REMOVE_RECURSE
  "CMakeFiles/stale_topology.dir/stale_topology.cpp.o"
  "CMakeFiles/stale_topology.dir/stale_topology.cpp.o.d"
  "stale_topology"
  "stale_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stale_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
