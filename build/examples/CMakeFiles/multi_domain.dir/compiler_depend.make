# Empty compiler generated dependencies file for multi_domain.
# This may be replaced when dependencies are built.
