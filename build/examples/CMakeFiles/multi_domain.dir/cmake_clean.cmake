file(REMOVE_RECURSE
  "CMakeFiles/multi_domain.dir/multi_domain.cpp.o"
  "CMakeFiles/multi_domain.dir/multi_domain.cpp.o.d"
  "multi_domain"
  "multi_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
