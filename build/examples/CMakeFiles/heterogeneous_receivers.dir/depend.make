# Empty dependencies file for heterogeneous_receivers.
# This may be replaced when dependencies are built.
