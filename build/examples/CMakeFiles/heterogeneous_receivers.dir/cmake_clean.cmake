file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_receivers.dir/heterogeneous_receivers.cpp.o"
  "CMakeFiles/heterogeneous_receivers.dir/heterogeneous_receivers.cpp.o.d"
  "heterogeneous_receivers"
  "heterogeneous_receivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_receivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
