// Every paper scenario (Fig 6-10 equivalents, shortened) and every fault kind
// runs to completion with auditing in assert mode: a single invariant
// violation throws and fails the test. Registered under the ctest label
// `audit` (see tests/CMakeLists.txt); CI runs `ctest -L audit` explicitly.
#include <gtest/gtest.h>

#include "check/invariant_auditor.hpp"
#include "fault/fault_plan.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

ScenarioConfig audited_config(std::uint64_t seed, Time duration) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  cfg.audit.mode = check::AuditMode::kAssert;
  return cfg;
}

void run_audited(std::unique_ptr<Scenario> scenario) {
  ASSERT_NE(scenario->auditor(), nullptr);
  scenario->run();  // throws check::AuditError on any violation
  EXPECT_EQ(scenario->auditor()->violation_count(), 0u);
  EXPECT_GT(scenario->auditor()->checks_run(), 0u);
}

TEST(AuditScenarioTest, Fig6StabilityTopologyACbr) {
  run_audited(ScenarioBuilder(audited_config(6, 120_s)).topology_a({}).build());
}

TEST(AuditScenarioTest, Fig6StabilityTopologyAVbr) {
  ScenarioConfig cfg = audited_config(6, 120_s);
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.traffic.peak_to_mean = 3.0;
  TopologyAOptions opt;
  opt.receivers_per_set = 4;
  run_audited(ScenarioBuilder(cfg).topology_a(opt).build());
}

TEST(AuditScenarioTest, Fig7StabilityTopologyB) {
  TopologyBOptions opt;
  opt.sessions = 4;
  run_audited(ScenarioBuilder(audited_config(7, 120_s)).topology_b(opt).build());
}

TEST(AuditScenarioTest, MultiDomainSummaryExchange) {
  // Auto-partitioned domains under assert auditing: exercises the
  // control.domains sweep (border registration, cap ranges, summary counter
  // sanity) on top of the usual invariants.
  ScenarioConfig cfg = audited_config(13, 120_s);
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.traffic.peak_to_mean = 3.0;
  cfg.domains.auto_partition = 2;
  cfg.domains.summary_period = 5_s;
  auto scenario = ScenarioBuilder(cfg).topology_a({}).build();
  ASSERT_NE(scenario->domains(), nullptr);
  ASSERT_EQ(scenario->domains()->domain_count(), 2u);
  run_audited(std::move(scenario));
}

TEST(AuditScenarioTest, Fig8FairnessTopologyBVbr) {
  ScenarioConfig cfg = audited_config(8, 120_s);
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  TopologyBOptions opt;
  opt.sessions = 8;
  run_audited(ScenarioBuilder(cfg).topology_b(opt).build());
}

TEST(AuditScenarioTest, Fig9SubscriptionTraceVbr) {
  ScenarioConfig cfg = audited_config(9, 120_s);
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.traffic.peak_to_mean = 3.0;
  TopologyBOptions opt;
  opt.sessions = 4;
  run_audited(ScenarioBuilder(cfg).topology_b(opt).build());
}

TEST(AuditScenarioTest, Fig10StaleInformationTopologyA) {
  ScenarioConfig cfg = audited_config(10, 120_s);
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.control.info_staleness = 6_s;
  run_audited(ScenarioBuilder(cfg).topology_a({}).build());
}

TEST(AuditScenarioTest, MtraceDiscoveryStaysClean) {
  ScenarioConfig cfg = audited_config(11, 90_s);
  cfg.control.discovery = DiscoveryMode::kMtrace;
  run_audited(ScenarioBuilder(cfg).topology_a({}).build());
}

TEST(AuditScenarioTest, ReceiverDrivenBaselineStaysClean) {
  ScenarioConfig cfg = audited_config(12, 90_s);
  cfg.control.kind = ControllerKind::kReceiverDriven;
  run_audited(ScenarioBuilder(cfg).topology_a({}).build());
}

/// --- every fault kind, audited in assert mode ------------------------------

TEST(AuditFaultTest, LinkOutageWithReroute) {
  fault::FaultPlan plan;
  plan.link_outage("r0", "r1", 30_s, 60_s);
  run_audited(
      ScenarioBuilder(audited_config(21, 120_s)).topology_a({}).with_faults(plan).build());
}

TEST(AuditFaultTest, PermanentLinkDown) {
  fault::FaultPlan plan;
  plan.link_down("r0", "r1", 30_s);
  run_audited(
      ScenarioBuilder(audited_config(22, 90_s)).topology_a({}).with_faults(plan).build());
}

TEST(AuditFaultTest, LinkFlap) {
  fault::FaultPlan plan;
  plan.link_flap("r0", "r1", 30_s, 70_s, 10_s, 0.5);
  run_audited(
      ScenarioBuilder(audited_config(23, 120_s)).topology_a({}).with_faults(plan).build());
}

TEST(AuditFaultTest, LossyLink) {
  fault::FaultPlan plan;
  plan.link_lossy("r0", "r1", 0.2, 30_s, 60_s);
  run_audited(
      ScenarioBuilder(audited_config(24, 120_s)).topology_a({}).with_faults(plan).build());
}

TEST(AuditFaultTest, ControllerOutage) {
  fault::FaultPlan plan;
  plan.controller_outage(30_s, 60_s);
  run_audited(
      ScenarioBuilder(audited_config(25, 120_s)).topology_a({}).with_faults(plan).build());
}

TEST(AuditFaultTest, SuggestionDrops) {
  fault::FaultPlan plan;
  plan.drop_suggestions(0.5, 30_s, 60_s);
  run_audited(
      ScenarioBuilder(audited_config(26, 120_s)).topology_a({}).with_faults(plan).build());
}

TEST(AuditFaultTest, CrossTrafficBurst) {
  TopologyAOptions opt;
  opt.cross_traffic_bps = 200e3;
  opt.cross_start = 30_s;
  opt.cross_stop = 60_s;
  run_audited(ScenarioBuilder(audited_config(27, 120_s)).topology_a(opt).build());
}

}  // namespace
}  // namespace tsim::scenarios
