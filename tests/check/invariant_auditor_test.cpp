// InvariantAuditor: mode parsing, reporting plumbing, and — via the
// corrupt_*_for_test hooks — proof that each invariant family actually fires
// with the right invariant id and context when its property is broken.
#include "check/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace tsim::check {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

AuditConfig log_config() {
  AuditConfig cfg;
  cfg.mode = AuditMode::kLog;
  cfg.log_to_stderr = false;
  return cfg;
}

bool has_violation(const InvariantAuditor& auditor, const std::string& invariant) {
  const auto& v = auditor.violations();
  return std::any_of(v.begin(), v.end(),
                     [&](const Violation& x) { return x.invariant == invariant; });
}

TEST(AuditModeTest, ParsesKnownModesAndRejectsGarbage) {
  EXPECT_EQ(parse_audit_mode("off"), AuditMode::kOff);
  EXPECT_EQ(parse_audit_mode("log"), AuditMode::kLog);
  EXPECT_EQ(parse_audit_mode("assert"), AuditMode::kAssert);
  EXPECT_FALSE(parse_audit_mode("loud").has_value());
  EXPECT_FALSE(parse_audit_mode("").has_value());
  EXPECT_STREQ(audit_mode_name(AuditMode::kLog), "log");
}

TEST(AuditorReportTest, OffModeIgnoresEverything) {
  InvariantAuditor auditor{AuditConfig{}};  // mode defaults to kOff
  auditor.report(Violation{"x", Time::zero(), 0, net::kInvalidNode, net::kInvalidLink, ""});
  EXPECT_EQ(auditor.violation_count(), 0u);
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(AuditorReportTest, LogModeCountsPastTheRecordBound) {
  AuditConfig cfg = log_config();
  cfg.max_recorded = 2;
  InvariantAuditor auditor{cfg};
  for (int i = 0; i < 5; ++i) {
    auditor.report(
        Violation{"x", Time::zero(), 0, net::kInvalidNode, net::kInvalidLink, ""});
  }
  EXPECT_EQ(auditor.violation_count(), 5u);
  EXPECT_EQ(auditor.violations().size(), 2u);
}

TEST(AuditorReportTest, JsonReportNamesInvariantAndMode) {
  InvariantAuditor auditor{log_config()};
  auditor.set_now(Time::seconds(std::int64_t{7}));
  auditor.report(Violation{"link.byte_conservation", Time::seconds(std::int64_t{7}), 3, 2,
                           1, "10 bytes missing"});
  const std::string json = auditor.report_json();
  EXPECT_NE(json.find("\"mode\":\"log\""), std::string::npos) << json;
  EXPECT_NE(json.find("link.byte_conservation"), std::string::npos) << json;
  EXPECT_NE(json.find("10 bytes missing"), std::string::npos) << json;
}

/// One duplex link, auditor attached to the network.
struct LinkAuditFixture : ::testing::Test {
  sim::Simulation simulation{1};
  net::Network network{simulation};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};

  LinkAuditFixture() {
    network.add_duplex_link(a, b, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.compute_routes();
  }
};

TEST_F(LinkAuditFixture, SkippedByteCreditFiresConservation) {
  InvariantAuditor auditor{log_config()};
  auditor.attach_network(network);
  auditor.run_checks_now();
  EXPECT_EQ(auditor.violation_count(), 0u);  // untouched links conserve

  network.link(0).corrupt_accounting_for_test();
  auditor.run_checks_now();
  EXPECT_TRUE(has_violation(auditor, "link.packet_conservation"));
  EXPECT_TRUE(has_violation(auditor, "link.byte_conservation"));
  // The violation localizes the corrupted link.
  for (const auto& v : auditor.violations()) EXPECT_EQ(v.link, 0u);
}

TEST_F(LinkAuditFixture, AssertModeThrowsWithTheInvariantId) {
  AuditConfig cfg;
  cfg.mode = AuditMode::kAssert;
  InvariantAuditor auditor{cfg};
  auditor.attach_network(network);
  network.link(0).corrupt_accounting_for_test();
  try {
    auditor.run_checks_now();
    FAIL() << "expected AuditError";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violation().invariant, "link.packet_conservation");
    EXPECT_EQ(e.violation().link, 0u);
  }
}

TEST(SchedulerAuditTest, ClockCorruptionFiresTimeInvariants) {
  sim::Simulation simulation{1};
  InvariantAuditor auditor{log_config()};
  auditor.attach_simulation(simulation);
  simulation.at(5_s, [] {});
  auditor.run_checks_now();
  EXPECT_EQ(auditor.violation_count(), 0u);

  // Jump the clock past the pending event: the event is now "in the past".
  simulation.scheduler().corrupt_clock_for_test(10_s);
  auditor.run_checks_now();
  EXPECT_TRUE(has_violation(auditor, "sim.event_in_past"));

  // Then yank it backwards: monotonicity breaks.
  simulation.scheduler().corrupt_clock_for_test(Time::seconds(std::int64_t{2}));
  auditor.run_checks_now();
  EXPECT_TRUE(has_violation(auditor, "sim.time_monotonic"));
}

/// source -> r -> {a, b} multicast fixture with an attached auditor.
struct TreeAuditFixture : ::testing::Test {
  sim::Simulation simulation{1};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId r{network.add_node("r")};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};
  mcast::MulticastRouter router{simulation, network, {Time::zero(), 1_s}};

  TreeAuditFixture() {
    network.add_duplex_link(src, r, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(r, a, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(r, b, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.compute_routes();
    router.set_session_source(0, src);
  }
};

TEST_F(TreeAuditFixture, CorruptedTreeEdgeFiresWellFormednessChecks) {
  InvariantAuditor auditor{log_config()};
  auditor.attach_network(network);
  auditor.attach_multicast(router);

  const net::GroupAddr g{0, 1};
  router.join(a, g);
  router.join(b, g);
  ASSERT_NE(router.tree(g), nullptr);  // forces a clean rebuild (audited)
  const std::uint64_t before = auditor.violation_count();
  EXPECT_EQ(before, 0u) << auditor.report_json();

  router.corrupt_tree_edge_for_test(g);
  auditor.run_checks_now();
  // Reversing the first edge (source -> r) hands the source an incoming edge;
  // on deeper trees the same hook manufactures a multi-parent node + cycle.
  EXPECT_TRUE(has_violation(auditor, "mcast.tree_root") ||
              has_violation(auditor, "mcast.tree_multi_parent") ||
              has_violation(auditor, "mcast.tree_cycle"))
      << auditor.report_json();
}

TEST(WatchdogAuditTest, FlagsAddUnderLossAndCleanDrop) {
  InvariantAuditor auditor{log_config()};
  auditor.set_now(Time::seconds(std::int64_t{30}));

  InvariantAuditor::WatchdogObservation add;
  add.node = 4;
  add.add = true;
  add.loss = 0.5;
  add.add_loss_threshold = 0.25;
  auditor.on_unilateral_action(add);
  EXPECT_TRUE(has_violation(auditor, "control.watchdog_add_under_loss"));
  EXPECT_EQ(auditor.violations().front().node, 4u);

  InvariantAuditor::WatchdogObservation drop;
  drop.node = 5;
  drop.add = false;
  drop.loss = 0.0;
  drop.starved = false;
  drop.drop_loss_threshold = 0.1;
  auditor.on_unilateral_action(drop);
  EXPECT_TRUE(has_violation(auditor, "control.watchdog_drop_clean"));

  // Sane decisions stay silent: add on a clean window, drop under loss.
  const std::uint64_t count = auditor.violation_count();
  InvariantAuditor::WatchdogObservation ok_add;
  ok_add.add = true;
  ok_add.loss = 0.0;
  ok_add.add_loss_threshold = 0.25;
  auditor.on_unilateral_action(ok_add);
  InvariantAuditor::WatchdogObservation ok_drop;
  ok_drop.add = false;
  ok_drop.loss = 0.9;
  ok_drop.drop_loss_threshold = 0.1;
  auditor.on_unilateral_action(ok_drop);
  EXPECT_EQ(auditor.violation_count(), count);
}

}  // namespace
}  // namespace tsim::check
