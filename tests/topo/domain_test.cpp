// Domain-scoped discovery (§II / Fig 3): a controller sees only its own
// administrative domain's subtree, rooted at the domain's border router.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "topo/discovery.hpp"

namespace tsim::topo {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// src -- core -- {d1 -- {a1, a2}, d2 -- {b1}}: two administrative domains
/// below one core.
struct DomainFixture : ::testing::Test {
  sim::Simulation simulation{29};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId core{network.add_node("core")};
  net::NodeId d1{network.add_node("d1")};
  net::NodeId d2{network.add_node("d2")};
  net::NodeId a1{network.add_node("a1")};
  net::NodeId a2{network.add_node("a2")};
  net::NodeId b1{network.add_node("b1")};
  mcast::MulticastRouter mcast{simulation, network, {}};

  DomainFixture() {
    network.add_duplex_link(src, core, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(core, d1, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(core, d2, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(d1, a1, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(d1, a2, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(d2, b1, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.compute_routes();
    mcast.set_session_source(0, src);
    mcast.join(a1, net::GroupAddr{0, 1});
    mcast.join(a2, net::GroupAddr{0, 1});
    mcast.join(b1, net::GroupAddr{0, 1});
  }
};

TEST_F(DomainFixture, UnscopedSnapshotSeesEverything) {
  DiscoveryService discovery{simulation, mcast, {}};
  discovery.track_session(0, 6);
  discovery.start();
  simulation.run_until(100_ms);
  const TopologySnapshot* snap = discovery.snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->receivers.size(), 3u);
  EXPECT_EQ(snap->edges.size(), 6u);
}

TEST_F(DomainFixture, ScopedSnapshotSeesOnlyItsSubtree) {
  DiscoveryService::Config cfg;
  cfg.domain_nodes = {d1, a1, a2};
  cfg.domain_root = d1;
  DiscoveryService discovery{simulation, mcast, cfg};
  discovery.track_session(0, 6);
  discovery.start();
  simulation.run_until(100_ms);

  const TopologySnapshot* snap = discovery.snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->source, d1);  // rooted at the border router
  EXPECT_EQ(snap->receivers, (std::vector<net::NodeId>{a1, a2}));
  // Only d1->a1 and d1->a2 survive the filter.
  EXPECT_EQ(snap->edges.size(), 2u);
  for (const auto& [parent, child] : snap->edges) {
    EXPECT_EQ(parent, d1);
  }
}

TEST_F(DomainFixture, SiblingDomainInvisible) {
  DiscoveryService::Config cfg;
  cfg.domain_nodes = {d2, b1};
  cfg.domain_root = d2;
  DiscoveryService discovery{simulation, mcast, cfg};
  discovery.track_session(0, 6);
  discovery.start();
  simulation.run_until(100_ms);
  const TopologySnapshot* snap = discovery.snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->receivers, (std::vector<net::NodeId>{b1}));
  EXPECT_EQ(snap->edges.size(), 1u);
}

}  // namespace
}  // namespace tsim::topo
