#include "topo/mtrace.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace tsim::topo {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// src -- r -- {a, b}; tool at src.
struct MtraceFixture : ::testing::Test {
  sim::Simulation simulation{23};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId r{network.add_node("r")};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};
  mcast::MulticastRouter mcast{simulation, network, {}};
  transport::DemuxRegistry demuxes{network};
  std::unique_ptr<MtraceDiscovery> discovery;

  MtraceFixture() {
    network.add_duplex_link(src, r, tsim::units::BitsPerSec{10e6}, 50_ms);
    network.add_duplex_link(r, a, tsim::units::BitsPerSec{10e6}, 50_ms);
    network.add_duplex_link(r, b, tsim::units::BitsPerSec{10e6}, 50_ms);
    network.compute_routes();
    mcast.set_session_source(0, src);

    MtraceDiscovery::Config cfg;
    cfg.tool_node = src;
    cfg.query_period = 1_s;
    cfg.assembly_delay = 500_ms;
    discovery = std::make_unique<MtraceDiscovery>(simulation, network, mcast, demuxes, cfg);
    discovery->track_session(0, 6);
  }
};

TEST_F(MtraceFixture, AssemblesTreeFromResponses) {
  mcast.join(a, net::GroupAddr{0, 1});
  mcast.join(b, net::GroupAddr{0, 1});
  discovery->register_receiver(0, a);
  discovery->register_receiver(0, b);
  discovery->start();
  simulation.run_until(1_s);

  const TopologySnapshot* snap = discovery->snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->source, src);
  EXPECT_EQ(snap->receivers, (std::vector<net::NodeId>{a, b}));
  EXPECT_EQ(snap->edges.size(), 3u);  // src->r, r->a, r->b
}

TEST_F(MtraceFixture, QueriesAreLinearInReceivers) {
  mcast.join(a, net::GroupAddr{0, 1});
  mcast.join(b, net::GroupAddr{0, 1});
  discovery->register_receiver(0, a);
  discovery->register_receiver(0, b);
  discovery->start();
  simulation.run_until(Time::seconds(10.5));
  // 11 rounds (t=0..10) x 2 receivers.
  EXPECT_EQ(discovery->queries_sent(), 22u);
  EXPECT_EQ(discovery->responses_received(), 22u);
}

TEST_F(MtraceFixture, NonSubscribedReceiverExcluded) {
  mcast.join(a, net::GroupAddr{0, 1});
  // b registered with the tool but never joined any group.
  discovery->register_receiver(0, a);
  discovery->register_receiver(0, b);
  discovery->start();
  simulation.run_until(1_s);
  const TopologySnapshot* snap = discovery->snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->receivers, (std::vector<net::NodeId>{a}));
  EXPECT_EQ(snap->edges.size(), 2u);
}

TEST_F(MtraceFixture, NoSnapshotBeforeFirstAssembly) {
  discovery->register_receiver(0, a);
  discovery->start();
  EXPECT_EQ(discovery->snapshot(0), nullptr);
  simulation.run_until(100_ms);  // queries in flight, assembly at 500 ms
  EXPECT_EQ(discovery->snapshot(0), nullptr);
}

TEST_F(MtraceFixture, SnapshotLagsMembershipByOneRound) {
  mcast.join(a, net::GroupAddr{0, 1});
  discovery->register_receiver(0, a);
  discovery->register_receiver(0, b);
  discovery->start();
  simulation.run_until(1_s);
  ASSERT_EQ(discovery->snapshot(0)->receivers.size(), 1u);

  mcast.join(b, net::GroupAddr{0, 1});
  // The join shows up only after the next query round completes.
  simulation.run_until(Time::seconds(1.4));
  EXPECT_EQ(discovery->snapshot(0)->receivers.size(), 1u);
  simulation.run_until(3_s);
  EXPECT_EQ(discovery->snapshot(0)->receivers.size(), 2u);
}

TEST_F(MtraceFixture, SubscribedLayersReportHighestContiguous) {
  mcast.join(a, net::GroupAddr{0, 1});
  mcast.join(a, net::GroupAddr{0, 2});
  mcast.join(a, net::GroupAddr{0, 3});
  discovery->register_receiver(0, a);
  discovery->start();
  simulation.run_until(1_s);
  // The session tree overlays layers 1..3 along the same path.
  const TopologySnapshot* snap = discovery->snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->edges.size(), 2u);
}

TEST_F(MtraceFixture, KeepsPreviousViewWhenRoundYieldsNothing) {
  mcast.join(a, net::GroupAddr{0, 1});
  discovery->register_receiver(0, a);
  discovery->start();
  simulation.run_until(1_s);
  ASSERT_EQ(discovery->snapshot(0)->receivers.size(), 1u);

  // Receiver leaves: subsequent rounds report no subscription, but an empty
  // round must not erase the tree outright until a valid round replaces it.
  mcast.leave(a, net::GroupAddr{0, 1});
  simulation.run_until(5_s);
  const TopologySnapshot* snap = discovery->snapshot(0);
  ASSERT_NE(snap, nullptr);
  // Stale-beats-empty policy: the old single-receiver view persists.
  EXPECT_EQ(snap->receivers.size(), 1u);
}

}  // namespace
}  // namespace tsim::topo
