#include "topo/discovery.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace tsim::topo {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

struct DiscoveryFixture : ::testing::Test {
  sim::Simulation simulation{3};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId r{network.add_node("r")};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};
  mcast::MulticastRouter mcast{simulation, network, {}};

  DiscoveryFixture() {
    network.add_duplex_link(src, r, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(r, a, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(r, b, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.compute_routes();
    mcast.set_session_source(0, src);
  }
};

TEST_F(DiscoveryFixture, SnapshotCapturesTreeAndReceivers) {
  DiscoveryService discovery{simulation, mcast, {1_s, Time::zero(), 16}};
  discovery.track_session(0, 6);
  mcast.join(a, net::GroupAddr{0, 1});
  discovery.start();
  simulation.run_until(100_ms);
  const TopologySnapshot* snap = discovery.snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->source, src);
  EXPECT_EQ(snap->receivers, (std::vector<net::NodeId>{a}));
  EXPECT_EQ(snap->edges.size(), 2u);  // src->r, r->a
}

TEST_F(DiscoveryFixture, NoSnapshotBeforeStart) {
  DiscoveryService discovery{simulation, mcast, {}};
  discovery.track_session(0, 6);
  EXPECT_EQ(discovery.snapshot(0), nullptr);
}

TEST_F(DiscoveryFixture, UntrackedSessionReturnsNull) {
  DiscoveryService discovery{simulation, mcast, {}};
  discovery.start();
  simulation.run_until(1_s);
  EXPECT_EQ(discovery.snapshot(42), nullptr);
}

TEST_F(DiscoveryFixture, StalenessServesOldTree) {
  DiscoveryService discovery{simulation, mcast, {1_s, 5_s, 32}};
  discovery.track_session(0, 6);
  mcast.join(a, net::GroupAddr{0, 1});
  discovery.start();

  // b joins at t=3 s. With 5 s staleness, a query at t=6 s must still see
  // the tree as of t<=1 s (a only); by t=9 s the post-join tree is visible.
  simulation.at(3_s, [&]() { mcast.join(b, net::GroupAddr{0, 1}); });
  simulation.run_until(6_s);
  const TopologySnapshot* old_snap = discovery.snapshot(0);
  ASSERT_NE(old_snap, nullptr);
  EXPECT_EQ(old_snap->receivers.size(), 1u);

  simulation.run_until(9_s);
  const TopologySnapshot* new_snap = discovery.snapshot(0);
  ASSERT_NE(new_snap, nullptr);
  EXPECT_EQ(new_snap->receivers.size(), 2u);
}

TEST_F(DiscoveryFixture, StalenessLongerThanHistoryYieldsNull) {
  DiscoveryService discovery{simulation, mcast, {1_s, 60_s, 8}};
  discovery.track_session(0, 6);
  discovery.start();
  simulation.run_until(5_s);
  // Nothing captured 60 s ago yet.
  EXPECT_EQ(discovery.snapshot(0), nullptr);
}

TEST_F(DiscoveryFixture, HistoryIsBounded) {
  DiscoveryService discovery{simulation, mcast, {1_s, Time::zero(), 4}};
  discovery.track_session(0, 6);
  discovery.start();
  simulation.run_until(100_s);
  // With a 4-entry history and zero staleness, the snapshot is the latest.
  const TopologySnapshot* snap = discovery.snapshot(0);
  ASSERT_NE(snap, nullptr);
  EXPECT_GE(snap->captured_at, 96_s);
}

TEST_F(DiscoveryFixture, SetStalenessTakesEffect) {
  DiscoveryService discovery{simulation, mcast, {1_s, Time::zero(), 64}};
  discovery.track_session(0, 6);
  discovery.start();
  simulation.run_until(20_s);
  const Time fresh = discovery.snapshot(0)->captured_at;
  discovery.set_staleness(10_s);
  const Time stale = discovery.snapshot(0)->captured_at;
  EXPECT_GE(fresh, stale + 9_s);
}

}  // namespace
}  // namespace tsim::topo
