// Tests for the engineering refinements around Table I (documented in
// DESIGN.md §3): episode-top backoff pinning, the proven-stable-level guard,
// and the fair-share bypass. Each exists to fix a concrete failure mode seen
// in closed-loop runs; these tests encode those scenarios.
#include <gtest/gtest.h>

#include "core/toposense.hpp"

namespace tsim::core {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

SessionNodeInput node(net::NodeId id, net::NodeId parent) {
  SessionNodeInput n;
  n.node = id;
  n.parent = parent;
  return n;
}

SessionNodeInput receiver(net::NodeId id, net::NodeId parent, double loss, std::uint64_t bytes,
                          int sub) {
  SessionNodeInput n = node(id, parent);
  n.is_receiver = true;
  n.loss_rate = tsim::units::LossFraction{loss};
  n.bytes_received = tsim::units::Bytes{bytes};
  n.subscription = sub;
  return n;
}

Params test_params() {
  Params p;
  p.interval = 1_s;
  p.backoff_min = 20_s;
  p.backoff_max = 20_s;  // deterministic
  return p;
}

std::uint64_t bytes_for(const traffic::LayerSpec& spec, int sub) {
  return static_cast<std::uint64_t>(spec.cumulative_rate(sub).bps() / 8.0);
}

int prescription_for(const AlgorithmOutput& out, net::NodeId rcv) {
  for (const auto& p : out.prescriptions) {
    if (p.receiver == rcv) return p.subscription;
  }
  return -1;
}

AlgorithmInput single(const Params& params, double loss, int sub, std::uint64_t bytes) {
  AlgorithmInput in;
  in.window = params.interval;
  SessionInput s;
  s.session = 0;
  s.source = 1;
  s.nodes = {node(1, net::kInvalidNode), node(2, 1), receiver(100, 2, loss, bytes, sub)};
  in.sessions.push_back(s);
  return in;
}

TEST(EpisodeTopTest, CascadedHalvingsBackOffTheProbeLayerNotTheFloor) {
  // Climb to 5, then a long congestion episode with collapapsing byte counts.
  // The backoff must target layer 5 (the probe), never layers 2-3 that the
  // in-episode halvings pass through.
  const Params params = test_params();
  TopoSense algo{params, sim::Rng{3}};
  Time t = 1_s;
  int sub = 1;
  for (int i = 0; i < 4; ++i) {
    sub = prescription_for(
        algo.run_interval(single(params, 0.0, sub, bytes_for(params.layers, sub)), t), 100);
    t += 1_s;
  }
  ASSERT_EQ(sub, 5);
  // Three congested intervals with shrinking throughput.
  std::uint64_t bytes = bytes_for(params.layers, 4);
  for (int i = 0; i < 3; ++i) {
    algo.run_interval(single(params, 0.4, sub, bytes), t);
    bytes /= 2;
    t += 1_s;
  }
  EXPECT_TRUE(algo.backing_off(0, 1, 5, t) || algo.backing_off(0, 2, 5, t) ||
              algo.backing_off(0, 100, 5, t));
  for (const int layer : {2, 3}) {
    EXPECT_FALSE(algo.backing_off(0, 1, layer, t)) << layer;
    EXPECT_FALSE(algo.backing_off(0, 2, layer, t)) << layer;
    EXPECT_FALSE(algo.backing_off(0, 100, layer, t)) << layer;
  }
}

TEST(StableLevelTest, RecoveryToProvenLevelIsFast) {
  // Hold level 4 cleanly, crash to 1 in an externally caused episode, then
  // recover: the climb back to 4 must proceed one layer per interval without
  // waiting out any backoff.
  const Params params = test_params();
  TopoSense algo{params, sim::Rng{5}};
  Time t = 1_s;
  // Hold 4 cleanly long enough to prove it.
  for (int i = 0; i < 6; ++i) {
    algo.run_interval(single(params, 0.0, 4, bytes_for(params.layers, 4)), t);
    t += 1_s;
  }
  // Externally caused congestion: loss at the *same* level 4.
  for (int i = 0; i < 3; ++i) {
    algo.run_interval(single(params, 0.5, 4, bytes_for(params.layers, 1)), t);
    t += 1_s;
  }
  // Clean again from level 1: count intervals to get back to 4.
  int sub = 1;
  int intervals = 0;
  while (sub < 4 && intervals < 12) {
    sub = prescription_for(
        algo.run_interval(single(params, 0.0, sub, bytes_for(params.layers, sub)), t), 100);
    t += 1_s;
    ++intervals;
  }
  EXPECT_LE(intervals, 6) << "recovery to the proven level must not wait for backoffs";
}

TEST(StableLevelTest, FreshProbeLevelIsNotInstantlyProven) {
  // A newly added layer must not count as "stable" after a single clean
  // interval (the loss signal lags); the backoff set when it fails must hold.
  const Params params = test_params();
  TopoSense algo{params, sim::Rng{7}};
  Time t = 1_s;
  // Hold 3 cleanly (proven), then probe 4, see one deceptive clean interval,
  // then congestion.
  for (int i = 0; i < 5; ++i) {
    algo.run_interval(single(params, 0.0, 3, bytes_for(params.layers, 3)), t);
    t += 1_s;
  }
  algo.run_interval(single(params, 0.0, 4, bytes_for(params.layers, 4)), t);  // clean @4
  t += 1_s;
  // Congestion at 4 for two intervals -> drop + backoff(4).
  algo.run_interval(single(params, 0.2, 4, bytes_for(params.layers, 3)), t);
  t += 1_s;
  algo.run_interval(single(params, 0.2, 4, bytes_for(params.layers, 3)), t);
  t += 1_s;
  const bool backed_off = algo.backing_off(0, 1, 4, t) || algo.backing_off(0, 2, 4, t) ||
                          algo.backing_off(0, 100, 4, t);
  EXPECT_TRUE(backed_off);

  // Clean at 3 again: prescriptions must plateau at 3 (4 is backed off and
  // NOT proven).
  int sub = 3;
  for (int i = 0; i < 5; ++i) {
    sub = prescription_for(
        algo.run_interval(single(params, 0.0, sub, bytes_for(params.layers, sub)), t), 100);
    EXPECT_LE(sub, 3) << "interval " << i;
    t += 1_s;
  }
}

TEST(ShareBypassTest, VictimClimbsBackUnderKnownFairShare) {
  // Two sessions share a link with an estimated capacity. Session 0 gets
  // knocked to 1 layer by session 1's probe; with the estimate alive, its
  // fair share covers 3 layers, so it may climb back while session 1's
  // probe layer stays backed off.
  Params params = test_params();
  TopoSense algo{params, sim::Rng{9}};
  Time t = 1_s;

  auto two_sessions = [&](double loss0, int sub0, std::uint64_t bytes0, double loss1,
                          int sub1, std::uint64_t bytes1) {
    AlgorithmInput in;
    in.window = params.interval;
    for (int k = 0; k < 2; ++k) {
      SessionInput s;
      s.session = static_cast<net::SessionId>(k);
      s.source = 1;
      s.nodes = {node(1, net::kInvalidNode), node(2, 1),
                 receiver(100 + k, 2, k == 0 ? loss0 : loss1, k == 0 ? bytes0 : bytes1,
                          k == 0 ? sub0 : sub1)};
      in.sessions.push_back(s);
    }
    return in;
  };

  // Congestion episode: both lose while delivering ~250 Kbps each -> the
  // shared link estimate becomes ~500 Kbps; fair shares ~250 Kbps each.
  for (int i = 0; i < 2; ++i) {
    algo.run_interval(two_sessions(0.2, 4, 31'250, 0.2, 4, 31'250), t);
    t += 1_s;
  }
  // Session 0 collapsed to 1; clean network now. With its ~250 Kbps share
  // covering 3 layers, it climbs without backoff stalls.
  int sub = 1;
  int intervals = 0;
  while (sub < 3 && intervals < 10) {
    const auto out = algo.run_interval(
        two_sessions(0.0, sub, bytes_for(params.layers, sub), 0.0, 3,
                     bytes_for(params.layers, 3)),
        t);
    sub = prescription_for(out, 100);
    t += 1_s;
    ++intervals;
  }
  EXPECT_LE(intervals, 4);
}

}  // namespace
}  // namespace tsim::core
