#include "core/passes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tsim::core {
namespace {

using namespace tsim::sim::time_literals;

SessionNodeInput node(net::NodeId id, net::NodeId parent) {
  SessionNodeInput n;
  n.node = id;
  n.parent = parent;
  return n;
}

SessionNodeInput receiver(net::NodeId id, net::NodeId parent, double loss, std::uint64_t bytes,
                          int sub) {
  SessionNodeInput n = node(id, parent);
  n.is_receiver = true;
  n.loss_rate = tsim::units::LossFraction{loss};
  n.bytes_received = tsim::units::Bytes{bytes};
  n.subscription = sub;
  return n;
}

/// Fig 1-style tree: 1 -> 2 -> {3, 4}; 1 -> 5 -> {6}.
SessionInput paper_tree(double loss3, double loss4, double loss6) {
  SessionInput in;
  in.session = 0;
  in.source = 1;
  in.nodes = {node(1, net::kInvalidNode),
              node(2, 1),
              receiver(3, 2, loss3, 10'000, 2),
              receiver(4, 2, loss4, 20'000, 3),
              node(5, 1),
              receiver(6, 5, loss6, 60'000, 5)};
  return in;
}

Params params() {
  Params p;
  p.p_threshold = 0.02;
  p.eta_similar = 0.6;
  p.similar_band = 0.02;
  // The pass tests feed hand-built estimates for arbitrary links.
  p.estimate_shared_links_only = false;
  return p;
}

TEST(CongestionTest, InternalLossIsMinOfChildren) {
  LabeledTree lt{TreeIndex{paper_tree(0.10, 0.04, 0.0)}};
  label_congestion(lt, params());
  const auto i2 = static_cast<std::size_t>(lt.tree.index_of(2));
  EXPECT_DOUBLE_EQ(lt.loss[i2], 0.04);
  const auto i1 = static_cast<std::size_t>(lt.tree.index_of(1));
  EXPECT_DOUBLE_EQ(lt.loss[i1], 0.0);  // min over node2 (0.04) and node5 (0.0)
}

TEST(CongestionTest, AllChildrenSimilarLossCongestsParent) {
  LabeledTree lt{TreeIndex{paper_tree(0.10, 0.11, 0.0)}};
  label_congestion(lt, params());
  EXPECT_TRUE(lt.congested[static_cast<std::size_t>(lt.tree.index_of(2))]);
  EXPECT_FALSE(lt.congested[static_cast<std::size_t>(lt.tree.index_of(5))]);
  EXPECT_FALSE(lt.congested[static_cast<std::size_t>(lt.tree.index_of(1))]);
}

TEST(CongestionTest, DissimilarLossesDoNotCongestParent) {
  // Both above threshold, but far apart: deviation not negligible.
  LabeledTree lt{TreeIndex{paper_tree(0.30, 0.04, 0.0)}};
  label_congestion(lt, params());
  EXPECT_FALSE(lt.congested[static_cast<std::size_t>(lt.tree.index_of(2))]);
  // The receivers themselves are congested.
  EXPECT_TRUE(lt.congested[static_cast<std::size_t>(lt.tree.index_of(3))]);
  EXPECT_TRUE(lt.congested[static_cast<std::size_t>(lt.tree.index_of(4))]);
}

TEST(CongestionTest, OneCleanChildBlocksParentCongestion) {
  LabeledTree lt{TreeIndex{paper_tree(0.10, 0.0, 0.0)}};
  label_congestion(lt, params());
  EXPECT_FALSE(lt.congested[static_cast<std::size_t>(lt.tree.index_of(2))]);
}

TEST(CongestionTest, SubtreeMaxBytesPropagates) {
  LabeledTree lt{TreeIndex{paper_tree(0.0, 0.0, 0.0)}};
  label_congestion(lt, params());
  EXPECT_EQ(lt.max_subtree_bytes[static_cast<std::size_t>(lt.tree.index_of(2))], 20'000u);
  EXPECT_EQ(lt.max_subtree_bytes[static_cast<std::size_t>(lt.tree.index_of(5))], 60'000u);
  EXPECT_EQ(lt.max_subtree_bytes[static_cast<std::size_t>(lt.tree.index_of(1))], 60'000u);
}

TEST(CongestionTest, ParentCongestionPropagatesDown) {
  // Both subtrees fully congested with similar loss everywhere -> root of
  // congestion close to the top; children inherit the flag.
  SessionInput in;
  in.session = 0;
  in.source = 1;
  in.nodes = {node(1, net::kInvalidNode), node(2, 1), receiver(3, 2, 0.10, 1000, 2),
              receiver(4, 2, 0.105, 1000, 2)};
  LabeledTree lt{TreeIndex{in}};
  label_congestion(lt, params());
  // node2 congested (children similar); node1's only child congested with
  // loss 0.10 -> node1 congested too; flag floods down.
  for (std::size_t i = 0; i < lt.tree.size(); ++i) {
    EXPECT_TRUE(lt.congested[i]) << i;
  }
}

TEST(LinkObservationTest, CollectsPerLinkPerSession) {
  std::vector<LabeledTree> trees;
  trees.emplace_back(TreeIndex{paper_tree(0.05, 0.06, 0.0)});
  label_congestion(trees.back(), params());

  SessionInput other;
  other.session = 1;
  other.source = 1;
  other.nodes = {node(1, net::kInvalidNode), node(2, 1), receiver(7, 2, 0.08, 5'000, 1)};
  trees.emplace_back(TreeIndex{other});
  label_congestion(trees.back(), params());

  const auto observations = collect_link_observations(trees);
  const LinkKey shared{1, 2};
  bool found_shared = false;
  for (const auto& obs : observations) {
    if (obs.link == shared) {
      found_shared = true;
      EXPECT_EQ(obs.sessions.size(), 2u);
    }
  }
  EXPECT_TRUE(found_shared);
  // Edges: 1->2 (shared), 2->3, 2->4, 1->5, 5->6, 2->7 = 6 distinct links.
  EXPECT_EQ(observations.size(), 6u);
}

TEST(BottleneckTest, TopDownMinAndBottomUpMax) {
  Params p = params();
  CapacityEstimator est{p};
  // Estimate only on link 1->2: 500 Kbps.
  est.update({LinkObservation{{1, 2}, {{0, 0.05, 62'500}}}}, 1_s);

  LabeledTree lt{TreeIndex{paper_tree(0.05, 0.05, 0.0)}};
  label_congestion(lt, p);
  compute_bottlenecks(lt, est);

  const auto i3 = static_cast<std::size_t>(lt.tree.index_of(3));
  const auto i6 = static_cast<std::size_t>(lt.tree.index_of(6));
  const auto i1 = static_cast<std::size_t>(lt.tree.index_of(1));
  EXPECT_NEAR(lt.bottleneck_bps[i3], 500e3, 1.0);
  EXPECT_TRUE(std::isinf(lt.bottleneck_bps[i6]));  // other branch unconstrained
  // Bottom-up max at the root: the best receiver is unconstrained.
  EXPECT_TRUE(std::isinf(lt.max_handle_bps[i1]));
  const auto i2 = static_cast<std::size_t>(lt.tree.index_of(2));
  EXPECT_NEAR(lt.max_handle_bps[i2], 500e3, 1.0);
}

TEST(FairShareTest, PaperExampleTwoSessions) {
  // Two single-receiver sessions share link (1,2) with capacity 2 Mbps.
  // Session 0's receiver is otherwise unconstrained; so is session 1's.
  // x_0 = x_1 -> equal shares of 1 Mbps each.
  Params p = params();
  p.layers.num_layers = 6;
  CapacityEstimator est{p};
  est.update({LinkObservation{{1, 2}, {{0, 0.05, 125'000}, {1, 0.05, 125'000}}}}, 1_s);
  ASSERT_NEAR(est.capacity_bps(LinkKey{1, 2}), 2e6, 1.0);

  std::vector<LabeledTree> trees;
  for (net::SessionId s = 0; s < 2; ++s) {
    SessionInput in;
    in.session = s;
    in.source = 1;
    in.nodes = {node(1, net::kInvalidNode), node(2, 1),
                receiver(100 + s, 2, 0.05, 125'000, 4)};
    trees.emplace_back(TreeIndex{in});
    label_congestion(trees.back(), p);
    compute_bottlenecks(trees.back(), est);
  }
  compute_fair_shares(trees, est, p);

  for (const auto& lt : trees) {
    const auto leaf = static_cast<std::size_t>(lt.tree.size() - 1);
    EXPECT_NEAR(lt.share_bps[leaf], 1e6, 1e3);
  }
}

TEST(FairShareTest, AsymmetricDownstreamBottlenecks) {
  // Shared link 2 Mbps; session 0 additionally bottlenecked at 250 Kbps
  // downstream (x_0 = 3 layers), session 1 unconstrained (x_1 = 6).
  // Shares: 3/9 and 6/9 of 2 Mbps.
  Params p = params();
  CapacityEstimator est{p};
  est.update({LinkObservation{{1, 2}, {{0, 0.05, 125'000}, {1, 0.05, 125'000}}},
              LinkObservation{{2, 10}, {{0, 0.05, 31'250}}}},
             1_s);
  ASSERT_NEAR(est.capacity_bps(LinkKey{2, 10}), 250e3, 1.0);

  std::vector<LabeledTree> trees;
  {
    SessionInput in;
    in.session = 0;
    in.source = 1;
    in.nodes = {node(1, net::kInvalidNode), node(2, 1), node(10, 2),
                receiver(100, 10, 0.05, 31'250, 3)};
    trees.emplace_back(TreeIndex{in});
  }
  {
    SessionInput in;
    in.session = 1;
    in.source = 1;
    in.nodes = {node(1, net::kInvalidNode), node(2, 1), receiver(101, 2, 0.05, 125'000, 4)};
    trees.emplace_back(TreeIndex{in});
  }
  for (auto& lt : trees) {
    label_congestion(lt, p);
    compute_bottlenecks(lt, est);
  }
  compute_fair_shares(trees, est, p);

  // x_0: headroom on shared link = 2M - 1*32k; on (2,10) = 250k -> 3 layers.
  // x_1: 6 layers (headroom 2M - 32k >= 2016k... actually 1.968M < 2016k -> 5).
  const auto leaf0 = static_cast<std::size_t>(trees[0].tree.index_of(100));
  const auto leaf1 = static_cast<std::size_t>(trees[1].tree.index_of(101));
  const double x0 = 3.0;
  const double x1 = 5.0;
  EXPECT_NEAR(trees[0].share_bps[leaf0],
              std::min(x0 * 2e6 / (x0 + x1), 250e3), 1e3);
  EXPECT_NEAR(trees[1].share_bps[leaf1], x1 * 2e6 / (x0 + x1), 1e3);
}

TEST(FairShareTest, NeverBelowBaseLayer) {
  // Tiny shared capacity: every session still gets >= one base layer.
  Params p = params();
  CapacityEstimator est{p};
  est.update({LinkObservation{{1, 2}, {{0, 0.2, 2'000}, {1, 0.2, 2'000}}}}, 1_s);
  std::vector<LabeledTree> trees;
  for (net::SessionId s = 0; s < 2; ++s) {
    SessionInput in;
    in.session = s;
    in.source = 1;
    in.nodes = {node(1, net::kInvalidNode), node(2, 1), receiver(100 + s, 2, 0.2, 2'000, 1)};
    trees.emplace_back(TreeIndex{in});
    label_congestion(trees.back(), p);
    compute_bottlenecks(trees.back(), est);
  }
  compute_fair_shares(trees, est, p);
  for (const auto& lt : trees) {
    const auto leaf = static_cast<std::size_t>(lt.tree.size() - 1);
    EXPECT_GE(lt.share_bps[leaf], p.layers.base_rate.bps() - 1e-9);
  }
}

TEST(FairShareTest, UnsharedInfiniteLinksStayInfinite) {
  Params p = params();
  CapacityEstimator est{p};
  std::vector<LabeledTree> trees;
  trees.emplace_back(TreeIndex{paper_tree(0.0, 0.0, 0.0)});
  label_congestion(trees.back(), p);
  compute_bottlenecks(trees.back(), est);
  compute_fair_shares(trees, est, p);
  for (std::size_t i = 0; i < trees[0].tree.size(); ++i) {
    EXPECT_TRUE(std::isinf(trees[0].share_bps[i]));
  }
}

}  // namespace
}  // namespace tsim::core
