#include "core/units.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>

#include "sim/time.hpp"

namespace tsim::units {
namespace {

// ---- Compile-time contract: explicit construction, no implicit mixing. ----

// Raw representations do not silently become typed quantities.
static_assert(!std::is_convertible_v<double, BitsPerSec>);
static_assert(!std::is_convertible_v<std::uint64_t, Bytes>);
static_assert(!std::is_convertible_v<std::uint64_t, PacketCount>);
static_assert(!std::is_convertible_v<double, LossFraction>);

// Typed quantities do not silently decay back to raw representations.
static_assert(!std::is_convertible_v<BitsPerSec, double>);
static_assert(!std::is_convertible_v<Bytes, std::uint64_t>);

// Distinct dimensions are not interchangeable.
static_assert(!std::is_convertible_v<Bytes, PacketCount>);
static_assert(!std::is_convertible_v<PacketCount, Bytes>);
static_assert(!std::is_convertible_v<BitsPerSec, LossFraction>);
static_assert(!std::is_constructible_v<Bytes, PacketCount>);
static_assert(!std::is_constructible_v<PacketCount, Bytes>);

// Exact counters refuse floating-point construction (deleted overloads).
static_assert(!std::is_constructible_v<Bytes, double>);
static_assert(!std::is_constructible_v<PacketCount, double>);

// Dimensionally unsound arithmetic does not exist.
template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B, std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

static_assert(CanAdd<Bytes, Bytes>::value);
static_assert(CanAdd<BitsPerSec, BitsPerSec>::value);
static_assert(!CanAdd<Bytes, BitsPerSec>::value);
static_assert(!CanAdd<Bytes, PacketCount>::value);
static_assert(!CanAdd<LossFraction, LossFraction>::value);

// Conversions have the expected result types.
static_assert(std::is_same_v<decltype(std::declval<Bytes>() / std::declval<sim::Time>()),
                             BitsPerSec>);
static_assert(std::is_same_v<decltype(std::declval<BitsPerSec>() * std::declval<sim::Time>()),
                             Bytes>);
static_assert(std::is_same_v<decltype(std::declval<BitsPerSec>() / std::declval<BitsPerSec>()),
                             double>);

// ---- Runtime behavior. ----

TEST(UnitsTest, BytesBitsMatchesRawExpression) {
  const Bytes b{12'500};
  EXPECT_EQ(b.count(), 12'500u);
  EXPECT_DOUBLE_EQ(b.bits(), static_cast<double>(12'500) * 8.0);
}

TEST(UnitsTest, BytesOverWindowIsAverageRate) {
  // 125'000 bytes over 1 s is exactly 1 Mbit/s.
  const BitsPerSec rate = Bytes{125'000} / sim::Time::seconds(1.0);
  EXPECT_DOUBLE_EQ(rate.bps(), 1e6);

  // Matches the raw expression the migrated code used, bit for bit.
  const std::uint64_t raw_bytes = 987'654;
  const sim::Time window = sim::Time::milliseconds(250);
  const double raw = static_cast<double>(raw_bytes) * 8.0 / window.as_seconds();
  EXPECT_EQ((Bytes{raw_bytes} / window).bps(), raw);
}

TEST(UnitsTest, RateTimesWindowRoundTripsThroughBytes) {
  const BitsPerSec rate{1e6};
  const sim::Time window = sim::Time::seconds(2.0);
  const Bytes volume = rate * window;
  EXPECT_EQ(volume.count(), 250'000u);

  // Round trip: volume back over the same window recovers the rate.
  EXPECT_DOUBLE_EQ((volume / window).bps(), 1e6);

  // Commutative spelling.
  EXPECT_EQ((window * rate).count(), volume.count());
}

TEST(UnitsTest, ByteArithmeticIsExact) {
  Bytes total = Bytes::zero();
  total += Bytes{1'000};
  total += Bytes{500};
  EXPECT_EQ(total.count(), 1'500u);
  total -= Bytes{300};
  EXPECT_EQ(total.count(), 1'200u);
  EXPECT_EQ((Bytes{7} + Bytes{8}).count(), 15u);
  EXPECT_EQ((Bytes{8} - Bytes{7}).count(), 1u);
  EXPECT_LT(Bytes{7}, Bytes{8});
}

TEST(UnitsTest, PacketCountArithmetic) {
  PacketCount received = PacketCount::zero();
  ++received;
  ++received;
  received += PacketCount{3};
  EXPECT_EQ(received.count(), 5u);
  EXPECT_EQ((received - PacketCount{2}).count(), 3u);
  EXPECT_GT(received, PacketCount{4});
}

TEST(UnitsTest, LossFractionFromCounts) {
  // No expected packets -> zero loss, not NaN.
  EXPECT_EQ(LossFraction::from_counts(PacketCount{0}, PacketCount{0}).value(), 0.0);

  const LossFraction p = LossFraction::from_counts(PacketCount{5}, PacketCount{100});
  EXPECT_DOUBLE_EQ(p.value(), 0.05);

  // Matches the raw expression used by the report producers.
  const std::uint64_t lost = 13;
  const std::uint64_t expected = 977;
  EXPECT_EQ(LossFraction::from_counts(PacketCount{lost}, PacketCount{expected}).value(),
            static_cast<double>(lost) / static_cast<double>(expected));
}

TEST(UnitsTest, LossFractionThresholdComparisons) {
  const LossFraction p{0.04};
  EXPECT_LT(p, LossFraction{0.05});
  EXPECT_GT(p, LossFraction::zero());
  EXPECT_EQ(LossFraction{0.04}, p);
}

TEST(UnitsTest, BitsPerSecScalingAndRatios) {
  const BitsPerSec base{32'000.0};
  EXPECT_DOUBLE_EQ((base * 2.0).bps(), 64'000.0);
  EXPECT_DOUBLE_EQ((2.0 * base).bps(), 64'000.0);
  EXPECT_DOUBLE_EQ((base / 2.0).bps(), 16'000.0);
  EXPECT_DOUBLE_EQ(BitsPerSec{64'000.0} / base, 2.0);

  BitsPerSec sum = BitsPerSec::zero();
  sum += base;
  sum += base;
  EXPECT_DOUBLE_EQ(sum.bps(), 64'000.0);
  EXPECT_DOUBLE_EQ((base + base).bps(), 64'000.0);
  EXPECT_DOUBLE_EQ((sum - base).bps(), 32'000.0);
}

TEST(UnitsTest, BitsPerSecInfinity) {
  EXPECT_FALSE(BitsPerSec::infinite().finite());
  EXPECT_TRUE(BitsPerSec{1e9}.finite());
  EXPECT_EQ(BitsPerSec::infinite().bps(), std::numeric_limits<double>::infinity());
  EXPECT_LT(BitsPerSec{1e12}, BitsPerSec::infinite());
}

}  // namespace
}  // namespace tsim::units
