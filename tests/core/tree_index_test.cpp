#include "core/tree_index.hpp"

#include <gtest/gtest.h>

namespace tsim::core {
namespace {

SessionNodeInput node(net::NodeId id, net::NodeId parent, bool receiver = false) {
  SessionNodeInput n;
  n.node = id;
  n.parent = parent;
  n.is_receiver = receiver;
  return n;
}

SessionInput chain3() {
  // 10 -> 20 -> 30 (receiver)
  SessionInput in;
  in.session = 1;
  in.source = 10;
  in.nodes = {node(10, net::kInvalidNode), node(20, 10), node(30, 20, true)};
  return in;
}

TEST(TreeIndexTest, RootIsFirstInBfs) {
  const TreeIndex tree{chain3()};
  ASSERT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.node(static_cast<std::size_t>(tree.bfs_order()[0])).node, 10u);
  EXPECT_EQ(tree.parent(0), -1);
}

TEST(TreeIndexTest, ParentChildWiring) {
  const TreeIndex tree{chain3()};
  const int i20 = tree.index_of(20);
  const int i30 = tree.index_of(30);
  ASSERT_GE(i20, 0);
  ASSERT_GE(i30, 0);
  EXPECT_EQ(tree.parent(static_cast<std::size_t>(i30)), i20);
  EXPECT_EQ(tree.children(static_cast<std::size_t>(i20)).size(), 1u);
  EXPECT_TRUE(tree.is_leaf(static_cast<std::size_t>(i30)));
  EXPECT_FALSE(tree.is_leaf(static_cast<std::size_t>(i20)));
}

TEST(TreeIndexTest, IndexOfMissingReturnsMinusOne) {
  const TreeIndex tree{chain3()};
  EXPECT_EQ(tree.index_of(999), -1);
}

TEST(TreeIndexTest, BfsVisitsParentsBeforeChildren) {
  // Balanced: 1 -> {2, 3}, 2 -> {4, 5}, 3 -> {6}.
  SessionInput in;
  in.session = 0;
  in.source = 1;
  in.nodes = {node(1, net::kInvalidNode), node(2, 1), node(3, 1),
              node(4, 2, true),           node(5, 2, true), node(6, 3, true)};
  const TreeIndex tree{in};
  std::vector<bool> seen(tree.size(), false);
  for (const auto idx : tree.bfs_order()) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = tree.parent(i);
    if (p >= 0) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(p)]);
    }
    seen[i] = true;
  }
}

TEST(TreeIndexTest, UnreachableNodesAreDropped) {
  SessionInput in = chain3();
  in.nodes.push_back(node(99, net::kInvalidNode));  // orphan root, not source
  in.nodes.push_back(node(98, 99, true));           // below the orphan
  const TreeIndex tree{in};
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.index_of(99), -1);
  EXPECT_EQ(tree.index_of(98), -1);
}

TEST(TreeIndexTest, MissingSourceThrows) {
  SessionInput in = chain3();
  in.source = 777;
  EXPECT_THROW(TreeIndex{in}, std::invalid_argument);
}

TEST(TreeIndexTest, DuplicateNodeThrows) {
  SessionInput in = chain3();
  in.nodes.push_back(node(20, 10));
  EXPECT_THROW(TreeIndex{in}, std::invalid_argument);
}

TEST(TreeIndexTest, SiblingOrderIsDeterministic) {
  SessionInput in;
  in.session = 0;
  in.source = 1;
  in.nodes = {node(1, net::kInvalidNode), node(5, 1, true), node(3, 1, true),
              node(4, 1, true)};
  const TreeIndex tree{in};
  const auto& kids = tree.children(0);
  ASSERT_EQ(kids.size(), 3u);
  // Children sorted by node id.
  EXPECT_EQ(tree.node(static_cast<std::size_t>(kids[0])).node, 3u);
  EXPECT_EQ(tree.node(static_cast<std::size_t>(kids[1])).node, 4u);
  EXPECT_EQ(tree.node(static_cast<std::size_t>(kids[2])).node, 5u);
}

TEST(TreeIndexTest, SingleNodeTree) {
  SessionInput in;
  in.session = 0;
  in.source = 42;
  in.nodes = {node(42, net::kInvalidNode)};
  const TreeIndex tree{in};
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.is_leaf(0));
}

TEST(TreeIndexTest, ReceiverPayloadPreserved) {
  SessionInput in = chain3();
  in.nodes[2].loss_rate = tsim::units::LossFraction{0.25};
  in.nodes[2].bytes_received = tsim::units::Bytes{4096};
  in.nodes[2].subscription = 3;
  const TreeIndex tree{in};
  const auto i = static_cast<std::size_t>(tree.index_of(30));
  EXPECT_DOUBLE_EQ(tree.node(i).loss_rate.value(), 0.25);
  EXPECT_EQ(tree.node(i).bytes_received.count(), 4096u);
  EXPECT_EQ(tree.node(i).subscription, 3);
}

}  // namespace
}  // namespace tsim::core
