#include "core/optimal_allocator.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace tsim::core {
namespace {

SessionNodeInput node(net::NodeId id, net::NodeId parent, bool receiver = false) {
  SessionNodeInput n;
  n.node = id;
  n.parent = parent;
  n.is_receiver = receiver;
  return n;
}

int level_of(const std::vector<Prescription>& alloc, net::NodeId rcv) {
  for (const auto& p : alloc) {
    if (p.receiver == rcv) return p.subscription;
  }
  return -1;
}

/// Paper Topology A as a single allocation problem: two sets behind 256 Kbps
/// and 1 Mbps bottlenecks.
struct TopologyAProblem {
  std::vector<SessionInput> sessions;
  std::unordered_map<LinkKey, units::BitsPerSec> capacities;

  TopologyAProblem() {
    SessionInput in;
    in.session = 0;
    in.source = 0;
    in.nodes = {node(0, net::kInvalidNode), node(1, 0),      node(2, 1),
                node(3, 1),                 node(10, 2, true), node(11, 2, true),
                node(20, 3, true),          node(21, 3, true)};
    sessions.push_back(in);
    capacities[{0, 1}] = units::BitsPerSec{10e6};
    capacities[{1, 2}] = units::BitsPerSec{256e3};
    capacities[{1, 3}] = units::BitsPerSec{1e6};
    capacities[{2, 10}] = units::BitsPerSec{10e6};
    capacities[{2, 11}] = units::BitsPerSec{10e6};
    capacities[{3, 20}] = units::BitsPerSec{10e6};
    capacities[{3, 21}] = units::BitsPerSec{10e6};
  }
};

TEST(OptimalAllocatorTest, TopologyAMatchesClosedForm) {
  TopologyAProblem problem;
  const OptimalAllocator allocator{traffic::LayerSpec{}, problem.capacities};
  const auto alloc = allocator.allocate(problem.sessions);
  EXPECT_EQ(level_of(alloc, 10), 3);  // 224 Kbps <= 256 Kbps
  EXPECT_EQ(level_of(alloc, 11), 3);
  EXPECT_EQ(level_of(alloc, 20), 5);  // 992 Kbps <= 1 Mbps
  EXPECT_EQ(level_of(alloc, 21), 5);
}

TEST(OptimalAllocatorTest, TopologyBMatchesClosedForm) {
  // 4 single-receiver sessions over one shared 2 Mbps link.
  std::vector<SessionInput> sessions;
  std::unordered_map<LinkKey, units::BitsPerSec> caps;
  caps[{1, 2}] = units::BitsPerSec{2e6};
  for (net::SessionId k = 0; k < 4; ++k) {
    SessionInput in;
    in.session = k;
    in.source = 1;
    in.nodes = {node(1, net::kInvalidNode), node(2, 1),
                node(static_cast<net::NodeId>(100 + k), 2, true)};
    sessions.push_back(in);
    caps[{2, static_cast<net::NodeId>(100 + k)}] = units::BitsPerSec{10e6};
  }
  const OptimalAllocator allocator{traffic::LayerSpec{}, caps};
  const auto alloc = allocator.allocate(sessions);
  for (net::SessionId k = 0; k < 4; ++k) {
    EXPECT_EQ(level_of(alloc, static_cast<net::NodeId>(100 + k)), 4) << k;
  }
}

TEST(OptimalAllocatorTest, SharedLayersAreFreeForSiblings) {
  // Multicast economics: two receivers under the same bottleneck cost the
  // link once, not twice. A 256 Kbps link supports 3 layers for BOTH.
  std::vector<SessionInput> sessions;
  SessionInput in;
  in.session = 0;
  in.source = 0;
  in.nodes = {node(0, net::kInvalidNode), node(1, 0), node(10, 1, true), node(11, 1, true)};
  sessions.push_back(in);
  std::unordered_map<LinkKey, units::BitsPerSec> caps;
  caps[{0, 1}] = units::BitsPerSec{256e3};
  caps[{1, 10}] = units::BitsPerSec{10e6};
  caps[{1, 11}] = units::BitsPerSec{10e6};
  const OptimalAllocator allocator{traffic::LayerSpec{}, caps};
  const auto alloc = allocator.allocate(sessions);
  EXPECT_EQ(level_of(alloc, 10), 3);
  EXPECT_EQ(level_of(alloc, 11), 3);
}

TEST(OptimalAllocatorTest, StarvedReceiverStaysAtZero) {
  std::vector<SessionInput> sessions;
  SessionInput in;
  in.session = 0;
  in.source = 0;
  in.nodes = {node(0, net::kInvalidNode), node(10, 0, true)};
  sessions.push_back(in);
  std::unordered_map<LinkKey, units::BitsPerSec> caps;
  caps[{0, 10}] = units::BitsPerSec{10e3};  // below even the 32 Kbps base layer
  const OptimalAllocator allocator{traffic::LayerSpec{}, caps};
  const auto alloc = allocator.allocate(sessions);
  EXPECT_EQ(level_of(alloc, 10), 0);
}

TEST(OptimalAllocatorTest, UnlistedLinksAreUnconstrained) {
  std::vector<SessionInput> sessions;
  SessionInput in;
  in.session = 0;
  in.source = 0;
  in.nodes = {node(0, net::kInvalidNode), node(10, 0, true)};
  sessions.push_back(in);
  const OptimalAllocator allocator{traffic::LayerSpec{}, {}};
  const auto alloc = allocator.allocate(sessions);
  EXPECT_EQ(level_of(alloc, 10), 6);
}

TEST(OptimalAllocatorTest, LinkUsageCountsSubtreeMaximum) {
  TopologyAProblem problem;
  const OptimalAllocator allocator{traffic::LayerSpec{}, problem.capacities};
  // Levels in discovery order: receivers 10, 11, 20, 21.
  const std::vector<int> levels{2, 3, 1, 5};
  const traffic::LayerSpec spec;
  EXPECT_DOUBLE_EQ(allocator.link_usage(problem.sessions, levels, LinkKey{1, 2}).bps(),
                   spec.cumulative_rate(3).bps());
  EXPECT_DOUBLE_EQ(allocator.link_usage(problem.sessions, levels, LinkKey{1, 3}).bps(),
                   spec.cumulative_rate(5).bps());
  EXPECT_DOUBLE_EQ(allocator.link_usage(problem.sessions, levels, LinkKey{0, 1}).bps(),
                   spec.cumulative_rate(5).bps());
  EXPECT_DOUBLE_EQ(allocator.link_usage(problem.sessions, levels, LinkKey{2, 10}).bps(),
                   spec.cumulative_rate(2).bps());
}

// Properties over random trees: the greedy result is feasible, and maximal
// in the sense that no single receiver can be raised one more layer.
class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, FeasibleAndPerReceiverMaximal) {
  sim::Rng rng{GetParam()};
  std::vector<SessionInput> sessions;
  std::unordered_map<LinkKey, units::BitsPerSec> caps;
  SessionInput in;
  in.session = 0;
  in.source = 0;
  in.nodes.push_back(node(0, net::kInvalidNode));
  std::vector<net::NodeId> attach{0};
  for (int i = 1; i <= 12; ++i) {
    const auto parent = attach[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(attach.size()) - 1))];
    const auto id = static_cast<net::NodeId>(i);
    const bool receiver = i > 4;
    in.nodes.push_back(node(id, parent, receiver));
    caps[{parent, id}] = units::BitsPerSec{rng.uniform(64e3, 3e6)};
    if (!receiver) attach.push_back(id);
  }
  sessions.push_back(in);

  const OptimalAllocator allocator{traffic::LayerSpec{}, caps};
  const auto alloc = allocator.allocate(sessions);

  std::vector<int> levels;
  for (const auto& n : in.nodes) {
    if (n.is_receiver) levels.push_back(level_of(alloc, n.node));
  }
  ASSERT_TRUE(allocator.feasible(sessions, levels));
  for (std::size_t r = 0; r < levels.size(); ++r) {
    if (levels[r] >= 6) continue;
    std::vector<int> raised = levels;
    ++raised[r];
    EXPECT_FALSE(allocator.feasible(sessions, raised)) << "receiver slot " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace tsim::core
