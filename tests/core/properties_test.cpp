// Property-based tests: the TopoSense algorithm is run over randomized
// session trees and measurement sequences, and structural invariants are
// asserted on every output. Seeds parameterize the sweep so failures are
// reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/toposense.hpp"
#include "sim/random.hpp"

namespace tsim::core {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// Builds a random session tree: `routers` internal nodes under a source,
/// `receivers` leaves attached to random routers, with random loss/bytes.
struct RandomScenario {
  explicit RandomScenario(std::uint64_t seed) : rng{seed} {}

  SessionInput make_session(net::SessionId session, int routers, int receivers) {
    SessionInput in;
    in.session = session;
    in.source = 1;
    SessionNodeInput source;
    source.node = 1;
    source.parent = net::kInvalidNode;
    in.nodes.push_back(source);

    std::vector<net::NodeId> internal{1};
    for (int r = 0; r < routers; ++r) {
      SessionNodeInput router;
      router.node = static_cast<net::NodeId>(10 + r);
      router.parent = internal[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(internal.size()) - 1))];
      in.nodes.push_back(router);
      internal.push_back(router.node);
    }
    for (int i = 0; i < receivers; ++i) {
      SessionNodeInput rcv;
      rcv.node = static_cast<net::NodeId>(1000 + i);
      rcv.parent = internal[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(internal.size()) - 1))];
      rcv.is_receiver = true;
      rcv.subscription = static_cast<int>(rng.uniform_int(1, 6));
      rcv.loss_rate = tsim::units::LossFraction{rng.bernoulli(0.3) ? rng.uniform(0.0, 0.6) : 0.0};
      rcv.bytes_received = tsim::units::Bytes{static_cast<std::uint64_t>(rng.uniform(1e3, 3e5))};
      in.nodes.push_back(rcv);
    }
    return in;
  }

  sim::Rng rng;
};

class AlgorithmProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgorithmProperties, PrescriptionsAlwaysWithinLayerBounds) {
  RandomScenario scenario{GetParam()};
  Params params;
  TopoSense algo{params, sim::Rng{GetParam()}};
  Time t = 1_s;
  for (int interval = 0; interval < 30; ++interval) {
    AlgorithmInput in;
    in.window = 1_s;
    in.sessions.push_back(scenario.make_session(0, 4, 8));
    in.sessions.push_back(scenario.make_session(1, 3, 5));
    const AlgorithmOutput out = algo.run_interval(in, t);
    for (const Prescription& p : out.prescriptions) {
      ASSERT_GE(p.subscription, 1);
      ASSERT_LE(p.subscription, params.layers.num_layers);
    }
    t += 1_s;
  }
}

TEST_P(AlgorithmProperties, EveryReceiverGetsExactlyOnePrescription) {
  RandomScenario scenario{GetParam()};
  Params params;
  TopoSense algo{params, sim::Rng{GetParam()}};
  AlgorithmInput in;
  in.window = 1_s;
  in.sessions.push_back(scenario.make_session(0, 5, 12));
  const AlgorithmOutput out = algo.run_interval(in, 1_s);

  std::vector<net::NodeId> prescribed;
  for (const Prescription& p : out.prescriptions) prescribed.push_back(p.receiver);
  std::sort(prescribed.begin(), prescribed.end());
  EXPECT_TRUE(std::adjacent_find(prescribed.begin(), prescribed.end()) == prescribed.end());

  std::size_t receiver_count = 0;
  for (const auto& n : in.sessions[0].nodes) {
    if (n.is_receiver) ++receiver_count;
  }
  EXPECT_EQ(prescribed.size(), receiver_count);
}

TEST_P(AlgorithmProperties, SupplyNeverExceedsParentSupply) {
  RandomScenario scenario{GetParam()};
  Params params;
  TopoSense algo{params, sim::Rng{GetParam()}};
  AlgorithmInput in;
  in.window = 1_s;
  in.sessions.push_back(scenario.make_session(0, 6, 10));
  const AlgorithmOutput out = algo.run_interval(in, 1_s);

  // Rebuild the tree to check the supply hierarchy from the diagnostics.
  const TreeIndex tree{in.sessions[0]};
  ASSERT_EQ(out.diagnostics.size(), 1u);
  std::unordered_map<net::NodeId, int> supply;
  for (const NodeDiagnostics& d : out.diagnostics[0].nodes) supply[d.node] = d.supply;
  for (const auto idx : tree.bfs_order()) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = tree.parent(i);
    if (p < 0) continue;
    const net::NodeId node = tree.node(i).node;
    const net::NodeId parent = tree.node(static_cast<std::size_t>(p)).node;
    EXPECT_LE(supply[node], std::max(supply[parent], 1)) << "node " << node;
  }
}

TEST_P(AlgorithmProperties, CleanNetworkNeverLabelsCongestion) {
  RandomScenario scenario{GetParam()};
  Params params;
  TopoSense algo{params, sim::Rng{GetParam()}};
  AlgorithmInput in;
  in.window = 1_s;
  SessionInput session = scenario.make_session(0, 4, 8);
  for (auto& n : session.nodes) n.loss_rate = tsim::units::LossFraction::zero();  // force clean
  in.sessions.push_back(session);
  const AlgorithmOutput out = algo.run_interval(in, 1_s);
  for (const NodeDiagnostics& d : out.diagnostics[0].nodes) {
    EXPECT_FALSE(d.congested);
  }
}

TEST_P(AlgorithmProperties, SubtreeIndependenceUnderPerturbation) {
  // Two disjoint subtrees under the source; congesting one must not change
  // the other's prescriptions.
  const std::uint64_t seed = GetParam();
  auto build = [&](double left_loss) {
    SessionInput in;
    in.session = 0;
    in.source = 1;
    SessionNodeInput source;
    source.node = 1;
    source.parent = net::kInvalidNode;
    in.nodes.push_back(source);
    for (net::NodeId router : {net::NodeId{10}, net::NodeId{20}}) {
      SessionNodeInput r;
      r.node = router;
      r.parent = 1;
      in.nodes.push_back(r);
    }
    for (int i = 0; i < 3; ++i) {
      SessionNodeInput left;
      left.node = static_cast<net::NodeId>(100 + i);
      left.parent = 10;
      left.is_receiver = true;
      left.subscription = 3;
      left.loss_rate = tsim::units::LossFraction{left_loss};
      left.bytes_received = tsim::units::Bytes{28'000};
      in.nodes.push_back(left);
      SessionNodeInput right;
      right.node = static_cast<net::NodeId>(200 + i);
      right.parent = 20;
      right.is_receiver = true;
      right.subscription = 4;
      right.loss_rate = tsim::units::LossFraction::zero();
      right.bytes_received = tsim::units::Bytes{60'000};
      in.nodes.push_back(right);
    }
    return in;
  };

  TopoSense clean{Params{}, sim::Rng{seed}};
  TopoSense congested{Params{}, sim::Rng{seed}};
  Time t = 1_s;
  for (int interval = 0; interval < 10; ++interval) {
    AlgorithmInput in_clean;
    in_clean.window = 1_s;
    in_clean.sessions.push_back(build(0.0));
    AlgorithmInput in_congested;
    in_congested.window = 1_s;
    in_congested.sessions.push_back(build(0.25));

    const auto out_clean = clean.run_interval(in_clean, t);
    const auto out_congested = congested.run_interval(in_congested, t);

    auto right_prescription = [](const AlgorithmOutput& out, net::NodeId node) {
      for (const auto& p : out.prescriptions) {
        if (p.receiver == node) return p.subscription;
      }
      return -1;
    };
    for (int i = 0; i < 3; ++i) {
      const auto node = static_cast<net::NodeId>(200 + i);
      ASSERT_EQ(right_prescription(out_clean, node), right_prescription(out_congested, node))
          << "interval " << interval << " receiver " << node;
    }
    t += 1_s;
  }
}

TEST_P(AlgorithmProperties, StateIsBoundedOverLongRuns) {
  // Churn receivers in and out for many intervals: internal state must not
  // accrete (the memory/backoff cleanup paths).
  RandomScenario scenario{GetParam()};
  Params params;
  TopoSense algo{params, sim::Rng{GetParam()}};
  Time t = 1_s;
  for (int interval = 0; interval < 200; ++interval) {
    AlgorithmInput in;
    in.window = 1_s;
    in.sessions.push_back(scenario.make_session(
        static_cast<net::SessionId>(interval % 3), 3, 4));
    const auto out = algo.run_interval(in, t);
    ASSERT_LE(out.prescriptions.size(), 4u);
    t += 1_s;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmProperties,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace tsim::core
