#include "core/capacity_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tsim::core {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

Params test_params() {
  Params p;
  p.p_threshold = 0.02;
  p.capacity_growth = 0.05;
  p.capacity_reset_intervals = 4;
  p.capacity_reset_jitter = 0.0;        // exact reset schedule for assertions
  p.estimate_shared_links_only = false;  // exercise the mechanics on any link
  return p;
}

LinkObservation obs(LinkKey link, std::initializer_list<LinkSessionObservation> sessions) {
  LinkObservation o;
  o.link = link;
  o.sessions = sessions;
  return o;
}

TEST(CapacityEstimatorTest, StartsInfinite) {
  const Params p = test_params();
  CapacityEstimator est{p};
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

TEST(CapacityEstimatorTest, NoEstimateBelowThreshold) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.01, 100'000}})}, 1_s);
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

TEST(CapacityEstimatorTest, EstimatesWhenAllSessionsLose) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 50'000}, {1, 0.12, 75'000}})}, 1_s);
  // 125 KB in 1 s = 1 Mbit/s delivered.
  EXPECT_NEAR(est.capacity_bps(LinkKey{1, 2}), 1e6, 1.0);
}

TEST(CapacityEstimatorTest, OneCleanSessionBlocksEstimate) {
  // The paper's second condition: a single session may see downstream loss
  // that the shared link is innocent of.
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 50'000}, {1, 0.0, 75'000}})}, 1_s);
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

TEST(CapacityEstimatorTest, WeightedOverallLossMustExceedThreshold) {
  Params p = test_params();
  p.p_threshold = 0.05;
  CapacityEstimator est{p};
  // Both sessions above... no wait: each must exceed 0.05 AND the byte-
  // weighted mean must exceed it. Here one is below the threshold.
  est.update({obs({1, 2}, {{0, 0.30, 1'000}, {1, 0.04, 99'000}})}, 1_s);
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

TEST(CapacityEstimatorTest, EstimateInflatesEachInterval) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 125'000}})}, 1_s);
  const double initial = est.capacity_bps(LinkKey{1, 2});
  est.update({}, 1_s);
  EXPECT_NEAR(est.capacity_bps(LinkKey{1, 2}), initial * 1.05, 1.0);
  est.update({}, 1_s);
  EXPECT_NEAR(est.capacity_bps(LinkKey{1, 2}), initial * 1.05 * 1.05, 1.0);
}

TEST(CapacityEstimatorTest, ResetsToInfinityOnSchedule) {
  const Params p = test_params();  // reset after 4 intervals
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 125'000}})}, 1_s);
  for (int i = 0; i < 3; ++i) {
    est.update({}, 1_s);
    EXPECT_FALSE(std::isinf(est.capacity_bps(LinkKey{1, 2}))) << i;
  }
  est.update({}, 1_s);  // 4th interval: reset
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

TEST(CapacityEstimatorTest, ReestimateRefreshesAgeAndValue) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 125'000}})}, 1_s);
  est.update({}, 1_s);
  est.update({}, 1_s);
  // Third interval: congestion again with a different delivered volume.
  est.update({obs({1, 2}, {{0, 0.20, 250'000}})}, 1_s);
  EXPECT_NEAR(est.capacity_bps(LinkKey{1, 2}), 2e6, 1.0);
  // Age restarted: survives 3 more growth intervals.
  est.update({}, 1_s);
  est.update({}, 1_s);
  est.update({}, 1_s);
  EXPECT_FALSE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

TEST(CapacityEstimatorTest, ReestimateNeverLowersTheEstimate) {
  // Delivered-under-loss is a lower bound on capacity: a measurement taken
  // in an episode's collapse tail (sessions already backed off) must not
  // drag a good estimate down. Downward adaptation is the reset's job.
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 250'000}})}, 1_s);  // 2 Mbps measured
  ASSERT_NEAR(est.capacity_bps(LinkKey{1, 2}), 2e6, 1.0);
  est.update({obs({1, 2}, {{0, 0.30, 60'000}})}, 1_s);  // collapse tail: 480 Kbps
  // Existing estimate kept (plus one growth step), not lowered.
  EXPECT_GE(est.capacity_bps(LinkKey{1, 2}), 2e6);
}

TEST(CapacityEstimatorTest, LinksAreIndependent) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 125'000}}), obs({2, 3}, {{0, 0.01, 500'000}})}, 1_s);
  EXPECT_FALSE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{2, 3})));
}

TEST(CapacityEstimatorTest, WindowScalesEstimate) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 250'000}})}, 2_s);
  // 250 KB over 2 s = 1 Mbit/s.
  EXPECT_NEAR(est.capacity_bps(LinkKey{1, 2}), 1e6, 1.0);
}

TEST(CapacityEstimatorTest, ZeroBytesNeverEstimates) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.50, 0}})}, 1_s);
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

TEST(CapacityEstimatorTest, SharedLinksOnlySkipsSingleSessionLinks) {
  Params p = test_params();
  p.estimate_shared_links_only = true;  // the paper's Fig-4 stage list
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 50'000}, {1, 0.12, 75'000}}),
              obs({2, 3}, {{0, 0.10, 50'000}})},
             1_s);
  EXPECT_FALSE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{2, 3})));
}

TEST(CapacityEstimatorTest, ResetClearsEverything) {
  const Params p = test_params();
  CapacityEstimator est{p};
  est.update({obs({1, 2}, {{0, 0.10, 125'000}})}, 1_s);
  est.reset();
  EXPECT_EQ(est.finite_estimates(), 0u);
  EXPECT_TRUE(std::isinf(est.capacity_bps(LinkKey{1, 2})));
}

}  // namespace
}  // namespace tsim::core
