#include "core/toposense.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tsim::core {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

SessionNodeInput node(net::NodeId id, net::NodeId parent) {
  SessionNodeInput n;
  n.node = id;
  n.parent = parent;
  return n;
}

SessionNodeInput receiver(net::NodeId id, net::NodeId parent, double loss, std::uint64_t bytes,
                          int sub) {
  SessionNodeInput n = node(id, parent);
  n.is_receiver = true;
  n.loss_rate = tsim::units::LossFraction{loss};
  n.bytes_received = tsim::units::Bytes{bytes};
  n.subscription = sub;
  return n;
}

Params test_params() {
  Params p;
  p.p_threshold = 0.02;
  p.high_loss = 0.08;
  p.interval = 1_s;
  p.backoff_min = 5_s;
  p.backoff_max = 5_s;  // deterministic backoff for tests
  return p;
}

/// Bytes a receiver at `sub` layers sees over a 1 s window with no loss.
std::uint64_t bytes_for(const traffic::LayerSpec& spec, int sub) {
  return static_cast<std::uint64_t>(spec.cumulative_rate(sub).bps() / 8.0);
}

int prescription_for(const AlgorithmOutput& out, net::NodeId rcv) {
  for (const auto& p : out.prescriptions) {
    if (p.receiver == rcv) return p.subscription;
  }
  return -1;
}

struct TopoSenseFixture : ::testing::Test {
  Params params{test_params()};
  TopoSense algo{params, sim::Rng{99}};

  /// Single receiver behind two hops: 1 -> 2 -> 100.
  AlgorithmInput single(double loss, int sub, std::uint64_t bytes) {
    AlgorithmInput in;
    in.window = params.interval;
    SessionInput s;
    s.session = 0;
    s.source = 1;
    s.nodes = {node(1, net::kInvalidNode), node(2, 1), receiver(100, 2, loss, bytes, sub)};
    in.sessions.push_back(s);
    return in;
  }
};

TEST_F(TopoSenseFixture, CleanReceiverClimbsOneLayerPerInterval) {
  Time t = 1_s;
  int sub = 1;
  for (int i = 0; i < 5; ++i) {
    // Growing bytes: equality class "Lesser" (prev < cur) with history 0.
    const auto out = algo.run_interval(single(0.0, sub, bytes_for(params.layers, sub)), t);
    const int next = prescription_for(out, 100);
    EXPECT_EQ(next, std::min(sub + 1, params.layers.num_layers)) << "interval " << i;
    sub = next;
    t += 1_s;
  }
}

TEST_F(TopoSenseFixture, SustainedCongestionReducesSubscription) {
  Time t = 1_s;
  // Climb to 4 first.
  int sub = 1;
  for (int i = 0; i < 3; ++i) {
    sub = prescription_for(
        algo.run_interval(single(0.0, sub, bytes_for(params.layers, sub)), t), 100);
    t += 1_s;
  }
  ASSERT_EQ(sub, 4);
  // Now two congested intervals with flat bandwidth.
  const std::uint64_t flat = bytes_for(params.layers, 3);
  int reduced = sub;
  for (int i = 0; i < 3; ++i) {
    reduced = prescription_for(algo.run_interval(single(0.15, reduced, flat), t), 100);
    t += 1_s;
  }
  EXPECT_LT(reduced, 4);
}

TEST_F(TopoSenseFixture, BackoffPreventsImmediateReadd) {
  // Receiver 100 suffers high loss while its sibling 101 is clean, so the
  // congestion stays leaf-local (the parent is not congested: its children
  // disagree) and the Table-I leaf row "hist 001 / Lesser -> drop + backoff"
  // fires at receiver 100 itself.
  auto make_input = [&](double loss100, int sub100, std::uint64_t bytes100) {
    AlgorithmInput in;
    in.window = params.interval;
    SessionInput s;
    s.session = 0;
    s.source = 1;
    s.nodes = {node(1, net::kInvalidNode), node(2, 1),
               receiver(100, 2, loss100, bytes100, sub100),
               receiver(101, 2, 0.0, bytes_for(params.layers, 2), 2)};
    in.sessions.push_back(s);
    return in;
  };

  Time t = 1_s;
  algo.run_interval(make_input(0.0, 3, bytes_for(params.layers, 2)), t);
  t += 1_s;
  // Bytes grew (Lesser) and loss is high: hist 001/Lesser -> drop layer 3.
  const auto out = algo.run_interval(
      make_input(0.12, 3, bytes_for(params.layers, 3) * 9 / 10), t);
  const int dropped = prescription_for(out, 100);
  EXPECT_EQ(dropped, 2);
  EXPECT_TRUE(algo.backing_off(0, 100, 3, t));
  // Backoff expires 5 s later (deterministic in tests).
  EXPECT_FALSE(algo.backing_off(0, 100, 3, t + 6_s));

  // While backing off, clean intervals must not climb back into layer 3.
  t += 1_s;
  int cur = dropped;
  while (t < 6_s) {
    cur = prescription_for(
        algo.run_interval(make_input(0.0, cur, bytes_for(params.layers, cur)), t), 100);
    EXPECT_LE(cur, dropped);
    t += 1_s;
  }
}

TEST_F(TopoSenseFixture, SubtreeIndependence) {
  // Fig 1 intuition: congestion under node 2 must not curb the receiver
  // under node 5.
  Time t = 1_s;
  AlgorithmInput in;
  in.window = params.interval;
  SessionInput s;
  s.session = 0;
  s.source = 1;
  s.nodes = {node(1, net::kInvalidNode),
             node(2, 1),
             receiver(3, 2, 0.12, bytes_for(params.layers, 2), 2),
             receiver(4, 2, 0.13, bytes_for(params.layers, 2), 2),
             node(5, 1),
             receiver(6, 5, 0.0, bytes_for(params.layers, 4), 4)};
  in.sessions.push_back(s);

  // Two intervals of the same state so histories build up.
  algo.run_interval(in, t);
  t += 1_s;
  const auto out = algo.run_interval(in, t);
  EXPECT_LE(prescription_for(out, 3), 2);
  EXPECT_LE(prescription_for(out, 4), 2);
  EXPECT_GE(prescription_for(out, 6), 4);  // unaffected branch keeps climbing
}

TEST_F(TopoSenseFixture, SharedBottleneckCoordination) {
  // Both receivers behind node 2 lose similarly -> node 2 is the congested
  // root and acts once; receivers are not individually punished below the
  // subtree's supply.
  Time t = 1_s;
  AlgorithmInput in;
  in.window = params.interval;
  SessionInput s;
  s.session = 0;
  s.source = 1;
  s.nodes = {node(1, net::kInvalidNode), node(2, 1),
             receiver(3, 2, 0.12, bytes_for(params.layers, 3), 3),
             receiver(4, 2, 0.12, bytes_for(params.layers, 3), 3)};
  in.sessions.push_back(s);
  algo.run_interval(in, t);
  t += 1_s;
  const auto out = algo.run_interval(in, t);
  const int p3 = prescription_for(out, 3);
  const int p4 = prescription_for(out, 4);
  EXPECT_EQ(p3, p4);  // coordinated
  EXPECT_LT(p3, 3);   // reduced
}

TEST_F(TopoSenseFixture, PrescriptionsNeverBelowBaseLayer) {
  Time t = 1_s;
  for (int i = 0; i < 10; ++i) {
    const auto out = algo.run_interval(single(0.9, 1, 100), t);
    ASSERT_EQ(out.prescriptions.size(), 1u);
    EXPECT_GE(out.prescriptions[0].subscription, 1);
    t += 1_s;
  }
}

TEST_F(TopoSenseFixture, PrescriptionsNeverAboveMaxLayers) {
  Time t = 1_s;
  int sub = 5;
  for (int i = 0; i < 10; ++i) {
    const auto out =
        algo.run_interval(single(0.0, sub, bytes_for(params.layers, sub) + 50 * i), t);
    sub = prescription_for(out, 100);
    ASSERT_LE(sub, params.layers.num_layers);
    t += 1_s;
  }
  EXPECT_EQ(sub, params.layers.num_layers);
}

TEST_F(TopoSenseFixture, EmptyInputProducesEmptyOutput) {
  const auto out = algo.run_interval(AlgorithmInput{}, 1_s);
  EXPECT_TRUE(out.prescriptions.empty());
  EXPECT_TRUE(out.diagnostics.empty());
}

TEST_F(TopoSenseFixture, DiagnosticsCoverEveryNode) {
  const auto out = algo.run_interval(single(0.0, 2, bytes_for(params.layers, 2)), 1_s);
  ASSERT_EQ(out.diagnostics.size(), 1u);
  EXPECT_EQ(out.diagnostics[0].nodes.size(), 3u);
}

TEST_F(TopoSenseFixture, CapacityEstimateCapsSupplyAcrossSessions) {
  // Two sessions share link (1,2); both lose heavily while receiving about
  // 250 Kbps each -> estimated capacity ~500 Kbps -> shares ~250 Kbps
  // -> supply capped at 3 layers each.
  Time t = 1_s;
  auto make_input = [&](double loss, int sub) {
    AlgorithmInput in;
    in.window = params.interval;
    for (net::SessionId k = 0; k < 2; ++k) {
      SessionInput s;
      s.session = k;
      s.source = 1;
      s.nodes = {node(1, net::kInvalidNode), node(2, 1),
                 receiver(100 + k, 2, loss, 31'250, sub)};  // 250 Kbps
      in.sessions.push_back(s);
    }
    return in;
  };
  algo.run_interval(make_input(0.15, 4), t);
  EXPECT_NEAR(algo.capacities().capacity_bps(LinkKey{1, 2}), 500e3, 1e3);
  t += 1_s;
  const auto out = algo.run_interval(make_input(0.15, 4), t);
  for (const auto& p : out.prescriptions) {
    EXPECT_LE(p.subscription, 3) << "receiver " << p.receiver;
  }
}

TEST_F(TopoSenseFixture, DeterministicGivenSameSeedAndInputs) {
  TopoSense a{test_params(), sim::Rng{7}};
  TopoSense b{test_params(), sim::Rng{7}};
  Time t = 1_s;
  for (int i = 0; i < 20; ++i) {
    const double loss = (i % 5 == 4) ? 0.12 : 0.0;
    const auto oa = a.run_interval(single(loss, 3, bytes_for(params.layers, 3)), t);
    const auto ob = b.run_interval(single(loss, 3, bytes_for(params.layers, 3)), t);
    ASSERT_EQ(oa.prescriptions.size(), ob.prescriptions.size());
    for (std::size_t j = 0; j < oa.prescriptions.size(); ++j) {
      EXPECT_EQ(oa.prescriptions[j].subscription, ob.prescriptions[j].subscription);
    }
    t += 1_s;
  }
}

}  // namespace
}  // namespace tsim::core
