// Golden tests pinning the dense (link-id indexed) pass implementations to a
// straightforward map-based reference, written the way the seed implemented
// them. The refactor is required to be a pure data-layout change: every
// derived quantity must match the reference bit-for-bit (EXPECT_EQ on
// doubles, not EXPECT_NEAR), and repeated runs must be byte-identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/passes.hpp"
#include "core/toposense.hpp"
#include "sim/random.hpp"

namespace tsim::core {
namespace {

using namespace tsim::sim::time_literals;

constexpr double kInf = std::numeric_limits<double>::infinity();

SessionNodeInput node(net::NodeId id, net::NodeId parent) {
  SessionNodeInput n;
  n.node = id;
  n.parent = parent;
  return n;
}

SessionNodeInput receiver(net::NodeId id, net::NodeId parent, double loss, std::uint64_t bytes,
                          int sub) {
  SessionNodeInput n = node(id, parent);
  n.is_receiver = true;
  n.loss_rate = tsim::units::LossFraction{loss};
  n.bytes_received = tsim::units::Bytes{bytes};
  n.subscription = sub;
  return n;
}

Params params() {
  Params p;
  p.p_threshold = 0.02;
  p.estimate_shared_links_only = false;
  return p;
}

/// Three sessions over overlapping trees: a shared backbone link (1,2), two
/// shared mid links, and private access links — enough aliasing to make an
/// indexing bug visible.
std::vector<SessionInput> fixture_sessions() {
  std::vector<SessionInput> sessions(3);
  sessions[0].session = 0;
  sessions[0].source = 1;
  sessions[0].nodes = {node(1, net::kInvalidNode), node(2, 1),     node(3, 2),
                       receiver(100, 3, 0.05, 40'000, 3),          receiver(101, 3, 0.06, 35'000, 2),
                       node(4, 2),                                 receiver(102, 4, 0.0, 90'000, 5)};
  sessions[1].session = 1;
  sessions[1].source = 1;
  sessions[1].nodes = {node(1, net::kInvalidNode), node(2, 1), node(3, 2),
                       receiver(110, 3, 0.04, 30'000, 2), receiver(111, 2, 0.0, 80'000, 4)};
  sessions[2].session = 2;
  sessions[2].source = 1;
  sessions[2].nodes = {node(1, net::kInvalidNode), node(2, 1),
                       receiver(120, 2, 0.09, 20'000, 1)};
  return sessions;
}

CapacityEstimator fixture_estimator(const Params& p) {
  CapacityEstimator est{p};
  est.update({LinkObservation{{1, 2}, {{0, 0.05, 60'000}, {1, 0.04, 50'000}, {2, 0.09, 20'000}}},
              LinkObservation{{2, 3}, {{0, 0.05, 40'000}, {1, 0.04, 30'000}}},
              LinkObservation{{3, 100}, {{0, 0.05, 40'000}}}},
             1_s);
  return est;
}

/// Seed-style reference for compute_bottlenecks: capacities looked up per
/// LinkKey in a map, no interned ids.
void reference_bottlenecks(LabeledTree& lt, const CapacityEstimator& capacities) {
  const TreeIndex& tree = lt.tree;
  const auto& order = tree.bfs_order();
  for (const auto idx : order) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = tree.parent(i);
    if (p < 0) {
      lt.bottleneck_bps[i] = kInf;
      continue;
    }
    const double cap = capacities.capacity_bps(
        LinkKey{tree.node(static_cast<std::size_t>(p)).node, tree.node(i).node});
    lt.bottleneck_bps[i] = std::min(lt.bottleneck_bps[static_cast<std::size_t>(p)], cap);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t i = static_cast<std::size_t>(*it);
    if (tree.is_leaf(i)) {
      lt.max_handle_bps[i] = lt.bottleneck_bps[i];
      continue;
    }
    double best = tree.node(i).is_receiver ? lt.bottleneck_bps[i] : 0.0;
    for (const auto c : tree.children(i)) {
      best = std::max(best, lt.max_handle_bps[static_cast<std::size_t>(c)]);
    }
    lt.max_handle_bps[i] = best;
  }
}

/// Seed-style reference for compute_fair_shares: per-link state lives in
/// unordered_maps keyed by LinkKey. Accumulation still walks sessions in
/// order and nodes in BFS order, so the float operations are the same
/// sequence as the dense core — any divergence is a real behaviour change.
void reference_fair_shares(std::vector<LabeledTree>& trees, const CapacityEstimator& capacities,
                           const Params& p) {
  const auto uplink = [](const LabeledTree& lt, std::size_t i) {
    const int par = lt.tree.parent(i);
    return LinkKey{lt.tree.node(static_cast<std::size_t>(par)).node, lt.tree.node(i).node};
  };

  std::unordered_map<LinkKey, int> crossing;
  for (const LabeledTree& lt : trees) {
    for (const auto idx : lt.tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      if (lt.tree.parent(i) >= 0) ++crossing[uplink(lt, i)];
    }
  }

  const double base = p.layers.base_rate.bps();
  std::vector<std::vector<double>> x(trees.size());
  for (std::size_t s = 0; s < trees.size(); ++s) {
    const LabeledTree& lt = trees[s];
    const TreeIndex& tree = lt.tree;
    std::vector<double> headroom(tree.size(), kInf);
    for (const auto idx : tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const int par = tree.parent(i);
      if (par < 0) continue;
      const LinkKey key = uplink(lt, i);
      const double cap = capacities.capacity_bps(key);
      double avail = kInf;
      if (cap != kInf) {
        avail = cap - base * static_cast<double>(crossing[key] - 1);
        avail = std::max(avail, base);
      }
      headroom[i] = std::min(headroom[static_cast<std::size_t>(par)], avail);
    }
    x[s].assign(tree.size(), 0.0);
    const auto& order = tree.bfs_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t i = static_cast<std::size_t>(*it);
      double xi = 0.0;
      if (tree.node(i).is_receiver) {
        xi = headroom[i] == kInf
                 ? static_cast<double>(p.layers.num_layers)
                 : static_cast<double>(p.layers.max_layers_for_bandwidth(
                           tsim::units::BitsPerSec{headroom[i]}));
      }
      for (const auto c : tree.children(i)) {
        xi = std::max(xi, x[s][static_cast<std::size_t>(c)]);
      }
      x[s][i] = std::max(xi, 1.0);
    }
  }

  std::unordered_map<LinkKey, double> x_sum;
  for (std::size_t s = 0; s < trees.size(); ++s) {
    const LabeledTree& lt = trees[s];
    for (const auto idx : lt.tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      if (lt.tree.parent(i) >= 0) x_sum[uplink(lt, i)] += x[s][i];
    }
  }

  for (std::size_t s = 0; s < trees.size(); ++s) {
    LabeledTree& lt = trees[s];
    const TreeIndex& tree = lt.tree;
    for (const auto idx : tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const int par = tree.parent(i);
      if (par < 0) {
        lt.share_bps[i] = kInf;
        continue;
      }
      const LinkKey key = uplink(lt, i);
      const double cap = capacities.capacity_bps(key);
      double share = kInf;
      if (cap != kInf) {
        share = crossing[key] > 1 ? x[s][i] * cap / x_sum[key] : cap;
        share = std::max(share, base);
      }
      lt.share_bps[i] = std::min(lt.share_bps[static_cast<std::size_t>(par)], share);
    }
  }
}

std::vector<LabeledTree> build_labeled(const std::vector<SessionInput>& sessions,
                                       const Params& p) {
  std::vector<LabeledTree> trees;
  for (const SessionInput& s : sessions) {
    trees.emplace_back(TreeIndex{s});
    label_congestion(trees.back(), p);
  }
  return trees;
}

TEST(GoldenPassesTest, BottlenecksMatchReferenceExactly) {
  const Params p = params();
  const CapacityEstimator est = fixture_estimator(p);
  std::vector<LabeledTree> dense = build_labeled(fixture_sessions(), p);
  std::vector<LabeledTree> ref = build_labeled(fixture_sessions(), p);
  for (std::size_t s = 0; s < dense.size(); ++s) {
    compute_bottlenecks(dense[s], est);
    reference_bottlenecks(ref[s], est);
    ASSERT_EQ(dense[s].tree.size(), ref[s].tree.size());
    for (std::size_t i = 0; i < dense[s].tree.size(); ++i) {
      EXPECT_EQ(dense[s].bottleneck_bps[i], ref[s].bottleneck_bps[i]) << "s=" << s << " i=" << i;
      EXPECT_EQ(dense[s].max_handle_bps[i], ref[s].max_handle_bps[i]) << "s=" << s << " i=" << i;
    }
  }
}

TEST(GoldenPassesTest, FairSharesMatchReferenceExactly) {
  const Params p = params();
  const CapacityEstimator est = fixture_estimator(p);
  std::vector<LabeledTree> dense = build_labeled(fixture_sessions(), p);
  std::vector<LabeledTree> ref = build_labeled(fixture_sessions(), p);
  for (auto& lt : dense) compute_bottlenecks(lt, est);
  for (auto& lt : ref) reference_bottlenecks(lt, est);
  compute_fair_shares(dense, est, p);
  reference_fair_shares(ref, est, p);
  for (std::size_t s = 0; s < dense.size(); ++s) {
    for (std::size_t i = 0; i < dense[s].tree.size(); ++i) {
      // Exact equality: the dense core must perform the identical float
      // operation sequence, not an approximation of it.
      EXPECT_EQ(dense[s].share_bps[i], ref[s].share_bps[i]) << "s=" << s << " i=" << i;
    }
  }
}

TEST(GoldenPassesTest, ObservationOrderIsFirstEncounterAndRepeatable) {
  const Params p = params();
  std::vector<LabeledTree> trees = build_labeled(fixture_sessions(), p);
  const auto a = collect_link_observations(trees);
  const auto b = collect_link_observations(trees);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].link, b[i].link) << i;
    ASSERT_EQ(a[i].sessions.size(), b[i].sessions.size()) << i;
  }
  // First-encounter order over session 0's BFS: backbone first, then the
  // session-0 subtree edges in BFS order.
  ASSERT_GE(a.size(), 3u);
  EXPECT_EQ(a[0].link, (LinkKey{1, 2}));
  EXPECT_EQ(a[1].link, (LinkKey{2, 3}));
  EXPECT_EQ(a[2].link, (LinkKey{2, 4}));
  // The shared backbone saw all three sessions, in session order.
  ASSERT_EQ(a[0].sessions.size(), 3u);
  EXPECT_EQ(a[0].sessions[0].session, 0u);
  EXPECT_EQ(a[0].sessions[1].session, 1u);
  EXPECT_EQ(a[0].sessions[2].session, 2u);
}

TEST(GoldenPassesTest, TwoAlgorithmRunsAreIdentical) {
  // The determinism regression the refactor must uphold: two fresh TopoSense
  // instances fed the same input sequence produce identical outputs — no
  // hash-order, pointer-order or reuse-dependent behaviour anywhere.
  const auto run = [] {
    Params p;
    TopoSense algo{p, sim::Rng{7}};
    std::vector<AlgorithmOutput> outs;
    sim::Rng loss_rng{99};
    AlgorithmInput input;
    input.window = 1_s;
    input.sessions = fixture_sessions();
    for (int k = 0; k < 50; ++k) {
      for (SessionInput& s : input.sessions) {
        for (SessionNodeInput& n : s.nodes) {
          if (!n.is_receiver) continue;
          n.loss_rate = tsim::units::LossFraction{
              loss_rng.bernoulli(0.3) ? loss_rng.uniform(0.03, 0.2) : 0.0};
          n.bytes_received = tsim::units::Bytes{loss_rng.uniform_int(10'000, 100'000)};
        }
      }
      outs.push_back(algo.run_interval(input, sim::Time::seconds(1 + k)));
    }
    return outs;
  };

  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].prescriptions.size(), b[k].prescriptions.size()) << k;
    for (std::size_t i = 0; i < a[k].prescriptions.size(); ++i) {
      EXPECT_EQ(a[k].prescriptions[i].receiver, b[k].prescriptions[i].receiver);
      EXPECT_EQ(a[k].prescriptions[i].session, b[k].prescriptions[i].session);
      EXPECT_EQ(a[k].prescriptions[i].subscription, b[k].prescriptions[i].subscription);
    }
    ASSERT_EQ(a[k].diagnostics.size(), b[k].diagnostics.size()) << k;
  }
}

}  // namespace
}  // namespace tsim::core
