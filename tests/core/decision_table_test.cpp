#include "core/decision_table.hpp"

#include <gtest/gtest.h>

namespace tsim::core {
namespace {

TEST(HistoryTest, PushShiftsAndMasks) {
  CongestionHistory h = 0;
  h = push_history(h, true);   // 001
  EXPECT_EQ(h, 1);
  h = push_history(h, true);   // 011
  EXPECT_EQ(h, 3);
  h = push_history(h, false);  // 110
  EXPECT_EQ(h, 6);
  h = push_history(h, true);   // 101 (oldest bit shifted out)
  EXPECT_EQ(h, 5);
  h = push_history(h, true);   // 011
  EXPECT_EQ(h, 3);
}

// --- Exact transcription checks against Table I -----------------------------

TEST(DecisionTableTest, LeafLesserRows) {
  EXPECT_EQ(leaf_decision(0, BwEquality::kLesser).action, LeafAction::kAddLayer);
  EXPECT_EQ(leaf_decision(1, BwEquality::kLesser).action, LeafAction::kDropIfHighLoss);
  EXPECT_TRUE(leaf_decision(1, BwEquality::kLesser).set_backoff);
  for (CongestionHistory h : {2, 4, 5, 6}) {
    EXPECT_EQ(leaf_decision(h, BwEquality::kLesser).action, LeafAction::kMaintain) << int(h);
  }
  EXPECT_EQ(leaf_decision(3, BwEquality::kLesser).action, LeafAction::kReduceToPrevSupply);
  EXPECT_EQ(leaf_decision(7, BwEquality::kLesser).action, LeafAction::kHalvePrevSupply);
  EXPECT_TRUE(leaf_decision(7, BwEquality::kLesser).set_backoff);
}

TEST(DecisionTableTest, LeafEqualRows) {
  for (CongestionHistory h : {0, 4}) {
    EXPECT_EQ(leaf_decision(h, BwEquality::kEqual).action, LeafAction::kAddLayer) << int(h);
  }
  for (CongestionHistory h : {1, 2, 5, 6}) {
    EXPECT_EQ(leaf_decision(h, BwEquality::kEqual).action, LeafAction::kMaintain) << int(h);
  }
  for (CongestionHistory h : {3, 7}) {
    EXPECT_EQ(leaf_decision(h, BwEquality::kEqual).action, LeafAction::kHalvePrevSupply)
        << int(h);
    EXPECT_TRUE(leaf_decision(h, BwEquality::kEqual).set_backoff);
  }
}

TEST(DecisionTableTest, LeafGreaterRows) {
  EXPECT_EQ(leaf_decision(0, BwEquality::kGreater).action, LeafAction::kAddLayer);
  for (CongestionHistory h : {1, 2, 4, 5, 6}) {
    EXPECT_EQ(leaf_decision(h, BwEquality::kGreater).action, LeafAction::kMaintain) << int(h);
  }
  for (CongestionHistory h : {3, 7}) {
    EXPECT_EQ(leaf_decision(h, BwEquality::kGreater).action, LeafAction::kHalveIfVeryHighLoss)
        << int(h);
    EXPECT_FALSE(leaf_decision(h, BwEquality::kGreater).set_backoff);
  }
}

TEST(DecisionTableTest, InternalRows) {
  for (const BwEquality eq : {BwEquality::kLesser, BwEquality::kEqual, BwEquality::kGreater}) {
    for (CongestionHistory h : {0, 4}) {
      EXPECT_EQ(internal_decision(h, eq), InternalAction::kAcceptChildren) << int(h);
    }
    for (CongestionHistory h : {2, 3, 6}) {
      EXPECT_EQ(internal_decision(h, eq), InternalAction::kMaintain) << int(h);
    }
  }
  for (CongestionHistory h : {1, 5, 7}) {
    EXPECT_EQ(internal_decision(h, BwEquality::kGreater), InternalAction::kHalveCurrentSupply);
    EXPECT_EQ(internal_decision(h, BwEquality::kEqual), InternalAction::kHalvePrevSupply);
    EXPECT_EQ(internal_decision(h, BwEquality::kLesser), InternalAction::kHalvePrevSupply);
  }
}

// --- Properties over the whole table ----------------------------------------

class TableTotality
    : public ::testing::TestWithParam<std::tuple<int, BwEquality>> {};

TEST_P(TableTotality, EveryCellDefined) {
  const auto [h, eq] = GetParam();
  const auto history = static_cast<CongestionHistory>(h);
  // Leaf and internal actions exist and stringify for every (history, eq).
  const LeafDecision leaf = leaf_decision(history, eq);
  EXPECT_FALSE(to_string(leaf.action).empty());
  EXPECT_NE(to_string(leaf.action), "?");
  const InternalAction internal = internal_decision(history, eq);
  EXPECT_NE(to_string(internal), "?");
}

TEST_P(TableTotality, CurrentlyCongestedNeverAddsALayer) {
  const auto [h, eq] = GetParam();
  const auto history = static_cast<CongestionHistory>(h);
  if ((history & 1) != 0) {  // congested at T2 (now)
    EXPECT_NE(leaf_decision(history, eq).action, LeafAction::kAddLayer);
    EXPECT_NE(internal_decision(history, eq), InternalAction::kAcceptChildren);
  }
}

TEST_P(TableTotality, CleanHistoryNeverReduces) {
  const auto [h, eq] = GetParam();
  const auto history = static_cast<CongestionHistory>(h);
  if (history == 0) {
    const LeafAction a = leaf_decision(history, eq).action;
    EXPECT_TRUE(a == LeafAction::kAddLayer || a == LeafAction::kMaintain);
    EXPECT_EQ(internal_decision(history, eq), InternalAction::kAcceptChildren);
  }
}

TEST_P(TableTotality, PersistentCongestionAlwaysReducesOrGuards) {
  const auto [h, eq] = GetParam();
  const auto history = static_cast<CongestionHistory>(h);
  if (history == 7) {  // congested in all three intervals
    const LeafAction a = leaf_decision(history, eq).action;
    EXPECT_TRUE(a == LeafAction::kHalvePrevSupply || a == LeafAction::kHalveIfVeryHighLoss);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, TableTotality,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(BwEquality::kLesser, BwEquality::kEqual,
                                         BwEquality::kGreater)));

TEST(DecisionTableTest, ToStringCoversEnums) {
  EXPECT_EQ(to_string(BwEquality::kLesser), "Lesser");
  EXPECT_EQ(to_string(BwEquality::kEqual), "Equal");
  EXPECT_EQ(to_string(BwEquality::kGreater), "Greater");
  EXPECT_EQ(to_string(LeafAction::kAddLayer), "AddLayer");
  EXPECT_EQ(to_string(InternalAction::kAcceptChildren), "AcceptChildren");
}

}  // namespace
}  // namespace tsim::core
