// Failure-aware rerouting: a link failure bumps the topology epoch, unicast
// routes recompute around the cut, and multicast trees prune the dead branch
// and re-graft members over the surviving path (and back after repair).
#include <gtest/gtest.h>

#include "fault/fault_injector.hpp"
#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace tsim::fault {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// Diamond: s -> a -> d is the fast path (10 ms hops), s -> b -> d the slow
/// backup (50 ms hops). Dijkstra prefers the fast path until it fails.
struct DiamondFixture : ::testing::Test {
  sim::Simulation simulation{11};
  net::Network network{simulation};
  net::NodeId s{network.add_node("s")};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};
  net::NodeId d{network.add_node("d")};
  mcast::MulticastRouter router{simulation, network, {}};

  DiamondFixture() {
    network.add_duplex_link(s, a, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(a, d, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(s, b, tsim::units::BitsPerSec{10e6}, 50_ms);
    network.add_duplex_link(b, d, tsim::units::BitsPerSec{10e6}, 50_ms);
    network.compute_routes();
    router.set_session_source(0, s);
  }
};

TEST_F(DiamondFixture, UnicastReroutesAroundFailureAndBack) {
  ASSERT_EQ(network.routes().path(s, d), (std::vector<net::NodeId>{s, a, d}));
  const std::uint64_t epoch0 = network.topology_version();

  FaultPlan plan;
  plan.link_outage("s", "a", 1_s, 2_s);
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();

  simulation.run_until(Time::seconds(1.5));
  EXPECT_EQ(network.routes().path(s, d), (std::vector<net::NodeId>{s, b, d}));
  EXPECT_GT(network.topology_version(), epoch0);

  simulation.run_until(Time::seconds(2.5));
  EXPECT_EQ(network.routes().path(s, d), (std::vector<net::NodeId>{s, a, d}));
}

TEST_F(DiamondFixture, MulticastRegraftsOntoSurvivingPathAndBackAfterRepair) {
  const net::GroupAddr g{0, 1};
  router.join(d, g);

  FaultPlan plan;
  plan.link_outage("a", "d", 1_s, 10_s);
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();

  int delivered = 0;
  network.set_local_sink(d, [&](const net::PacketRef&) { ++delivered; });
  auto send = [this, g]() {
    net::Packet p;
    p.kind = net::PacketKind::kData;
    p.size_bytes = 1000;
    p.src = s;
    p.multicast = true;
    p.group = g;
    network.send_multicast(p);
  };

  // Before the failure: delivered over the fast branch.
  simulation.at(500_ms, send);
  simulation.run_until(1_s);
  EXPECT_EQ(delivered, 1);

  // During the outage: tree re-grafts via b, member still served.
  simulation.at(2_s, send);
  simulation.run_until(4_s);
  EXPECT_EQ(delivered, 2);
  const mcast::GroupTree* tree = router.tree(g);
  ASSERT_NE(tree, nullptr);
  bool via_b = false;
  for (const auto& [parent, child] : tree->edges) via_b = via_b || parent == b || child == b;
  EXPECT_TRUE(via_b);

  // After repair: back on the fast branch.
  simulation.at(11_s, send);
  simulation.run_until(13_s);
  EXPECT_EQ(delivered, 3);
  tree = router.tree(g);
  ASSERT_NE(tree, nullptr);
  bool via_a = false;
  for (const auto& [parent, child] : tree->edges) via_a = via_a || parent == a || child == a;
  EXPECT_TRUE(via_a);
}

TEST_F(DiamondFixture, PartitionedMemberIsPrunedUntilRepair) {
  // Cut both branches to d: the member is unreachable, the tree must not
  // forward anything (and must not crash); repair re-grafts it.
  const net::GroupAddr g{0, 1};
  router.join(d, g);

  FaultPlan plan;
  plan.link_outage("a", "d", 1_s, 5_s);
  plan.link_outage("b", "d", 1_s, 5_s);
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();

  int delivered = 0;
  network.set_local_sink(d, [&](const net::PacketRef&) { ++delivered; });
  auto send = [this, g]() {
    net::Packet p;
    p.kind = net::PacketKind::kData;
    p.size_bytes = 1000;
    p.src = s;
    p.multicast = true;
    p.group = g;
    network.send_multicast(p);
  };

  simulation.at(2_s, send);
  simulation.run_until(4_s);
  EXPECT_EQ(delivered, 0);

  simulation.at(6_s, send);
  simulation.run_until(8_s);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace tsim::fault
