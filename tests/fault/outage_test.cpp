// End-to-end fault scenarios: receivers fall back to unilateral decisions
// while the control loop is severed, recover after repair, and every fault
// scenario reproduces bit-identically from the same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "scenarios/scenario_builder.hpp"
#include "scenarios/topology_file.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

std::string fingerprint(Scenario& s) {
  std::string out;
  for (const auto& r : s.results()) {
    out += r.name + ":";
    for (const auto& [t, level] : r.timeline.points()) {
      out += std::to_string(t.as_nanoseconds()) + "/" + std::to_string(level) + ",";
    }
    out += "|loss=" + std::to_string(r.loss_overall) + ";";
  }
  return out;
}

ScenarioConfig config(std::uint64_t seed, Time duration) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  return cfg;
}

TEST(LinkFailureTest, UnilateralFallbackDuringOutageAndRecoveryAfterRepair) {
  fault::FaultPlan plan;
  plan.link_outage("r0", "r1", 120_s, 180_s);
  auto s = ScenarioBuilder(config(42, 360_s)).topology_a({}).with_faults(plan).build();

  // Converged before the cut.
  s->run_until(120_s);
  EXPECT_GE(s->endpoints()[0]->subscription(), 2);

  // During the outage the set-1 receivers hear neither data nor suggestions:
  // the watchdog must shed layers without any controller help.
  s->run_until(180_s);
  EXPECT_LE(s->endpoints()[0]->subscription(), 1);
  EXPECT_GT(s->receiver_agents()[0]->unilateral_drops(), 0u);
  EXPECT_GT(s->receiver_agents()[0]->max_suggestion_gap(), 30_s);
  // The unaffected set-2 branch kept hearing suggestions throughout.
  EXPECT_LT(s->receiver_agents()[2]->max_suggestion_gap(), 30_s);

  // After repair the tree re-grafts and the controller steers set 1 back.
  s->run();
  for (const auto& r : s->results()) {
    EXPECT_GE(r.final_subscription, r.optimal - 1) << r.name;
  }
  EXPECT_EQ(s->fault_injectors().front()->stats().link_down_transitions, 1u);
  EXPECT_EQ(s->fault_injectors().front()->stats().link_up_transitions, 1u);
}

TEST(ControllerOutageTest, ReceiversActUnilaterallyWhileControllerIsDown) {
  fault::FaultPlan plan;
  plan.controller_outage(60_s, 120_s);
  auto s = ScenarioBuilder(config(43, 240_s))
               .topology_a({})
               .with_faults(plan)
               .with_cross_traffic({"r0", "r2", 700e3, 65_s, 120_s})
               .build();
  s->run();

  EXPECT_EQ(s->controller()->outages(), 1u);
  EXPECT_TRUE(s->controller()->enabled());
  std::uint64_t unilateral = 0;
  Time max_gap = Time::zero();
  for (const auto& agent : s->receiver_agents()) {
    unilateral += agent->unilateral_actions();
    max_gap = std::max(max_gap, agent->max_suggestion_gap());
  }
  // Congestion arrived mid-outage: somebody had to act alone.
  EXPECT_GT(unilateral, 0u);
  EXPECT_GT(max_gap, 12_s);
  for (const auto& r : s->results()) {
    EXPECT_GE(r.final_subscription, r.optimal - 1) << r.name;
  }
}

TEST(ControllerOutageTest, RestartDropsLearnedStateButKeepsDurableRecord) {
  // Pins the set_enabled contract (see ControllerAgent's header): disabling
  // models a process death, so the in-memory report history is lost, while
  // the billing ledger and wire counters — the durable audit record — must
  // survive the restart untouched.
  auto s = ScenarioBuilder(config(11, 240_s)).topology_a({}).build();
  s->run_until(59_s);
  control::ControllerAgent* agent = s->controller();
  ASSERT_NE(agent, nullptr);
  const control::ControllerStats before = agent->stats();
  EXPECT_GT(before.reports_received, 0u);
  EXPECT_GT(agent->report_history_size(), 0u);

  agent->set_enabled(false);
  EXPECT_EQ(agent->report_history_size(), 0u);  // learned state died with the process
  EXPECT_EQ(agent->stats().reports_received, before.reports_received);  // ledger survives
  EXPECT_EQ(agent->stats().suggestions_sent, before.suggestions_sent);
  EXPECT_EQ(agent->stats().outages, before.outages + 1);

  agent->set_enabled(true);
  s->run_until(240_s);
  const control::ControllerStats after = agent->stats();
  EXPECT_GT(after.reports_received, before.reports_received);  // control loop resumed
  EXPECT_GT(after.intervals_run, before.intervals_run);
  EXPECT_GT(agent->report_history_size(), 0u);  // history rebuilt from fresh reports
}

TEST(FaultDeterminismTest, SameSeedSameFingerprintForEveryFaultKind) {
  const auto run_plan = [](const fault::FaultPlan& plan) {
    auto s = ScenarioBuilder(config(7, 200_s)).topology_a({}).with_faults(plan).build();
    s->run();
    return fingerprint(*s);
  };

  std::vector<fault::FaultPlan> plans(5);
  plans[0].link_outage("r0", "r1", 60_s, 120_s);
  plans[1].link_flap("r0", "r1", 60_s, 120_s, 20_s, 0.5);
  plans[2].link_lossy("r0", "r1", 0.2, 60_s, 120_s);
  plans[3].controller_outage(60_s, 120_s);
  plans[4].drop_suggestions(0.5, 60_s, 120_s);

  for (std::size_t i = 0; i < plans.size(); ++i) {
    const std::string first = run_plan(plans[i]);
    const std::string second = run_plan(plans[i]);
    EXPECT_EQ(first, second) << "fault plan " << i << " is not deterministic";
    EXPECT_FALSE(first.empty());
  }
}

TEST(FaultDeterminismTest, FaultRunDiffersFromFaultFreeRun) {
  // Sanity: the injector actually changes the observable run.
  auto clean = ScenarioBuilder(config(7, 200_s)).topology_a({}).build();
  clean->run();
  fault::FaultPlan plan;
  plan.link_outage("r0", "r1", 60_s, 120_s);
  auto faulty = ScenarioBuilder(config(7, 200_s)).topology_a({}).with_faults(plan).build();
  faulty->run();
  EXPECT_NE(fingerprint(*clean), fingerprint(*faulty));
}

TEST(TopologyFileFaultTest, FileDeclaredFaultsAreInstalledAndApplied) {
  constexpr const char* kTopology = R"(
node src
node mid
node leaf
link src mid 2Mbps 20ms
link mid leaf 512kbps 20ms
source 0 src
receiver leaf 0
controller src
fault link mid leaf down 30 up 60
fault suggestions drop 1.0 90 120
)";
  const auto parsed = parse_topology(kTopology);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.description->faults.size(), 3u);

  auto s = Scenario::from_description(config(3, 150_s), *parsed.description);
  s->run();
  ASSERT_EQ(s->fault_injectors().size(), 1u);
  const auto& stats = s->fault_injectors().front()->stats();
  EXPECT_EQ(stats.link_down_transitions, 1u);
  EXPECT_EQ(stats.link_up_transitions, 1u);
  EXPECT_GT(stats.suggestions_dropped, 0u);
}

TEST(ScenarioFaultApiTest, UnknownLinkNameThrowsAtInstall) {
  fault::FaultPlan plan;
  plan.link_down("r0", "nonexistent", 10_s);
  EXPECT_THROW(
      ScenarioBuilder(config(1, 60_s)).topology_a({}).with_faults(plan).build(),
      std::invalid_argument);
}

TEST(ScenarioFaultApiTest, ControllerFaultWithoutControllerThrows) {
  fault::FaultPlan plan;
  plan.controller_outage(10_s, 20_s);
  ScenarioConfig cfg = config(1, 60_s);
  cfg.control.kind = ControllerKind::kNone;
  EXPECT_THROW(ScenarioBuilder(cfg).topology_a({}).with_faults(plan).build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsim::scenarios
