// FaultPlan: fluent construction, ordering, validation, and the topology-file
// `fault` grammar that produces plans from text.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include "scenarios/topology_file.hpp"

namespace tsim::fault {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

TEST(FaultPlanTest, FluentBuildersRecordEvents) {
  FaultPlan plan;
  plan.link_outage("a", "b", 10_s, 20_s)
      .link_flap("a", "b", 30_s, 60_s, 10_s, 0.5)
      .link_lossy("b", "c", 0.25, 5_s, 15_s)
      .controller_outage(40_s, 50_s)
      .drop_suggestions(1.0, 70_s, 80_s);
  // link_outage and controller_outage each expand to a down + an up event.
  ASSERT_EQ(plan.size(), 7u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kLinkLossy);
  EXPECT_EQ(plan.events()[4].kind, FaultKind::kControllerDown);
  EXPECT_EQ(plan.events()[5].kind, FaultKind::kControllerUp);
  EXPECT_EQ(plan.events()[6].kind, FaultKind::kSuggestionDrop);
  EXPECT_TRUE(plan.validate().empty()) << plan.validate();
}

TEST(FaultPlanTest, SortedEventsOrderByStartTimeStably) {
  FaultPlan plan;
  plan.link_down("a", "b", 30_s);
  plan.link_lossy("a", "b", 0.1, 10_s, 20_s);
  plan.link_down("c", "d", 10_s);  // same start as lossy: insertion order kept
  const auto sorted = plan.sorted_events();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].kind, FaultKind::kLinkLossy);
  EXPECT_EQ(sorted[1].a, "c");
  EXPECT_EQ(sorted[2].at, 30_s);
}

TEST(FaultPlanTest, ValidateCatchesBadInput) {
  {
    FaultPlan p;
    p.link_down("", "b", 10_s);
    EXPECT_FALSE(p.validate().empty());
  }
  {
    FaultPlan p;
    p.link_lossy("a", "b", 1.5, 10_s, 20_s);  // probability > 1
    EXPECT_FALSE(p.validate().empty());
  }
  {
    FaultPlan p;
    p.link_lossy("a", "b", 0.5, 20_s, 10_s);  // inverted window
    EXPECT_FALSE(p.validate().empty());
  }
  {
    FaultPlan p;
    p.link_flap("a", "b", 10_s, 20_s, Time::zero(), 0.5);  // period must be > 0
    EXPECT_FALSE(p.validate().empty());
  }
  {
    FaultPlan p;
    p.link_flap("a", "b", 10_s, 20_s, 2_s, 1.5);  // duty out of range
    EXPECT_FALSE(p.validate().empty());
  }
}

TEST(FaultPlanTest, ValidateRejectsOverlappingOutages) {
  {
    FaultPlan p;  // second down lands inside the first outage window
    p.link_outage("a", "b", 10_s, 30_s).link_down("a", "b", 20_s);
    EXPECT_NE(p.validate().find("overlapping"), std::string::npos) << p.validate();
  }
  {
    FaultPlan p;  // same physical link, opposite endpoint order
    p.link_outage("a", "b", 10_s, 30_s).link_outage("b", "a", 15_s, 40_s);
    EXPECT_NE(p.validate().find("overlapping"), std::string::npos) << p.validate();
  }
  {
    FaultPlan p;
    p.link_up("a", "b", 10_s);  // repairs a link that never went down
    EXPECT_NE(p.validate().find("without a preceding down"), std::string::npos);
  }
  {
    FaultPlan p;  // back-to-back outages on one link are fine
    p.link_outage("a", "b", 10_s, 20_s).link_outage("a", "b", 30_s, 40_s);
    EXPECT_TRUE(p.validate().empty()) << p.validate();
  }
  {
    FaultPlan p;  // permanent down after a completed outage is fine
    p.link_outage("a", "b", 10_s, 20_s).link_down("a", "b", 50_s);
    EXPECT_TRUE(p.validate().empty()) << p.validate();
  }
  {
    FaultPlan p;  // distinct links may overlap freely
    p.link_outage("a", "b", 10_s, 30_s).link_outage("b", "c", 15_s, 25_s);
    EXPECT_TRUE(p.validate().empty()) << p.validate();
  }
}

TEST(FaultPlanTest, SummaryMentionsEveryEvent) {
  FaultPlan plan;
  plan.link_outage("r0", "r1", 60_s, 120_s).controller_outage(10_s, 20_s);
  const std::string s = plan.summary();
  EXPECT_NE(s.find("r0"), std::string::npos);
  EXPECT_NE(s.find("controller"), std::string::npos);
}

/// --- topology-file grammar --------------------------------------------------

constexpr const char* kBaseTopology = R"(
node s
node r
node d
link s r 1Mbps 10ms
link r d 1Mbps 10ms
source 0 s
receiver d 0
controller s
)";

scenarios::ParseResult parse_with(const std::string& fault_lines) {
  return scenarios::parse_topology(std::string{kBaseTopology} + fault_lines);
}

TEST(FaultGrammarTest, ParsesLinkOutage) {
  const auto result = parse_with("fault link r d down 60 up 120\n");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& events = result.description->faults.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(events[0].at, 60_s);
  EXPECT_EQ(events[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(events[1].at, 120_s);
}

TEST(FaultGrammarTest, ParsesPermanentLinkDown) {
  const auto result = parse_with("fault link s r down 30\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.description->faults.size(), 1u);
  EXPECT_EQ(result.description->faults.events()[0].kind, FaultKind::kLinkDown);
}

TEST(FaultGrammarTest, ParsesLossyFlapControllerAndSuggestions) {
  const auto result = parse_with(
      "fault link r d lossy 0.2 10 50\n"
      "fault link r d flap 100 160 period 10 duty 0.7\n"
      "fault controller down 60 up 90\n"
      "fault suggestions drop 0.5 20 40\n");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& events = result.description->faults.events();
  ASSERT_EQ(events.size(), 5u);  // controller outage = down + up
  EXPECT_EQ(events[0].kind, FaultKind::kLinkLossy);
  EXPECT_DOUBLE_EQ(events[0].probability, 0.2);
  EXPECT_EQ(events[1].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(events[1].period, 10_s);
  EXPECT_DOUBLE_EQ(events[1].duty, 0.7);
  EXPECT_EQ(events[2].kind, FaultKind::kControllerDown);
  EXPECT_EQ(events[3].kind, FaultKind::kControllerUp);
  EXPECT_EQ(events[4].kind, FaultKind::kSuggestionDrop);
}

TEST(FaultGrammarTest, RejectsMalformedFaultLines) {
  EXPECT_FALSE(parse_with("fault link r d down\n").ok());
  EXPECT_FALSE(parse_with("fault link r d lossy 1.5 10 20\n").ok());
  EXPECT_FALSE(parse_with("fault link r d flap 10 20\n").ok());
  EXPECT_FALSE(parse_with("fault controller down 10\n").ok());
  EXPECT_FALSE(parse_with("fault suggestions drop 0.5\n").ok());
  EXPECT_FALSE(parse_with("fault disk full 10\n").ok());
}

TEST(FaultGrammarTest, RejectsUndeclaredNodes) {
  const auto result = parse_with("fault link r ghost down 60\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("ghost"), std::string::npos);
  // The diagnostic points at the fault line (base topology spans lines 1-9).
  EXPECT_NE(result.error.find("line 10"), std::string::npos) << result.error;
}

TEST(FaultGrammarTest, RejectsFaultOnNonexistentLink) {
  // s and d are both declared nodes, but no `link s d` exists.
  const auto result = parse_with("fault link s d down 60\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("nonexistent link"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("line 10"), std::string::npos) << result.error;
}

TEST(FaultGrammarTest, RejectsOverlappingOutageSchedules) {
  const auto result = parse_with(
      "fault link r d down 10 up 50\n"
      "fault link d r down 30 up 70\n");  // same link, reversed endpoints
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("overlapping"), std::string::npos) << result.error;

  const auto sequential = parse_with(
      "fault link r d down 10 up 50\n"
      "fault link r d down 60 up 70\n");
  EXPECT_TRUE(sequential.ok()) << sequential.error;
}

TEST(FaultGrammarTest, RejectsInvertedWindowViaPlanValidation) {
  EXPECT_FALSE(parse_with("fault link r d lossy 0.2 50 10\n").ok());
}

}  // namespace
}  // namespace tsim::fault
