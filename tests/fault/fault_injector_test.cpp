// FaultInjector: link outages drop traffic deterministically, lossy windows
// thin it, flapping follows a golden transition timetable, and bad plans fail
// at construction, not mid-run.
#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace tsim::fault {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// chain: a -- b (duplex, 1 Mbps, 10 ms), unicast traffic a -> b.
struct InjectorFixture : ::testing::Test {
  sim::Simulation simulation{7};
  net::Network network{simulation};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};

  InjectorFixture() {
    network.add_duplex_link(a, b, tsim::units::BitsPerSec{1e6}, 10_ms);
    network.compute_routes();
  }

  net::Packet packet() const {
    net::Packet p;
    p.kind = net::PacketKind::kData;
    p.size_bytes = 500;
    p.src = a;
    p.dst = b;
    return p;
  }

  /// Sends one packet per `spacing` over [from, to).
  void send_stream(Time from, Time to, Time spacing) {
    for (Time t = from; t < to; t = t + spacing) {
      simulation.at(t, [this]() { network.send_unicast(packet()); });
    }
  }
};

TEST_F(InjectorFixture, LinkOutageBlocksDeliveryAndRepairRestoresIt) {
  int delivered = 0;
  network.set_local_sink(b, [&](const net::PacketRef&) { ++delivered; });

  FaultPlan plan;
  plan.link_outage("a", "b", 1_s, 2_s);
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();

  send_stream(Time::zero(), 3_s, 100_ms);  // 10 packets per second
  simulation.run_until(4_s);

  // ~10 packets before the outage, ~10 after, ~10 dropped during it.
  EXPECT_GE(delivered, 18);
  EXPECT_LE(delivered, 22);
  EXPECT_EQ(injector.stats().link_down_transitions, 1u);
  EXPECT_EQ(injector.stats().link_up_transitions, 1u);
}

TEST_F(InjectorFixture, LinkDownDrainsQueuedPackets) {
  // Saturate the link so packets queue, then cut it: the queue must drain as
  // fault drops and the in-flight packet must not arrive.
  int delivered = 0;
  network.set_local_sink(b, [&](const net::PacketRef&) { ++delivered; });
  simulation.at(100_ms, [this]() {
    for (int i = 0; i < 20; ++i) network.send_unicast(packet());
  });

  FaultPlan plan;
  plan.link_down("a", "b", 110_ms);  // a few packets into the burst
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();
  simulation.run_until(2_s);

  EXPECT_LT(delivered, 10);
  const net::Link& ab = network.link(network.links_between(a, b)[0]);
  EXPECT_GT(ab.stats().fault_dropped_packets, 0u);
  EXPECT_EQ(ab.queue_length(), 0u);
}

TEST_F(InjectorFixture, LossyWindowThinsTraffic) {
  int delivered = 0;
  network.set_local_sink(b, [&](const net::PacketRef&) { ++delivered; });

  FaultPlan plan;
  plan.link_lossy("a", "b", 0.5, Time::zero(), 10_s);
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();

  send_stream(Time::zero(), 10_s, 10_ms);  // 1000 packets
  simulation.run_until(11_s);

  // Bernoulli(0.5) over 1000 trials: far from both 0 and 1000.
  EXPECT_GT(delivered, 400);
  EXPECT_LT(delivered, 600);
  // Window closed: subsequent traffic is clean.
  const int at_window_end = delivered;
  send_stream(11_s, 12_s, 10_ms);
  simulation.run_until(13_s);
  EXPECT_EQ(delivered - at_window_end, 100);
}

TEST_F(InjectorFixture, FlapFollowsGoldenTransitionTimeline) {
  // flap [10, 25) s, period 10 s, duty 0.5: down@10, up@15, down@20, and the
  // final restore at the window end 25 (the up@25 inside the last cycle is
  // subsumed). Sample link state between every transition.
  FaultPlan plan;
  plan.link_flap("a", "b", 10_s, 25_s, 10_s, 0.5);
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();

  const net::Link& ab = network.link(network.links_between(a, b)[0]);
  std::vector<std::pair<double, bool>> samples;
  for (const double t : {9.0, 11.0, 14.0, 16.0, 19.0, 21.0, 24.0, 26.0}) {
    simulation.at(Time::seconds(t), [&samples, &ab, t]() { samples.emplace_back(t, ab.is_up()); });
  }
  simulation.run_until(30_s);

  const std::vector<std::pair<double, bool>> golden{{9.0, true},  {11.0, false}, {14.0, false},
                                                    {16.0, true}, {19.0, true},  {21.0, false},
                                                    {24.0, false}, {26.0, true}};
  EXPECT_EQ(samples, golden);
  EXPECT_EQ(injector.stats().link_down_transitions, 2u);
  EXPECT_EQ(injector.stats().link_up_transitions, 2u);
}

TEST_F(InjectorFixture, SuggestionDropFilterDropsOnlySuggestions) {
  int data = 0;
  int suggestions = 0;
  network.set_local_sink(b, [&](const net::PacketRef& p) {
    if (p->kind == net::PacketKind::kSuggestion) {
      ++suggestions;
    } else {
      ++data;
    }
  });

  FaultPlan plan;
  plan.drop_suggestions(1.0, Time::zero(), 10_s);
  FaultInjector injector{simulation, network, plan, {}};
  injector.start();

  for (int i = 0; i < 5; ++i) {
    simulation.at(Time::seconds(1 + i), [this]() {
      network.send_unicast(packet());
      net::Packet s = packet();
      s.kind = net::PacketKind::kSuggestion;
      network.send_unicast(s);
    });
  }
  simulation.run_until(8_s);

  EXPECT_EQ(data, 5);
  EXPECT_EQ(suggestions, 0);
  EXPECT_EQ(injector.stats().suggestions_dropped, 5u);
}

TEST_F(InjectorFixture, ConstructionRejectsBadPlans) {
  {
    FaultPlan plan;
    plan.link_down("a", "ghost", 1_s);
    EXPECT_THROW((FaultInjector{simulation, network, plan, {}}), std::invalid_argument);
  }
  {
    // A validation failure (inverted window), not a resolution failure.
    FaultPlan plan;
    plan.link_lossy("a", "b", 0.5, 10_s, 5_s);
    EXPECT_THROW((FaultInjector{simulation, network, plan, {}}), std::invalid_argument);
  }
  {
    // Controller events need a controller hook.
    FaultPlan plan;
    plan.controller_outage(1_s, 2_s);
    EXPECT_THROW((FaultInjector{simulation, network, plan, {}}), std::invalid_argument);
  }
  {
    // Nodes exist but no link connects them.
    net::NodeId c = network.add_node("c");
    (void)c;
    FaultPlan plan;
    plan.link_down("a", "c", 1_s);
    EXPECT_THROW((FaultInjector{simulation, network, plan, {}}), std::invalid_argument);
  }
}

}  // namespace
}  // namespace tsim::fault
