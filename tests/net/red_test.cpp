#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "traffic/cross_traffic.hpp"

namespace tsim::net {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

struct RedFixture : ::testing::Test {
  sim::Simulation simulation{43};
  Network network{simulation};
  NodeId a{network.add_node("a")};
  NodeId b{network.add_node("b")};
  LinkId link{};

  void build(double bps, std::size_t queue, bool red) {
    link = network.add_link(a, b, tsim::units::BitsPerSec{bps}, 10_ms, queue);
    network.add_link(b, a, tsim::units::BitsPerSec{bps}, 10_ms, queue);
    network.compute_routes();
    if (red) network.link(link).enable_red({});
  }

  void offer(double rate_bps, Time duration) {
    traffic::CbrFlow::Config cfg;
    cfg.src = a;
    cfg.dst = b;
    cfg.rate_bps = rate_bps;
    traffic::CbrFlow flow{simulation, network, cfg};
    flow.start();
    simulation.run_until(duration);
  }
};

TEST_F(RedFixture, NoEarlyDropsWhenUnderloaded) {
  build(1e6, 50, true);
  offer(300e3, 60_s);  // 30% load: queue stays near empty
  EXPECT_EQ(network.link(link).stats().dropped_packets, 0u);
}

TEST_F(RedFixture, EarlyDropsBeforeQueueFull) {
  build(200e3, 50, true);
  offer(300e3, 60_s);  // 150% load
  const auto& stats = network.link(link).stats();
  EXPECT_GT(stats.dropped_packets, 0u);
  // RED keeps the average queue between the thresholds rather than pinned at
  // the tail: the EWMA should sit below ~80% of the limit.
  EXPECT_LT(network.link(link).red_average_queue(), 0.8 * 50);
}

TEST_F(RedFixture, DropTailFillsQueueCompletely) {
  build(200e3, 50, false);
  offer(300e3, 60_s);
  // Under the same overload, drop-tail rides with a full queue.
  EXPECT_GT(network.link(link).queue_length(), 40u);
}

TEST_F(RedFixture, RedKeepsQueueShorter) {
  // Same load, two disciplines: RED's standing queue is much shorter.
  build(200e3, 50, true);
  offer(300e3, 60_s);
  const auto red_queue = network.link(link).queue_length();

  sim::Simulation sim2{43};
  Network net2{sim2};
  const NodeId a2 = net2.add_node();
  const NodeId b2 = net2.add_node();
  const LinkId l2 = net2.add_link(a2, b2, tsim::units::BitsPerSec{200e3}, 10_ms, 50);
  net2.add_link(b2, a2, tsim::units::BitsPerSec{200e3}, 10_ms, 50);
  net2.compute_routes();
  traffic::CbrFlow::Config cfg;
  cfg.src = a2;
  cfg.dst = b2;
  cfg.rate_bps = 300e3;
  traffic::CbrFlow flow{sim2, net2, cfg};
  flow.start();
  sim2.run_until(60_s);

  EXPECT_LT(red_queue, net2.link(l2).queue_length());
}

TEST_F(RedFixture, IdleDecayShrinksAverageQueue) {
  // Floyd/Jacobson idle handling: the EWMA only updates on arrivals, so
  // after an idle period the stale average must be decayed as if the queue
  // had drained one packet per transmission slot.
  build(200e3, 50, true);
  traffic::CbrFlow::Config burst_cfg;
  burst_cfg.src = a;
  burst_cfg.dst = b;
  burst_cfg.rate_bps = 300e3;  // 150% load for 30s builds the average up
  burst_cfg.stop = 30_s;
  traffic::CbrFlow burst{simulation, network, burst_cfg};
  burst.start();
  simulation.run_until(30_s);
  const double busy_avg = network.link(link).red_average_queue();
  ASSERT_GT(busy_avg, 1.0);

  // Two idle minutes (the queue drains, no arrivals touch the EWMA)...
  simulation.run_until(150_s);
  EXPECT_DOUBLE_EQ(network.link(link).red_average_queue(), busy_avg);  // stale until an arrival

  // ...then a single trickle arrival: the decay collapses the average.
  traffic::CbrFlow::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 8e3;  // one 1000-byte packet per second
  cfg.start = 150_s;
  cfg.stop = 152_s;
  traffic::CbrFlow flow{simulation, network, cfg};
  flow.start();
  simulation.run_until(152_s);
  EXPECT_LT(network.link(link).red_average_queue(), 0.05 * busy_avg);
}

TEST_F(RedFixture, NoSpuriousDropsAfterIdle) {
  // Without idle decay, the stale average can sit above min_threshold and
  // early-drop the first packets of a new burst on an empty queue.
  build(200e3, 50, true);
  traffic::CbrFlow::Config burst_cfg;
  burst_cfg.src = a;
  burst_cfg.dst = b;
  burst_cfg.rate_bps = 300e3;
  burst_cfg.stop = 30_s;
  traffic::CbrFlow burst{simulation, network, burst_cfg};
  burst.start();
  simulation.run_until(150_s);
  const auto drops_before = network.link(link).stats().dropped_packets;

  traffic::CbrFlow::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 100e3;  // 50% load: must sail through untouched
  cfg.start = 150_s;
  cfg.stop = 180_s;
  traffic::CbrFlow flow{simulation, network, cfg};
  flow.start();
  simulation.run_until(180_s);
  EXPECT_EQ(network.link(link).stats().dropped_packets, drops_before);
}

TEST_F(RedFixture, RedFlagAndAccessors) {
  build(1e6, 50, false);
  EXPECT_FALSE(network.link(link).red_enabled());
  network.link(link).enable_red({});
  EXPECT_TRUE(network.link(link).red_enabled());
  EXPECT_DOUBLE_EQ(network.link(link).red_average_queue(), 0.0);
}

}  // namespace
}  // namespace tsim::net
