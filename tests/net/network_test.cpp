#include "net/network.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace tsim::net {
namespace {

using namespace tsim::sim::time_literals;

struct NetworkFixture : ::testing::Test {
  sim::Simulation simulation{1};
  Network network{simulation};
};

TEST_F(NetworkFixture, NodesGetSequentialIdsAndDefaultNames) {
  const NodeId a = network.add_node();
  const NodeId b = network.add_node("router");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(network.node(a).name, "n0");
  EXPECT_EQ(network.node(b).name, "router");
  EXPECT_EQ(network.node_count(), 2u);
}

TEST_F(NetworkFixture, DuplexLinkCreatesBothDirections) {
  const NodeId a = network.add_node();
  const NodeId b = network.add_node();
  const auto [ab, ba] = network.add_duplex_link(a, b, tsim::units::BitsPerSec{1e6}, 10_ms);
  EXPECT_EQ(network.link(ab).from(), a);
  EXPECT_EQ(network.link(ab).to(), b);
  EXPECT_EQ(network.link(ba).from(), b);
  EXPECT_EQ(network.link(ba).to(), a);
  EXPECT_EQ(network.link_count(), 2u);
}

TEST_F(NetworkFixture, AddLinkValidatesNodes) {
  network.add_node();
  EXPECT_THROW(network.add_link(0, 5, tsim::units::BitsPerSec{1e6}, 1_ms), std::out_of_range);
}

TEST_F(NetworkFixture, SendBeforeRoutesComputedThrows) {
  const NodeId a = network.add_node();
  const NodeId b = network.add_node();
  network.add_link(a, b, tsim::units::BitsPerSec{1e6}, 1_ms);
  Packet p;
  p.src = a;
  p.dst = b;
  EXPECT_THROW(network.send_unicast(p), std::logic_error);
}

TEST_F(NetworkFixture, UnicastTraversesMultipleHops) {
  // a - m - b chain.
  const NodeId a = network.add_node();
  const NodeId m = network.add_node();
  const NodeId b = network.add_node();
  network.add_duplex_link(a, m, tsim::units::BitsPerSec{8e6}, 100_ms);
  network.add_duplex_link(m, b, tsim::units::BitsPerSec{8e6}, 100_ms);
  network.compute_routes();

  int got = 0;
  network.set_local_sink(b, [&](const PacketRef&) { ++got; });
  Packet p;
  p.kind = PacketKind::kReport;
  p.size_bytes = 64;
  p.src = a;
  p.dst = b;
  network.send_unicast(p);
  simulation.run_until(150_ms);
  EXPECT_EQ(got, 0);  // only one hop done
  simulation.run_until(300_ms);
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkFixture, LocalDeliveryWhenSrcEqualsDst) {
  const NodeId a = network.add_node();
  network.compute_routes();
  int got = 0;
  network.set_local_sink(a, [&](const PacketRef&) { ++got; });
  Packet p;
  p.src = a;
  p.dst = a;
  network.send_unicast(p);
  simulation.run_until(1_s);
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkFixture, NoRouteDropsSilently) {
  const NodeId a = network.add_node();
  const NodeId b = network.add_node();
  network.compute_routes();
  Packet p;
  p.src = a;
  p.dst = b;
  network.send_unicast(p);  // no links at all: dropped, no crash
  simulation.run_until(1_s);
  SUCCEED();
}

TEST_F(NetworkFixture, PacketUidsAreUnique) {
  network.add_node();
  network.compute_routes();
  const auto u1 = network.next_packet_uid();
  const auto u2 = network.next_packet_uid();
  EXPECT_NE(u1, u2);
}

TEST_F(NetworkFixture, MulticastWithoutForwarderIsDropped) {
  const NodeId a = network.add_node();
  network.compute_routes();
  Packet p;
  p.src = a;
  p.multicast = true;
  network.send_multicast(p);
  simulation.run_until(1_s);
  SUCCEED();
}

TEST(GroupAddrTest, KeyAndEquality) {
  const GroupAddr g1{3, 2};
  const GroupAddr g2{3, 2};
  const GroupAddr g3{3, 4};
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, g3);
  EXPECT_EQ(g1.key(), (3u << 8) | 2u);
  EXPECT_NE(std::hash<GroupAddr>{}(g1), std::hash<GroupAddr>{}(g3));
}

}  // namespace
}  // namespace tsim::net
