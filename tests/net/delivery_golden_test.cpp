// Golden fingerprint of the delivery datapath on a small topology.
//
// The fan-out hot path (multicast route -> link enqueue -> transmit ->
// arrival -> demux) is being migrated from per-object state to dense
// struct-of-arrays. The migration must be observationally invisible: every
// counter, every drop, every report must land exactly as before. This test
// pins the complete observable state of a small mixed workload (fan-out,
// tail drops, a mid-run back-off, a receiver stop, reverse-path reports) to
// a fingerprint recorded on the per-object layout. Any layout change that
// perturbs delivery order, drop decisions, or stats accounting fails here
// long before the scale bench or the e2e baseline would notice.
//
// If this test fails after an INTENTIONAL behaviour change (not a layout
// change), re-record: run with --gtest_also_run_disabled_tests and copy the
// printed fingerprint, noting the behaviour change in the commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "traffic/layered_source.hpp"
#include "transport/demux.hpp"
#include "transport/receiver_endpoint.hpp"

namespace tsim::net {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

/// src -- r (fat); r -- a (thin, tail-drops under 3 layers); r -- b (mid).
/// Receiver at a subscribes 3 layers and stops at 45 s; receiver at b starts
/// at 2 layers and backs off to 1 at 20 s (exercising the leave-latency
/// forward window). Reports flow back to src over the same links.
struct GoldenFixture {
  sim::Simulation simulation{42};
  Network network{simulation};
  NodeId src{network.add_node("src")};
  NodeId r{network.add_node("r")};
  NodeId a{network.add_node("a")};
  NodeId b{network.add_node("b")};
  mcast::MulticastRouter mcast{simulation, network, {Time::zero(), 1_s}};
  transport::DemuxRegistry demuxes{network};

  GoldenFixture() {
    network.add_duplex_link(src, r, units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(r, a, units::BitsPerSec{128e3}, 20_ms, 5);
    network.add_duplex_link(r, b, units::BitsPerSec{256e3}, 20_ms, 8);
    network.compute_routes();
    mcast.set_session_source(0, src);
  }

  std::uint64_t run() {
    traffic::LayeredSource::Config scfg;
    scfg.session = 0;
    scfg.node = src;
    scfg.model = traffic::TrafficModel::kCbr;
    traffic::LayeredSource source{simulation, network, scfg};

    transport::ReceiverEndpoint::Config acfg;
    acfg.node = a;
    acfg.session = 0;
    acfg.controller = src;
    acfg.initial_subscription = 3;
    acfg.stop = Time::seconds(45);
    transport::ReceiverEndpoint rx_a{simulation, network, mcast, demuxes.at(a), acfg};

    transport::ReceiverEndpoint::Config bcfg;
    bcfg.node = b;
    bcfg.session = 0;
    bcfg.controller = src;
    bcfg.initial_subscription = 2;
    transport::ReceiverEndpoint rx_b{simulation, network, mcast, demuxes.at(b), bcfg};

    source.start();
    rx_a.start();
    rx_b.start();
    simulation.at(20_s, [&rx_b]() { rx_b.set_subscription(1); });
    simulation.run_until(60_s);

    std::uint64_t h = kFnvOffset;
    // Per-link counters in LinkId order: the full conservation ledger plus
    // the per-group breakdown for every interned group.
    for (LinkId id = 0; id < network.link_count(); ++id) {
      const LinkStats& s = network.link(id).stats();
      fold(h, s.enqueued_packets);
      fold(h, s.enqueued_bytes.count());
      fold(h, s.delivered_packets);
      fold(h, s.delivered_bytes.count());
      fold(h, s.dropped_packets);
      fold(h, s.dropped_bytes.count());
      fold(h, network.link(id).queue_length());
      for (std::uint32_t g = 0; g < network.group_stats_count(); ++g) {
        const GroupAddr group = network.group_stats_key(g);
        fold(h, network.link(id).delivered_bytes_for_group(group).count());
        fold(h, network.link(id).dropped_packets_for_group(group));
      }
    }
    // Receiver observables: totals plus the per-window loss accounting.
    for (const transport::ReceiverEndpoint* rx : {&rx_a, &rx_b}) {
      fold(h, rx->total_bytes().count());
      fold(h, rx->total_packets().count());
      fold(h, rx->total_lost_packets().count());
      fold(h, rx->last_completed_window().received_packets.count());
      fold(h, rx->last_completed_window().lost_packets.count());
      fold(h, static_cast<std::uint64_t>(rx->subscription()));
    }
    // Tree shape for every group that still exists at the end.
    for (const GroupAddr group : mcast.active_groups()) {
      const mcast::GroupTree* tree = mcast.tree(group);
      if (tree == nullptr) continue;
      fold(h, tree->edges.size());
      for (const auto& [parent, child] : tree->edges) {
        fold(h, (static_cast<std::uint64_t>(parent) << 32) | child);
      }
    }
    return h;
  }
};

TEST(DeliveryGoldenTest, FingerprintPinnedAcrossLayoutChanges) {
  const std::uint64_t got = GoldenFixture{}.run();
  // Recorded on the per-object (heap-scattered) layout; the SoA layout must
  // reproduce it bit-for-bit.
  constexpr std::uint64_t kGolden = 0xda20927570477992ull;
  EXPECT_EQ(got, kGolden) << "delivery fingerprint changed: 0x" << std::hex << got;
}

TEST(DeliveryGoldenTest, FingerprintIsStableAcrossRuns) {
  EXPECT_EQ(GoldenFixture{}.run(), GoldenFixture{}.run());
}

}  // namespace
}  // namespace tsim::net
