#include "net/dot_export.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace tsim::net {
namespace {

using namespace tsim::sim::time_literals;

TEST(DotExportTest, EmitsNodesAndCollapsedEdges) {
  sim::Simulation simulation{1};
  Network network{simulation};
  const NodeId a = network.add_node("alpha");
  const NodeId b = network.add_node("beta");
  network.add_duplex_link(a, b, tsim::units::BitsPerSec{1.5e6}, 200_ms);

  const std::string dot = to_dot(network);
  EXPECT_NE(dot.find("graph network {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"alpha\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"beta\""), std::string::npos);
  EXPECT_NE(dot.find("1.5Mbps 200ms"), std::string::npos);
  // Duplex pair collapses to one undirected edge.
  EXPECT_EQ(dot.find("n0 -- n1"), dot.rfind("n0 -- n1"));
  EXPECT_EQ(dot.find("n1 -- n0"), std::string::npos);
}

TEST(DotExportTest, HighlightsGivenEdges) {
  sim::Simulation simulation{1};
  Network network{simulation};
  const NodeId a = network.add_node();
  const NodeId b = network.add_node();
  const NodeId c = network.add_node();
  network.add_duplex_link(a, b, tsim::units::BitsPerSec{1e6}, 10_ms);
  network.add_duplex_link(b, c, tsim::units::BitsPerSec{64e3}, 10_ms);

  const std::string dot = to_dot(network, {{b, c}});
  // Highlighted edge is red; the other is not.
  const auto bc = dot.find("n1 -- n2");
  ASSERT_NE(bc, std::string::npos);
  EXPECT_NE(dot.find("color=red", bc), std::string::npos);
  const auto ab = dot.find("n0 -- n1");
  const auto ab_end = dot.find('\n', ab);
  EXPECT_EQ(dot.substr(ab, ab_end - ab).find("color=red"), std::string::npos);
}

TEST(DotExportTest, BandwidthUnitsScale) {
  sim::Simulation simulation{1};
  Network network{simulation};
  const NodeId a = network.add_node();
  const NodeId b = network.add_node();
  const NodeId c = network.add_node();
  network.add_link(a, b, tsim::units::BitsPerSec{800.0}, 1_ms);
  network.add_link(b, c, tsim::units::BitsPerSec{64e3}, 1_ms);
  const std::string dot = to_dot(network);
  EXPECT_NE(dot.find("800bps"), std::string::npos);
  EXPECT_NE(dot.find("64kbps"), std::string::npos);
}

}  // namespace
}  // namespace tsim::net
