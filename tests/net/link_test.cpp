#include "net/link.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace tsim::net {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

struct LinkFixture : ::testing::Test {
  sim::Simulation simulation{1};
  Network network{simulation};
  NodeId a{network.add_node("a")};
  NodeId b{network.add_node("b")};

  std::vector<Packet> delivered;

  void wire_sink() {
    network.set_local_sink(b, [this](const PacketRef& p) { delivered.push_back(*p); });
  }

  Packet data_packet(std::uint32_t bytes) {
    Packet p;
    p.kind = PacketKind::kData;
    p.size_bytes = bytes;
    p.src = a;
    p.dst = b;
    return p;
  }
};

TEST_F(LinkFixture, TransmissionTimeMatchesBandwidth) {
  const LinkId id = network.add_link(a, b, tsim::units::BitsPerSec{8000.0}, 100_ms);  // 1000 B/s
  EXPECT_EQ(network.link(id).transmission_time(1000), Time::seconds(std::int64_t{1}));
  EXPECT_EQ(network.link(id).transmission_time(500), 500_ms);
}

TEST_F(LinkFixture, DeliversAfterSerializationPlusLatency) {
  const LinkId id = network.add_link(a, b, tsim::units::BitsPerSec{8'000'000.0}, 200_ms);  // 1 ms / 1000 B
  network.compute_routes();
  wire_sink();
  network.send_unicast(data_packet(1000));
  simulation.run_until(200_ms);
  EXPECT_TRUE(delivered.empty());  // still propagating (1 ms tx + 200 ms)
  simulation.run_until(202_ms);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(network.link(id).stats().delivered_packets, 1u);
}

TEST_F(LinkFixture, SerializesBackToBackPackets) {
  network.add_link(a, b, tsim::units::BitsPerSec{8000.0}, Time::zero(), 10);  // 1 s per 1000 B packet
  network.compute_routes();
  wire_sink();
  for (int i = 0; i < 3; ++i) network.send_unicast(data_packet(1000));
  simulation.run_until(Time::seconds(1.5));
  EXPECT_EQ(delivered.size(), 1u);
  simulation.run_until(Time::seconds(2.5));
  EXPECT_EQ(delivered.size(), 2u);
  simulation.run_until(Time::seconds(3.5));
  EXPECT_EQ(delivered.size(), 3u);
}

TEST_F(LinkFixture, DropTailWhenQueueFull) {
  const LinkId id = network.add_link(a, b, tsim::units::BitsPerSec{8000.0}, Time::zero(), 2);  // queue of 2
  network.compute_routes();
  wire_sink();
  // One transmitting + 2 queued = 3 accepted; the 4th and 5th drop.
  for (int i = 0; i < 5; ++i) network.send_unicast(data_packet(1000));
  simulation.run_until(10_s);
  EXPECT_EQ(delivered.size(), 3u);
  EXPECT_EQ(network.link(id).stats().dropped_packets, 2u);
  EXPECT_EQ(network.link(id).stats().dropped_bytes.count(), 2000u);
  EXPECT_EQ(network.link(id).stats().enqueued_packets, 5u);
}

TEST_F(LinkFixture, QueueDrainsAndAcceptsAgain) {
  const LinkId id = network.add_link(a, b, tsim::units::BitsPerSec{8000.0}, Time::zero(), 1);
  network.compute_routes();
  wire_sink();
  network.send_unicast(data_packet(1000));
  network.send_unicast(data_packet(1000));
  simulation.run_until(Time::seconds(2.5));
  EXPECT_EQ(delivered.size(), 2u);
  network.send_unicast(data_packet(1000));
  simulation.run_until(4_s);
  EXPECT_EQ(delivered.size(), 3u);
  EXPECT_EQ(network.link(id).stats().dropped_packets, 0u);
}

TEST_F(LinkFixture, PerGroupStatsTrackMulticastBytes) {
  const LinkId id = network.add_link(a, b, tsim::units::BitsPerSec{8'000'000.0}, 1_ms);
  network.compute_routes();

  // Stub forwarder: everything at `a` goes out on link `id`.
  struct Stub final : MulticastForwarder {
    LinkId link;
    NodeId origin;
    void route(NodeId node, const Packet&, std::vector<LinkId>& out, bool& local) override {
      if (node == origin) out.push_back(link);
      local = false;
    }
  } stub;
  stub.link = id;
  stub.origin = a;
  network.set_multicast_forwarder(&stub);

  Packet p = data_packet(1000);
  p.multicast = true;
  p.group = GroupAddr{7, 2};
  network.send_multicast(p);
  simulation.run_until(1_s);
  const auto& stats = network.link(id).stats();
  EXPECT_EQ(network.link(id).delivered_bytes_for_group(GroupAddr{7, 2}).count(), 1000u);
}

TEST_F(LinkFixture, ZeroBandwidthRejected) {
  EXPECT_THROW(network.add_link(a, b, tsim::units::BitsPerSec{0.0}, 1_ms), std::invalid_argument);
  EXPECT_THROW(network.add_link(a, b, tsim::units::BitsPerSec{-5.0}, 1_ms), std::invalid_argument);
}

}  // namespace
}  // namespace tsim::net
