#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace tsim::net {
namespace {

// Small diamond: 0 -> 1 -> 3, 0 -> 2 -> 3 with asymmetric costs.
std::vector<EdgeView> diamond() {
  return {
      {0, 1, 10, 1.0}, {1, 3, 11, 1.0},  // cost 2 via node 1
      {0, 2, 12, 0.5}, {2, 3, 13, 0.5},  // cost 1 via node 2
  };
}

TEST(RoutingTest, PicksCheapestPath) {
  RoutingTable rt;
  rt.build(4, diamond());
  EXPECT_EQ(rt.next_hop(0, 3), 12u);  // via node 2
  EXPECT_DOUBLE_EQ(rt.path_cost(0, 3), 1.0);
}

TEST(RoutingTest, DirectNeighborUsesDirectLink) {
  RoutingTable rt;
  rt.build(4, diamond());
  EXPECT_EQ(rt.next_hop(0, 1), 10u);
  EXPECT_EQ(rt.next_hop(2, 3), 13u);
}

TEST(RoutingTest, UnreachableGetsInvalidLink) {
  RoutingTable rt;
  rt.build(3, {{0, 1, 0, 1.0}});  // node 2 isolated; no reverse edges
  EXPECT_EQ(rt.next_hop(0, 2), kInvalidLink);
  EXPECT_EQ(rt.next_hop(1, 0), kInvalidLink);
  EXPECT_TRUE(std::isinf(rt.path_cost(0, 2)));
}

TEST(RoutingTest, SelfRouteIsTrivial) {
  RoutingTable rt;
  rt.build(2, {{0, 1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(rt.path_cost(0, 0), 0.0);
  EXPECT_EQ(rt.path(0, 0), (std::vector<NodeId>{0}));
}

TEST(RoutingTest, PathEnumeratesNodeSequence) {
  RoutingTable rt;
  rt.build(4, diamond());
  EXPECT_EQ(rt.path(0, 3), (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(rt.path(1, 3), (std::vector<NodeId>{1, 3}));
}

TEST(RoutingTest, PathEmptyWhenUnreachable) {
  RoutingTable rt;
  rt.build(3, {{0, 1, 0, 1.0}});
  EXPECT_TRUE(rt.path(0, 2).empty());
}

TEST(RoutingTest, ChainTopology) {
  // 0 -> 1 -> 2 -> 3 -> 4
  std::vector<EdgeView> edges;
  for (NodeId i = 0; i < 4; ++i) {
    edges.push_back({i, i + 1, i, 1.0});
  }
  RoutingTable rt;
  rt.build(5, edges);
  EXPECT_EQ(rt.path(0, 4), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(rt.path_cost(0, 4), 4.0);
  EXPECT_EQ(rt.next_hop(0, 4), 0u);
  EXPECT_EQ(rt.next_hop(2, 4), 2u);
}

TEST(RoutingTest, EqualCostsAreDeterministic) {
  // Two equal-cost paths 0->1->3 and 0->2->3; Dijkstra with strict < keeps
  // the first settled path, so repeated builds agree.
  std::vector<EdgeView> edges{
      {0, 1, 0, 1.0}, {1, 3, 1, 1.0}, {0, 2, 2, 1.0}, {2, 3, 3, 1.0}};
  RoutingTable a;
  RoutingTable b;
  a.build(4, edges);
  b.build(4, edges);
  EXPECT_EQ(a.next_hop(0, 3), b.next_hop(0, 3));
}

}  // namespace
}  // namespace tsim::net
