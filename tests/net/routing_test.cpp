#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace tsim::net {
namespace {

// Small diamond: 0 -> 1 -> 3, 0 -> 2 -> 3 with asymmetric costs.
std::vector<EdgeView> diamond() {
  return {
      {0, 1, 10, 1.0}, {1, 3, 11, 1.0},  // cost 2 via node 1
      {0, 2, 12, 0.5}, {2, 3, 13, 0.5},  // cost 1 via node 2
  };
}

TEST(RoutingTest, PicksCheapestPath) {
  RoutingTable rt;
  rt.build(4, diamond());
  EXPECT_EQ(rt.next_hop(0, 3), 12u);  // via node 2
  EXPECT_DOUBLE_EQ(rt.path_cost(0, 3), 1.0);
}

TEST(RoutingTest, DirectNeighborUsesDirectLink) {
  RoutingTable rt;
  rt.build(4, diamond());
  EXPECT_EQ(rt.next_hop(0, 1), 10u);
  EXPECT_EQ(rt.next_hop(2, 3), 13u);
}

TEST(RoutingTest, UnreachableGetsInvalidLink) {
  RoutingTable rt;
  rt.build(3, {{0, 1, 0, 1.0}});  // node 2 isolated; no reverse edges
  EXPECT_EQ(rt.next_hop(0, 2), kInvalidLink);
  EXPECT_EQ(rt.next_hop(1, 0), kInvalidLink);
  EXPECT_TRUE(std::isinf(rt.path_cost(0, 2)));
}

TEST(RoutingTest, SelfRouteIsTrivial) {
  RoutingTable rt;
  rt.build(2, {{0, 1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(rt.path_cost(0, 0), 0.0);
  EXPECT_EQ(rt.path(0, 0), (std::vector<NodeId>{0}));
}

TEST(RoutingTest, PathEnumeratesNodeSequence) {
  RoutingTable rt;
  rt.build(4, diamond());
  EXPECT_EQ(rt.path(0, 3), (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(rt.path(1, 3), (std::vector<NodeId>{1, 3}));
}

TEST(RoutingTest, PathEmptyWhenUnreachable) {
  RoutingTable rt;
  rt.build(3, {{0, 1, 0, 1.0}});
  EXPECT_TRUE(rt.path(0, 2).empty());
}

TEST(RoutingTest, ChainTopology) {
  // 0 -> 1 -> 2 -> 3 -> 4
  std::vector<EdgeView> edges;
  for (NodeId i = 0; i < 4; ++i) {
    edges.push_back({i, i + 1, i, 1.0});
  }
  RoutingTable rt;
  rt.build(5, edges);
  EXPECT_EQ(rt.path(0, 4), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(rt.path_cost(0, 4), 4.0);
  EXPECT_EQ(rt.next_hop(0, 4), 0u);
  EXPECT_EQ(rt.next_hop(2, 4), 2u);
}

// Star with bidirectional spokes: hub 0, leaves 1..n. Leaf i reaches the hub
// over link i-1 and the hub reaches leaf i over link n+i-1.
std::vector<EdgeView> star(NodeId leaves) {
  std::vector<EdgeView> edges;
  for (NodeId i = 1; i <= leaves; ++i) {
    edges.push_back({i, 0, i - 1, 1.0});
    edges.push_back({0, i, leaves + i - 1, 1.0});
  }
  return edges;
}

TEST(RoutingTest, SinkRowAnswersAllSourcesFromOneRow) {
  RoutingTable rt;
  rt.build(9, star(8));
  rt.add_sink(0);
  for (NodeId i = 1; i <= 8; ++i) {
    EXPECT_EQ(rt.next_hop(i, 0), i - 1) << "leaf " << i;
  }
  // Eight senders answered, zero per-source rows materialized.
  EXPECT_EQ(rt.computed_rows(), 0u);
  EXPECT_EQ(rt.computed_sink_rows(), 1u);
}

TEST(RoutingTest, SinkRowMatchesPerSourceRows) {
  // The destination-rooted answer must agree with the per-source Dijkstra on
  // a topology with a genuinely shortest path choice.
  RoutingTable plain;
  plain.build(4, diamond());
  RoutingTable sunk;
  sunk.build(4, diamond());
  sunk.add_sink(3);
  for (NodeId from = 0; from < 3; ++from) {
    EXPECT_EQ(sunk.next_hop(from, 3), plain.next_hop(from, 3)) << "from " << from;
  }
  EXPECT_EQ(sunk.computed_rows(), 0u);
}

TEST(RoutingTest, SinkRegistrationSurvivesRebuild) {
  RoutingTable rt;
  rt.build(3, star(2));
  rt.add_sink(0);
  EXPECT_EQ(rt.next_hop(1, 0), 0u);
  EXPECT_EQ(rt.computed_sink_rows(), 1u);
  // Rebuild with one more leaf: the memoized row is dropped, the registration
  // is not, and the recomputed row covers the new node.
  rt.build(4, star(3));
  EXPECT_EQ(rt.computed_sink_rows(), 0u);
  EXPECT_EQ(rt.next_hop(3, 0), 2u);
  EXPECT_EQ(rt.computed_sink_rows(), 1u);
  EXPECT_EQ(rt.computed_rows(), 0u);
}

TEST(RoutingTest, SinkRowUnreachableGetsInvalidLink) {
  RoutingTable rt;
  rt.build(3, {{0, 1, 0, 1.0}, {1, 0, 1, 1.0}});  // node 2 isolated
  rt.add_sink(0);
  EXPECT_EQ(rt.next_hop(2, 0), kInvalidLink);
  EXPECT_EQ(rt.next_hop(1, 0), 1u);
}

TEST(RoutingTest, SinkRowRespectsAsymmetricCosts) {
  // 0 -> 3 is cheap via 2 but 1 -> 3 direct edge is cheaper than detouring:
  // the reverse-Dijkstra row must follow FORWARD edge costs, not pretend the
  // graph is symmetric.
  RoutingTable rt;
  rt.build(4, diamond());
  rt.add_sink(3);
  EXPECT_EQ(rt.next_hop(0, 3), 12u);  // via node 2, cost 1.0
  EXPECT_EQ(rt.next_hop(1, 3), 11u);  // direct
}

TEST(RoutingTest, EqualCostsAreDeterministic) {
  // Two equal-cost paths 0->1->3 and 0->2->3; Dijkstra with strict < keeps
  // the first settled path, so repeated builds agree.
  std::vector<EdgeView> edges{
      {0, 1, 0, 1.0}, {1, 3, 1, 1.0}, {0, 2, 2, 1.0}, {2, 3, 3, 1.0}};
  RoutingTable a;
  RoutingTable b;
  a.build(4, edges);
  b.build(4, edges);
  EXPECT_EQ(a.next_hop(0, 3), b.next_hop(0, 3));
}

}  // namespace
}  // namespace tsim::net
