#include <gtest/gtest.h>

#include "net/link.hpp"

namespace tsim::net {
namespace {

using tsim::units::BitsPerSec;
using tsim::units::Bytes;
using namespace tsim::sim::time_literals;

TEST(FluidQueueTest, UnderloadDrainsBacklogWithoutLoss) {
  FluidQueue q;
  q.backlog_bits = 5'000.0;
  // Drain capacity (cap - rate) * dt = 1e5 bits >> backlog: clamps at zero.
  const double loss =
      fluid_queue_step(q, BitsPerSec{1e6}, BitsPerSec{2e6}, Bytes{30'000}, 100_ms);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  EXPECT_DOUBLE_EQ(q.backlog_bits, 0.0);
}

TEST(FluidQueueTest, PartialDrainKeepsRemainder) {
  FluidQueue q;
  q.backlog_bits = 200'000.0;
  const double loss =
      fluid_queue_step(q, BitsPerSec{1e6}, BitsPerSec{2e6}, Bytes{1'000'000}, 100_ms);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  EXPECT_DOUBLE_EQ(q.backlog_bits, 100'000.0);  // drained (2e6-1e6)*0.1
}

TEST(FluidQueueTest, ExactCapacityIsLossFreeAndHoldsBacklog) {
  FluidQueue q;
  q.backlog_bits = 4'000.0;
  const double loss =
      fluid_queue_step(q, BitsPerSec{1e6}, BitsPerSec{1e6}, Bytes{30'000}, 100_ms);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  EXPECT_DOUBLE_EQ(q.backlog_bits, 4'000.0);
}

TEST(FluidQueueTest, OverloadFillsWithoutLossUntilLimit) {
  FluidQueue q;
  // Excess (rate - cap) * dt = 1e5 bits against a 1 Mbit limit: pure fill.
  const double loss =
      fluid_queue_step(q, BitsPerSec{2e6}, BitsPerSec{1e6}, Bytes{125'000}, 100_ms);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  EXPECT_DOUBLE_EQ(q.backlog_bits, 100'000.0);
}

TEST(FluidQueueTest, OverflowShedsExcessAfterFillTime) {
  FluidQueue q;
  // limit 10k bits, excess 1e6 bps: fills in 0.01 s, overflows for 0.09 s.
  // Overflow = 1e6 * 0.09 = 9e4 bits of 2e6 * 0.1 = 2e5 offered -> 0.45.
  const double loss =
      fluid_queue_step(q, BitsPerSec{2e6}, BitsPerSec{1e6}, Bytes{1'250}, 100_ms);
  EXPECT_DOUBLE_EQ(loss, 0.45);
  EXPECT_DOUBLE_EQ(q.backlog_bits, 10'000.0);  // pinned at the limit
}

TEST(FluidQueueTest, FullQueueSteadyStateLossIsExcessFraction) {
  FluidQueue q;
  q.backlog_bits = 10'000.0;  // already at the limit
  const double loss =
      fluid_queue_step(q, BitsPerSec{2e6}, BitsPerSec{1e6}, Bytes{1'250}, 100_ms);
  // fill_time = 0: the whole step overflows, loss = (rate - cap) / rate.
  EXPECT_DOUBLE_EQ(loss, 0.5);
  EXPECT_DOUBLE_EQ(q.backlog_bits, 10'000.0);
}

TEST(FluidQueueTest, ConservesVolumeAcrossAlternatingSteps) {
  // Overload then underload: total delivered + lost + backlog must equal the
  // total offered volume (the property the engine's credit pass relies on).
  FluidQueue q;
  const double cap = 1e6;
  double offered_total = 0.0;
  double lost_total = 0.0;
  const double rates[] = {3e6, 0.5e6, 2e6, 0.0, 1.5e6};
  for (const double rate : rates) {
    const double step_offered = rate * 0.1;
    const double loss =
        fluid_queue_step(q, BitsPerSec{rate}, BitsPerSec{cap}, Bytes{12'500}, 100_ms);
    offered_total += step_offered;
    lost_total += loss * step_offered;
  }
  // Delivered volume is bounded by capacity: whatever was offered and neither
  // lost nor still queued has gone through the link.
  const double delivered = offered_total - lost_total - q.backlog_bits;
  EXPECT_GE(delivered, 0.0);
  EXPECT_LE(delivered, cap * 0.1 * 5 + 1e-6);
}

}  // namespace
}  // namespace tsim::net
