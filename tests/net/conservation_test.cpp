// Packet conservation properties of the forwarding substrate: every packet a
// link accepts is either delivered downstream or counted as dropped; nothing
// is silently created or lost.
#include <gtest/gtest.h>

#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "traffic/layered_source.hpp"

namespace tsim::net {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

class ConservationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationProperty, LinkCountersBalance) {
  sim::Simulation simulation{GetParam()};
  Network network{simulation};
  const NodeId src = network.add_node("src");
  const NodeId r = network.add_node("r");
  const NodeId a = network.add_node("a");
  const NodeId b = network.add_node("b");
  // Narrow middle link forces drops; receivers on fat access links.
  network.add_duplex_link(src, r, tsim::units::BitsPerSec{200e3}, 100_ms, 8);
  network.add_duplex_link(r, a, tsim::units::BitsPerSec{10e6}, 50_ms, 8);
  network.add_duplex_link(r, b, tsim::units::BitsPerSec{10e6}, 50_ms, 8);
  network.compute_routes();

  mcast::MulticastRouter mcast{simulation, network, {}};
  mcast.set_session_source(0, src);
  mcast.join(a, GroupAddr{0, 1});
  mcast.join(a, GroupAddr{0, 2});
  mcast.join(a, GroupAddr{0, 3});
  mcast.join(b, GroupAddr{0, 1});

  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = src;
  scfg.model = traffic::TrafficModel::kVbr;
  scfg.stop = 60_s;  // stop emitting, then drain the queues below
  traffic::LayeredSource source{simulation, network, scfg};

  std::uint64_t received_a = 0;
  std::uint64_t received_b = 0;
  network.set_local_sink(a, [&](const PacketRef&) { ++received_a; });
  network.set_local_sink(b, [&](const PacketRef&) { ++received_b; });

  source.start();
  simulation.run_until(60_s);
  // Drain in-flight packets: the source stopped being interesting; let the
  // queues flush.
  simulation.run_until(70_s);

  for (LinkId id = 0; id < network.link_count(); ++id) {
    const LinkStats& stats = network.link(id).stats();
    // Everything enqueued is eventually delivered or dropped (transmitter
    // can hold at most one in-flight packet, flushed by the drain above).
    EXPECT_EQ(stats.enqueued_packets, stats.delivered_packets + stats.dropped_packets)
        << "link " << id;
  }

  // Receivers cannot get more than the source sent.
  std::uint64_t sent = 0;
  for (int l = 1; l <= 6; ++l) sent += source.sent_packets(static_cast<LayerId>(l));
  EXPECT_LE(received_a + received_b, 2 * sent);
  EXPECT_GT(received_a, 0u);
  EXPECT_GT(received_b, 0u);

  // The narrow link did drop under a 3-layer load of 224 Kbps on 200 Kbps.
  const LinkStats& bottleneck = network.link(0).stats();
  EXPECT_GT(bottleneck.dropped_packets, 0u);
}

TEST_P(ConservationProperty, PerGroupBytesSumToTotal) {
  sim::Simulation simulation{GetParam()};
  Network network{simulation};
  const NodeId src = network.add_node("src");
  const NodeId dst = network.add_node("dst");
  const LinkId link = network.add_link(src, dst, tsim::units::BitsPerSec{10e6}, 10_ms, 100);
  network.compute_routes();

  mcast::MulticastRouter mcast{simulation, network, {}};
  mcast.set_session_source(0, src);
  for (int l = 1; l <= 4; ++l) {
    mcast.join(dst, GroupAddr{0, static_cast<LayerId>(l)});
  }

  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = src;
  traffic::LayeredSource source{simulation, network, scfg};
  source.start();
  simulation.run_until(30_s);

  const LinkStats& stats = network.link(link).stats();
  std::uint64_t by_group = 0;
  for (const std::uint64_t bytes : stats.delivered_bytes_by_group) by_group += bytes;
  EXPECT_EQ(by_group, stats.delivered_bytes.count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty, ::testing::Values(1u, 17u, 333u));

}  // namespace
}  // namespace tsim::net
