#include "mcast/multicast_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/simulation.hpp"

namespace tsim::mcast {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// star: src -> r -> {a, b}; all duplex 10 Mbps, 10 ms.
struct McastFixture : ::testing::Test {
  sim::Simulation simulation{1};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId r{network.add_node("r")};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};
  MulticastRouter router{simulation, network, {Time::zero(), 1_s}};

  McastFixture() {
    network.add_duplex_link(src, r, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(r, a, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.add_duplex_link(r, b, tsim::units::BitsPerSec{10e6}, 10_ms);
    network.compute_routes();
    router.set_session_source(0, src);
  }

  net::Packet packet(net::GroupAddr group) {
    net::Packet p;
    p.kind = net::PacketKind::kData;
    p.size_bytes = 1000;
    p.src = src;
    p.multicast = true;
    p.group = group;
    return p;
  }
};

TEST_F(McastFixture, JoinWithoutSourceThrows) {
  EXPECT_THROW(router.join(a, net::GroupAddr{9, 1}), std::logic_error);
}

TEST_F(McastFixture, MembershipReflectsJoinAndLeave) {
  const net::GroupAddr g{0, 1};
  EXPECT_FALSE(router.is_member(a, g));
  router.join(a, g);
  EXPECT_TRUE(router.is_member(a, g));
  router.leave(a, g);
  EXPECT_FALSE(router.is_member(a, g));  // local delivery stops immediately
}

TEST_F(McastFixture, TreeSpansJoinedMembers) {
  const net::GroupAddr g{0, 1};
  router.join(a, g);
  router.join(b, g);
  const GroupTree* tree = router.tree(g);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->source, src);
  EXPECT_EQ(tree->edges.size(), 3u);  // src->r, r->a, r->b
  EXPECT_TRUE(tree->entries.at(a).deliver_locally);
  EXPECT_TRUE(tree->entries.at(b).deliver_locally);
  EXPECT_EQ(tree->entries.at(src).out_links.size(), 1u);
  EXPECT_EQ(tree->entries.at(r).out_links.size(), 2u);
}

TEST_F(McastFixture, PacketsReachAllMembers) {
  const net::GroupAddr g{0, 1};
  router.join(a, g);
  router.join(b, g);
  int at_a = 0;
  int at_b = 0;
  network.set_local_sink(a, [&](const net::PacketRef&) { ++at_a; });
  network.set_local_sink(b, [&](const net::PacketRef&) { ++at_b; });
  network.send_multicast(packet(g));
  simulation.run_until(1_s);
  EXPECT_EQ(at_a, 1);
  EXPECT_EQ(at_b, 1);
}

TEST_F(McastFixture, NonMembersGetNothing) {
  const net::GroupAddr g{0, 1};
  router.join(a, g);
  int at_b = 0;
  network.set_local_sink(b, [&](const net::PacketRef&) { ++at_b; });
  network.send_multicast(packet(g));
  simulation.run_until(1_s);
  EXPECT_EQ(at_b, 0);
}

TEST_F(McastFixture, LeaveLatencyKeepsTrafficFlowingUpstream) {
  const net::GroupAddr g{0, 1};
  router.join(a, g);
  simulation.run_until(1_s);
  router.leave(a, g);

  // Immediately after the leave the branch is still grafted (IGMP
  // last-member query pending): packets still cross r -> a.
  const GroupTree* tree = router.tree(g);
  ASSERT_NE(tree, nullptr);
  EXPECT_FALSE(tree->entries.count(a) != 0 && tree->entries.at(a).deliver_locally);
  EXPECT_EQ(tree->edges.size(), 2u);  // src->r, r->a still forwarding

  // After leave_latency (1 s) the branch is pruned.
  simulation.run_until(Time::seconds(2.5));
  const GroupTree* pruned = router.tree(g);
  ASSERT_NE(pruned, nullptr);
  EXPECT_TRUE(pruned->edges.empty());
}

TEST_F(McastFixture, JoinLatencyDelaysDelivery) {
  MulticastRouter delayed{simulation, network, {500_ms, 1_s}};
  delayed.set_session_source(1, src);
  const net::GroupAddr g{1, 1};
  delayed.join(a, g);
  EXPECT_FALSE(delayed.is_member(a, g));
  simulation.run_until(600_ms);
  EXPECT_TRUE(delayed.is_member(a, g));
}

TEST_F(McastFixture, LeaveRacingPendingJoinCancelsIt) {
  MulticastRouter delayed{simulation, network, {500_ms, 1_s}};
  delayed.set_session_source(1, src);
  const net::GroupAddr g{1, 1};
  delayed.join(a, g);
  delayed.leave(a, g);
  simulation.run_until(1_s);
  EXPECT_FALSE(delayed.is_member(a, g));
}

TEST_F(McastFixture, LeaveRacingPendingJoinGraftsNoBranch) {
  // Nonzero join AND leave latency: a leave that races the in-flight graft
  // must cancel it cleanly. The buggy path set forward_until = now +
  // leave_latency, so the next rebuild grafted a branch that never carried
  // traffic and forwarded onto it for the whole leave-latency window.
  MulticastRouter delayed{simulation, network, {500_ms, 1_s}};
  delayed.set_session_source(1, src);
  const net::GroupAddr g{1, 1};
  delayed.join(a, g);       // graft in flight until t=500ms
  simulation.run_until(100_ms);
  delayed.leave(a, g);      // races the pending graft
  simulation.run_until(200_ms);

  const GroupTree* tree = delayed.tree(g);
  ASSERT_NE(tree, nullptr);
  EXPECT_TRUE(tree->edges.empty())
      << "a never-completed graft must not leave a forwarding branch";
  EXPECT_FALSE(delayed.is_member(a, g));

  // The cancelled join must also not resurrect once the original graft timer
  // fires (t=500ms) or the leave-latency window (1 s) elapses.
  simulation.run_until(2_s);
  const GroupTree* later = delayed.tree(g);
  ASSERT_NE(later, nullptr);
  EXPECT_TRUE(later->edges.empty());
  EXPECT_FALSE(delayed.is_member(a, g));
}

TEST_F(McastFixture, LeaveDuringRejoinGraftKeepsEarlierForwardWindow) {
  // active -> leave (real forward window opens) -> rejoin (graft pending) ->
  // leave again while pending. The second leave cancels only the pending
  // graft; the forward window earned by the first (real) leave still stands.
  MulticastRouter delayed{simulation, network, {500_ms, 1_s}};
  delayed.set_session_source(1, src);
  const net::GroupAddr g{1, 1};
  delayed.join(a, g);
  simulation.run_until(600_ms);  // graft completed, a is active
  ASSERT_TRUE(delayed.is_member(a, g));
  delayed.leave(a, g);           // forward_until = 1.6s
  delayed.join(a, g);            // new graft in flight until 1.1s
  delayed.leave(a, g);           // races it; cancels the graft only
  simulation.run_until(700_ms);
  const GroupTree* tree = delayed.tree(g);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->edges.size(), 2u);  // src->r, r->a still forwarding
  simulation.run_until(2_s);          // past forward_until: branch pruned
  const GroupTree* pruned = delayed.tree(g);
  ASSERT_NE(pruned, nullptr);
  EXPECT_TRUE(pruned->edges.empty());
}

TEST_F(McastFixture, MembersListsActiveOnly) {
  const net::GroupAddr g{0, 1};
  router.join(a, g);
  router.join(b, g);
  router.leave(b, g);
  EXPECT_EQ(router.members(g), (std::vector<net::NodeId>{a}));
}

TEST_F(McastFixture, SessionTreeOverlaysLayers) {
  router.join(a, net::GroupAddr{0, 1});
  router.join(a, net::GroupAddr{0, 2});
  router.join(b, net::GroupAddr{0, 1});
  const auto edges = router.session_tree_edges(0, 6);
  // Overlay is the union: src->r, r->a, r->b.
  EXPECT_EQ(edges.size(), 3u);
}

TEST_F(McastFixture, DuplicateJoinIsIdempotent) {
  const net::GroupAddr g{0, 1};
  router.join(a, g);
  router.join(a, g);
  EXPECT_EQ(router.members(g).size(), 1u);
}

TEST_F(McastFixture, LeaveOfUnknownGroupIsNoOp) {
  router.leave(a, net::GroupAddr{0, 5});
  SUCCEED();
}

TEST_F(McastFixture, SourceAsMemberDeliversLocally) {
  const net::GroupAddr g{0, 1};
  router.join(src, g);
  int at_src = 0;
  network.set_local_sink(src, [&](const net::PacketRef&) { ++at_src; });
  network.send_multicast(packet(g));
  simulation.run_until(1_s);
  EXPECT_EQ(at_src, 1);
}

}  // namespace
}  // namespace tsim::mcast
