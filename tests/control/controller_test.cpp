#include "control/controller_agent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "control/receiver_agent.hpp"
#include "mcast/multicast_router.hpp"
#include "topo/discovery.hpp"
#include "sim/simulation.hpp"
#include "traffic/layered_source.hpp"
#include "transport/receiver_endpoint.hpp"

namespace tsim::control {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// Minimal end-to-end control loop: src --10 Mbps-- r --bottleneck-- rcv,
/// with the controller at src.
struct ControlFixture : ::testing::Test {
  sim::Simulation simulation{21};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId r{network.add_node("r")};
  net::NodeId rcv{network.add_node("rcv")};
  mcast::MulticastRouter mcast{simulation, network, {Time::zero(), 1_s}};
  transport::DemuxRegistry demuxes{network};
  std::unique_ptr<topo::DiscoveryService> discovery;
  std::unique_ptr<ControllerAgent> controller;
  std::unique_ptr<traffic::LayeredSource> source;
  std::unique_ptr<transport::ReceiverEndpoint> endpoint;
  std::unique_ptr<ReceiverAgent> agent;

  void build(double bottleneck_bps, Time staleness = Time::zero(),
             Time report_period = 2_s) {
    network.add_duplex_link(src, r, tsim::units::BitsPerSec{10e6}, 200_ms, 30);
    network.add_duplex_link(r, rcv, tsim::units::BitsPerSec{bottleneck_bps}, 200_ms, 30);
    network.compute_routes();
    mcast.set_session_source(0, src);

    discovery = std::make_unique<topo::DiscoveryService>(
        simulation, mcast, topo::DiscoveryService::Config{1_s, staleness, 64});

    ControllerAgent::Config ccfg;
    ccfg.node = src;
    ccfg.info_staleness = staleness;
    ccfg.params.interval = 2_s;
    controller = std::make_unique<ControllerAgent>(simulation, network, *discovery,
                                                   demuxes.at(src), ccfg);
    controller->register_receiver(0, rcv);

    traffic::LayeredSource::Config scfg;
    scfg.session = 0;
    scfg.node = src;
    scfg.model = traffic::TrafficModel::kCbr;
    source = std::make_unique<traffic::LayeredSource>(simulation, network, scfg);

    transport::ReceiverEndpoint::Config ecfg;
    ecfg.node = rcv;
    ecfg.session = 0;
    ecfg.controller = src;
    ecfg.report_period = report_period;
    endpoint = std::make_unique<transport::ReceiverEndpoint>(simulation, network, mcast,
                                                             demuxes.at(rcv), ecfg);
    agent = std::make_unique<ReceiverAgent>(simulation, *endpoint, ReceiverAgent::Config{});

    discovery->start();
    controller->start();
    source->start();
    endpoint->start();
    agent->start();
  }
};

TEST_F(ControlFixture, ReportsFlowToController) {
  build(10e6);
  simulation.run_until(20_s);
  EXPECT_GT(controller->reports_received(), 5u);
}

TEST_F(ControlFixture, SuggestionsDriveSubscriptionUp) {
  build(10e6);  // no bottleneck: should reach all 6 layers
  simulation.run_until(60_s);
  EXPECT_EQ(endpoint->subscription(), 6);
  EXPECT_GT(controller->suggestions_sent(), 0u);
  EXPECT_GT(agent->suggestions_applied(), 0u);
}

TEST_F(ControlFixture, ConvergesNearBottleneckOptimal) {
  build(256e3);  // optimal 3 layers
  simulation.run_until(300_s);
  EXPECT_GE(endpoint->subscription(), 2);
  EXPECT_LE(endpoint->subscription(), 4);
  // Loss must be controlled after convergence: check recent window.
  EXPECT_LT(endpoint->last_completed_window().loss_rate().value(), 0.3);
}

TEST_F(ControlFixture, IntervalsKeepRunning) {
  build(10e6);
  simulation.run_until(50_s);
  // Controller starts at 2.5 s with a 2 s interval: ~24 runs by 50 s.
  EXPECT_GE(controller->intervals_run(), 20u);
  EXPECT_LE(controller->intervals_run(), 25u);
}

TEST_F(ControlFixture, LastOutputHasDiagnostics) {
  build(10e6);
  simulation.run_until(20_s);
  ASSERT_FALSE(controller->last_output().diagnostics.empty());
  EXPECT_FALSE(controller->last_output().prescriptions.empty());
}

TEST_F(ControlFixture, StaleInfoStillConverges) {
  build(10e6, 4_s);
  simulation.run_until(120_s);
  EXPECT_GE(endpoint->subscription(), 5);
}

TEST_F(ControlFixture, SubIntervalReportingStillConverges) {
  // Receivers reporting twice per algorithm interval: the controller folds
  // multiple small windows into one interval-equivalent aggregate.
  build(10e6, Time::zero(), 1_s);
  simulation.run_until(60_s);
  EXPECT_EQ(endpoint->subscription(), 6);
  // Twice the report traffic reached the controller.
  EXPECT_GT(controller->reports_received(), 45u);
}

TEST_F(ControlFixture, SlowReportingStillConverges) {
  // Reports every 4 s against a 2 s interval: the controller reuses the
  // last report for the in-between runs instead of treating the receiver
  // as silent.
  build(10e6, Time::zero(), 4_s);
  simulation.run_until(90_s);
  EXPECT_EQ(endpoint->subscription(), 6);
}

TEST(ReceiverAgentTest, UnilateralDropOnSuggestionSilence) {
  // No controller at all: the agent must eventually shed layers when the
  // subscription overloads the bottleneck.
  sim::Simulation simulation{5};
  net::Network network{simulation};
  const net::NodeId src = network.add_node("src");
  const net::NodeId rcv = network.add_node("rcv");
  network.add_duplex_link(src, rcv, tsim::units::BitsPerSec{128e3}, 200_ms, 10);  // ~1.5 layers
  network.compute_routes();
  mcast::MulticastRouter mcast{simulation, network, {}};
  mcast.set_session_source(0, src);
  transport::DemuxRegistry demuxes{network};

  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = src;
  traffic::LayeredSource source{simulation, network, scfg};

  transport::ReceiverEndpoint::Config ecfg;
  ecfg.node = rcv;
  ecfg.session = 0;
  ecfg.controller = net::kInvalidNode;  // reports disabled
  ecfg.initial_subscription = 4;
  transport::ReceiverEndpoint endpoint{simulation, network, mcast, demuxes.at(rcv), ecfg};

  ReceiverAgent::Config acfg;
  acfg.unilateral_timeout = 6_s;
  ReceiverAgent agent{simulation, endpoint, acfg};

  source.start();
  endpoint.start();
  agent.start();
  simulation.run_until(120_s);
  EXPECT_LT(endpoint.subscription(), 4);
  EXPECT_GT(agent.unilateral_actions(), 0u);
}

}  // namespace
}  // namespace tsim::control
