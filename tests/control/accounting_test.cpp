#include "control/accounting.hpp"

#include <gtest/gtest.h>

namespace tsim::control {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

transport::ReceiverReport report(net::SessionId session, net::NodeId receiver,
                                 std::uint64_t bytes, int subscription, Time start, Time end) {
  transport::ReceiverReport r;
  r.session = session;
  r.receiver = receiver;
  r.bytes_received = tsim::units::Bytes{bytes};
  r.subscription = subscription;
  r.window_start = start;
  r.window_end = end;
  return r;
}

TEST(AccountingTest, UnknownAccountIsZero) {
  const AccountingLedger ledger;
  const auto account = ledger.account(1, 2);
  EXPECT_EQ(account.bytes.count(), 0u);
  EXPECT_DOUBLE_EQ(account.layer_seconds, 0.0);
  EXPECT_EQ(account.reports, 0u);
}

TEST(AccountingTest, AccumulatesBytesAndLayerSeconds) {
  AccountingLedger ledger;
  ledger.on_report(report(0, 10, 56'000, 4, Time::zero(), 2_s));
  ledger.on_report(report(0, 10, 60'000, 4, 2_s, 4_s));
  ledger.on_report(report(0, 10, 28'000, 3, 4_s, 6_s));

  const auto account = ledger.account(0, 10);
  EXPECT_EQ(account.bytes.count(), 144'000u);
  EXPECT_DOUBLE_EQ(account.layer_seconds, 4 * 2 + 4 * 2 + 3 * 2);
  EXPECT_EQ(account.reports, 3u);
  EXPECT_EQ(account.first_activity, Time::zero());
  EXPECT_EQ(account.last_activity, 6_s);
}

TEST(AccountingTest, AccountsAreSeparatedBySessionAndReceiver) {
  AccountingLedger ledger;
  ledger.on_report(report(0, 10, 1000, 1, Time::zero(), 1_s));
  ledger.on_report(report(0, 11, 2000, 2, Time::zero(), 1_s));
  ledger.on_report(report(1, 10, 3000, 3, Time::zero(), 1_s));

  EXPECT_EQ(ledger.account(0, 10).bytes.count(), 1000u);
  EXPECT_EQ(ledger.account(0, 11).bytes.count(), 2000u);
  EXPECT_EQ(ledger.account(1, 10).bytes.count(), 3000u);
  EXPECT_EQ(ledger.total_bytes().count(), 6000u);
  EXPECT_EQ(ledger.accounts().size(), 3u);
}

TEST(AccountingTest, TariffChargesBothParts) {
  AccountingLedger ledger;
  // 10 MB delivered, 2 layer-hours.
  ledger.on_report(report(0, 10, 10'000'000, 2, Time::zero(), 3600_s));
  const auto account = ledger.account(0, 10);
  // charge = 10 MB * 0.5 + 2 layer-hours * 1.25
  EXPECT_NEAR(account.charge(0.5, 1.25), 10.0 * 0.5 + 2.0 * 1.25, 1e-9);
}

TEST(AccountingTest, AccountsOrderedDeterministically) {
  AccountingLedger ledger;
  ledger.on_report(report(1, 5, 1, 1, Time::zero(), 1_s));
  ledger.on_report(report(0, 9, 1, 1, Time::zero(), 1_s));
  ledger.on_report(report(0, 3, 1, 1, Time::zero(), 1_s));
  const auto all = ledger.accounts();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, (std::pair<net::SessionId, net::NodeId>{0, 3}));
  EXPECT_EQ(all[1].first, (std::pair<net::SessionId, net::NodeId>{0, 9}));
  EXPECT_EQ(all[2].first, (std::pair<net::SessionId, net::NodeId>{1, 5}));
}

}  // namespace
}  // namespace tsim::control
