// DomainManager contract tests.
//
// The load-bearing guarantee is backwards compatibility: a run whose topology
// declares no domains builds a single-domain DomainManager, and that path
// must be *bit-for-bit identical* to the pre-domain single-controller wiring.
// The two golden fingerprints below were captured from the repository state
// before DomainManager existed (the fig6/fig7 experiment shapes); they must
// never change without a deliberate, documented behavior change.
//
// On top of that: the topology-language `domain` grammar, the automatic
// partitioner, the child->parent summary / parent->child cap exchange (real
// kSummary packets), and the consistency sweep.
#include "control/domain_manager.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"
#include "scenarios/topology_file.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// FNV-1a over every receiver's (node, final subscription, full subscription
/// timeline) — the same fold the goldens were captured with.
std::uint64_t fingerprint(const Scenario& s) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : s.results()) {
    mix(r.node);
    mix(static_cast<std::uint64_t>(r.final_subscription));
    for (const auto& [t, level] : r.timeline.points()) {
      mix(static_cast<std::uint64_t>(t.as_nanoseconds()));
      mix(static_cast<std::uint64_t>(level));
    }
  }
  return h;
}

/// Captured before the DomainManager refactor (single controller, no domain
/// layer at all): topology A, seed 42, VBR peak-to-mean 6, 60 s.
constexpr std::uint64_t kFig6Golden = 9490678231069009297ull;
/// Same vintage: topology B with 2 sessions, seed 1, VBR peak-to-mean 6, 60 s.
constexpr std::uint64_t kFig7Golden = 9597318739052090740ull;

TEST(DomainGoldenTest, Fig6SingleDomainMatchesPreDomainPipeline) {
  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.traffic.peak_to_mean = 6.0;
  cfg.duration = 60_s;
  auto s = ScenarioBuilder(cfg).topology_a(TopologyAOptions{}).build();
  s->run();
  ASSERT_NE(s->domains(), nullptr);
  EXPECT_EQ(s->domains()->domain_count(), 1u);
  EXPECT_FALSE(s->domains()->summaries_enabled());
  EXPECT_EQ(fingerprint(*s), kFig6Golden);
}

TEST(DomainGoldenTest, Fig7SingleDomainMatchesPreDomainPipeline) {
  ScenarioConfig cfg;
  cfg.seed = 1;
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.traffic.peak_to_mean = 6.0;
  cfg.duration = 60_s;
  TopologyBOptions opts;
  opts.sessions = 2;
  auto s = ScenarioBuilder(cfg).topology_b(opts).build();
  s->run();
  ASSERT_NE(s->domains(), nullptr);
  EXPECT_EQ(s->domains()->domain_count(), 1u);
  EXPECT_EQ(fingerprint(*s), kFig7Golden);
}

/// Two child domains hanging off a core; every receiver lives in a child.
constexpr const char* kTwoDomainTopology = R"(
node src
node core
node d1
node d1r1
node d1r2
node d2
node d2r1
link src core 10Mbps 20ms
link core d1 2Mbps 50ms
link d1 d1r1 1Mbps 10ms
link d1 d1r2 1Mbps 10ms
link core d2 2Mbps 50ms
link d2 d2r1 1Mbps 10ms
source 0 src
receiver d1r1 0
receiver d1r2 0
receiver d2r1 0
controller core
domain one d1 d1r1 d1r2
domain two d2 d2r1
)";

TEST(DomainParseTest, DomainLinesParse) {
  const ParseResult parsed = parse_topology(kTwoDomainTopology);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const TopologyDescription& desc = *parsed.description;
  ASSERT_EQ(desc.domains.size(), 2u);
  EXPECT_EQ(desc.domains[0].name, "one");
  EXPECT_EQ(desc.domains[0].nodes,
            (std::vector<std::string>{"d1", "d1r1", "d1r2"}));
  EXPECT_EQ(desc.domains[1].name, "two");
  EXPECT_EQ(desc.domains[1].nodes, (std::vector<std::string>{"d2", "d2r1"}));
}

TEST(DomainParseTest, RejectsUnknownNodeDuplicateClaimAndClaimedController) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    const ParseResult parsed = parse_topology(text);
    ASSERT_FALSE(parsed.ok()) << "expected failure containing '" << needle << "'";
    EXPECT_NE(parsed.error.find(needle), std::string::npos) << parsed.error;
  };
  const std::string base = R"(
node src
node core
node r1
link src core 1Mbps 10ms
link core r1 1Mbps 10ms
source 0 src
receiver r1 0
controller core
)";
  expect_error(base + "domain one ghost\n", "ghost");
  expect_error(base + "domain one r1\ndomain two r1\n", "r1");
  expect_error(base + "domain one core r1\n", "core");
  expect_error(base + "domain one r1\ndomain one r1\n", "one");
}

TEST(DomainManagerTest, SummariesAndCapsFlowBetweenDomains) {
  const ParseResult parsed = parse_topology(kTwoDomainTopology);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.traffic.peak_to_mean = 6.0;
  cfg.duration = 40_s;
  cfg.domains.summary_period = 2_s;
  cfg.domains.summary_start = 3_s;
  auto s = ScenarioBuilder(cfg).topology(*parsed.description).build();

  control::DomainManager* manager = s->domains();
  ASSERT_NE(manager, nullptr);
  ASSERT_EQ(manager->domain_count(), 3u);  // core + one + two
  EXPECT_EQ(manager->domain(0).name, "core");
  EXPECT_EQ(manager->domain(0).parent, -1);
  EXPECT_EQ(manager->domain(1).parent, 0);
  EXPECT_EQ(manager->domain(2).parent, 0);
  EXPECT_TRUE(manager->summaries_enabled());

  s->run();

  // Both children sent periodic demand summaries; the parent ingested them
  // (the only packets on those paths are summaries, so losses aside the
  // counters move together) and pushed at least one border cap back down.
  EXPECT_GT(manager->summaries_sent(), 0u);
  EXPECT_GT(manager->summaries_received(), 0u);
  EXPECT_LE(manager->summaries_received(), manager->summaries_sent());
  EXPECT_GT(manager->caps_sent(), 0u);
  EXPECT_LE(manager->caps_received(), manager->caps_sent());

  // The parent treats each child's border as a pseudo-receiver, so its
  // controller hears exactly its own domain's receivers (none) plus borders.
  ASSERT_NE(manager->agent(0), nullptr);
  EXPECT_TRUE(manager->agent(0)->is_border(0, manager->domain(1).controller_node));
  EXPECT_TRUE(manager->agent(0)->is_border(0, manager->domain(2).controller_node));

  // Caps that arrived clamp the child's prescriptions to a real layer range.
  std::vector<std::string> failures;
  manager->check_consistency([&](const std::string& detail) { failures.push_back(detail); });
  EXPECT_TRUE(failures.empty()) << failures.front();
}

TEST(DomainManagerTest, MultiDomainRunsAreDeterministic) {
  const auto run_once = [] {
    const ParseResult parsed = parse_topology(kTwoDomainTopology);
    ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.traffic.model = traffic::TrafficModel::kVbr;
    cfg.traffic.peak_to_mean = 6.0;
    cfg.duration = 30_s;
    cfg.domains.summary_period = 2_s;
    auto s = ScenarioBuilder(cfg).topology(*parsed.description).build();
    s->run();
    return fingerprint(*s);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DomainManagerTest, AutoPartitionerSplitsFirstHopSubtrees) {
  // Same shape as kTwoDomainTopology but with no `domain` lines: the
  // partitioner must find the d1/d2 first-hop subtrees on its own.
  std::string text{kTwoDomainTopology};
  text = text.substr(0, text.find("domain one"));
  const ParseResult parsed = parse_topology(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.duration = 20_s;
  cfg.domains.auto_partition = 3;
  auto s = ScenarioBuilder(cfg).topology(*parsed.description).build();

  control::DomainManager* manager = s->domains();
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->domain_count(), 3u);
  // Every node must be owned by exactly one domain (the partition is total).
  for (std::size_t d = 0; d < manager->domain_count(); ++d) {
    for (const net::NodeId node : manager->domain(d).nodes) {
      EXPECT_EQ(manager->domain_of(node), static_cast<int>(d));
    }
  }
  EXPECT_TRUE(manager->summaries_enabled());
  s->run();
  EXPECT_GT(manager->summaries_sent(), 0u);

  std::vector<std::string> failures;
  manager->check_consistency([&](const std::string& detail) { failures.push_back(detail); });
  EXPECT_TRUE(failures.empty()) << failures.front();
}

TEST(DomainManagerTest, ReceiverDrivenSchemesStayIndependent) {
  // Non-TopoSense schemes run their domains without a summary control plane.
  ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.duration = 20_s;
  cfg.control.kind = ControllerKind::kReceiverDriven;
  cfg.domains.auto_partition = 2;
  auto s = ScenarioBuilder(cfg).topology_b(TopologyBOptions{}).build();
  control::DomainManager* manager = s->domains();
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->domain_count(), 2u);
  EXPECT_FALSE(manager->summaries_enabled());
  s->run();
  EXPECT_EQ(manager->summaries_sent(), 0u);
  // The receivers still adapted: somebody moved off the initial subscription.
  bool adapted = false;
  for (const auto& r : s->results()) adapted |= !r.timeline.points().empty();
  EXPECT_TRUE(adapted);
}

}  // namespace
}  // namespace tsim::scenarios
