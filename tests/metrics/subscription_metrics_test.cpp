#include "metrics/subscription_metrics.hpp"

#include <gtest/gtest.h>

namespace tsim::metrics {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

TEST(TimelineTest, LevelAtFollowsSteps) {
  SubscriptionTimeline tl{Time::zero(), 1};
  tl.record(10_s, 2);
  tl.record(20_s, 3);
  EXPECT_EQ(tl.level_at(Time::zero()), 1);
  EXPECT_EQ(tl.level_at(5_s), 1);
  EXPECT_EQ(tl.level_at(10_s), 2);
  EXPECT_EQ(tl.level_at(15_s), 2);
  EXPECT_EQ(tl.level_at(25_s), 3);
}

TEST(TimelineTest, DuplicateLevelIsNotAChange) {
  SubscriptionTimeline tl{Time::zero(), 2};
  tl.record(5_s, 2);
  EXPECT_EQ(tl.change_count(Time::zero(), 10_s), 0);
}

TEST(TimelineTest, BackwardsTimeThrows) {
  SubscriptionTimeline tl{10_s, 1};
  EXPECT_THROW(tl.record(5_s, 2), std::invalid_argument);
}

TEST(TimelineTest, RelativeDeviationZeroWhenAtOptimal) {
  SubscriptionTimeline tl{Time::zero(), 4};
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, Time::zero(), 100_s), 0.0);
}

TEST(TimelineTest, RelativeDeviationExactForSteps) {
  // Level 2 for 50 s, then level 4 for 50 s; optimal 4.
  // deviation = (|2-4|*50 + 0*50) / (4*100) = 100/400 = 0.25.
  SubscriptionTimeline tl{Time::zero(), 2};
  tl.record(50_s, 4);
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, Time::zero(), 100_s), 0.25);
}

TEST(TimelineTest, RelativeDeviationRespectsWindow) {
  SubscriptionTimeline tl{Time::zero(), 2};
  tl.record(50_s, 4);
  // Window covering only the optimal spell.
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, 50_s, 100_s), 0.0);
  // Window covering only the suboptimal spell.
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, Time::zero(), 50_s), 0.5);
}

TEST(TimelineTest, OvershootCountsAsDeviationToo) {
  SubscriptionTimeline tl{Time::zero(), 6};
  // |6-4| = 2 over the whole window -> 2/4.
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, Time::zero(), 10_s), 0.5);
}

TEST(TimelineTest, EmptyWindowIsZero) {
  SubscriptionTimeline tl{Time::zero(), 1};
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, 10_s, 10_s), 0.0);
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, 10_s, 5_s), 0.0);
}

TEST(TimelineTest, ChangeCountWindowed) {
  SubscriptionTimeline tl{Time::zero(), 1};
  tl.record(10_s, 2);
  tl.record(20_s, 3);
  tl.record(30_s, 2);
  EXPECT_EQ(tl.change_count(Time::zero(), 40_s), 3);
  EXPECT_EQ(tl.change_count(15_s, 40_s), 2);
  EXPECT_EQ(tl.change_count(35_s, 40_s), 0);
}

TEST(TimelineTest, MeanGapBetweenChanges) {
  SubscriptionTimeline tl{Time::zero(), 1};
  tl.record(10_s, 2);
  tl.record(20_s, 3);
  tl.record(40_s, 2);
  // Gaps: 10, 20 -> mean 15.
  EXPECT_DOUBLE_EQ(tl.mean_time_between_changes_s(Time::zero(), 60_s), 15.0);
}

TEST(TimelineTest, MeanGapWithFewChangesIsWindowLength) {
  SubscriptionTimeline tl{Time::zero(), 1};
  EXPECT_DOUBLE_EQ(tl.mean_time_between_changes_s(Time::zero(), 60_s), 60.0);
  tl.record(10_s, 2);
  EXPECT_DOUBLE_EQ(tl.mean_time_between_changes_s(Time::zero(), 60_s), 60.0);
}

TEST(TimelineTest, TimeAtLevelFraction) {
  SubscriptionTimeline tl{Time::zero(), 4};
  tl.record(25_s, 3);
  tl.record(50_s, 4);
  EXPECT_DOUBLE_EQ(tl.time_at_level_fraction(4, Time::zero(), 100_s), 0.75);
  EXPECT_DOUBLE_EQ(tl.time_at_level_fraction(3, Time::zero(), 100_s), 0.25);
  EXPECT_DOUBLE_EQ(tl.time_at_level_fraction(1, Time::zero(), 100_s), 0.0);
}

// Property: deviation scales linearly in the distance from optimal.
class DeviationLinearity : public ::testing::TestWithParam<int> {};

TEST_P(DeviationLinearity, ConstantLevel) {
  const int level = GetParam();
  SubscriptionTimeline tl{Time::zero(), level};
  const double expected = std::abs(level - 4) / 4.0;
  EXPECT_DOUBLE_EQ(tl.relative_deviation(4, Time::zero(), 77_s), expected);
}

INSTANTIATE_TEST_SUITE_P(Levels, DeviationLinearity, ::testing::Range(0, 7));

}  // namespace
}  // namespace tsim::metrics
