#include "metrics/trace_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "metrics/link_monitor.hpp"
#include "sim/simulation.hpp"
#include "traffic/cross_traffic.hpp"

namespace tsim::metrics {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

TEST(TraceWriterTest, CsvHasHeaderAndRows) {
  TraceWriter writer{{"sub", "loss"}};
  writer.add_row(1_s, {3.0, 0.05});
  writer.add_row(2_s, {4.0, 0.0});
  const std::string csv = writer.to_csv();
  EXPECT_NE(csv.find("time_s,sub,loss\n"), std::string::npos);
  EXPECT_NE(csv.find("1.000,3,0.05\n"), std::string::npos);
  EXPECT_NE(csv.find("2.000,4,0\n"), std::string::npos);
  EXPECT_EQ(writer.rows(), 2u);
  EXPECT_DOUBLE_EQ(writer.value(0, 1), 0.05);
  EXPECT_EQ(writer.time(1), 2_s);
}

TEST(TraceWriterTest, ColumnMismatchThrows) {
  TraceWriter writer{{"a", "b"}};
  EXPECT_THROW(writer.add_row(1_s, {1.0}), std::invalid_argument);
  EXPECT_THROW(writer.add_row(1_s, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(TraceWriterTest, WritesFileRoundTrip) {
  TraceWriter writer{{"x"}};
  writer.add_row(Time::zero(), {42.0});
  const std::string path = ::testing::TempDir() + "/toposense_trace_test.csv";
  ASSERT_TRUE(writer.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const auto read = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(read, 0u);
  EXPECT_NE(std::string{buf}.find("time_s,x"), std::string::npos);
}

TEST(TraceWriterTest, WriteToInvalidPathFails) {
  TraceWriter writer{{"x"}};
  EXPECT_FALSE(writer.write_file("/nonexistent_dir_xyz/trace.csv"));
}

TEST(LinkMonitorTest, MeasuresThroughputAndDrops) {
  sim::Simulation simulation{31};
  net::Network network{simulation};
  const auto a = network.add_node();
  const auto b = network.add_node();
  // 200 Kbps link offered 400 Kbps: ~50% drops, full utilization.
  const auto link = network.add_link(a, b, tsim::units::BitsPerSec{200e3}, 10_ms, 5);
  network.add_link(b, a, tsim::units::BitsPerSec{200e3}, 10_ms, 5);
  network.compute_routes();

  traffic::CbrFlow::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 400e3;
  traffic::CbrFlow flow{simulation, network, cfg};

  LinkMonitor monitor{simulation, network, link, 1_s};
  monitor.start();
  flow.start();
  simulation.run_until(60_s);

  ASSERT_GE(monitor.samples().size(), 50u);
  EXPECT_NEAR(monitor.mean_utilization(), 1.0, 0.08);
  double drop = 0.0;
  for (const auto& s : monitor.samples()) drop += s.drop_rate;
  drop /= static_cast<double>(monitor.samples().size());
  EXPECT_NEAR(drop, 0.5, 0.1);
}

TEST(LinkMonitorTest, IdleLinkShowsZero) {
  sim::Simulation simulation{31};
  net::Network network{simulation};
  const auto a = network.add_node();
  const auto b = network.add_node();
  const auto link = network.add_link(a, b, tsim::units::BitsPerSec{1e6}, 10_ms, 5);
  network.compute_routes();
  LinkMonitor monitor{simulation, network, link, 1_s};
  monitor.start();
  simulation.run_until(10_s);
  EXPECT_DOUBLE_EQ(monitor.mean_utilization(), 0.0);
  for (const auto& s : monitor.samples()) {
    EXPECT_DOUBLE_EQ(s.throughput.bps(), 0.0);
    EXPECT_DOUBLE_EQ(s.drop_rate, 0.0);
  }
}

}  // namespace
}  // namespace tsim::metrics
