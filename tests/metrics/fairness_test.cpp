#include "metrics/fairness.hpp"

#include <gtest/gtest.h>

namespace tsim::metrics {
namespace {

TEST(JainIndexTest, EqualAllocationIsOne) {
  EXPECT_DOUBLE_EQ(jain_index({4.0, 4.0, 4.0, 4.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1.0}), 1.0);
}

TEST(JainIndexTest, TotalConcentrationIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(JainIndexTest, KnownMixedValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_DOUBLE_EQ(jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0);
}

TEST(JainIndexTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(JainIndexTest, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 5.0};
  const std::vector<double> b{10.0, 20.0, 50.0};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

}  // namespace
}  // namespace tsim::metrics
