#include "traffic/layer_spec.hpp"

#include <gtest/gtest.h>

namespace tsim::traffic {
namespace {

TEST(LayerSpecTest, PaperRatesDoublePerLayer) {
  const LayerSpec spec;
  EXPECT_DOUBLE_EQ(spec.layer_rate(1).bps(), 32e3);
  EXPECT_DOUBLE_EQ(spec.layer_rate(2).bps(), 64e3);
  EXPECT_DOUBLE_EQ(spec.layer_rate(3).bps(), 128e3);
  EXPECT_DOUBLE_EQ(spec.layer_rate(6).bps(), 1024e3);
}

TEST(LayerSpecTest, CumulativeRatesMatchPaper) {
  const LayerSpec spec;
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(0).bps(), 0.0);
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(1).bps(), 32e3);
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(2).bps(), 96e3);
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(3).bps(), 224e3);
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(4).bps(), 480e3);
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(5).bps(), 992e3);
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(6).bps(), 2016e3);
}

TEST(LayerSpecTest, CumulativeClampsAtNumLayers) {
  const LayerSpec spec;
  EXPECT_DOUBLE_EQ(spec.cumulative_rate(10).bps(), spec.cumulative_rate(6).bps());
}

TEST(LayerSpecTest, MaxLayersForPaperBottlenecks) {
  const LayerSpec spec;
  EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{256e3}), 3);   // Topology A set 1
  EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{1e6}), 5);     // Topology A set 2
  EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{500e3}), 4);   // Topology B per session
  EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{31e3}), 0);
  EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{32e3}), 1);
  EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{1e9}), 6);
}

TEST(LayerSpecTest, PacketsPerSecond) {
  const LayerSpec spec;
  EXPECT_DOUBLE_EQ(spec.packets_per_second(1), 4.0);    // 32 Kbps / 8 Kbit
  EXPECT_DOUBLE_EQ(spec.packets_per_second(6), 128.0);
}

TEST(LayerSpecTest, CustomGrowthForGranularityAblation) {
  LayerSpec fine;
  fine.num_layers = 12;
  fine.layer_growth = 1.5;
  EXPECT_GT(fine.cumulative_rate(12).bps(), fine.cumulative_rate(11).bps());
  EXPECT_EQ(fine.max_layers_for_bandwidth(fine.cumulative_rate(7)), 7);
}

// Property sweep: max_layers_for_bandwidth is the inverse of
// cumulative_rate_bps at every layer boundary.
class LayerInverseProperty : public ::testing::TestWithParam<int> {};

TEST_P(LayerInverseProperty, BoundaryInversion) {
  const LayerSpec spec;
  const int k = GetParam();
  const double cum = spec.cumulative_rate(k).bps();
  EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{cum}), k);
  if (k < spec.num_layers) {
    EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{cum + 1.0}), k);
    EXPECT_EQ(spec.max_layers_for_bandwidth(tsim::units::BitsPerSec{cum - 1.0}), k - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerInverseProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace tsim::traffic
