#include "traffic/cross_traffic.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace tsim::traffic {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

struct CrossTrafficFixture : ::testing::Test {
  sim::Simulation simulation{17};
  net::Network network{simulation};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};
  std::uint64_t received_bytes{0};
  int received_packets{0};

  CrossTrafficFixture() {
    network.add_duplex_link(a, b, tsim::units::BitsPerSec{10e6}, 10_ms, 200);
    network.compute_routes();
    network.set_local_sink(b, [this](const net::PacketRef& p) {
      received_bytes += p->size_bytes;
      ++received_packets;
    });
  }
};

TEST_F(CrossTrafficFixture, CbrFlowDeliversConfiguredRate) {
  CbrFlow::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 256e3;  // 32 pps at 1000 B
  CbrFlow flow{simulation, network, cfg};
  flow.start();
  simulation.run_until(100_s);
  const double rate = received_bytes * 8.0 / 100.0;
  EXPECT_NEAR(rate, 256e3, 256e2);
  // At the horizon the last packet may still be in flight.
  EXPECT_LE(flow.sent_packets() - static_cast<std::uint64_t>(received_packets), 1u);
}

TEST_F(CrossTrafficFixture, CbrFlowRespectsStartAndStop) {
  CbrFlow::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 80e3;  // 10 pps
  cfg.start = 10_s;
  cfg.stop = 20_s;
  CbrFlow flow{simulation, network, cfg};
  flow.start();
  simulation.run_until(5_s);
  EXPECT_EQ(received_packets, 0);
  simulation.run_until(100_s);
  // ~10 s of 10 pps.
  EXPECT_NEAR(received_packets, 100, 15);
}

TEST_F(CrossTrafficFixture, OnOffFlowAlternates) {
  OnOffFlow::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.peak_bps = 800e3;  // 100 pps while ON
  cfg.mean_on_s = 2.0;
  cfg.mean_off_s = 2.0;
  OnOffFlow flow{simulation, network, cfg};
  flow.start();
  simulation.run_until(200_s);
  // Duty cycle ~50%: mean rate ~400 Kbps. Generous bounds — exponential.
  const double rate = received_bytes * 8.0 / 200.0;
  EXPECT_GT(rate, 150e3);
  EXPECT_LT(rate, 650e3);
  EXPECT_GT(flow.sent_packets(), 1000u);
}

TEST_F(CrossTrafficFixture, OnOffFlowStopsAtDeadline) {
  OnOffFlow::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.stop = 10_s;
  OnOffFlow flow{simulation, network, cfg};
  flow.start();
  simulation.run_until(10_s);
  const auto at_stop = flow.sent_packets();
  simulation.run_until(100_s);
  EXPECT_EQ(flow.sent_packets(), at_stop);
}

TEST_F(CrossTrafficFixture, DeterministicAcrossSeeds) {
  auto count_for_seed = [](std::uint64_t seed) {
    sim::Simulation local_sim{seed};
    net::Network local_net{local_sim};
    const auto na = local_net.add_node();
    const auto nb = local_net.add_node();
    local_net.add_duplex_link(na, nb, tsim::units::BitsPerSec{10e6}, 10_ms, 200);
    local_net.compute_routes();
    OnOffFlow::Config cfg;
    cfg.src = na;
    cfg.dst = nb;
    OnOffFlow flow{local_sim, local_net, cfg};
    flow.start();
    local_sim.run_until(60_s);
    return flow.sent_packets();
  };
  EXPECT_EQ(count_for_seed(3), count_for_seed(3));
  EXPECT_NE(count_for_seed(3), count_for_seed(4));
}

}  // namespace
}  // namespace tsim::traffic
