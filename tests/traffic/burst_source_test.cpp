#include "traffic/burst_source.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/simulation.hpp"

namespace tsim::traffic {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

struct BurstFixture : ::testing::Test {
  sim::Simulation simulation{7};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId dst{network.add_node("dst")};

  std::map<net::LayerId, int> received;
  std::map<net::LayerId, std::uint32_t> max_seq;
  std::map<net::LayerId, std::set<std::int64_t>> emit_times;  ///< distinct sent_at ns

  struct CatchAll final : net::MulticastForwarder {
    net::LinkId link;
    net::NodeId origin;
    void route(net::NodeId node, const net::Packet&, std::vector<net::LinkId>& out,
               bool& local) override {
      if (node == origin) {
        out.push_back(link);
      } else {
        local = true;
      }
    }
  } forwarder;

  BurstFixture() {
    const net::LinkId link = network.add_link(src, dst, tsim::units::BitsPerSec{100e6}, 1_ms, 10000);
    network.compute_routes();
    forwarder.link = link;
    forwarder.origin = src;
    network.set_multicast_forwarder(&forwarder);
    network.set_local_sink(dst, [this](const net::PacketRef& p) {
      ++received[p->group.layer];
      max_seq[p->group.layer] = std::max(max_seq[p->group.layer], p->seq);
      emit_times[p->group.layer].insert(p->sent_at.as_nanoseconds());
    });
  }

  BurstSource::Config config(TrafficModel model, int train = 4) {
    BurstSource::Config cfg;
    cfg.source.session = 0;
    cfg.source.node = src;
    cfg.source.model = model;
    cfg.source.peak_to_mean = 3.0;
    cfg.train_packets = train;
    return cfg;
  }
};

TEST_F(BurstFixture, CbrMeanRatesMatchSpec) {
  BurstSource source{simulation, network, config(TrafficModel::kCbr)};
  source.start();
  simulation.run_until(100_s);
  // Same layer rates as LayeredSource: 4 pps on layer 1, 128 pps on layer 6.
  // Trains quantize the tail, so allow one train of slack.
  EXPECT_NEAR(received[1], 400, 8);
  EXPECT_NEAR(received[2], 800, 8);
  EXPECT_NEAR(received[6], 12800, 40);
}

TEST_F(BurstFixture, PacketsArriveInTrainsOfK) {
  BurstSource source{simulation, network, config(TrafficModel::kCbr)};
  source.start();
  simulation.run_until(100_s);
  // Every scheduler event stamps its whole K-train with one sent_at, so the
  // number of distinct emission instants is ~count/K: the event-load division
  // the engine exists for.
  for (const auto& [layer, count] : received) {
    const auto events = static_cast<int>(emit_times[layer].size());
    EXPECT_NEAR(events * 4, count, 4) << "layer " << int(layer);
  }
}

TEST_F(BurstFixture, SequenceNumbersAreDense) {
  BurstSource source{simulation, network, config(TrafficModel::kCbr)};
  source.start();
  simulation.run_until(50_s);
  for (const auto& [layer, count] : received) {
    EXPECT_EQ(max_seq[layer], static_cast<std::uint32_t>(count - 1)) << "layer " << int(layer);
    EXPECT_EQ(source.sent_packets(layer), static_cast<std::uint64_t>(count));
  }
}

TEST_F(BurstFixture, VbrMeanRateMatchesModel) {
  BurstSource source{simulation, network, config(TrafficModel::kVbr)};
  source.start();
  simulation.run_until(400_s);
  // E[n] = A per second: ~1600 layer-1 packets over 400 s, like LayeredSource.
  // Slack is ~3 sigma of the on/off process (per-interval sd ~4.2 packets).
  EXPECT_NEAR(received[1], 1600, 250);
  EXPECT_NEAR(received[3], 6400, 800);
}

TEST_F(BurstFixture, StopTimeHaltsEmission) {
  auto cfg = config(TrafficModel::kCbr);
  cfg.source.stop = 10_s;
  BurstSource source{simulation, network, cfg};
  source.start();
  simulation.run_until(100_s);
  EXPECT_LE(received[1], 48);  // ~4 pps for 10 s, train-quantized
  EXPECT_GT(received[1], 28);
}

TEST_F(BurstFixture, DeterministicAcrossRunsAndSeedSensitive) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation local_sim{seed};
    net::Network local_net{local_sim};
    const net::NodeId s = local_net.add_node();
    const net::NodeId d = local_net.add_node();
    const net::LinkId link = local_net.add_link(s, d, tsim::units::BitsPerSec{100e6}, 1_ms, 10000);
    local_net.compute_routes();
    struct F final : net::MulticastForwarder {
      net::LinkId link;
      net::NodeId origin;
      void route(net::NodeId node, const net::Packet&, std::vector<net::LinkId>& out,
                 bool& local) override {
        if (node == origin) out.push_back(link);
        else local = true;
      }
    } f;
    f.link = link;
    f.origin = s;
    local_net.set_multicast_forwarder(&f);
    int count = 0;
    local_net.set_local_sink(d, [&](const net::PacketRef&) { ++count; });
    BurstSource::Config cfg;
    cfg.source.session = 0;
    cfg.source.node = s;
    cfg.source.model = TrafficModel::kVbr;
    BurstSource source{local_sim, local_net, cfg};
    source.start();
    local_sim.run_until(60_s);
    return count;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace tsim::traffic
