#include "traffic/layered_source.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/simulation.hpp"

namespace tsim::traffic {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

struct SourceFixture : ::testing::Test {
  sim::Simulation simulation{7};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId dst{network.add_node("dst")};

  std::map<net::LayerId, int> received;
  std::map<net::LayerId, std::uint32_t> max_seq;

  struct CatchAll final : net::MulticastForwarder {
    net::LinkId link;
    net::NodeId origin;
    void route(net::NodeId node, const net::Packet&, std::vector<net::LinkId>& out,
               bool& local) override {
      if (node == origin) {
        out.push_back(link);
      } else {
        local = true;
      }
    }
  } forwarder;

  SourceFixture() {
    const net::LinkId link = network.add_link(src, dst, tsim::units::BitsPerSec{100e6}, 1_ms, 10000);
    network.compute_routes();
    forwarder.link = link;
    forwarder.origin = src;
    network.set_multicast_forwarder(&forwarder);
    network.set_local_sink(dst, [this](const net::PacketRef& p) {
      ++received[p->group.layer];
      max_seq[p->group.layer] = std::max(max_seq[p->group.layer], p->seq);
    });
  }

  LayeredSource::Config config(TrafficModel model, double p = 3.0) {
    LayeredSource::Config cfg;
    cfg.session = 0;
    cfg.node = src;
    cfg.model = model;
    cfg.peak_to_mean = p;
    return cfg;
  }
};

TEST_F(SourceFixture, CbrRatesMatchSpec) {
  LayeredSource source{simulation, network, config(TrafficModel::kCbr)};
  source.start();
  simulation.run_until(100_s);
  // Layer 1: 4 pps, layer 6: 128 pps; allow the startup stagger margin.
  EXPECT_NEAR(received[1], 400, 8);
  EXPECT_NEAR(received[2], 800, 8);
  EXPECT_NEAR(received[6], 12800, 40);
}

TEST_F(SourceFixture, SequenceNumbersAreDense) {
  LayeredSource source{simulation, network, config(TrafficModel::kCbr)};
  source.start();
  simulation.run_until(50_s);
  // No loss on a fat link: max seq == count-1 per layer.
  for (const auto& [layer, count] : received) {
    EXPECT_EQ(max_seq[layer], static_cast<std::uint32_t>(count - 1)) << "layer " << int(layer);
  }
}

TEST_F(SourceFixture, VbrMeanRateMatchesCbr) {
  LayeredSource source{simulation, network, config(TrafficModel::kVbr, 3.0)};
  source.start();
  simulation.run_until(400_s);
  // E[n] = A per second; over 400 s layer 1 should be ~1600 packets.
  EXPECT_NEAR(received[1], 1600, 160);
  EXPECT_NEAR(received[3], 6400, 640);
}

TEST_F(SourceFixture, VbrIsBurstierThanCbr) {
  // Count per-second emissions for layer 1 and check the peak is near the
  // model's burst size P*A+1-P = 10 for P=3, A=4.
  LayeredSource source{simulation, network, config(TrafficModel::kVbr, 3.0)};
  source.start();
  std::map<std::int64_t, int> per_second;
  network.set_local_sink(dst, [&](const net::PacketRef& p) {
    if (p->group.layer == 1) {
      ++per_second[p->sent_at.as_nanoseconds() / 1'000'000'000];
    }
  });
  simulation.run_until(300_s);
  int peak = 0;
  for (const auto& [sec, n] : per_second) peak = std::max(peak, n);
  EXPECT_GE(peak, 9);   // bursts occur
  EXPECT_LE(peak, 21);  // bounded by two adjacent bursts
}

TEST_F(SourceFixture, StopTimeHaltsEmission) {
  auto cfg = config(TrafficModel::kCbr);
  cfg.stop = 10_s;
  LayeredSource source{simulation, network, cfg};
  source.start();
  simulation.run_until(100_s);
  EXPECT_LE(received[1], 45);  // ~4 pps for 10 s
  EXPECT_GT(received[1], 30);
}

TEST_F(SourceFixture, VbrStopBoundaryIsStrict) {
  // Regression pin for the per-emit stop guard: a VBR interval schedules its
  // n packets up to a second ahead, so an interval straddling config.stop has
  // emits queued past the boundary. Those must be suppressed (strictly
  // now < stop), while packets of the straddling interval BEFORE the boundary
  // still flow — the final partial interval is not dropped wholesale.
  auto cfg = config(TrafficModel::kVbr, 3.0);
  cfg.stop = Time::milliseconds(10'500);
  LayeredSource source{simulation, network, cfg};
  sim::Time last_emit = sim::Time::zero();
  bool saw_late_window = false;
  network.set_local_sink(dst, [&](const net::PacketRef& p) {
    last_emit = std::max(last_emit, p->sent_at);
    // Traffic inside the final second before the stop proves the straddling
    // interval emitted its pre-boundary share.
    if (p->sent_at >= Time::milliseconds(9'500) && p->sent_at < cfg.stop) {
      saw_late_window = true;
    }
  });
  source.start();
  simulation.run_until(100_s);
  EXPECT_LT(last_emit, cfg.stop);
  EXPECT_TRUE(saw_late_window);
  // Nothing emitted after the boundary: totals are frozen from stop onward.
  std::uint64_t total = 0;
  for (int l = 1; l <= cfg.layers.num_layers; ++l) {
    total += source.sent_packets(static_cast<net::LayerId>(l));
  }
  simulation.run_until(200_s);
  std::uint64_t total_after = 0;
  for (int l = 1; l <= cfg.layers.num_layers; ++l) {
    total_after += source.sent_packets(static_cast<net::LayerId>(l));
  }
  EXPECT_EQ(total, total_after);
}

TEST_F(SourceFixture, DeterministicAcrossRuns) {
  // Two simulations with the same seed emit identical packet counts.
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation local_sim{seed};
    net::Network local_net{local_sim};
    const net::NodeId s = local_net.add_node();
    const net::NodeId d = local_net.add_node();
    const net::LinkId link = local_net.add_link(s, d, tsim::units::BitsPerSec{100e6}, 1_ms, 10000);
    local_net.compute_routes();
    struct F final : net::MulticastForwarder {
      net::LinkId link;
      net::NodeId origin;
      void route(net::NodeId node, const net::Packet&, std::vector<net::LinkId>& out,
                 bool& local) override {
        if (node == origin) out.push_back(link);
        else local = true;
      }
    } f;
    f.link = link;
    f.origin = s;
    local_net.set_multicast_forwarder(&f);
    int count = 0;
    local_net.set_local_sink(d, [&](const net::PacketRef&) { ++count; });
    LayeredSource::Config cfg;
    cfg.session = 0;
    cfg.node = s;
    cfg.model = TrafficModel::kVbr;
    LayeredSource source{local_sim, local_net, cfg};
    source.start();
    local_sim.run_until(60_s);
    return count;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));  // different seed, different bursts
}

}  // namespace
}  // namespace tsim::traffic
