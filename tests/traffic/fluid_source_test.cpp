#include "traffic/fluid_source.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/simulation.hpp"

namespace tsim::traffic {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

FluidSource::Config config(TrafficModel model, double p = 3.0) {
  FluidSource::Config cfg;
  cfg.session = 0;
  cfg.node = 0;
  cfg.model = model;
  cfg.peak_to_mean = p;
  return cfg;
}

TEST(FluidSourceTest, CbrTrajectoryIsTheLayerSpecRate) {
  sim::Simulation simulation{7};
  FluidSource source{simulation, config(TrafficModel::kCbr)};
  const LayerSpec& layers = source.config().layers;
  for (int l = 1; l <= layers.num_layers; ++l) {
    const auto layer = static_cast<net::LayerId>(l);
    EXPECT_DOUBLE_EQ(source.layer_rate(layer, Time::zero()).bps(),
                     layers.layer_rate(layer).bps());
    EXPECT_DOUBLE_EQ(source.layer_rate(layer, 500_s).bps(), layers.layer_rate(layer).bps());
  }
}

TEST(FluidSourceTest, VbrRatesAreTheTwoLevelOnOffProcess) {
  // Layer 1: A = 4 pps, P = 3 -> n in {1, P*A + 1 - P} = {1, 10}, i.e.
  // 8 kbps or 80 kbps at 1000-byte packets. E[n] = A, so the long-run mean
  // must come back to the CBR rate (32 kbps).
  sim::Simulation simulation{7};
  FluidSource source{simulation, config(TrafficModel::kVbr, 3.0)};
  int high = 0;
  double sum_bps = 0.0;
  const int intervals = 3000;
  for (int i = 0; i < intervals; ++i) {
    const double bps = source.layer_rate(1, Time::seconds(std::int64_t{i})).bps();
    ASSERT_TRUE(bps == 8'000.0 || bps == 80'000.0) << "interval " << i << ": " << bps;
    if (bps == 80'000.0) ++high;
    sum_bps += bps;
  }
  // Burst probability 1/P = 1/3.
  EXPECT_NEAR(static_cast<double>(high) / intervals, 1.0 / 3.0, 0.03);
  EXPECT_NEAR(sum_bps / intervals, 32'000.0, 1'500.0);
}

TEST(FluidSourceTest, VbrRateIsConstantWithinAnInterval) {
  sim::Simulation simulation{7};
  FluidSource source{simulation, config(TrafficModel::kVbr)};
  const double at_start = source.layer_rate(1, 5_s).bps();
  EXPECT_DOUBLE_EQ(source.layer_rate(1, Time::milliseconds(5'400)).bps(), at_start);
  EXPECT_DOUBLE_EQ(source.layer_rate(1, Time::milliseconds(5'999)).bps(), at_start);
}

TEST(FluidSourceTest, TrajectoryIndependentOfQueryGranularity) {
  // Draws are consumed per (interval, layer) regardless of how often the
  // engine samples, so a coarse-stepping engine sees the same interval rates
  // as a fine-stepping one.
  sim::Simulation sim_a{11};
  sim::Simulation sim_b{11};
  FluidSource fine{sim_a, config(TrafficModel::kVbr)};
  FluidSource coarse{sim_b, config(TrafficModel::kVbr)};
  // Sample `fine` ten times per interval and every layer; `coarse` only once
  // per interval and only layer 3.
  double fine_at_layer3 = 0.0;
  for (int i = 0; i < 40; ++i) {
    for (int tick = 0; tick < 10; ++tick) {
      const Time when = Time::milliseconds(std::int64_t{i} * 1'000 + tick * 100);
      for (int l = 1; l <= 6; ++l) {
        const double bps = fine.layer_rate(static_cast<net::LayerId>(l), when).bps();
        if (l == 3) fine_at_layer3 = bps;
      }
    }
    EXPECT_DOUBLE_EQ(coarse.layer_rate(3, Time::seconds(std::int64_t{i})).bps(),
                     fine_at_layer3)
        << "interval " << i;
  }
}

TEST(FluidSourceTest, DeterministicAcrossRunsAndSeedSensitive) {
  auto trajectory = [](std::uint64_t seed) {
    sim::Simulation simulation{seed};
    FluidSource source{simulation, config(TrafficModel::kVbr)};
    std::string out;
    for (int i = 0; i < 100; ++i) {
      for (int l = 1; l <= 6; ++l) {
        out += std::to_string(
                   source.layer_rate(static_cast<net::LayerId>(l), Time::seconds(std::int64_t{i}))
                       .bps()) +
               ",";
      }
    }
    return out;
  };
  EXPECT_EQ(trajectory(5), trajectory(5));
  EXPECT_NE(trajectory(5), trajectory(6));
}

}  // namespace
}  // namespace tsim::traffic
