// Fixture: nondeterministic sources suppressed in place. The harness wires
// the seed / clock through, so the sites are justified — and every one
// carries the NOLINT naming this check.
#include <chrono>
#include <cstdlib>

namespace fixture {

int seeded_by_harness() {
  return rand();  // NOLINT(nondeterministic-source) fixture: srand'd by the test harness
}

long bench_timer() {
  // NOLINT(nondeterministic-source) fixture: wall time measured outside the simulation
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
