// Fixture: every nondeterministic-source rule fires in this file — the
// aliased wall clock (the alias hides the clock type from name-based rules),
// host randomness, a pointer cast to an integer, and unordered containers
// keyed by a pointer both directly and through a `using` alias resolved by
// the cross-file collect pass. Five findings total; the fixture test asserts
// the exact count, so keep it in sync with tests/lint/CMakeLists.txt.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

struct Node {};
using WallClock = std::chrono::steady_clock;
using NodeHandle = Node*;

long stamp() {
  return WallClock::now().time_since_epoch().count();
}

int draw() { return rand(); }

std::size_t shuffle_key(const Node* node) {
  return reinterpret_cast<std::uintptr_t>(node);
}

int count_direct(const std::unordered_map<Node*, int>& by_node) {
  return static_cast<int>(by_node.size());
}

int count_aliased(const std::unordered_map<NodeHandle, int>& by_handle) {
  return static_cast<int>(by_handle.size());
}

}  // namespace fixture
