// Fixture: every nondeterministic-source rule fires in this file — the
// aliased wall clock (the alias hides the clock type from name-based rules),
// host randomness, a pointer cast to an integer, and unordered containers
// keyed by a pointer — directly, through a `using` alias resolved by the
// cross-file collect pass, and in the fluid-engine shape (per-cell credit
// state keyed by the cell's address). Six findings total; the fixture test
// asserts the exact count, so keep it in sync with tests/lint/CMakeLists.txt.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

struct Node {};
using WallClock = std::chrono::steady_clock;
using NodeHandle = Node*;

long stamp() {
  return WallClock::now().time_since_epoch().count();
}

int draw() { return rand(); }

std::size_t shuffle_key(const Node* node) {
  return reinterpret_cast<std::uintptr_t>(node);
}

int count_direct(const std::unordered_map<Node*, int>& by_node) {
  return static_cast<int>(by_node.size());
}

int count_aliased(const std::unordered_map<NodeHandle, int>& by_handle) {
  return static_cast<int>(by_handle.size());
}

// The fluid-engine temptation: per-(group,link) credit accumulators keyed by
// the cell object's address instead of a dense stats id.
struct FluidCell {};

double sum_credits(const std::unordered_map<FluidCell*, double>& credit_by_cell) {
  double sum = 0.0;
  for (const auto& [cell, credit] : credit_by_cell) sum += credit;
  return sum;
}

}  // namespace fixture
