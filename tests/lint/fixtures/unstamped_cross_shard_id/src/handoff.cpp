// Fixture: per-network ids crossing a fake shard channel. Two findings —
// the raw uid argument and the Packet variable posted without the re-stamp
// path; the re-stamped site mirrors net::ShardLink::send and is clean. The
// fixture test asserts the exact count, so keep it in sync with
// tests/lint/CMakeLists.txt.
#include <cstdint>

namespace fixture {

inline constexpr std::uint32_t kInvalidGroupStatsId = 0xffffffffu;

struct Packet {
  std::uint64_t uid{0};
  std::uint32_t group_stats_id{kInvalidGroupStatsId};
};

struct Channel {
  template <typename F>
  void post(double when, F&& action);
};

struct Network {
  std::uint64_t next_packet_uid();
  void deliver(Packet packet);
};

struct Hop {
  void forward_uid(std::uint64_t uid, double now) {
    channel_.post(now + 1.0, [this, uid] { record(uid); });
  }

  void forward_packet(const Packet& packet, double now) {
    Packet copy = packet;
    channel_.post(now + 1.0, [this, copy] { dest_->deliver(copy); });
  }

  void forward_restamped(const Packet& packet, double now) {
    Packet copy = packet;
    copy.group_stats_id = kInvalidGroupStatsId;
    channel_.post(now + 1.0, [this, copy]() mutable {
      copy.uid = dest_->next_packet_uid();
      dest_->deliver(copy);
    });
  }

  void record(std::uint64_t value);

  Channel channel_;
  Network* dest_{nullptr};
};

}  // namespace fixture
