// Fixture: a session-scoped id that is globally unique by construction —
// the cross-shard transfer is justified and suppressed in place.
#include <cstdint>

namespace fixture {

struct Channel {
  template <typename F>
  void post(double when, F&& action);
};

void consume(std::uint64_t value);

struct SessionHop {
  void forward(std::uint64_t session_uid, double now) {
    // NOLINT(unstamped-cross-shard-id) fixture: session uids are allocated globally, not per-Network
    channel_.post(now + 1.0, [session_uid] { consume(session_uid); });
  }

  Channel channel_;
};

}  // namespace fixture
