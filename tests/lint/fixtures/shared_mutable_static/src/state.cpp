// Fixture: mutable static state shared across shard threads. Three findings
// — the two namespace-scope statics and the function-local counter; the
// thread_local (the allowlisted per-shard pattern), const, and constexpr
// declarations are clean. The fixture test asserts the exact total, so keep
// the counts in sync with tests/lint/CMakeLists.txt if you edit it.
#include <vector>

namespace fixture {

static int g_total_drops = 0;
static std::vector<int> g_reorder_buffer;

int bump() {
  static int calls = 0;
  thread_local int per_shard_calls = 0;  // clean: the PacketRef-pool pattern
  static const int kWindow = 8;          // clean: immutable after init
  static constexpr double kAlpha = 0.5;  // clean: compile-time
  ++calls;
  ++per_shard_calls;
  g_reorder_buffer.push_back(calls);
  return g_total_drops + calls + kWindow + static_cast<int>(kAlpha);
}

}  // namespace fixture
