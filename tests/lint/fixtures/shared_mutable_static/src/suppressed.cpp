// Fixture: a deliberately-shared knob, suppressed in place with its
// justification — configured before the run starts, read-only afterwards.
namespace fixture {

int knob() {
  static int g_verbosity = 1;  // NOLINT(shared-mutable-static) fixture: set before the run, read-only after
  return g_verbosity;
}

}  // namespace fixture
