// Fixture: every determinism rule fires exactly once in this file. The
// fixture test asserts the exact total, so keep the counts in sync with
// tests/lint/CMakeLists.txt if you edit it.
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace fixture {

int wall_clock_and_rand() {
  const auto now = std::chrono::steady_clock::now();
  const int draw = rand();
  return static_cast<int>(now.time_since_epoch().count()) + draw;
}

int pointer_keyed_and_unordered_iteration() {
  std::map<int*, int> by_address;
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total + static_cast<int>(by_address.size());
}

}  // namespace fixture
