// Fixture: the same patterns as clock_abuse.cpp, each suppressed with a
// NOLINT marker. None of these may count toward the fixture total.
#include <chrono>
#include <cstdlib>

namespace fixture {

int suppressed_wall_clock() {
  // NOLINT(determinism): fixture exercising next-line suppression
  const auto now = std::chrono::steady_clock::now();
  const int draw = rand();  // NOLINT(determinism) fixture same-line suppression
  const int wild = rand();  // NOLINT(*) fixture wildcard suppression
  return static_cast<int>(now.time_since_epoch().count()) + draw + wild;
}

}  // namespace fixture
