// Fixture: a loop accumulation whose order is fixed by construction (sorted
// input), suppressed in place.
#include <vector>

namespace fixture {

double total_sorted(const std::vector<double>& sorted_xs) {
  double sum = 0.0;
  for (const double x : sorted_xs) {
    sum += x;  // NOLINT(float-accumulation) fixture: input is order-fixed
  }
  return sum;
}

}  // namespace fixture
