// Fixture: one order-sensitive double accumulation inside a range-for. The
// integer count and the accumulation outside any loop are negatives.
#include <vector>

namespace fixture {

double total(const std::vector<double>& xs) {
  double sum = 0.0;
  int count = 0;
  for (const double x : xs) {
    sum += x;
    count += 1;
  }
  double outside = 0.0;
  outside += static_cast<double>(count);
  return sum + outside;
}

}  // namespace fixture
