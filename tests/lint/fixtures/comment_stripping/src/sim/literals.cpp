// Fixture: comment/string stripping regressions in the lint engine. Exactly
// three nondeterministic-source findings fire here — one after each literal
// form that once confused strip_comments. The fixture test asserts the exact
// total, so a stripping regression fails in either direction:
//   - leaked raw-string contents ADD findings (the literals below spell out
//     clock and rand calls as prose), or
//   - a re-broken parse (swallowing the rest of the line/file after a
//     literal) DROPS the real findings that follow each one.
#include <chrono>
#include <cstdlib>
#include <string>

namespace fixture {

// Raw string literal: everything between R"( and )" is data. The clock call
// inside it must be ignored; the one after it must be seen.
std::string raw_literal_hides_content() {
  const std::string doc = R"(prose: call std::chrono::steady_clock::now() and rand())";
  const auto now = std::chrono::steady_clock::now();
  return doc + std::to_string(now.time_since_epoch().count());
}

// Multi-line raw string with a custom delimiter: the only terminator is the
// exact )doc" sequence two lines down, so both code-shaped lines inside are
// literal text. The rand() after it is real.
std::string raw_literal_multiline() {
  const std::string doc = R"doc(
    const auto t = std::chrono::steady_clock::now();
    srand(42);
  )doc";
  const int draw = rand();
  return doc + std::to_string(draw);
}

// C++14 digit separator: the apostrophe in 32'000.0 is not a char-literal
// opener. Mis-lexing it once swallowed the rest of the line — including the
// closing brace of a braced initializer — and desynced every later line.
double digit_separator_not_char_literal() {
  const double base{32'000.0};
  const auto now = std::chrono::steady_clock::now();
  return base + static_cast<double>(now.time_since_epoch().count());
}

}  // namespace fixture
