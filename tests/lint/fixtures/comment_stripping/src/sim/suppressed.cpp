// Fixture: the same post-literal findings as literals.cpp, each suppressed
// with NOLINT — stripping must leave suppression markers (which live in
// comments) working. Zero findings expected from this file.
#include <chrono>
#include <cstdlib>
#include <string>

namespace fixture {

std::string raw_literal_suppressed() {
  const std::string doc = R"(prose: std::chrono::steady_clock::now())";
  const auto now = std::chrono::steady_clock::now();  // NOLINT(nondeterministic-source)
  return doc + std::to_string(now.time_since_epoch().count());
}

double digit_separator_suppressed() {
  const double base{64'000.0};
  const int draw = rand();  // NOLINT(nondeterministic-source)
  return base + static_cast<double>(draw);
}

}  // namespace fixture
