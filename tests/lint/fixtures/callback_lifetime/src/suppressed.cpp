// Fixture: a fire-and-forget this-capturing callback whose lifetime is
// actually safe (the agent outlives the simulation), suppressed in place.
namespace fixture {

struct EventId {};

struct FakeSim {
  template <typename F>
  EventId after(double delay, F&& fn);
};

struct ImmortalAgent {
  void start() {
    sim_.after(1.0, [this] { tick(); });  // NOLINT(callback-lifetime) fixture: agent outlives sim
  }
  void tick();

  FakeSim sim_;
};

}  // namespace fixture
