// Fixture: this-capturing callbacks handed to the scheduler. Two findings —
// the fire-and-forget sites; the site that retains the EventId is clean.
namespace fixture {

struct EventId {};

struct FakeSim {
  template <typename F>
  EventId after(double delay, F&& fn);
  template <typename F>
  EventId at(double when, F&& fn);
};

struct Agent {
  void start() {
    sim_.after(1.0, [this] { tick(); });
    sim_.at(2.0, [this] { tick(); });
    timer_ = sim_.after(3.0, [this] { tick(); });
  }
  void tick();

  FakeSim sim_;
  EventId timer_;
};

}  // namespace fixture
