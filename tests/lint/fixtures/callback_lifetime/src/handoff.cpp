// Fixture: cross-shard handoff actions posted to a shard channel. Two
// findings — the by-reference captures; the by-value site and the suppressed
// site are clean.
namespace fixture {

struct FakeChannel {
  template <typename F>
  void post(double when, F&& action);
};

struct Handoff {
  void forward(double now) {
    double value = now * 2.0;
    channel_.post(now + 1.0, [&] { sink(value); });          // finding: [&]
    channel_.post(now + 1.0, [&value] { sink(value); });     // finding: [&value]
    channel_.post(now + 1.0, [value, this] { sink(value); });  // clean: by value
    // NOLINT(callback-lifetime) — destination owns `value` in this contrived case
    channel_.post(now + 1.0, [&value] { sink(value); });
  }
  void sink(double value);

  FakeChannel channel_;
};

}  // namespace fixture
