// Fixture: four raw-unit doubles in a public header — one per suffix the
// check knows, plus the fluid-engine shape (an aggregate *offered rate*
// accumulator kept as a bare double). The fixture test asserts the exact
// total.
#pragma once

namespace fixture {

struct TunerConfig {
  double target_bps{0.0};
  double window_bytes{0.0};
  double decay_fraction{0.0};
  double offered_bps{0.0};  ///< fluid-style per-link offered-rate accumulator
  // Negatives: no unit suffix, pointer, and a function declaration.
  double plain{0.0};
  double* scratch_bps{nullptr};
  double rate_bps();
};

}  // namespace fixture
