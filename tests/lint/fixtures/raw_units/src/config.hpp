// Fixture: three raw-unit doubles in a public header, one per suffix the
// check knows. The fixture test asserts the exact total.
#pragma once

namespace fixture {

struct TunerConfig {
  double target_bps{0.0};
  double window_bytes{0.0};
  double decay_fraction{0.0};
  // Negatives: no unit suffix, pointer, and a function declaration.
  double plain{0.0};
  double* scratch_bps{nullptr};
  double rate_bps();
};

}  // namespace fixture
