// Fixture: raw-unit doubles that stay raw on purpose, suppressed in place.
#pragma once

namespace fixture {

struct LegacyWireFormat {
  double encoded_bps{0.0};  // NOLINT(raw-units) fixture: external wire format
  // NOLINT(raw-units): fixture exercising next-line suppression
  double encoded_bytes{0.0};
};

}  // namespace fixture
