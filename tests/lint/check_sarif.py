#!/usr/bin/env python3
"""Structural validity check for toposense_lint's SARIF 2.1.0 output.

Runs the lint binary over the determinism fixture tree, then asserts the
emitted SARIF log has the shape CI viewers (and the SARIF 2.1.0 schema)
require. Pure stdlib on purpose: the CI image has no jsonschema package.

Usage: check_sarif.py <toposense_lint-binary> <fixture-dir>
"""

import json
import subprocess
import sys
import tempfile
import os


def fail(message):
    print(f"check_sarif: FAIL: {message}")
    sys.exit(1)


def require(condition, message):
    if not condition:
        fail(message)


def main():
    if len(sys.argv) != 3:
        fail("usage: check_sarif.py <toposense_lint-binary> <fixture-dir>")
    lint_bin, fixture_dir = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = os.path.join(tmp, "lint.sarif")
        proc = subprocess.run(
            [lint_bin, "--checks", "determinism", "--sarif", sarif_path, "src"],
            cwd=fixture_dir,
            capture_output=True,
            text=True,
        )
        # Findings are expected (exit 1); anything else is a tool error.
        require(proc.returncode == 1,
                f"expected exit 1 (findings), got {proc.returncode}: {proc.stderr}")
        with open(sarif_path, encoding="utf-8") as f:
            log = json.load(f)

    require(log.get("version") == "2.1.0", "version must be 2.1.0")
    require("sarif-2.1.0" in log.get("$schema", ""), "$schema must name sarif-2.1.0")

    runs = log.get("runs")
    require(isinstance(runs, list) and len(runs) == 1, "exactly one run")
    run = runs[0]

    driver = run.get("tool", {}).get("driver", {})
    require(driver.get("name") == "toposense_lint", "driver name")
    require(isinstance(driver.get("version"), str), "driver version")
    rules = driver.get("rules")
    require(isinstance(rules, list) and rules, "driver rules non-empty")
    rule_ids = set()
    for rule in rules:
        require(isinstance(rule.get("id"), str) and rule["id"], "rule id")
        require(rule["id"] not in rule_ids, f"duplicate rule id {rule['id']}")
        rule_ids.add(rule["id"])
        require(isinstance(rule.get("shortDescription", {}).get("text"), str),
                f"rule {rule['id']} shortDescription.text")

    results = run.get("results")
    require(isinstance(results, list), "results array")
    # The determinism fixture produces exactly 4 findings (see clock_abuse.cpp).
    require(len(results) == 4, f"expected 4 results, got {len(results)}")
    for result in results:
        rule_id = result.get("ruleId", "")
        require("/" in rule_id, f"ruleId '{rule_id}' must be check/rule")
        require(rule_id.split("/", 1)[0] in rule_ids,
                f"ruleId '{rule_id}' check not in driver rules")
        require(result.get("level") == "warning", "result level")
        require(result.get("baselineState") in ("new", "unchanged"),
                "result baselineState")
        require(isinstance(result.get("message", {}).get("text"), str),
                "result message.text")
        locations = result.get("locations")
        require(isinstance(locations, list) and len(locations) == 1,
                "one location per result")
        physical = locations[0].get("physicalLocation", {})
        uri = physical.get("artifactLocation", {}).get("uri")
        require(isinstance(uri, str) and uri.startswith("src/"),
                f"artifact uri '{uri}' must be repo-relative")
        start_line = physical.get("region", {}).get("startLine")
        require(isinstance(start_line, int) and start_line >= 1,
                "region.startLine must be a positive int")
    # No baseline was passed, so every result must be new.
    require(all(r["baselineState"] == "new" for r in results),
            "all results new without a baseline")

    print(f"check_sarif: OK ({len(results)} results, {len(rule_ids)} rules)")


if __name__ == "__main__":
    main()
