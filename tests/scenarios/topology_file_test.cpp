#include "scenarios/topology_file.hpp"

#include <gtest/gtest.h>

#include "scenarios/scenario.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

constexpr const char* kValid = R"(
# A comment
node src
node r
node a

link src r 10Mbps 50ms
link r a 256kbps 100ms queue 20 red

source 0 src
receiver a 0 start 5 stop 100
controller src
)";

TEST(BandwidthParseTest, AcceptsSuffixes) {
  EXPECT_DOUBLE_EQ(parse_bandwidth("256kbps").bps(), 256e3);
  EXPECT_DOUBLE_EQ(parse_bandwidth("1.5Mbps").bps(), 1.5e6);
  EXPECT_DOUBLE_EQ(parse_bandwidth("2Gbps").bps(), 2e9);
  EXPECT_DOUBLE_EQ(parse_bandwidth("8000bps").bps(), 8000.0);
  EXPECT_DOUBLE_EQ(parse_bandwidth("64KBPS").bps(), 64e3);  // case-insensitive
}

TEST(BandwidthParseTest, RejectsGarbage) {
  EXPECT_LT(parse_bandwidth("fast").bps(), 0.0);
  EXPECT_LT(parse_bandwidth("10").bps(), 0.0);
  EXPECT_LT(parse_bandwidth("-5Mbps").bps(), 0.0);
  EXPECT_LT(parse_bandwidth("Mbps").bps(), 0.0);
}

TEST(LatencyParseTest, AcceptsUnits) {
  EXPECT_EQ(parse_latency("200ms"), 200_ms);
  EXPECT_EQ(parse_latency("1.5s"), Time::seconds(1.5));
  EXPECT_EQ(parse_latency("0ms"), Time::zero());
}

TEST(LatencyParseTest, RejectsGarbage) {
  EXPECT_LT(parse_latency("fast"), Time::zero());
  EXPECT_LT(parse_latency("100"), Time::zero());
}

TEST(TopologyParseTest, ParsesValidFile) {
  const auto result = parse_topology(kValid);
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& d = *result.description;
  EXPECT_EQ(d.nodes.size(), 3u);
  ASSERT_EQ(d.links.size(), 2u);
  EXPECT_DOUBLE_EQ(d.links[1].bandwidth.bps(), 256e3);
  EXPECT_EQ(d.links[1].latency, 100_ms);
  EXPECT_TRUE(d.links[1].red);
  ASSERT_TRUE(d.links[1].queue_packets.has_value());
  EXPECT_EQ(*d.links[1].queue_packets, 20u);
  EXPECT_FALSE(d.links[0].red);
  ASSERT_EQ(d.receivers.size(), 1u);
  EXPECT_EQ(d.receivers[0].start, Time::seconds(std::int64_t{5}));
  EXPECT_EQ(d.receivers[0].stop, Time::seconds(std::int64_t{100}));
  EXPECT_EQ(d.controller_node, "src");
}

TEST(TopologyParseTest, ErrorsNameTheLine) {
  const auto result = parse_topology("node a\nlink a b 10Mbps 5ms\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("undeclared node 'b'"), std::string::npos);

  const auto bad_bw = parse_topology("node a\nnode b\nlink a b fast 5ms\n");
  ASSERT_FALSE(bad_bw.ok());
  EXPECT_NE(bad_bw.error.find("line 3"), std::string::npos);
}

TEST(TopologyParseTest, RequiresControllerSourceAndReceivers) {
  EXPECT_FALSE(parse_topology("node a\nsource 0 a\ncontroller a\n").ok());
  EXPECT_FALSE(
      parse_topology("node a\nnode b\nsource 0 a\nreceiver b 0\n").ok());  // no controller
  EXPECT_FALSE(parse_topology("node a\nnode b\nreceiver b 0\ncontroller a\n").ok());
}

TEST(TopologyParseTest, ReceiverWithoutSourceSessionFails) {
  const auto result =
      parse_topology("node a\nnode b\nsource 0 a\nreceiver b 7\ncontroller a\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("session 7"), std::string::npos);
}

TEST(TopologyParseTest, DuplicateNodeFails) {
  EXPECT_FALSE(parse_topology("node a\nnode a\n").ok());
}

TEST(TopologyParseTest, SemanticErrorsNameTheOffendingLine) {
  // Undeclared link endpoint: the error points at the link line, not "line 0".
  const auto link = parse_topology("node a\nlink a b 10Mbps 5ms\n");
  ASSERT_FALSE(link.ok());
  EXPECT_NE(link.error.find("line 2"), std::string::npos) << link.error;

  const auto rcv =
      parse_topology("node a\nnode b\nsource 0 a\nreceiver b 7\ncontroller a\n");
  ASSERT_FALSE(rcv.ok());
  EXPECT_NE(rcv.error.find("line 4"), std::string::npos) << rcv.error;

  const auto ctrl =
      parse_topology("node a\nnode b\nsource 0 a\nreceiver b 0\ncontroller ghost\n");
  ASSERT_FALSE(ctrl.ok());
  EXPECT_NE(ctrl.error.find("line 5"), std::string::npos) << ctrl.error;
}

TEST(TopologyParseTest, RejectsBadSessionIds) {
  const auto garbage =
      parse_topology("node a\nnode b\nsource zero a\nreceiver b 0\ncontroller a\n");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.error.find("bad session id"), std::string::npos) << garbage.error;

  const auto range =
      parse_topology("node a\nnode b\nsource 0 a\nreceiver b 70000\ncontroller a\n");
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.error.find("bad session id"), std::string::npos) << range.error;

  const auto trailing =
      parse_topology("node a\nnode b\nsource 0x1 a\nreceiver b 0\ncontroller a\n");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.error.find("bad session id"), std::string::npos)
      << trailing.error;
}

TEST(TopologyParseTest, RejectsOutOfRangeBandwidth) {
  const auto result = parse_topology("node a\nnode b\nlink a b 5000Gbps 5ms\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("out of range"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("line 3"), std::string::npos) << result.error;
}

TEST(TopologyParseTest, RejectsBrokenReceiverWindows) {
  // Unpaired trailing option token: an error, not silently dropped.
  const auto unpaired = parse_topology(
      "node a\nnode b\nsource 0 a\nreceiver b 0 start\ncontroller a\n");
  ASSERT_FALSE(unpaired.ok());
  EXPECT_NE(unpaired.error.find("needs a value"), std::string::npos)
      << unpaired.error;

  const auto negative = parse_topology(
      "node a\nnode b\nsource 0 a\nreceiver b 0 start -5\ncontroller a\n");
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.error.find("bad time"), std::string::npos) << negative.error;

  const auto inverted = parse_topology(
      "node a\nnode b\nsource 0 a\nreceiver b 0 start 50 stop 10\ncontroller a\n");
  ASSERT_FALSE(inverted.ok());
  EXPECT_NE(inverted.error.find("stop must be after start"), std::string::npos)
      << inverted.error;
}

TEST(FromDescriptionTest, BuildsAndRunsEndToEnd) {
  const auto parsed = parse_topology(kValid);
  ASSERT_TRUE(parsed.ok());
  ScenarioConfig config;
  config.seed = 81;
  config.duration = 120_s;
  auto scenario = Scenario::from_description(config, *parsed.description);
  ASSERT_EQ(scenario->results().size(), 1u);
  EXPECT_EQ(scenario->results()[0].optimal, 3);  // 256 kbps bottleneck
  scenario->run();
  // Receiver joined at 5 s and should have climbed toward 3 layers.
  double mean = 0.0;
  for (int level = 0; level <= 6; ++level) {
    mean += level * scenario->results()[0].timeline.time_at_level_fraction(level, 60_s, 120_s);
  }
  EXPECT_GE(mean, 1.7);  // RED early-drops shave the mean slightly below the drop-tail value
  // The RED link option took effect.
  bool any_red = false;
  for (net::LinkId id = 0; id < scenario->network().link_count(); ++id) {
    if (scenario->network().link(id).red_enabled()) any_red = true;
  }
  EXPECT_TRUE(any_red);
}

// Robustness sweep: structured garbage must produce an error, never a crash
// or a silently-accepted description.
class ParserRobustness : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRobustness, GarbageYieldsErrorNotCrash) {
  const auto result = parse_topology(GetParam());
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserRobustness,
    ::testing::Values("", "nonsense directive here", "node", "node a b c",
                      "link a b", "node a\nnode b\nlink a b 1Mbps",
                      "node a\nnode b\nlink a b 1Mbps 10ms queue zero",
                      "node a\nnode b\nlink a b 1Mbps 10ms frobnicate",
                      "source 0 ghost", "controller ghost",
                      "node a\nsource 0 a\nreceiver a 0 start soon\ncontroller a",
                      "node a\nnode a",
                      "receiver x 0", "#only a comment\n\n\n"));

TEST(FromDescriptionTest, MultiSessionOptimaShareBottlenecks) {
  // Two sessions, both with a receiver behind one 512 kbps link: the greedy
  // lexicographic optimum gives 3 layers each (2 x 224 kbps <= 512 kbps).
  const auto parsed = parse_topology(R"(
node s0
node s1
node core
node edge
node a
node b
link s0 core 45Mbps 10ms
link s1 core 45Mbps 10ms
link core edge 512kbps 50ms
link edge a 10Mbps 10ms
link edge b 10Mbps 10ms
source 0 s0
source 1 s1
receiver a 0
receiver b 1
controller s0
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ScenarioConfig config;
  config.duration = 10_s;
  auto scenario = Scenario::from_description(config, *parsed.description);
  ASSERT_EQ(scenario->results().size(), 2u);
  EXPECT_EQ(scenario->results()[0].optimal, 3);
  EXPECT_EQ(scenario->results()[1].optimal, 3);
}

TEST(FromDescriptionTest, UnreachableReceiverThrows) {
  const auto parsed = parse_topology(
      "node src\nnode island\nsource 0 src\nreceiver island 0\ncontroller src\n");
  ASSERT_TRUE(parsed.ok());
  ScenarioConfig config;
  EXPECT_THROW(Scenario::from_description(config, *parsed.description),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsim::scenarios
