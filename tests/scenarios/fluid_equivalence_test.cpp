// Fluid-vs-packet equivalence: the fluid engine exists to shed per-packet
// event load, not to change the closed-loop answer. On the paper's Fig 5
// scenarios both engines oscillate around the same optimum (probe up, hit
// loss at the bottleneck, back off) but the probe phases are not aligned —
// fluid loss onset is an analytic function of the step while packet loss
// depends on queue phase — so the equivalence claim is on the CONVERGED MEAN
// subscription per receiver, tight for CBR and looser for VBR (whose fluid
// trajectory also drops the sub-interval phase effects: per-layer stagger
// and +/-10% spacing jitter; see docs/performance.md).
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

std::string fingerprint(Scenario& s) {
  std::string out;
  for (const auto& r : s.results()) {
    out += r.name + ":";
    for (const auto& [t, level] : r.timeline.points()) {
      out += std::to_string(t.as_nanoseconds()) + "/" + std::to_string(level) + ",";
    }
    out += "|loss=" + std::to_string(r.loss_overall) + ";";
  }
  return out;
}

/// Subscription level of `r` at time `t` (level of the last change <= t).
int level_at(const ReceiverResult& r, Time t) {
  int level = 0;
  for (const auto& [when, lvl] : r.timeline.points()) {
    if (when > t) break;
    level = lvl;
  }
  return level;
}

/// Mean subscription over [from, to], sampled once per second.
double mean_level(const ReceiverResult& r, Time from, Time to) {
  double sum = 0.0;
  int samples = 0;
  for (Time t = from; t <= to; t = t + 1_s) {
    sum += level_at(r, t);
    ++samples;
  }
  return sum / samples;
}

ScenarioConfig engine_config(TrafficEngine engine, traffic::TrafficModel model,
                             std::uint64_t seed = 5) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration = 150_s;
  cfg.traffic.model = model;
  cfg.traffic.engine = engine;
  return cfg;
}

TEST(FluidEquivalenceTest, CbrTopologyAMatchesPacketModelMean) {
  // Fig 5/6 heterogeneity scenario: set 1 behind a 3-layer bottleneck, set 2
  // behind a 5-layer bottleneck. CBR rates are identical constants in both
  // engines, so each receiver's converged mean must agree tightly and sit
  // near its declared optimum in BOTH engines.
  auto packet = ScenarioBuilder(engine_config(TrafficEngine::kPacket, traffic::TrafficModel::kCbr))
                    .topology_a(TopologyAOptions{})
                    .build();
  auto fluid = ScenarioBuilder(engine_config(TrafficEngine::kFluid, traffic::TrafficModel::kCbr))
                   .topology_a(TopologyAOptions{})
                   .build();
  packet->run();
  fluid->run();
  ASSERT_EQ(packet->results().size(), fluid->results().size());
  for (std::size_t i = 0; i < packet->results().size(); ++i) {
    const auto& p = packet->result(i);
    const auto& f = fluid->result(i);
    const double mp = mean_level(p, 50_s, 150_s);
    const double mf = mean_level(f, 50_s, 150_s);
    EXPECT_NEAR(mp, mf, 0.75) << p.name;
    EXPECT_NEAR(mp, p.optimal, 1.0) << p.name;
    EXPECT_NEAR(mf, f.optimal, 1.0) << f.name;
  }
}

TEST(FluidEquivalenceTest, CbrTopologyBMatchesPacketModelMean) {
  // Fig 5/7 fairness scenario: 4 sessions share one link sized for 4 layers
  // each.
  TopologyBOptions options;
  auto packet = ScenarioBuilder(engine_config(TrafficEngine::kPacket, traffic::TrafficModel::kCbr))
                    .topology_b(options)
                    .build();
  auto fluid = ScenarioBuilder(engine_config(TrafficEngine::kFluid, traffic::TrafficModel::kCbr))
                   .topology_b(options)
                   .build();
  packet->run();
  fluid->run();
  ASSERT_EQ(packet->results().size(), fluid->results().size());
  for (std::size_t i = 0; i < packet->results().size(); ++i) {
    const auto& p = packet->result(i);
    const auto& f = fluid->result(i);
    EXPECT_NEAR(mean_level(p, 50_s, 150_s), mean_level(f, 50_s, 150_s), 0.75) << p.name;
  }
}

TEST(FluidEquivalenceTest, VbrTopologyAWithinTolerance) {
  // VBR: the engines draw the same per-second on/off process from different
  // stream positions and the fluid side has no sub-interval phase, so exact
  // trajectories are not expected — the converged mean subscription is.
  auto packet = ScenarioBuilder(engine_config(TrafficEngine::kPacket, traffic::TrafficModel::kVbr))
                    .topology_a(TopologyAOptions{})
                    .build();
  auto fluid = ScenarioBuilder(engine_config(TrafficEngine::kFluid, traffic::TrafficModel::kVbr))
                   .topology_a(TopologyAOptions{})
                   .build();
  packet->run();
  fluid->run();
  ASSERT_EQ(packet->results().size(), fluid->results().size());
  for (std::size_t i = 0; i < packet->results().size(); ++i) {
    const auto& p = packet->result(i);
    const auto& f = fluid->result(i);
    EXPECT_NEAR(mean_level(p, 50_s, 150_s), mean_level(f, 50_s, 150_s), 1.0) << p.name;
  }
}

TEST(FluidEquivalenceTest, FluidStarConvergesAndCreditsEndpoints) {
  ScenarioConfig cfg = engine_config(TrafficEngine::kFluid, traffic::TrafficModel::kCbr);
  cfg.duration = 60_s;
  StarOptions star;
  star.receivers = 40;
  auto scenario = ScenarioBuilder(cfg).star(star).build();
  scenario->run();
  ASSERT_NE(scenario->fluid_engine(), nullptr);
  // One event per 100 ms step for the whole network, not one per packet.
  EXPECT_GE(scenario->fluid_engine()->steps_executed(), 590u);
  ASSERT_EQ(scenario->results().size(), 40u);
  for (std::size_t i = 0; i < scenario->endpoints().size(); ++i) {
    // Integrated deliveries reached every endpoint through the real tree.
    EXPECT_GT(scenario->endpoints()[i]->total_packets().count(), 0u)
        << scenario->result(i).name;
    // 1.2 Mbps access fits 5 layers (992 kbps); receivers probe up from 1.
    EXPECT_GE(scenario->result(i).final_subscription, 3) << scenario->result(i).name;
    EXPECT_LE(scenario->result(i).final_subscription, 5) << scenario->result(i).name;
  }
}

TEST(FluidEquivalenceTest, FluidRunsAreDeterministic) {
  auto run_once = [] {
    ScenarioConfig cfg = engine_config(TrafficEngine::kFluid, traffic::TrafficModel::kVbr, 9);
    TopologyAOptions options;
    options.cross_traffic_bps = 96e3;  // exercises the background-flow path
    options.cross_start = 50_s;
    auto s = ScenarioBuilder(cfg).topology_a(options).build();
    s->run();
    return fingerprint(*s);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FluidEquivalenceTest, BurstEngineRunsAndIsDeterministic) {
  auto run_once = [] {
    auto s = ScenarioBuilder(engine_config(TrafficEngine::kBurst, traffic::TrafficModel::kVbr))
                 .topology_a(TopologyAOptions{})
                 .build();
    s->run();
    return fingerprint(*s);
  };
  const std::string fp = run_once();
  EXPECT_EQ(fp, run_once());
  // Trains still drive the full closed loop to non-trivial subscriptions.
  auto s = ScenarioBuilder(engine_config(TrafficEngine::kBurst, traffic::TrafficModel::kVbr))
               .topology_a(TopologyAOptions{})
               .build();
  s->run();
  for (const auto& r : s->results()) {
    EXPECT_GT(r.final_subscription, 0) << r.name;
  }
}

TEST(FluidEquivalenceTest, NonDividingFluidStepIsRejected) {
  ScenarioConfig cfg = engine_config(TrafficEngine::kFluid, traffic::TrafficModel::kCbr);
  cfg.traffic.fluid_step = sim::Time::milliseconds(33);  // does not divide 1 s
  EXPECT_THROW(ScenarioBuilder(cfg).topology_a(TopologyAOptions{}).build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsim::scenarios
