// Fluid-vs-fluid cross-session fairness: when two fluid-engine sessions
// share one bottleneck, the *split* between them must match what the packet
// engine produces — not just each receiver matching its own packet twin
// (fluid_equivalence_test.cpp covers that). The fluid loss signal is shared
// per link, so a systematic bias (e.g. pass order favoring the session
// walked first) would show up here as a skewed split long before it moved
// any single receiver out of the equivalence band. Tolerances follow the
// equivalence test: converged means over the tail window, 0.75 layers
// against the packet engine, and the two sessions within one layer of each
// other inside each engine.
#include <gtest/gtest.h>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// Subscription level of `r` at time `t` (level of the last change <= t).
int level_at(const ReceiverResult& r, Time t) {
  int level = 0;
  for (const auto& [when, lvl] : r.timeline.points()) {
    if (when > t) break;
    level = lvl;
  }
  return level;
}

/// Mean subscription over [from, to], sampled once per second.
double mean_level(const ReceiverResult& r, Time from, Time to) {
  double sum = 0.0;
  int samples = 0;
  for (Time t = from; t <= to; t = t + 1_s) {
    sum += level_at(r, t);
    ++samples;
  }
  return sum / samples;
}

ScenarioConfig engine_config(TrafficEngine engine) {
  ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.duration = 150_s;
  cfg.traffic.model = traffic::TrafficModel::kCbr;
  cfg.traffic.engine = engine;
  return cfg;
}

TEST(FluidFairnessTest, TwoFluidSessionsSplitSharedBottleneckLikePacketEngine) {
  // Topology B shrunk to the minimal fairness shape: 2 sessions, shared link
  // sized for exactly 2 * per_session_bps, so the fair outcome is each
  // session at its declared optimal.
  TopologyBOptions options;
  options.sessions = 2;
  auto packet =
      ScenarioBuilder(engine_config(TrafficEngine::kPacket)).topology_b(options).build();
  auto fluid =
      ScenarioBuilder(engine_config(TrafficEngine::kFluid)).topology_b(options).build();
  packet->run();
  fluid->run();
  ASSERT_EQ(packet->results().size(), 2u);
  ASSERT_EQ(fluid->results().size(), 2u);

  double mean_p[2];
  double mean_f[2];
  for (int k = 0; k < 2; ++k) {
    const auto& p = packet->result(k);
    const auto& f = fluid->result(k);
    mean_p[k] = mean_level(p, 50_s, 150_s);
    mean_f[k] = mean_level(f, 50_s, 150_s);
    // Each fluid receiver tracks its packet twin and its declared optimum.
    EXPECT_NEAR(mean_p[k], mean_f[k], 0.75) << p.name;
    EXPECT_NEAR(mean_f[k], f.optimal, 1.0) << f.name;
  }
  // The split itself: neither engine may systematically favor one session.
  EXPECT_NEAR(mean_f[0], mean_f[1], 1.0);
  // And the fluid skew must match the packet skew, not just stay small.
  EXPECT_NEAR(mean_f[0] - mean_f[1], mean_p[0] - mean_p[1], 0.75);
}

TEST(FluidFairnessTest, StaggeredFluidSessionsConvergeToTheSameSplit) {
  // Late-joiner variant: session 1 starts 20 s into session 0's run, so the
  // incumbent holds the whole bottleneck first. After convergence the split
  // must be indistinguishable from the packet engine's — the fluid loss
  // model may not let the incumbent starve (or be starved by) the joiner.
  TopologyBOptions options;
  options.sessions = 2;
  options.session_stagger = 20_s;
  auto packet =
      ScenarioBuilder(engine_config(TrafficEngine::kPacket)).topology_b(options).build();
  auto fluid =
      ScenarioBuilder(engine_config(TrafficEngine::kFluid)).topology_b(options).build();
  packet->run();
  fluid->run();
  ASSERT_EQ(packet->results().size(), 2u);
  ASSERT_EQ(fluid->results().size(), 2u);

  // Tail window well past the stagger: both sessions long since joined.
  double mean_p[2];
  double mean_f[2];
  for (int k = 0; k < 2; ++k) {
    mean_p[k] = mean_level(packet->result(k), 100_s, 150_s);
    mean_f[k] = mean_level(fluid->result(k), 100_s, 150_s);
    EXPECT_NEAR(mean_p[k], mean_f[k], 0.75) << packet->result(k).name;
  }
  // The late joiner converges to the incumbent's share in the fluid engine
  // just as it does in the packet engine.
  EXPECT_NEAR(mean_f[0] - mean_f[1], mean_p[0] - mean_p[1], 0.75);
}

}  // namespace
}  // namespace tsim::scenarios
