// Tiered random-topology scenarios (Fig 2): TopoSense on generated ISP
// hierarchies, with per-receiver optima from the offline allocator.
#include <gtest/gtest.h>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

TEST(TieredTest, TopologyHasExpectedShape) {
  ScenarioConfig config;
  config.seed = 71;
  config.duration = 30_s;
  TieredOptions options;
  options.regionals = 3;
  options.locals_per_regional = 2;
  options.receivers_per_local = 2;
  auto s = ScenarioBuilder(config).tiered(options).build();
  // source + national + 3 regionals + 6 locals + 12 receivers.
  EXPECT_EQ(s->network().node_count(), 23u);
  EXPECT_EQ(s->results().size(), 12u);
}

TEST(TieredTest, OptimaAreWithinLayerRangeAndHeterogeneous) {
  ScenarioConfig config;
  config.seed = 72;
  config.duration = 30_s;
  auto s = ScenarioBuilder(config).tiered(TieredOptions{}).build();
  int lo = 7;
  int hi = -1;
  for (const auto& r : s->results()) {
    EXPECT_GE(r.optimal, 0) << r.name;
    EXPECT_LE(r.optimal, 6) << r.name;
    lo = std::min(lo, r.optimal);
    hi = std::max(hi, r.optimal);
  }
  // Randomized tiers make a flat optimum vanishingly unlikely.
  EXPECT_LT(lo, hi);
}

TEST(TieredTest, DifferentSeedsGiveDifferentTopologies) {
  ScenarioConfig a;
  a.seed = 73;
  a.duration = 10_s;
  ScenarioConfig b = a;
  b.seed = 74;
  auto sa = ScenarioBuilder(a).tiered(TieredOptions{}).build();
  auto sb = ScenarioBuilder(b).tiered(TieredOptions{}).build();
  std::vector<int> oa;
  std::vector<int> ob;
  for (const auto& r : sa->results()) oa.push_back(r.optimal);
  for (const auto& r : sb->results()) ob.push_back(r.optimal);
  EXPECT_NE(oa, ob);
}

TEST(TieredTest, ConvergesTowardHeterogeneousOptima) {
  ScenarioConfig config;
  config.seed = 75;
  config.duration = 300_s;
  TieredOptions options;
  options.regionals = 2;
  options.locals_per_regional = 2;
  options.receivers_per_local = 1;
  auto s = ScenarioBuilder(config).tiered(options).build();
  s->run();
  double total_dev = 0.0;
  int counted = 0;
  for (const auto& r : s->results()) {
    if (r.optimal == 0) continue;  // starved access link: nothing to track
    total_dev += r.timeline.relative_deviation(r.optimal, 150_s, 300_s);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(total_dev / counted, 0.6);
}

}  // namespace
}  // namespace tsim::scenarios
