// Full-system integration tests: these run the actual paper scenarios for a
// few simulated minutes and assert the qualitative properties the paper
// claims. They are the closest thing to the evaluation section inside ctest;
// the benches extend them to the full 1200 s sweeps.
#include <gtest/gtest.h>

#include <numeric>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

ScenarioConfig config(traffic::TrafficModel model, Time duration) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.traffic.model = model;
  cfg.duration = duration;
  return cfg;
}

TEST(IntegrationTopologyA, HeterogeneousSetsConvergeNearTheirOptima) {
  auto s = ScenarioBuilder(config(traffic::TrafficModel::kCbr, 300_s)).topology_a(TopologyAOptions{}).build();
  s->run();
  // Paper claim (from [5], re-verified here): each set converges towards its
  // own bottleneck's optimum; after the convergence phase the deviation over
  // the second half of the run is small.
  for (const auto& r : s->results()) {
    const double dev = r.timeline.relative_deviation(r.optimal, 150_s, 300_s);
    EXPECT_LT(dev, 0.45) << r.name << " optimal=" << r.optimal;
    double mean = 0.0;
    for (int level = 0; level <= 6; ++level) {
      mean += level * r.timeline.time_at_level_fraction(level, 150_s, 300_s);
    }
    EXPECT_NEAR(mean, r.optimal, 1.2) << r.name;
  }
}

TEST(IntegrationTopologyA, IntraSessionFairnessWithinSets) {
  TopologyAOptions opt;
  opt.receivers_per_set = 4;
  auto s = ScenarioBuilder(config(traffic::TrafficModel::kCbr, 300_s)).topology_a(opt).build();
  s->run();
  // Receivers within a set share the bottleneck: their time-average levels
  // should be close to one another.
  const auto& res = s->results();
  for (int set = 0; set < 2; ++set) {
    std::vector<double> means;
    for (int i = 0; i < 4; ++i) {
      const auto& r = res[set * 4 + i];
      double mean = 0.0;
      for (int level = 0; level <= 6; ++level) {
        mean += level * r.timeline.time_at_level_fraction(level, 150_s, 300_s);
      }
      means.push_back(mean);
    }
    const double lo = *std::min_element(means.begin(), means.end());
    const double hi = *std::max_element(means.begin(), means.end());
    EXPECT_LT(hi - lo, 1.5) << "set " << set;
  }
}

TEST(IntegrationTopologyA, CongestionIsControlled) {
  auto s = ScenarioBuilder(config(traffic::TrafficModel::kCbr, 300_s)).topology_a(TopologyAOptions{}).build();
  s->run();
  // Sustained uncontrolled overload would push lifetime loss towards the
  // over-subscription ratio (>30%); control keeps it modest.
  for (const auto& r : s->results()) {
    EXPECT_LT(r.loss_overall, 0.15) << r.name;
  }
}

TEST(IntegrationTopologyB, SessionsShareTheLinkFairly) {
  TopologyBOptions opt;
  opt.sessions = 4;
  auto s = ScenarioBuilder(config(traffic::TrafficModel::kCbr, 300_s)).topology_b(opt).build();
  s->run();
  double total_dev = 0.0;
  for (const auto& r : s->results()) {
    total_dev += r.timeline.relative_deviation(r.optimal, 150_s, 300_s);
  }
  EXPECT_LT(total_dev / 4.0, 0.5);
}

TEST(IntegrationTopologyB, VbrAlsoConverges) {
  TopologyBOptions opt;
  opt.sessions = 2;
  ScenarioConfig cfg = config(traffic::TrafficModel::kVbr, 300_s);
  cfg.traffic.peak_to_mean = 3.0;
  auto s = ScenarioBuilder(cfg).topology_b(opt).build();
  s->run();
  // Time-averaged levels (an instantaneous check can catch a receiver
  // mid-probe-collapse): each session must sit well above the base layer
  // over the second half.
  for (const auto& r : s->results()) {
    double mean = 0.0;
    for (int level = 0; level <= 6; ++level) {
      mean += level * r.timeline.time_at_level_fraction(level, 150_s, 300_s);
    }
    EXPECT_GE(mean, 1.5) << r.name;  // VBR at ~96% mean utilization sits below the CBR optimum
    EXPECT_LE(mean, 6.0) << r.name;
  }
}

TEST(IntegrationStability, SubscriptionIsMostlyStableAfterConvergence) {
  auto s = ScenarioBuilder(config(traffic::TrafficModel::kCbr, 400_s)).topology_a(TopologyAOptions{}).build();
  s->run();
  for (const auto& r : s->results()) {
    // Long stable spells interspersed with short join/leave probes: mean gap
    // between changes in the steady half must be well above the 2 s interval.
    const double gap = r.timeline.mean_time_between_changes_s(200_s, 400_s);
    EXPECT_GT(gap, 6.0) << r.name;
  }
}

TEST(IntegrationStaleness, ModerateStalenessDegradesGracefully) {
  ScenarioConfig fresh = config(traffic::TrafficModel::kCbr, 300_s);
  ScenarioConfig stale = fresh;
  stale.control.info_staleness = 8_s;
  auto a = ScenarioBuilder(fresh).topology_a(TopologyAOptions{}).build();
  auto b = ScenarioBuilder(stale).topology_a(TopologyAOptions{}).build();
  a->run();
  b->run();
  double dev_fresh = 0.0;
  double dev_stale = 0.0;
  for (std::size_t i = 0; i < a->results().size(); ++i) {
    dev_fresh += a->results()[i].timeline.relative_deviation(a->results()[i].optimal,
                                                             100_s, 300_s);
    dev_stale += b->results()[i].timeline.relative_deviation(b->results()[i].optimal,
                                                             100_s, 300_s);
  }
  // Stale info still converges (the paper: works acceptably up to ~8 s);
  // it must not be catastrophically worse.
  EXPECT_LT(dev_stale / 4.0, 1.0);
}

}  // namespace
}  // namespace tsim::scenarios
