// End-to-end runs with the packet-based mtrace discovery tool instead of the
// oracle sampler: the controller must still converge, with discovery traffic
// riding the simulated network.
#include <gtest/gtest.h>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"
#include "topo/mtrace.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

TEST(DiscoveryModeTest, MtraceDrivenControlConverges) {
  ScenarioConfig config;
  config.seed = 61;
  config.duration = 240_s;
  config.control.discovery = DiscoveryMode::kMtrace;
  auto s = ScenarioBuilder(config).topology_a(TopologyAOptions{}).build();
  s->run();
  for (const auto& r : s->results()) {
    double mean = 0.0;
    for (int level = 0; level <= 6; ++level) {
      mean += level * r.timeline.time_at_level_fraction(level, 120_s, 240_s);
    }
    EXPECT_GE(mean, 1.8) << r.name;
    EXPECT_LT(r.timeline.relative_deviation(r.optimal, 120_s, 240_s), 0.7) << r.name;
  }
}

TEST(DiscoveryModeTest, MtraceTrafficIsLinearInReceivers) {
  ScenarioConfig config;
  config.seed = 62;
  config.duration = 60_s;
  config.control.discovery = DiscoveryMode::kMtrace;
  TopologyAOptions small;
  small.receivers_per_set = 1;
  TopologyAOptions big;
  big.receivers_per_set = 4;

  auto s1 = ScenarioBuilder(config).topology_a(small).build();
  auto s2 = ScenarioBuilder(config).topology_a(big).build();
  s1->run();
  s2->run();
  const auto* d1 = dynamic_cast<topo::MtraceDiscovery*>(s1->discovery());
  const auto* d2 = dynamic_cast<topo::MtraceDiscovery*>(s2->discovery());
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d2, nullptr);
  EXPECT_GT(d1->queries_sent(), 0u);
  // 4x the receivers -> 4x the queries (same rounds).
  EXPECT_EQ(d2->queries_sent(), d1->queries_sent() * 4);
}

TEST(DiscoveryModeTest, OracleAndMtraceAgreeOnSteadyTopology) {
  // In a quiet network (no congestion losing discovery packets), both
  // providers should converge to the same tree for the same scenario.
  ScenarioConfig oracle_cfg;
  oracle_cfg.seed = 63;
  oracle_cfg.duration = 60_s;
  auto oracle = ScenarioBuilder(oracle_cfg).topology_a(TopologyAOptions{}).build();

  ScenarioConfig mtrace_cfg = oracle_cfg;
  mtrace_cfg.control.discovery = DiscoveryMode::kMtrace;
  auto mtrace = ScenarioBuilder(mtrace_cfg).topology_a(TopologyAOptions{}).build();

  oracle->run_until(30_s);
  mtrace->run_until(30_s);
  const auto* so = oracle->discovery()->snapshot(0);
  const auto* sm = mtrace->discovery()->snapshot(0);
  ASSERT_NE(so, nullptr);
  ASSERT_NE(sm, nullptr);
  EXPECT_EQ(so->receivers, sm->receivers);
  EXPECT_EQ(so->edges, sm->edges);
}

}  // namespace
}  // namespace tsim::scenarios
