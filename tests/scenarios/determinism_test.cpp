// Whole-system determinism: identical seeds must reproduce identical runs
// bit-for-bit across every feature combination (VBR randomness, backoff
// draws, RED drops, churn, mtrace discovery, TCP cross-traffic). Determinism
// is what makes the paper reproduction reviewable: every number in
// EXPERIMENTS.md can be regenerated exactly.
#include <gtest/gtest.h>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"
#include "transport/tcp_flow.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// Full observable fingerprint of a run.
std::string fingerprint(Scenario& s) {
  std::string out;
  for (const auto& r : s.results()) {
    out += r.name + ":";
    for (const auto& [t, level] : r.timeline.points()) {
      out += std::to_string(t.as_nanoseconds()) + "/" + std::to_string(level) + ",";
    }
    out += "|loss=" + std::to_string(r.loss_overall) + ";";
  }
  return out;
}

ScenarioConfig base_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.traffic.model = traffic::TrafficModel::kVbr;
  cfg.traffic.peak_to_mean = 6.0;
  cfg.duration = 150_s;
  return cfg;
}

TEST(DeterminismTest, VbrTopologyA) {
  auto a = ScenarioBuilder(base_config(5)).topology_a(TopologyAOptions{}).build();
  auto b = ScenarioBuilder(base_config(5)).topology_a(TopologyAOptions{}).build();
  a->run();
  b->run();
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
}

TEST(DeterminismTest, ChurnAndCrossTraffic) {
  TopologyAOptions options;
  options.receivers_per_set = 3;
  options.join_stagger = 10_s;
  options.leave_fraction = 0.4;
  options.leave_at = 100_s;
  options.cross_traffic_bps = 96e3;
  options.cross_start = 50_s;
  auto a = ScenarioBuilder(base_config(9)).topology_a(options).build();
  auto b = ScenarioBuilder(base_config(9)).topology_a(options).build();
  a->run();
  b->run();
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
}

TEST(DeterminismTest, MtraceDiscovery) {
  ScenarioConfig cfg = base_config(11);
  cfg.control.discovery = DiscoveryMode::kMtrace;
  auto a = ScenarioBuilder(cfg).topology_a(TopologyAOptions{}).build();
  auto b = ScenarioBuilder(cfg).topology_a(TopologyAOptions{}).build();
  a->run();
  b->run();
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
}

TEST(DeterminismTest, RedQueues) {
  ScenarioConfig cfg = base_config(13);
  cfg.queues.red = true;
  TopologyBOptions options;
  options.sessions = 3;
  auto a = ScenarioBuilder(cfg).topology_b(options).build();
  auto b = ScenarioBuilder(cfg).topology_b(options).build();
  a->run();
  b->run();
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
}

TEST(DeterminismTest, TieredGenerator) {
  auto a = ScenarioBuilder(base_config(17)).tiered(TieredOptions{}).build();
  auto b = ScenarioBuilder(base_config(17)).tiered(TieredOptions{}).build();
  a->run();
  b->run();
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
}

TEST(DeterminismTest, TcpCrossTraffic) {
  auto run_once = [](std::uint64_t seed) {
    auto s = ScenarioBuilder(base_config(seed)).topology_a(TopologyAOptions{}).build();
    transport::TcpFlow::Config tcfg;
    tcfg.src = 1;
    tcfg.dst = 4;
    tcfg.start = 30_s;
    transport::TcpFlow tcp{s->simulation(), s->network(), s->demuxes(), tcfg};
    tcp.start();
    s->run();
    return fingerprint(*s) + "|tcp=" + std::to_string(tcp.delivered_bytes());
  };
  EXPECT_EQ(run_once(21), run_once(21));
  EXPECT_NE(run_once(21), run_once(22));
}

TEST(DeterminismTest, RunUntilSplitMatchesSingleRun) {
  // Driving the same scenario in two run_until() steps must not change
  // anything (no hidden wall-clock or iteration-order dependence).
  auto a = ScenarioBuilder(base_config(23)).topology_b(TopologyBOptions{}).build();
  auto b = ScenarioBuilder(base_config(23)).topology_b(TopologyBOptions{}).build();
  a->run();
  b->run_until(70_s);
  b->run_until(150_s);
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
}

}  // namespace
}  // namespace tsim::scenarios
