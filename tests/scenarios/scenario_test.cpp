#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

#include <gtest/gtest.h>

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

ScenarioConfig quick_config() {
  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.duration = 60_s;
  return cfg;
}

TEST(ScenarioBuildTest, TopologyAHasExpectedShape) {
  TopologyAOptions opt;
  opt.receivers_per_set = 2;
  auto s = ScenarioBuilder(quick_config()).topology_a(opt).build();
  // source, r0, r1, r2 + 4 receivers.
  EXPECT_EQ(s->network().node_count(), 8u);
  EXPECT_EQ(s->results().size(), 4u);
  EXPECT_EQ(s->results()[0].optimal, 3);  // 256 Kbps -> 3 layers
  EXPECT_EQ(s->results()[2].optimal, 5);  // 1 Mbps -> 5 layers
  EXPECT_NE(s->controller(), nullptr);
  EXPECT_EQ(s->sources().size(), 1u);
}

TEST(ScenarioBuildTest, TopologyBHasExpectedShape) {
  TopologyBOptions opt;
  opt.sessions = 4;
  auto s = ScenarioBuilder(quick_config()).topology_b(opt).build();
  // ra, rb + 4 sources + 4 receivers.
  EXPECT_EQ(s->network().node_count(), 10u);
  EXPECT_EQ(s->results().size(), 4u);
  EXPECT_EQ(s->sources().size(), 4u);
  for (const auto& r : s->results()) EXPECT_EQ(r.optimal, 4);
}

TEST(ScenarioBuildTest, ControllerKindNoneRunsOpenLoop) {
  ScenarioConfig cfg = quick_config();
  cfg.control.kind = ControllerKind::kNone;
  auto s = ScenarioBuilder(cfg).topology_a(TopologyAOptions{}).build();
  EXPECT_EQ(s->controller(), nullptr);
  s->run();
  for (const auto& r : s->results()) {
    EXPECT_EQ(r.final_subscription, 1);  // nothing ever adapts
  }
}

TEST(ScenarioBuildTest, ReceiverDrivenBaselineAdapts) {
  ScenarioConfig cfg = quick_config();
  cfg.duration = 120_s;
  cfg.control.kind = ControllerKind::kReceiverDriven;
  auto s = ScenarioBuilder(cfg).topology_a(TopologyAOptions{}).build();
  s->run();
  int total = 0;
  for (const auto& r : s->results()) total += r.final_subscription;
  EXPECT_GT(total, 4);  // receivers climbed above the base layer
}

TEST(ScenarioRunTest, TimelinesRecordStartupJoin) {
  auto s = ScenarioBuilder(quick_config()).topology_a(TopologyAOptions{}).build();
  s->run();
  for (const auto& r : s->results()) {
    EXPECT_GE(r.timeline.change_count(Time::zero(), 60_s), 1);  // 0 -> 1 at start
    EXPECT_GE(r.final_subscription, 1);
  }
}

TEST(ScenarioRunTest, RunUntilIsMonotonicAndResumable) {
  auto s = ScenarioBuilder(quick_config()).topology_a(TopologyAOptions{}).build();
  s->run_until(10_s);
  const int early = s->results()[0].final_subscription;
  s->run_until(60_s);
  EXPECT_GE(s->results()[0].final_subscription, 1);
  EXPECT_GE(early, 1);
}

TEST(ScenarioRunTest, DeterministicAcrossIdenticalRuns) {
  auto a = ScenarioBuilder(quick_config()).topology_b(TopologyBOptions{}).build();
  auto b = ScenarioBuilder(quick_config()).topology_b(TopologyBOptions{}).build();
  a->run();
  b->run();
  for (std::size_t i = 0; i < a->results().size(); ++i) {
    EXPECT_EQ(a->results()[i].final_subscription, b->results()[i].final_subscription);
    EXPECT_EQ(a->results()[i].timeline.points().size(), b->results()[i].timeline.points().size());
  }
}

TEST(ScenarioRunTest, DifferentSeedsDiverge) {
  ScenarioConfig c1 = quick_config();
  ScenarioConfig c2 = quick_config();
  c2.seed = 1234;
  c1.traffic.model = traffic::TrafficModel::kVbr;
  c2.traffic.model = traffic::TrafficModel::kVbr;
  c1.duration = c2.duration = 120_s;
  auto a = ScenarioBuilder(c1).topology_b(TopologyBOptions{}).build();
  auto b = ScenarioBuilder(c2).topology_b(TopologyBOptions{}).build();
  a->run();
  b->run();
  // Some observable difference in the change histories.
  bool diverged = false;
  for (std::size_t i = 0; i < a->results().size(); ++i) {
    if (a->results()[i].timeline.points() != b->results()[i].timeline.points()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace tsim::scenarios
