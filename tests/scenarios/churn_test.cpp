// Receiver churn and cross-traffic scenarios: the paper's architecture admits
// receivers registering at any time and must adapt to transient competing
// flows (§III). These integration tests exercise the dynamic-membership and
// cross-traffic machinery end to end.
#include <gtest/gtest.h>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

TEST(ChurnTest, StaggeredJoinsStillConverge) {
  ScenarioConfig config;
  config.seed = 51;
  config.duration = 240_s;
  TopologyAOptions options;
  options.receivers_per_set = 3;
  options.join_stagger = 20_s;  // receivers join at 0/20/40 s
  auto s = ScenarioBuilder(config).topology_a(options).build();
  s->run();
  for (const auto& r : s->results()) {
    double mean = 0.0;
    for (int level = 0; level <= 6; ++level) {
      mean += level * r.timeline.time_at_level_fraction(level, 150_s, 240_s);
    }
    EXPECT_GE(mean, 1.8) << r.name;
    // Late joiners were at level 0 before their start; deviation measured
    // only over the settled tail.
    EXPECT_LT(r.timeline.relative_deviation(r.optimal, 150_s, 240_s), 0.7) << r.name;
  }
}

TEST(ChurnTest, LateJoinerDoesNotDisturbSettledReceivers) {
  ScenarioConfig config;
  config.seed = 52;
  config.duration = 200_s;
  TopologyAOptions options;
  options.receivers_per_set = 2;
  options.join_stagger = 60_s;  // second receiver of each set joins at 60 s
  auto s = ScenarioBuilder(config).topology_a(options).build();
  s->run();
  // The early receiver of set 1 must not be pushed below base by the
  // newcomer joining behind the same bottleneck.
  const auto& early = s->results()[0];
  EXPECT_GE(early.timeline.level_at(190_s), 2) << early.name;
}

TEST(ChurnTest, LeaversReleaseTheirGroups) {
  ScenarioConfig config;
  config.seed = 53;
  config.duration = 200_s;
  TopologyAOptions options;
  options.receivers_per_set = 2;
  options.leave_fraction = 0.5;  // one receiver per set leaves...
  options.leave_at = 100_s;      // ...at t=100 s
  auto s = ScenarioBuilder(config).topology_a(options).build();
  s->run();
  // Leavers end at level 0; stayers keep a sane level.
  EXPECT_EQ(s->results()[1].final_subscription, 0);
  EXPECT_EQ(s->results()[3].final_subscription, 0);
  auto mean_tail = [&](std::size_t i) {
    double mean = 0.0;
    for (int level = 0; level <= 6; ++level) {
      mean += level * s->results()[i].timeline.time_at_level_fraction(level, 150_s, 200_s);
    }
    return mean;
  };
  EXPECT_GE(mean_tail(0), 1.8);
  EXPECT_GE(mean_tail(2), 1.8);
  // And their groups are actually gone from the multicast state.
  EXPECT_FALSE(s->multicast().is_member(s->results()[1].node, net::GroupAddr{0, 1}));
}

TEST(CrossTrafficTest, FlowSqueezesSubscriptionThenReleases) {
  ScenarioConfig config;
  config.seed = 54;
  config.duration = 400_s;
  TopologyAOptions options;
  options.receivers_per_set = 2;
  // A 128 Kbps non-conforming flow crosses the 256 Kbps bottleneck during
  // [100 s, 250 s): set 1's sustainable level drops from 3 to 2.
  options.cross_traffic_bps = 128e3;
  options.cross_start = 100_s;
  options.cross_stop = 250_s;
  auto s = ScenarioBuilder(config).topology_a(options).build();
  s->run();

  const auto& r = s->results()[0];  // a set-1 receiver
  // During the squeeze the receiver spends most time at <= 2 layers...
  const double squeezed = r.timeline.time_at_level_fraction(3, 140_s, 250_s);
  // ...and recovers to 3 afterwards.
  const double recovered = r.timeline.time_at_level_fraction(3, 320_s, 400_s) +
                           r.timeline.time_at_level_fraction(4, 320_s, 400_s);
  EXPECT_LT(squeezed, 0.6) << "should be squeezed below 3 most of the time";
  EXPECT_GT(recovered, 0.4) << "should recover after the flow stops";
}

TEST(SessionStaggerTest, LateSessionGetsItsShare) {
  ScenarioConfig config;
  config.seed = 55;
  config.duration = 400_s;
  TopologyBOptions options;
  options.sessions = 4;
  options.session_stagger = 30_s;  // sessions start at 0/30/60/90 s
  auto s = ScenarioBuilder(config).topology_b(options).build();
  s->run();
  // Every session, including the latest joiner, converges near the fair
  // 4-layer point over the final stretch.
  for (const auto& r : s->results()) {
    EXPECT_LT(r.timeline.relative_deviation(r.optimal, 250_s, 400_s), 0.6) << r.name;
  }
}

}  // namespace
}  // namespace tsim::scenarios
