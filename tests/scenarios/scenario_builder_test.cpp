// ScenarioBuilder: the fluent front door must reproduce the legacy factories
// exactly, enforce its single-topology contract, and compose faults and
// cross traffic.
#include "scenarios/scenario_builder.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenarios/scenario.hpp"

namespace tsim::scenarios {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

std::string fingerprint(Scenario& s) {
  std::string out;
  for (const auto& r : s.results()) {
    out += r.name + ":";
    for (const auto& [t, level] : r.timeline.points()) {
      out += std::to_string(t.as_nanoseconds()) + "/" + std::to_string(level) + ",";
    }
    out += ";";
  }
  return out;
}

ScenarioConfig quick_config(std::uint64_t seed = 5) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration = 60_s;
  return cfg;
}

// The deprecated factories must stay exact aliases of the builder while they
// live out their deprecation period.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ScenarioBuilderTest, MatchesDeprecatedTopologyAFactory) {
  auto legacy = Scenario::topology_a(quick_config(), TopologyAOptions{});
  legacy->run();
  auto built = ScenarioBuilder(quick_config()).topology_a(TopologyAOptions{}).build();
  built->run();
  EXPECT_EQ(fingerprint(*legacy), fingerprint(*built));
}

TEST(ScenarioBuilderTest, MatchesDeprecatedTopologyBFactory) {
  auto legacy = Scenario::topology_b(quick_config(), TopologyBOptions{});
  legacy->run();
  auto built = ScenarioBuilder(quick_config()).topology_b(TopologyBOptions{}).build();
  built->run();
  EXPECT_EQ(fingerprint(*legacy), fingerprint(*built));
}

TEST(ScenarioBuilderTest, MatchesDeprecatedTieredFactory) {
  auto legacy = Scenario::tiered(quick_config(), TieredOptions{});
  legacy->run();
  auto built = ScenarioBuilder(quick_config()).tiered(TieredOptions{}).build();
  built->run();
  EXPECT_EQ(fingerprint(*legacy), fingerprint(*built));
}
#pragma GCC diagnostic pop

TEST(ScenarioBuilderTest, BuildWithoutTopologyThrows) {
  ScenarioBuilder builder{quick_config()};
  EXPECT_THROW((void)builder.build(), std::logic_error);
}

TEST(ScenarioBuilderTest, SelectingTwoTopologiesThrows) {
  ScenarioBuilder builder{quick_config()};
  builder.topology_a({});
  EXPECT_THROW(builder.topology_b({}), std::logic_error);
}

TEST(ScenarioBuilderTest, ConfigSettersOverrideSeedConfig) {
  auto s = ScenarioBuilder(quick_config(1))
               .seed(99)
               .duration(30_s)
               .controller(ControllerKind::kNone)
               .topology_a({})
               .build();
  EXPECT_EQ(s->config().seed, 99u);
  EXPECT_EQ(s->config().duration, 30_s);
  EXPECT_EQ(s->controller(), nullptr);
}

TEST(ScenarioBuilderTest, CrossTrafficByNameReachesTheNamedLink) {
  CrossTrafficSpec spec{"r0", "r1", 200e3, 10_s, 40_s};
  auto with = ScenarioBuilder(quick_config()).topology_a({}).with_cross_traffic(spec).build();
  with->run();
  auto without = ScenarioBuilder(quick_config()).topology_a({}).build();
  without->run();
  EXPECT_NE(fingerprint(*with), fingerprint(*without));
}

TEST(ScenarioBuilderTest, CrossTrafficUnknownNodeThrows) {
  EXPECT_THROW(ScenarioBuilder(quick_config())
                   .topology_a({})
                   .with_cross_traffic({"r0", "missing", 100e3})
                   .build(),
               std::invalid_argument);
}

TEST(ScenarioBuilderTest, TopologyFromDescriptionRuns) {
  constexpr const char* kText = R"(
node s
node r
node d
link s r 2Mbps 20ms
link r d 512kbps 20ms
source 0 s
receiver d 0
controller s
)";
  const auto parsed = parse_topology(kText);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  auto s = ScenarioBuilder(quick_config()).topology(*parsed.description).build();
  s->run();
  ASSERT_EQ(s->results().size(), 1u);
  EXPECT_GT(s->results()[0].final_subscription, 0);
}

}  // namespace
}  // namespace tsim::scenarios
