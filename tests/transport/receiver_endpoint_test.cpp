#include "transport/receiver_endpoint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mcast/multicast_router.hpp"
#include "sim/simulation.hpp"
#include "traffic/layered_source.hpp"
#include "transport/control_messages.hpp"
#include "transport/demux.hpp"

namespace tsim::transport {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

/// src --(link under test)-- rcv, plus a controller node hanging off src.
struct EndpointFixture : ::testing::Test {
  sim::Simulation simulation{11};
  net::Network network{simulation};
  net::NodeId src{network.add_node("src")};
  net::NodeId rcv{network.add_node("rcv")};
  mcast::MulticastRouter mcast{simulation, network, {Time::zero(), 500_ms}};
  DemuxRegistry demuxes{network};

  std::vector<ReceiverReport> reports_at_src;

  EndpointFixture() {
    mcast.set_session_source(0, src);
    demuxes.at(src).add_handler(net::PacketKind::kReport, [this](const net::PacketRef& p) {
      const auto* r = dynamic_cast<const ReceiverReport*>(p->control.get());
      if (r != nullptr) reports_at_src.push_back(*r);
    });
  }

  void add_link(double bps, std::size_t queue = 30) {
    network.add_duplex_link(src, rcv, tsim::units::BitsPerSec{bps}, 20_ms, queue);
    network.compute_routes();
  }

  std::unique_ptr<ReceiverEndpoint> make_endpoint(int initial = 1) {
    ReceiverEndpoint::Config cfg;
    cfg.node = rcv;
    cfg.session = 0;
    cfg.controller = src;
    cfg.report_period = 1_s;
    cfg.initial_subscription = initial;
    return std::make_unique<ReceiverEndpoint>(simulation, network, mcast, demuxes.at(rcv), cfg);
  }

  std::unique_ptr<traffic::LayeredSource> make_source() {
    traffic::LayeredSource::Config cfg;
    cfg.session = 0;
    cfg.node = src;
    cfg.model = traffic::TrafficModel::kCbr;
    return std::make_unique<traffic::LayeredSource>(simulation, network, cfg);
  }
};

TEST_F(EndpointFixture, SubscriptionJoinsGroups) {
  add_link(10e6);
  auto endpoint = make_endpoint(2);
  endpoint->start();
  simulation.run_until(100_ms);
  EXPECT_TRUE(mcast.is_member(rcv, net::GroupAddr{0, 1}));
  EXPECT_TRUE(mcast.is_member(rcv, net::GroupAddr{0, 2}));
  EXPECT_FALSE(mcast.is_member(rcv, net::GroupAddr{0, 3}));
  EXPECT_EQ(endpoint->subscription(), 2);
}

TEST_F(EndpointFixture, SetSubscriptionClampsToValidRange) {
  add_link(10e6);
  auto endpoint = make_endpoint(1);
  endpoint->start();
  simulation.run_until(100_ms);
  endpoint->set_subscription(99);
  EXPECT_EQ(endpoint->subscription(), 6);
  endpoint->set_subscription(-5);
  EXPECT_EQ(endpoint->subscription(), 0);
}

TEST_F(EndpointFixture, ReceivesBytesOnFatLink) {
  add_link(10e6);
  auto source = make_source();
  auto endpoint = make_endpoint(3);
  source->start();
  endpoint->start();
  simulation.run_until(30_s);
  // 3 layers = 224 Kbps = 28 KB/s.
  EXPECT_NEAR(static_cast<double>(endpoint->total_bytes().count()), 28e3 * 30, 28e3 * 2);
  EXPECT_NEAR(endpoint->lifetime_loss_rate().value(), 0.0, 1e-9);
}

TEST_F(EndpointFixture, DetectsLossOnThinLink) {
  add_link(128e3, 5);  // can carry ~1.5 layers; subscription of 3 overloads it
  auto source = make_source();
  auto endpoint = make_endpoint(3);
  source->start();
  endpoint->start();
  simulation.run_until(60_s);
  EXPECT_GT(endpoint->lifetime_loss_rate().value(), 0.2);
  EXPECT_GT(endpoint->total_lost_packets().count(), 100u);
}

TEST_F(EndpointFixture, ReportsArriveAtController) {
  add_link(10e6);
  auto source = make_source();
  auto endpoint = make_endpoint(2);
  source->start();
  endpoint->start();
  simulation.run_until(Time::seconds(10.5));
  ASSERT_GE(reports_at_src.size(), 9u);
  const ReceiverReport& r = reports_at_src.back();
  EXPECT_EQ(r.receiver, rcv);
  EXPECT_EQ(r.session, 0);
  EXPECT_EQ(r.subscription, 2);
  EXPECT_GT(r.bytes_received.count(), 0u);
  EXPECT_DOUBLE_EQ(r.loss_rate.value(), 0.0);
  // Report seq increments.
  EXPECT_GT(reports_at_src.back().report_seq, reports_at_src.front().report_seq);
}

TEST_F(EndpointFixture, LossRateAppearsInReports) {
  add_link(128e3, 5);
  auto source = make_source();
  auto endpoint = make_endpoint(4);
  source->start();
  endpoint->start();
  simulation.run_until(30_s);
  ASSERT_FALSE(reports_at_src.empty());
  double max_loss = 0.0;
  for (const auto& r : reports_at_src) max_loss = std::max(max_loss, r.loss_rate.value());
  EXPECT_GT(max_loss, 0.2);
}

TEST_F(EndpointFixture, SuggestionsReachCallback) {
  add_link(10e6);
  auto endpoint = make_endpoint(1);
  endpoint->start();
  int suggested = -1;
  endpoint->on_suggestion([&](const Suggestion& s) { suggested = s.subscription; });

  auto payload = std::make_shared<Suggestion>();
  payload->receiver = rcv;
  payload->session = 0;
  payload->subscription = 4;
  net::Packet p;
  p.kind = net::PacketKind::kSuggestion;
  p.size_bytes = kSuggestionPacketBytes;
  p.src = src;
  p.dst = rcv;
  p.control = payload;
  simulation.at(1_s, [&, p]() { network.send_unicast(p); });
  simulation.run_until(2_s);
  EXPECT_EQ(suggested, 4);
}

TEST_F(EndpointFixture, SuggestionForOtherReceiverIgnored) {
  add_link(10e6);
  auto endpoint = make_endpoint(1);
  endpoint->start();
  int calls = 0;
  endpoint->on_suggestion([&](const Suggestion&) { ++calls; });

  auto payload = std::make_shared<Suggestion>();
  payload->receiver = src;  // someone else
  payload->session = 0;
  net::Packet p;
  p.kind = net::PacketKind::kSuggestion;
  p.size_bytes = kSuggestionPacketBytes;
  p.src = src;
  p.dst = rcv;
  p.control = payload;
  simulation.at(1_s, [&, p]() { network.send_unicast(p); });
  simulation.run_until(2_s);
  EXPECT_EQ(calls, 0);
}

TEST_F(EndpointFixture, SubscriptionChangeCallbackFires) {
  add_link(10e6);
  auto endpoint = make_endpoint(1);
  std::vector<std::pair<int, int>> changes;
  endpoint->on_subscription_change(
      [&](Time, int from, int to) { changes.emplace_back(from, to); });
  endpoint->start();
  simulation.run_until(100_ms);
  endpoint->set_subscription(3);
  endpoint->set_subscription(3);  // no-op, must not fire
  endpoint->set_subscription(2);
  ASSERT_EQ(changes.size(), 3u);  // 0->1 (start), 1->3, 3->2
  EXPECT_EQ(changes[0], (std::pair{0, 1}));
  EXPECT_EQ(changes[1], (std::pair{1, 3}));
  EXPECT_EQ(changes[2], (std::pair{3, 2}));
}

TEST_F(EndpointFixture, MidWindowLayerDropFoldsGapLossIntoWindow) {
  // Thin link under a 3-layer subscription: drop-tail loss accrues on every
  // layer. Dropping to 1 layer mid-window must fold the departing layers'
  // sequence-gap loss into the current window — the buggy code wiped the
  // tracks, so loss vanished exactly when the receiver backed off.
  add_link(128e3, 5);  // can carry ~1.5 layers; subscription of 3 overloads it
  auto source = make_source();
  auto endpoint = make_endpoint(3);
  source->start();
  endpoint->start();
  simulation.run_until(Time::seconds(10.5));  // mid-window: last close at 10s
  ASSERT_EQ(endpoint->window().lost_packets.count(), 0u)
      << "window loss is only folded at window close / layer leave";
  endpoint->set_subscription(1);  // leave layers 3 and 2 mid-window
  EXPECT_GT(endpoint->window().lost_packets.count(), 0u)
      << "gap loss accrued on the dropped layers this window was discarded";
}

TEST_F(EndpointFixture, StopClosesFinalWindowAndReportsItsLoss) {
  // Stop mid-window: the final partial window must be closed (and reported)
  // before the receiver leaves its groups — the buggy order cleared every
  // track first, silently discarding the last window's loss.
  add_link(128e3, 5);
  auto source = make_source();
  ReceiverEndpoint::Config cfg;
  cfg.node = rcv;
  cfg.session = 0;
  cfg.controller = src;
  cfg.report_period = 1_s;
  cfg.initial_subscription = 3;
  cfg.stop = Time::seconds(10.5);
  auto endpoint = std::make_unique<ReceiverEndpoint>(simulation, network, mcast,
                                                     demuxes.at(rcv), cfg);
  source->start();
  endpoint->start();
  simulation.run_until(12_s);

  ASSERT_FALSE(reports_at_src.empty());
  const ReceiverReport& last = reports_at_src.back();
  EXPECT_EQ(last.window_end, Time::seconds(10.5))
      << "no report was sent for the final partial window";
  EXPECT_GT(last.lost_packets.count(), 0u)
      << "the final window's loss was discarded at stop";
  // The folded loss also reaches the lifetime totals.
  EXPECT_EQ(endpoint->last_completed_window().lost_packets, last.lost_packets);
}

TEST_F(EndpointFixture, RejoinResetsSequenceTracking) {
  add_link(10e6);
  auto source = make_source();
  auto endpoint = make_endpoint(2);
  source->start();
  endpoint->start();
  simulation.run_until(5_s);
  endpoint->set_subscription(1);  // drop layer 2
  simulation.run_until(20_s);     // seq of layer 2 keeps advancing at source
  endpoint->set_subscription(2);  // rejoin
  simulation.run_until(40_s);
  // The seq jump while away must not be counted as loss.
  EXPECT_NEAR(endpoint->lifetime_loss_rate().value(), 0.0, 0.01);
}

}  // namespace
}  // namespace tsim::transport
