#include "transport/tcp_flow.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace tsim::transport {
namespace {

using namespace tsim::sim::time_literals;
using sim::Time;

struct TcpFixture : ::testing::Test {
  sim::Simulation simulation{41};
  net::Network network{simulation};
  net::NodeId a{network.add_node("a")};
  net::NodeId b{network.add_node("b")};
  DemuxRegistry demuxes{network};

  void link(double bps, Time latency = 20_ms, std::size_t queue = 30) {
    network.add_duplex_link(a, b, tsim::units::BitsPerSec{bps}, latency, queue);
    network.compute_routes();
  }

  TcpFlow::Config config(std::uint64_t transfer = 0) {
    TcpFlow::Config cfg;
    cfg.src = a;
    cfg.dst = b;
    cfg.transfer_bytes = transfer;
    return cfg;
  }
};

TEST_F(TcpFixture, SaturatesAnEmptyLink) {
  link(1e6);
  TcpFlow flow{simulation, network, demuxes, config()};
  flow.start();
  simulation.run_until(60_s);
  // Long-lived Reno on a clean 1 Mbps link with adequate buffering gets most
  // of the capacity (ACK-clocked sawtooth).
  EXPECT_GT(flow.mean_goodput_bps(), 0.7e6);
  EXPECT_LE(flow.mean_goodput_bps(), 1.0e6 + 1.0);
}

TEST_F(TcpFixture, BoundedTransferCompletes) {
  link(1e6);
  TcpFlow flow{simulation, network, demuxes, config(500'000)};
  flow.start();
  simulation.run_until(60_s);
  EXPECT_TRUE(flow.finished());
  EXPECT_GE(flow.delivered_bytes(), 500'000u);
  EXPECT_GT(flow.completion_time(), Time::zero());
  EXPECT_LT(flow.completion_time(), 20_s);
}

TEST_F(TcpFixture, LossTriggersRetransmitsAndStillDelivers) {
  link(200e3, 20_ms, 4);  // small buffer: self-induced drops
  TcpFlow flow{simulation, network, demuxes, config(1'000'000)};
  flow.start();
  simulation.run_until(120_s);
  EXPECT_TRUE(flow.finished());
  EXPECT_GT(flow.retransmits(), 0u);
  // Goodput still lands in the ballpark of the link rate.
  const double transfer_time = (flow.completion_time() - Time::zero()).as_seconds();
  EXPECT_NEAR(1'000'000 * 8.0 / transfer_time, 200e3, 80e3);
}

TEST_F(TcpFixture, TwoFlowsShareRoughlyFairly) {
  link(1e6, 20_ms, 40);
  TcpFlow f1{simulation, network, demuxes, config()};
  // Second flow in the reverse registration order but same path: use another
  // pair of nodes to avoid demux cross-talk.
  const auto c = network.add_node("c");
  const auto d = network.add_node("d");
  network.add_duplex_link(c, a, tsim::units::BitsPerSec{10e6}, 1_ms, 100);
  network.add_duplex_link(a, c, tsim::units::BitsPerSec{10e6}, 1_ms, 100);
  network.add_duplex_link(b, d, tsim::units::BitsPerSec{10e6}, 1_ms, 100);
  network.add_duplex_link(d, b, tsim::units::BitsPerSec{10e6}, 1_ms, 100);
  network.compute_routes();
  TcpFlow::Config cfg2;
  cfg2.src = c;
  cfg2.dst = d;
  TcpFlow f2{simulation, network, demuxes, cfg2};

  f1.start();
  f2.start();
  simulation.run_until(120_s);
  const double g1 = f1.mean_goodput_bps();
  const double g2 = f2.mean_goodput_bps();
  EXPECT_GT(g1, 0.2e6);
  EXPECT_GT(g2, 0.2e6);
  // Rough fairness: neither flow gets more than ~3.5x the other.
  EXPECT_LT(std::max(g1, g2) / std::min(g1, g2), 3.5);
}

TEST_F(TcpFixture, RespectsStartTime) {
  link(1e6);
  TcpFlow::Config cfg = config();
  cfg.start = 30_s;
  TcpFlow flow{simulation, network, demuxes, cfg};
  flow.start();
  simulation.run_until(29_s);
  EXPECT_EQ(flow.delivered_bytes(), 0u);
  simulation.run_until(60_s);
  EXPECT_GT(flow.delivered_bytes(), 0u);
}

TEST_F(TcpFixture, CwndGrowsFromSlowStart) {
  link(10e6, 5_ms, 100);
  TcpFlow flow{simulation, network, demuxes, config()};
  flow.start();
  simulation.run_until(2_s);
  EXPECT_GT(flow.cwnd_packets(), 4.0);
}

}  // namespace
}  // namespace tsim::transport
