#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tsim::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkedStreamsAreIndependentAndStable) {
  const Rng parent{7};
  Rng f1 = parent.fork("alpha");
  Rng f2 = parent.fork("beta");
  Rng f1_again = parent.fork("alpha");
  EXPECT_NE(f1.next_u64(), f2.next_u64());
  // Re-forking the same label replays the same stream.
  Rng f1b = parent.fork("alpha");
  EXPECT_EQ(f1_again.next_u64(), f1b.next_u64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(8.0, 24.0);
    ASSERT_GE(v, 8.0);
    ASSERT_LT(v, 24.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng{17};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(1.0 / 3.0)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 1.0 / 3.0, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng{19};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

}  // namespace
}  // namespace tsim::sim
