// ShardExecutor stress tests, built to run under ThreadSanitizer (the CI
// shard gate compiles this tier with TOPOSENSE_SANITIZE=thread). The tests
// hammer the paths where the barrier thread and the worker pool share state:
// the claim cursor, the generation handshake, repeated run_until segments
// against a persistent pool, and the error paths that must stop and join the
// pool exactly once before propagating.

#include "sim/shard_executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"

namespace tsim::sim {
namespace {

using namespace tsim::sim::time_literals;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

/// A mesh of shards that each tick locally and forward values to the next
/// shard, driven in short run_until segments so the pool parks and resumes
/// many times per test. Keeping the shard count well above the thread count
/// contends the claim cursor: every window, each worker races to claim the
/// next un-run shard.
struct Mesh {
  explicit Mesh(std::size_t shard_count, std::size_t threads)
      : executor{ShardExecutor::Config{threads}} {
    for (std::size_t i = 0; i < shard_count; ++i) {
      sims.push_back(std::make_unique<Simulation>(900 + i));
      rngs.push_back(std::make_unique<Rng>(900 + i));
      fingerprints.push_back(kFnvOffset);
    }
    for (std::size_t i = 0; i < shard_count; ++i) executor.add_shard(*sims[i]);
    for (std::size_t i = 0; i < shard_count; ++i) {
      channels.push_back(&executor.connect(i, (i + 1) % shard_count, 8_ms));
    }
    for (std::size_t i = 0; i < shard_count; ++i) schedule_tick(i, Time::zero());
  }

  void schedule_tick(std::size_t shard, Time when) {
    Simulation& sim = *sims[shard];
    sim.at(when, [this, shard, &sim] {
      std::uint64_t& print = fingerprints[shard];
      print = mix(print, shard);
      print = mix(print, static_cast<std::uint64_t>(sim.now().as_nanoseconds()));
      const std::uint64_t value = rngs[shard]->next_u64();
      std::uint64_t& peer = fingerprints[(shard + 1) % sims.size()];
      channels[shard]->post(sim.now() + 8_ms,
                            [&peer, value] { peer = mix(peer, value); });
      if (sim.now() + 3_ms <= kStop) schedule_tick(shard, sim.now() + 3_ms);
    });
  }

  std::uint64_t combined() const {
    std::uint64_t hash = kFnvOffset;
    for (std::uint64_t print : fingerprints) hash = mix(hash, print);
    return hash;
  }

  static constexpr Time kStop = Time::milliseconds(240);

  std::vector<std::unique_ptr<Simulation>> sims;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<std::uint64_t> fingerprints;
  std::vector<ShardExecutor::Channel*> channels;
  ShardExecutor executor;
};

/// Drives the mesh in `segments` separate run_until calls so the worker pool
/// parks on the condition variable and is re-armed repeatedly — the claim
/// cursor, generation counter, and running-worker count all cycle each time.
std::uint64_t run_segmented(std::size_t shards, std::size_t threads, int segments) {
  Mesh mesh{shards, threads};
  const std::int64_t stop_ns = Mesh::kStop.as_nanoseconds();
  for (int i = 1; i <= segments; ++i) {
    mesh.executor.run_until(Time::nanoseconds(stop_ns * i / segments));
  }
  return mesh.combined();
}

TEST(ShardStressTest, SegmentedRunsMatchAcrossThreadCountsAndSegmentation) {
  const std::uint64_t serial = run_segmented(9, 1, 1);
  EXPECT_EQ(run_segmented(9, 1, 6), serial);
  EXPECT_EQ(run_segmented(9, 2, 6), serial);
  EXPECT_EQ(run_segmented(9, 4, 6), serial);
  EXPECT_EQ(run_segmented(9, 4, 1), serial);
}

TEST(ShardStressTest, RepeatedStartStopCyclesAreClean) {
  // Each Mesh constructs, runs segmented windows, and destructs (joining the
  // pool). Under TSan this loops the spawn/park/join lifecycle looking for
  // races in the handshake; the fingerprint check keeps it honest.
  const std::uint64_t expected = run_segmented(6, 3, 4);
  for (int cycle = 0; cycle < 8; ++cycle) {
    EXPECT_EQ(run_segmented(6, 3, 4), expected);
  }
}

TEST(ShardStressTest, LookaheadViolationLeavesExecutorDestructible) {
  // The throw happens at the barrier, after the pool ran the window. The
  // run_until scope guard must stop and join the workers exactly once, so
  // destruction after the catch neither hangs nor double-joins.
  auto violate = [] {
    Simulation a{1};
    Simulation b{2};
    ShardExecutor executor{ShardExecutor::Config{2}};
    executor.add_shard(a);
    executor.add_shard(b);
    ShardExecutor::Channel& channel = executor.connect(0, 1, 50_ms);
    a.at(1_ms, [&] { channel.post(a.now() + 1_ms, [] {}); });
    EXPECT_THROW(executor.run_until(1_s), std::logic_error);
  };
  for (int i = 0; i < 4; ++i) violate();
}

TEST(ShardStressTest, ExecutorRestartsAfterWorkerException) {
  Simulation a{1};
  Simulation b{2};
  ShardExecutor executor{ShardExecutor::Config{2}};
  executor.add_shard(a);
  executor.add_shard(b);
  executor.connect(0, 1, 20_ms);

  bool armed = true;
  a.at(5_ms, [&] {
    if (armed) throw std::runtime_error{"injected shard failure"};
  });
  int b_events = 0;
  b.at(5_ms, [&] { ++b_events; });

  EXPECT_THROW(executor.run_until(1_s), std::runtime_error);

  // The pool was stopped and joined by the scope guard; a fresh run_until
  // must respawn it and make progress.
  armed = false;
  int late_events = 0;
  a.at(2_s, [&] { ++late_events; });
  b.at(2_s, [&] { ++late_events; });
  executor.run_until(3_s);
  EXPECT_EQ(late_events, 2);
}

}  // namespace
}  // namespace tsim::sim
