#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tsim::sim {
namespace {

// The calendar queue replaced the reference binary heap; both must execute
// the identical total order (timestamp, then schedule sequence) so that every
// simulation fingerprint is independent of the queue structure. These tests
// drive both implementations through the same randomized schedule / cancel /
// run workloads and assert the execution traces, pending counts and slot-pool
// invariants match exactly.

/// Drives one Scheduler through a scripted workload and records, for every
/// executed event, the (fire time, creation index) pair. Identical scripts on
/// both impls must produce identical traces.
class WorkloadDriver {
 public:
  explicit WorkloadDriver(QueueImpl impl) : scheduler_{impl} {}

  /// Schedules event number `tag` at absolute `when_ns`; remembers its id so
  /// cancel_nth can target it later.
  void schedule(std::int64_t when_ns, std::uint64_t tag) {
    ids_.push_back(scheduler_.schedule_at(
        Time::nanoseconds(when_ns), [this, when_ns, tag]() {
          trace_.push_back({scheduler_.now().as_nanoseconds(), tag});
          EXPECT_EQ(scheduler_.now().as_nanoseconds(), when_ns);
        }));
  }

  void cancel_nth(std::size_t n) { scheduler_.cancel(ids_[n]); }

  void run_until(std::int64_t until_ns) {
    scheduler_.run_until(Time::nanoseconds(until_ns));
  }

  /// Slot-pool consistency: every slot is either free or owned by exactly one
  /// queued entry, and cancelled entries still hold their slots until popped.
  void check_pool_invariants() const {
    EXPECT_EQ(scheduler_.slot_pool_size(),
              scheduler_.free_slot_count() + scheduler_.queued_entries());
    EXPECT_LE(scheduler_.cancelled_pending(), scheduler_.queued_entries());
    EXPECT_EQ(scheduler_.pending_events(),
              scheduler_.queued_entries() - scheduler_.cancelled_pending());
  }

  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] const std::vector<std::pair<std::int64_t, std::uint64_t>>& trace() const {
    return trace_;
  }

 private:
  Scheduler scheduler_;
  std::vector<EventId> ids_;
  std::vector<std::pair<std::int64_t, std::uint64_t>> trace_;
};

/// One randomized schedule–cancel–run script, applied identically to both
/// drivers. Operations are drawn from a seeded Rng, so failures reproduce.
void run_random_workload(std::uint64_t seed, int operations) {
  WorkloadDriver calendar{QueueImpl::kCalendar};
  WorkloadDriver heap{QueueImpl::kHeap};
  Rng rng{seed};

  std::int64_t horizon_ns = 0;  // both schedulers share the same clock floor
  std::uint64_t tag = 0;
  std::size_t scheduled = 0;
  for (int op = 0; op < operations; ++op) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.55) {
      // Schedule: cluster timestamps so same-bucket appends, in-bucket
      // ordered inserts and FIFO ties all occur, with occasional far-future
      // outliers to exercise the overflow band and window migration.
      std::int64_t when = horizon_ns;
      const double spread = rng.uniform(0.0, 1.0);
      if (spread < 0.4) {
        when += rng.uniform_int(0, 1000);              // dense cluster, many ties
      } else if (spread < 0.8) {
        when += rng.uniform_int(0, 2'000'000);         // within a typical window
      } else {
        when += rng.uniform_int(0, 400'000'000);       // far future: overflow band
      }
      calendar.schedule(when, tag);
      heap.schedule(when, tag);
      ++tag;
      ++scheduled;
    } else if (dice < 0.75 && scheduled > 0) {
      // Cancel a random already-created event (possibly already fired or
      // already cancelled — both must treat stale handles as no-ops).
      const auto n = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(scheduled) - 1));
      calendar.cancel_nth(n);
      heap.cancel_nth(n);
    } else {
      // Run forward a random amount; both clocks advance identically.
      horizon_ns += rng.uniform_int(0, 5'000'000);
      calendar.run_until(horizon_ns);
      heap.run_until(horizon_ns);
      ASSERT_EQ(calendar.trace().size(), heap.trace().size());
    }
    calendar.check_pool_invariants();
    heap.check_pool_invariants();
    ASSERT_EQ(calendar.scheduler().pending_events(), heap.scheduler().pending_events());
  }

  // Drain everything still queued.
  calendar.run_until(horizon_ns + 1'000'000'000);
  heap.run_until(horizon_ns + 1'000'000'000);

  ASSERT_EQ(calendar.trace(), heap.trace())
      << "execution order diverged for seed " << seed;
  EXPECT_EQ(calendar.scheduler().executed_events(), heap.scheduler().executed_events());
  EXPECT_EQ(calendar.scheduler().pending_events(), 0u);
  EXPECT_EQ(heap.scheduler().pending_events(), 0u);
  calendar.check_pool_invariants();
  heap.check_pool_invariants();
}

TEST(SchedulerEquivalence, RandomizedWorkloadsMatchHeapExactly) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_random_workload(seed, 400);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first diverging seed: " << seed;
    }
  }
}

TEST(SchedulerEquivalence, SameTimestampFifoTieBreak) {
  // Every event at one timestamp, scheduled in interleaved order with
  // cancellations: both impls must fire survivors in schedule order.
  WorkloadDriver calendar{QueueImpl::kCalendar};
  WorkloadDriver heap{QueueImpl::kHeap};
  constexpr std::int64_t kWhen = 5'000'000;
  for (std::uint64_t tag = 0; tag < 1000; ++tag) {
    calendar.schedule(kWhen, tag);
    heap.schedule(kWhen, tag);
  }
  for (std::size_t n = 0; n < 1000; n += 3) {
    calendar.cancel_nth(n);
    heap.cancel_nth(n);
  }
  calendar.run_until(kWhen);
  heap.run_until(kWhen);
  ASSERT_EQ(calendar.trace(), heap.trace());
  ASSERT_EQ(calendar.trace().size(), 1000u - 334u);
  EXPECT_TRUE(std::is_sorted(calendar.trace().begin(), calendar.trace().end()));
}

TEST(SchedulerEquivalence, SlotPoolBoundedByPeakPending) {
  // The pool must be bounded by the peak number of concurrently pending
  // events on both impls — scheduling N, draining, and scheduling N again
  // must not grow it past N.
  for (const QueueImpl impl : {QueueImpl::kCalendar, QueueImpl::kHeap}) {
    WorkloadDriver driver{impl};
    for (int round = 0; round < 5; ++round) {
      const std::int64_t base = round * 10'000'000;
      for (std::uint64_t tag = 0; tag < 500; ++tag) {
        driver.schedule(base + 1'000 + static_cast<std::int64_t>(tag), tag);
      }
      driver.run_until(base + 5'000'000);
      driver.check_pool_invariants();
    }
    EXPECT_LE(driver.scheduler().slot_pool_size(), 500u);
  }
}

/// Callbacks that schedule and cancel from inside the run loop — the shape
/// real components (links, timers racing cancellation) produce.
TEST(SchedulerEquivalence, ReentrantSchedulingMatches) {
  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    std::vector<std::vector<std::int64_t>> traces;
    for (const QueueImpl impl : {QueueImpl::kCalendar, QueueImpl::kHeap}) {
      Scheduler scheduler{impl};
      Rng rng{seed};
      std::vector<std::int64_t> trace;
      // Self-rescheduling chain: each firing schedules 0-2 successors at
      // randomized offsets (some same-timestamp) until a budget runs out.
      int budget = 3000;
      const auto spawn = [&](auto&& self, std::int64_t when_ns) -> void {
        scheduler.schedule_at(Time::nanoseconds(when_ns), [&, when_ns]() {
          trace.push_back(when_ns);
          if (budget <= 0) return;
          const int children = static_cast<int>(rng.uniform_int(0, 2));
          for (int c = 0; c < children; ++c) {
            --budget;
            self(self, when_ns + rng.uniform_int(0, 1'000'000));
          }
        });
      };
      for (int i = 0; i < 16; ++i) spawn(spawn, 1'000 * i);
      scheduler.run_until(Time::seconds(std::int64_t{3600}));
      EXPECT_EQ(scheduler.pending_events(), 0u);
      traces.push_back(std::move(trace));
    }
    ASSERT_EQ(traces[0], traces[1]) << "reentrant divergence for seed " << seed;
  }
}

}  // namespace
}  // namespace tsim::sim
