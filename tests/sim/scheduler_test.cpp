#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"

namespace tsim::sim {
namespace {

using namespace tsim::sim::time_literals;

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3_s, [&] { order.push_back(3); });
  sched.schedule_at(1_s, [&] { order.push_back(1); });
  sched.schedule_at(2_s, [&] { order.push_back(2); });
  sched.run_until(10_s);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, FifoTieBreakAtSameTimestamp) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(1_s, [&order, i] { order.push_back(i); });
  }
  sched.run_until(1_s);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler sched;
  Time seen{};
  sched.schedule_at(5_s, [&] { seen = sched.now(); });
  sched.run_until(10_s);
  EXPECT_EQ(seen, 5_s);
  EXPECT_EQ(sched.now(), 10_s);  // run_until advances to the boundary
}

TEST(SchedulerTest, RunUntilStopsBeforeLaterEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(5_s, [&] { ++fired; });
  sched.schedule_at(15_s, [&] { ++fired; });
  sched.run_until(10_s);
  EXPECT_EQ(fired, 1);
  sched.run_until(20_s);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventAtExactBoundaryRuns) {
  Scheduler sched;
  bool fired = false;
  sched.schedule_at(10_s, [&] { fired = true; });
  sched.run_until(10_s);
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  Time fired_at{};
  sched.schedule_at(2_s, [&] {
    sched.schedule_after(3_s, [&] { fired_at = sched.now(); });
  });
  sched.run_until(10_s);
  EXPECT_EQ(fired_at, 5_s);
}

TEST(SchedulerTest, SchedulingInThePastThrows) {
  Scheduler sched;
  sched.schedule_at(5_s, [] {});
  sched.run_until(5_s);
  EXPECT_THROW(sched.schedule_at(1_s, [] {}), std::invalid_argument);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.schedule_at(1_s, [&] { fired = true; });
  sched.cancel(id);
  sched.run_until(10_s);
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelUnknownIdIsNoOp) {
  Scheduler sched;
  sched.cancel(EventId{12345});
  bool fired = false;
  sched.schedule_at(1_s, [&] { fired = true; });
  sched.run_until(2_s);
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 100) sched.schedule_after(1_s, chain);
  };
  sched.schedule_at(Time::zero(), chain);
  sched.run_until(1000_s);
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.executed_events(), 100u);
}

TEST(SchedulerTest, StepRunsExactlyOneEvent) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(1_s, [&] { ++fired; });
  sched.schedule_at(2_s, [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sched.step());
}

TEST(SimulationTest, RngStreamsAreStablePerLabel) {
  Simulation a{123};
  Simulation b{123};
  Rng ra = a.rng_stream("x");
  Rng rb = b.rng_stream("x");
  EXPECT_EQ(ra.next_u64(), rb.next_u64());
  Rng rc = a.rng_stream("y");
  Rng rd = a.rng_stream("x");
  EXPECT_NE(rc.next_u64(), rd.next_u64());
}

TEST(SimulationTest, AtAfterAndCancelWork) {
  Simulation simulation{1};
  int fired = 0;
  simulation.at(2_s, [&] { ++fired; });
  const EventId id = simulation.after(4_s, [&] { ++fired; });
  simulation.cancel(id);
  simulation.run_until(10_s);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulation.now(), 10_s);
}

}  // namespace
}  // namespace tsim::sim
