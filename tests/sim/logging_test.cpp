#include "sim/logging.hpp"

#include <gtest/gtest.h>

namespace tsim::sim {
namespace {

struct LogLevelGuard {
  LogLevel saved{Logger::level()};
  ~LogLevelGuard() { Logger::set_level(saved); }
};

TEST(LoggerTest, DefaultLevelIsWarn) {
  const LogLevelGuard guard;
  EXPECT_EQ(Logger::level(), LogLevel::kWarn);
}

TEST(LoggerTest, SetLevelRoundTrips) {
  const LogLevelGuard guard;
  Logger::set_level(LogLevel::kTrace);
  EXPECT_EQ(Logger::level(), LogLevel::kTrace);
  Logger::set_level(LogLevel::kOff);
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
}

TEST(LoggerTest, SuppressedLevelsDoNotCrash) {
  const LogLevelGuard guard;
  Logger::set_level(LogLevel::kOff);
  Logger::log(LogLevel::kError, Time::seconds(std::int64_t{1}), "test", "must be suppressed");
  Logger::set_level(LogLevel::kError);
  Logger::log(LogLevel::kWarn, Time::seconds(std::int64_t{1}), "test", "also suppressed");
  SUCCEED();
}

TEST(LoggerTest, EnabledLevelWritesWithoutCrash) {
  const LogLevelGuard guard;
  Logger::set_level(LogLevel::kTrace);
  Logger::log(LogLevel::kInfo, Time::milliseconds(1500), "component", "hello");
  SUCCEED();
}

}  // namespace
}  // namespace tsim::sim
