// ShardExecutor contract tests: the single-shard path must be bit-for-bit
// identical to running the Simulation directly, multi-shard runs must be
// deterministic for every thread count (the barrier merge fixes the handoff
// order), and lookahead violations must fail loudly instead of silently
// reordering history.

#include "sim/shard_executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/shard_link.hpp"
#include "sim/simulation.hpp"

namespace tsim::sim {
namespace {

using namespace tsim::sim::time_literals;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

/// A self-perpetuating workload: every event appends (shard, now, counter) to
/// a trace and reschedules itself. Cross-shard posts happen on a fixed cadence
/// so the trace depends on handoff ordering.
struct Workload {
  explicit Workload(std::uint64_t seed) : rng{seed} {}
  Rng rng;
  std::uint64_t fingerprint{kFnvOffset};
  std::uint64_t events{0};

  void record(std::size_t shard, Time now) {
    ++events;
    fingerprint = mix(fingerprint, shard);
    fingerprint = mix(fingerprint, static_cast<std::uint64_t>(now.as_nanoseconds()));
    fingerprint = mix(fingerprint, rng.next_u64());
  }
};

void tick(Simulation& sim, Workload& load, std::size_t shard, Time period, Time stop) {
  load.record(shard, sim.now());
  if (sim.now() + period <= stop) {
    sim.after(period, [&sim, &load, shard, period, stop] {
      tick(sim, load, shard, period, stop);
    });
  }
}

TEST(ShardExecutorTest, SingleShardMatchesPlainRunExactly) {
  const auto run = [](bool through_executor) {
    Simulation sim{7};
    Workload load{7};
    sim.at(Time::zero(), [&] { tick(sim, load, 0, 3_ms, 2_s); });
    sim.at(1_ms, [&] { tick(sim, load, 0, 7_ms, 2_s); });
    if (through_executor) {
      ShardExecutor executor;
      executor.add_shard(sim);
      executor.run_until(2_s);
    } else {
      sim.run_until(2_s);
    }
    return std::pair{load.fingerprint, sim.scheduler().executed_events()};
  };
  EXPECT_EQ(run(true), run(false));
}

/// Builds a K-shard ring where each shard ticks locally and forwards a value
/// to the next shard every period; returns the combined fingerprint.
std::uint64_t run_ring(std::size_t shard_count, std::size_t threads) {
  std::vector<std::unique_ptr<Simulation>> sims;
  std::vector<std::unique_ptr<Workload>> loads;
  for (std::size_t i = 0; i < shard_count; ++i) {
    sims.push_back(std::make_unique<Simulation>(100 + i));
    loads.push_back(std::make_unique<Workload>(100 + i));
  }
  ShardExecutor executor{ShardExecutor::Config{threads}};
  std::vector<ShardExecutor::Channel*> next_hop;
  for (std::size_t i = 0; i < shard_count; ++i) executor.add_shard(*sims[i]);
  for (std::size_t i = 0; i < shard_count; ++i) {
    next_hop.push_back(&executor.connect(i, (i + 1) % shard_count, 10_ms));
  }

  constexpr Time kStop = Time::milliseconds(500);
  for (std::size_t i = 0; i < shard_count; ++i) {
    Simulation& sim = *sims[i];
    Workload& load = *loads[i];
    sim.at(Time::zero(), [&sim, &load, i] { tick(sim, load, i, 2_ms, kStop); });
    // Every 5 ms, hand a value to the next shard; the remote event folds it
    // into the *destination* shard's fingerprint (actions run on the
    // destination thread), so the result is sensitive to handoff ordering.
    Workload& peer = *loads[(i + 1) % shard_count];
    const auto forward = [&sim, &load, &peer, i, &next_hop](auto&& self) -> void {
      const std::uint64_t value = load.rng.next_u64();
      next_hop[i]->post(sim.now() + 10_ms,
                        [&peer, value] { peer.fingerprint = mix(peer.fingerprint, value); });
      if (sim.now() + 5_ms <= Time::milliseconds(500)) sim.after(5_ms, [self] { self(self); });
    };
    sim.at(1_ms, [forward] { forward(forward); });
  }

  executor.run_until(kStop);
  std::uint64_t combined = kFnvOffset;
  for (const auto& load : loads) combined = mix(combined, load->fingerprint);
  return combined;
}

TEST(ShardExecutorTest, RingIsDeterministicAcrossThreadCounts) {
  const std::uint64_t serial = run_ring(4, 1);
  EXPECT_EQ(run_ring(4, 2), serial);
  EXPECT_EQ(run_ring(4, 4), serial);
  // And repeatable at the same thread count.
  EXPECT_EQ(run_ring(4, 4), run_ring(4, 4));
}

TEST(ShardExecutorTest, LookaheadViolationThrows) {
  Simulation a{1};
  Simulation b{2};
  ShardExecutor executor;
  executor.add_shard(a);
  executor.add_shard(b);
  ShardExecutor::Channel& channel = executor.connect(0, 1, 50_ms);
  // Posting an arrival inside the current window breaks the conservative
  // contract; the barrier must refuse rather than rewrite the past.
  a.at(1_ms, [&] { channel.post(a.now() + 1_ms, [] {}); });
  EXPECT_THROW(executor.run_until(1_s), std::logic_error);
}

TEST(ShardExecutorTest, ConnectRejectsBadArguments) {
  Simulation a{1};
  Simulation b{2};
  ShardExecutor executor;
  executor.add_shard(a);
  executor.add_shard(b);
  EXPECT_THROW(executor.connect(0, 0, 10_ms), std::invalid_argument);
  EXPECT_THROW(executor.connect(0, 5, 10_ms), std::invalid_argument);
  EXPECT_THROW(executor.connect(0, 1, Time::zero()), std::invalid_argument);
}

TEST(ShardExecutorTest, ShardLinkReStampsPerNetworkState) {
  Simulation src_sim{11};
  Simulation dst_sim{12};
  net::Network src_net{src_sim};
  net::Network dst_net{dst_sim};
  const net::NodeId a = dst_net.add_node("a");
  const net::NodeId b = dst_net.add_node("b");
  dst_net.add_duplex_link(a, b, units::BitsPerSec{1e6}, 1_ms, 16);
  dst_net.compute_routes();

  ShardExecutor executor;
  executor.add_shard(src_sim);
  executor.add_shard(dst_sim);
  ShardExecutor::Channel& channel = executor.connect(0, 1, 5_ms);
  net::ShardLink link{channel, dst_net, a};

  std::vector<std::uint64_t> seen_uids;
  dst_net.set_local_sink(b, [&](const net::PacketRef& packet) {
    seen_uids.push_back(packet->uid);
  });

  src_sim.at(2_ms, [&] {
    net::Packet packet;
    packet.kind = net::PacketKind::kData;
    packet.size_bytes = 500;
    packet.src = a;
    packet.dst = b;
    packet.uid = 999;  // source-shard uid must not leak through
    link.send(packet, src_sim.now());
  });

  executor.run_until(1_s);
  ASSERT_EQ(seen_uids.size(), 1u);
  EXPECT_NE(seen_uids[0], 999u);  // re-stamped from the destination counter
  EXPECT_EQ(link.forwarded(), 1u);
  EXPECT_EQ(executor.messages_delivered(), 1u);
}

}  // namespace
}  // namespace tsim::sim
