// Tests for the scheduler's slot-pool cancellation state and SmallCallback
// storage: the pool must stay bounded by the peak number of concurrently
// pending events (the seed's cancelled-id set grew without bound), stale
// handles must miss harmlessly, and FIFO tie-breaking must hold across both
// inline and heap-allocated callback storage.

#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace tsim::sim {
namespace {

using namespace tsim::sim::time_literals;

TEST(SchedulerPoolTest, CancelledIdsDoNotAccumulate) {
  Scheduler sched;
  // The seed kept every cancelled id in a set forever; the slot pool must
  // instead stay bounded by the peak number of concurrently pending events.
  for (int i = 0; i < 10'000; ++i) {
    const EventId keep = sched.schedule_after(1_s, [] {});
    const EventId drop = sched.schedule_after(2_s, [] {});
    sched.cancel(drop);
    sched.run_until(sched.now() + 3_s);
    (void)keep;
  }
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_LE(sched.slot_pool_size(), 4u);  // peak concurrency was 2
  EXPECT_EQ(sched.executed_events(), 10'000u);
}

TEST(SchedulerPoolTest, CancelAfterFireIsHarmless) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.schedule_at(1_s, [&] { ++fired; });
  sched.run_until(2_s);
  EXPECT_EQ(fired, 1);
  // The slot has been recycled; the stale handle must not cancel whatever
  // occupies it now.
  sched.cancel(id);
  sched.schedule_at(3_s, [&] { ++fired; });
  sched.run_until(4_s);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerPoolTest, StaleHandleMissesRecycledSlot) {
  Scheduler sched;
  bool first = false;
  bool second = false;
  const EventId a = sched.schedule_at(1_s, [&] { first = true; });
  sched.run_until(1_s);  // slot freed, generation bumped
  const EventId b = sched.schedule_at(2_s, [&] { second = true; });
  sched.cancel(a);  // stale: same slot, old generation
  sched.run_until(2_s);
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_NE(a, b);
}

TEST(SchedulerPoolTest, DoubleCancelCountsOnce) {
  Scheduler sched;
  const EventId id = sched.schedule_at(1_s, [] {});
  sched.schedule_at(1_s, [] {});
  sched.cancel(id);
  sched.cancel(id);  // must not double-decrement the pending count
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.run_until(2_s);
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(SchedulerPoolTest, FifoOrderHoldsAcrossInlineAndHeapCallbacks) {
  Scheduler sched;
  std::vector<int> order;
  // Alternate small captures (inline storage) with captures too large for the
  // inline buffer (heap storage): the tie-break must depend only on schedule
  // order, never on where the callback lives.
  for (int i = 0; i < 16; ++i) {
    if (i % 2 == 0) {
      sched.schedule_at(1_s, [&order, i] { order.push_back(i); });
    } else {
      std::array<std::uint64_t, 32> payload{};  // 256 bytes: forces heap storage
      payload[0] = static_cast<std::uint64_t>(i);
      sched.schedule_at(1_s, [&order, payload] {
        order.push_back(static_cast<int>(payload[0]));
      });
    }
  }
  sched.run_until(1_s);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerPoolTest, HeapCallbackSurvivesSlotRecycling) {
  Scheduler sched;
  std::vector<int> seen;
  std::array<std::uint64_t, 32> payload{};
  payload[0] = 41;
  const EventId id = sched.schedule_at(5_s, [&seen, payload] {
    seen.push_back(static_cast<int>(payload[0]));
  });
  sched.cancel(id);
  // Recycle the same slot with a different heap-stored callback.
  payload[0] = 42;
  sched.schedule_at(5_s, [&seen, payload] { seen.push_back(static_cast<int>(payload[0])); });
  sched.run_until(10_s);
  EXPECT_EQ(seen, (std::vector<int>{42}));
}

TEST(SchedulerPoolTest, CancelledEventDoesNotAdvanceClock) {
  Scheduler sched;
  const EventId id = sched.schedule_at(5_s, [] {});
  sched.schedule_at(10_s, [] {});
  sched.cancel(id);
  EXPECT_TRUE(sched.step());  // skips the cancelled 5s event, runs the 10s one
  EXPECT_EQ(sched.now(), 10_s);
  EXPECT_EQ(sched.executed_events(), 1u);
}

}  // namespace
}  // namespace tsim::sim
