#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace tsim::sim {
namespace {

using namespace tsim::sim::time_literals;

TEST(TimeTest, DefaultIsZero) {
  EXPECT_EQ(Time{}, Time::zero());
  EXPECT_EQ(Time{}.as_nanoseconds(), 0);
}

TEST(TimeTest, NamedConstructorsScaleCorrectly) {
  EXPECT_EQ(Time::seconds(std::int64_t{3}).as_nanoseconds(), 3'000'000'000);
  EXPECT_EQ(Time::milliseconds(200).as_nanoseconds(), 200'000'000);
  EXPECT_EQ(Time::microseconds(7).as_nanoseconds(), 7'000);
  EXPECT_EQ(Time::nanoseconds(42).as_nanoseconds(), 42);
}

TEST(TimeTest, FractionalSecondsRoundToNearestNanosecond) {
  EXPECT_EQ(Time::seconds(0.5).as_nanoseconds(), 500'000'000);
  EXPECT_EQ(Time::seconds(1e-9).as_nanoseconds(), 1);
  EXPECT_EQ(Time::seconds(0.25e-9).as_nanoseconds(), 0);
}

TEST(TimeTest, ArithmeticAndComparison) {
  const Time a = 2_s;
  const Time b = 500_ms;
  EXPECT_EQ(a + b, Time::milliseconds(2500));
  EXPECT_EQ(a - b, Time::milliseconds(1500));
  EXPECT_EQ(a * 3, 6_s);
  EXPECT_LT(b, a);
  EXPECT_GT(a, b);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(TimeTest, CompoundAssignment) {
  Time t = 1_s;
  t += 250_ms;
  EXPECT_EQ(t, Time::milliseconds(1250));
  t -= 1_s;
  EXPECT_EQ(t, 250_ms);
}

TEST(TimeTest, AsSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ((1200_s).as_seconds(), 1200.0);
  EXPECT_DOUBLE_EQ((200_ms).as_seconds(), 0.2);
  EXPECT_DOUBLE_EQ((200_ms).as_milliseconds(), 200.0);
}

TEST(TimeTest, LiteralsProduceExpectedValues) {
  EXPECT_EQ(3_s, Time::seconds(std::int64_t{3}));
  EXPECT_EQ(10_ms, Time::milliseconds(10));
  EXPECT_EQ(5_us, Time::microseconds(5));
  EXPECT_EQ(9_ns, Time::nanoseconds(9));
}

TEST(TimeTest, MaxActsAsInfinity) {
  EXPECT_GT(Time::max(), Time::seconds(std::int64_t{1'000'000'000}));
}

TEST(TimeTest, ToStringFormatsSeconds) {
  EXPECT_EQ((1500_ms).to_string(), "1.500000s");
}

}  // namespace
}  // namespace tsim::sim
