// Fixture: the same effect shapes as rules/, every one either behind a
// HOT_PATH_EXEMPT boundary with a reason or under a reasoned HOTPATH_ALLOW
// grant. The analyzer must come back clean: exemptions stop the walk, grants
// cover their line, and both carry the required why.
#include <cstdio>
#include <mutex>
#include <vector>

#include "core/hotpath.hpp"

namespace fx {

struct Engine {
  std::vector<int> items;
  std::mutex m;

  HOT_PATH void tick(int v);
  // The exempt boundary: nothing inside is classified or descended into.
  HOT_PATH_EXEMPT(
      "cold setup path: runs once per reconfiguration to size the pools and "
      "log the change, never per event")
  void reconfigure(int v);
  void granted_helper(int v);
};

void Engine::tick(int v) {
  granted_helper(v);
  if (v < 0) reconfigure(v);
}

void Engine::reconfigure(int v) {
  m.lock();
  items.resize(static_cast<std::size_t>(v < 0 ? -v : v));
  std::fprintf(stderr, "resized\n");
  m.unlock();
}

void Engine::granted_helper(int v) {
  // HOTPATH_ALLOW(container-growth: append into capacity the owner reserved at topology build)
  items.push_back(v);
}

}  // namespace fx
