// Fixture: indirect-call frontier reporting. The root dispatches through a
// pure-virtual interface with no definition in the scanned set and through a
// std::function member — both are honest blind spots the analyzer must
// surface as informational notes (never gate), while the TU stays clean.
#include <functional>

#include "core/hotpath.hpp"

namespace fx {

struct Handler {
  virtual ~Handler() = default;
  virtual void on_event(int v) = 0;
};

struct Dispatcher {
  Handler* handler{nullptr};
  std::function<void(int)> tap;

  HOT_PATH void dispatch(int v);
};

void Dispatcher::dispatch(int v) {
  handler->on_event(v);
  tap(v);
}

}  // namespace fx
