// Fixture: every gating hot-path rule fires exactly once in this TU. The
// fixture test asserts the exact total, so keep the counts in sync with
// tests/hotpath/CMakeLists.txt if you edit it:
//   heap-alloc, container-growth, lock, io, throw-expr,
//   nondeterministic-source — one op each, all reachable from the one root —
//   plus one exempt-without-reason and one allow-without-reason audit
//   finding.
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/hotpath.hpp"

namespace fx {

struct Engine {
  std::vector<int> items;
  std::mutex m;

  HOT_PATH void tick(int v);
  void alloc_helper();
  void grow_helper(int v);
  void lock_helper();
  void log_helper();
  void throw_helper(int v);
  void seed_helper();
  void granted_helper(int v);
  // An empty reason is an audit finding: the annotation demands the why.
  HOT_PATH_EXEMPT("") void cold_unjustified();
};

void Engine::tick(int v) {
  alloc_helper();
  grow_helper(v);
  lock_helper();
  log_helper();
  throw_helper(v);
  seed_helper();
  granted_helper(v);
  cold_unjustified();
}

void Engine::alloc_helper() {
  int* scratch = new int{7};
  (void)scratch;
}

void Engine::grow_helper(int v) { items.push_back(v); }

void Engine::lock_helper() { m.lock(); }

void Engine::log_helper() { std::fprintf(stderr, "tick\n"); }

void Engine::throw_helper(int v) {
  if (v < 0) throw std::invalid_argument{"negative"};
}

void Engine::seed_helper() { std::srand(42); }

void Engine::granted_helper(int v) {
  // HOTPATH_ALLOW(container-growth)
  items.emplace_back(v);
}

void Engine::cold_unjustified() {}

}  // namespace fx
