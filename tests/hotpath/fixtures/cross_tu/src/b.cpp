#include "shared.hpp"

namespace fx {

void Worker::spin(int v) {
  int* scratch = new int{v};
  (void)scratch;
}

}  // namespace fx
