#include "shared.hpp"

namespace fx {

void Root::run(int v) {
  Worker worker;
  worker.spin(v);
}

}  // namespace fx
