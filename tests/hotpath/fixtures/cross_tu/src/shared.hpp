// Fixture header: carries the HOT_PATH root annotation on a declaration whose
// definition lives in a.cpp, while the violating callee is defined in b.cpp —
// the finding only exists if the two-pass link merges annotations and call
// edges across TU summaries.
#pragma once

#include "core/hotpath.hpp"

namespace fx {

struct Root {
  HOT_PATH void run(int v);
};

struct Worker {
  void spin(int v);
};

}  // namespace fx
