#!/usr/bin/env python3
"""Root-coverage test: every HOT_PATH root carries weight.

Runs the analyzer over the real src/ tree with --reachable, parses the roots
out of the report, then re-runs once per root with --drop-root and asserts
the reachable-set report changes and the root count drops by one. A root
whose removal leaves the report untouched would mean the annotation proves
nothing (its cone is fully shadowed), so this doubles as a guard against
dead annotations accumulating.

Usage: check_drop_root.py <toposense_hotpath> <repo_root>
"""

import os
import subprocess
import sys


def reachable_report(tool, repo, extra=()):
    proc = subprocess.run(
        [tool, "--reachable", *extra, "src"],
        capture_output=True,
        text=True,
        check=False,
        cwd=repo,
    )
    if proc.returncode != 0:
        print("analyzer found unexpected findings:", proc.stdout, proc.stderr)
        sys.exit(1)
    return proc.stdout


def main():
    tool, repo = sys.argv[1], sys.argv[2]
    baseline = reachable_report(tool, repo)
    roots = [
        line.split("root ", 1)[1].strip()
        for line in baseline.splitlines()
        if line.startswith("root ")
    ]
    if len(roots) < 5:
        print(f"expected the annotated root set, found {len(roots)}: {roots}")
        return 1

    failures = []
    for root in roots:
        dropped = reachable_report(tool, repo, ("--drop-root", root))
        if dropped == baseline:
            failures.append(root)
            continue
        remaining = sum(1 for l in dropped.splitlines() if l.startswith("root "))
        if remaining != len(roots) - 1:
            print(f"--drop-root {root}: expected {len(roots) - 1} roots, got {remaining}")
            return 1
    if failures:
        print("dropping these roots did not change the reachable report:")
        for root in failures:
            print("  ", root)
        return 1
    print(f"all {len(roots)} roots individually change the reachable-set report")
    return 0


if __name__ == "__main__":
    sys.exit(main())
