#!/usr/bin/env python3
"""Two-pass cross-TU test for toposense_hotpath.

Summarizes each fixture TU into its own JSON summary file (pass 1), links the
summaries (pass 2), and asserts the heap allocation in b.cpp is reported as
reachable from the HOT_PATH root whose annotation sits on a declaration in
shared.hpp and whose definition sits in a.cpp. The finding can only exist if
annotation merging and call-edge resolution work across TU summaries — a
single-TU scan of any one file reports nothing.

Usage: check_cross_tu.py <toposense_hotpath> <fixture_dir>
"""

import os
import subprocess
import sys
import tempfile


def run(args):
    return subprocess.run(args, capture_output=True, text=True, check=False)


def main():
    tool, fixture = sys.argv[1], sys.argv[2]
    src = os.path.join(fixture, "src")

    with tempfile.TemporaryDirectory() as tmp:
        # Pass 1: one summary per "TU". The header rides with a.cpp, as a
        # compile_commands-driven run would summarize each entry separately.
        summaries = []
        for name, files in (
            ("a", [os.path.join(src, "a.cpp"), os.path.join(src, "shared.hpp")]),
            ("b", [os.path.join(src, "b.cpp")]),
        ):
            out = os.path.join(tmp, name + ".json")
            proc = run([tool, "--summarize", "--out", out] + files)
            if proc.returncode != 0:
                print("summarize failed:", proc.stdout, proc.stderr)
                return 1
            summaries += ["--summaries", out]

        # Each single TU alone must be clean: a.cpp has the root but no
        # violation, b.cpp has the violation but no root.
        for single in ("a.json", "b.json"):
            proc = run([tool, "--summaries", os.path.join(tmp, single)])
            if proc.returncode != 0:
                print(f"single-TU {single} should be clean:", proc.stdout)
                return 1

        # Pass 2: the link step joins the halves into one finding.
        proc = run([tool] + summaries)

    if proc.returncode != 1:
        print("expected exit 1 from linked summaries, got", proc.returncode)
        print(proc.stdout, proc.stderr)
        return 1
    wanted = "[hotpath/heap-alloc]"
    chain = "fx::Root::run -> fx::Worker::spin"
    if wanted not in proc.stdout or chain not in proc.stdout:
        print("missing cross-TU finding or chain in output:")
        print(proc.stdout)
        return 1
    if "1 new finding(s)" not in proc.stdout:
        print("expected exactly one finding:")
        print(proc.stdout)
        return 1
    print("cross-TU two-pass link OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
