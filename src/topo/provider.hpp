#pragma once

#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tsim::topo {

/// What an mtrace/SNMP-style discovery pass reconstructs for one session at
/// one instant: the session tree (overlay of the per-layer trees) and the set
/// of receiver nodes.
struct TopologySnapshot {
  net::SessionId session{0};
  net::NodeId source{net::kInvalidNode};
  std::vector<std::pair<net::NodeId, net::NodeId>> edges;  ///< (parent, child)
  std::vector<net::NodeId> receivers;                      ///< active base-layer members
  sim::Time captured_at{};
};

/// Interface the controller consumes. The paper is explicit that the
/// algorithm "concerns itself only with the information and not how it was
/// acquired" — implementations differ in cost and freshness:
///  * DiscoveryService — oracle sampling with configurable staleness (the
///    paper's evaluation model; staleness is the studied variable, Fig 10),
///  * MtraceDiscovery — hop-path queries carried as real packets that share
///    queues with data (cost + latency + loss are emergent).
class TopologyProvider {
 public:
  virtual ~TopologyProvider() = default;

  /// Registers a session for discovery. `max_layer` bounds the overlay.
  virtual void track_session(net::SessionId session, net::LayerId max_layer) = 0;

  /// Begins discovery (idempotent).
  virtual void start() = 0;

  /// Freshest view available for `session` (nullptr before the first pass).
  [[nodiscard]] virtual const TopologySnapshot* snapshot(net::SessionId session) const = 0;
};

}  // namespace tsim::topo
