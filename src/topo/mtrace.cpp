#include "topo/mtrace.hpp"

#include <algorithm>
#include <memory>
#include <set>

namespace tsim::topo {

MtraceDiscovery::MtraceDiscovery(sim::Simulation& simulation, net::Network& network,
                                 mcast::MulticastRouter& mcast,
                                 transport::DemuxRegistry& demuxes, Config config)
    : simulation_{simulation},
      network_{network},
      mcast_{mcast},
      demuxes_{demuxes},
      config_{config} {
  demuxes_.at(config_.tool_node)
      .add_handler(net::PacketKind::kMtraceResponse,
                   [this](const net::PacketRef& p) { handle_response(*p); });
}

void MtraceDiscovery::track_session(net::SessionId session, net::LayerId max_layer) {
  tracked_[session] = max_layer;
}

void MtraceDiscovery::register_receiver(net::SessionId session, net::NodeId receiver) {
  auto& list = receivers_[session];
  if (std::find(list.begin(), list.end(), receiver) != list.end()) return;
  list.push_back(receiver);

  // Responder: reply with the source->receiver hop path and layer membership.
  // The path comes from the routing state real mtrace would collect hop by
  // hop; membership is the host's own group table.
  demuxes_.at(receiver).add_handler(
      net::PacketKind::kMtraceQuery, [this, receiver](const net::PacketRef& p) {
        const auto* query = dynamic_cast<const MtraceQuery*>(p->control.get());
        if (query == nullptr || query->receiver != receiver) return;

        auto response = std::make_shared<MtraceResponse>();
        response->session = query->session;
        response->receiver = receiver;
        response->round = query->round;
        const net::NodeId source = mcast_.session_source(query->session);
        response->path = network_.routes().path(source, receiver);
        int layers = 0;
        const auto tracked = tracked_.find(query->session);
        const int max_layer = tracked == tracked_.end() ? 0 : tracked->second;
        for (int l = 1; l <= max_layer; ++l) {
          if (mcast_.is_member(receiver,
                               net::GroupAddr{query->session, static_cast<net::LayerId>(l)})) {
            layers = l;
          }
        }
        response->subscribed_layers = layers;

        net::Packet reply;
        reply.kind = net::PacketKind::kMtraceResponse;
        reply.size_bytes = kMtracePacketBytes;
        reply.src = receiver;
        reply.dst = config_.tool_node;
        reply.control = std::move(response);
        network_.send_unicast(reply);
      });
}

void MtraceDiscovery::start() {
  if (started_) return;
  started_ = true;
  run_round();
}

void MtraceDiscovery::run_round() {
  ++round_;
  pending_.clear();
  for (const auto& [session, receivers] : receivers_) {
    if (tracked_.find(session) == tracked_.end()) continue;
    for (const net::NodeId receiver : receivers) {
      auto query = std::make_shared<MtraceQuery>();
      query->session = session;
      query->receiver = receiver;
      query->round = round_;

      net::Packet packet;
      packet.kind = net::PacketKind::kMtraceQuery;
      packet.size_bytes = kMtracePacketBytes;
      packet.src = config_.tool_node;
      packet.dst = receiver;
      packet.control = std::move(query);
      network_.send_unicast(packet);
      ++queries_sent_;
    }
  }
  const std::uint32_t round = round_;
  simulation_.after(config_.assembly_delay, [this, round]() { assemble_round(round); });
  simulation_.after(config_.query_period, [this]() { run_round(); });
}

void MtraceDiscovery::handle_response(const net::Packet& packet) {
  const auto* response = dynamic_cast<const MtraceResponse*>(packet.control.get());
  if (response == nullptr || response->round != round_) return;  // straggler
  ++responses_received_;
  pending_.push_back(*response);
}

void MtraceDiscovery::assemble_round(std::uint32_t round) {
  if (round != round_) return;  // a newer round already started assembling

  std::unordered_map<net::SessionId, std::set<std::pair<net::NodeId, net::NodeId>>>
      edges_by_session;
  std::unordered_map<net::SessionId, std::vector<net::NodeId>> members_by_session;
  for (const MtraceResponse& r : pending_) {
    if (r.subscribed_layers < 1 || r.path.empty()) continue;
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      edges_by_session[r.session].emplace(r.path[i], r.path[i + 1]);
    }
    members_by_session[r.session].push_back(r.receiver);
  }

  for (const auto& [session, max_layer] : tracked_) {
    TopologySnapshot snap;
    snap.session = session;
    snap.source = mcast_.session_source(session);
    const auto eit = edges_by_session.find(session);
    if (eit != edges_by_session.end()) {
      snap.edges.assign(eit->second.begin(), eit->second.end());
    }
    const auto mit = members_by_session.find(session);
    if (mit != members_by_session.end()) {
      snap.receivers = mit->second;
      std::sort(snap.receivers.begin(), snap.receivers.end());
    }
    snap.captured_at = simulation_.now();
    // Keep the previous view when a whole round yielded nothing (e.g. all
    // responses lost to congestion) — stale beats empty.
    if (!snap.receivers.empty() || latest_.find(session) == latest_.end()) {
      latest_[session] = std::move(snap);
    }
  }
  pending_.clear();
}

const TopologySnapshot* MtraceDiscovery::snapshot(net::SessionId session) const {
  const auto it = latest_.find(session);
  return it == latest_.end() ? nullptr : &it->second;
}

}  // namespace tsim::topo
