#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "topo/provider.hpp"
#include "transport/demux.hpp"

namespace tsim::topo {

/// mtrace-style query payload: "which path does session S take to you, and
/// which layers do you hold?".
struct MtraceQuery final : net::ControlPayload {
  net::SessionId session{0};
  net::NodeId receiver{net::kInvalidNode};
  std::uint32_t round{0};
};

/// Response payload carrying the hop path from the session source to the
/// receiver and the receiver's per-layer membership — what the routers'
/// mtrace blocks report hop by hop.
struct MtraceResponse final : net::ControlPayload {
  net::SessionId session{0};
  net::NodeId receiver{net::kInvalidNode};
  std::uint32_t round{0};
  std::vector<net::NodeId> path;  ///< source first, receiver last
  int subscribed_layers{0};
};

inline constexpr std::uint32_t kMtracePacketBytes = 96;

/// Packet-based topology discovery: each discovery round unicasts one query
/// per registered receiver; the receiver-side responder answers with the
/// source->receiver hop path (which real mtrace collects from the routers)
/// and its layer membership. The tool assembles the responses of a round into
/// a TopologySnapshot.
///
/// Unlike the oracle DiscoveryService, every query/response here is a real
/// packet sharing queues with data: discovery costs bandwidth (linear in
/// receivers, as §V requires), takes at least one source-receiver RTT, and
/// loses messages under congestion — so snapshots can be incomplete or old,
/// emergently rather than by configuration.
class MtraceDiscovery final : public TopologyProvider {
 public:
  struct Config {
    net::NodeId tool_node{net::kInvalidNode};  ///< where the tool runs
    sim::Time query_period{sim::Time::seconds(2)};
    /// A round's snapshot is published this long after its queries go out,
    /// from whatever responses arrived (stragglers are dropped).
    sim::Time assembly_delay{sim::Time::milliseconds(1500)};
  };

  MtraceDiscovery(sim::Simulation& simulation, net::Network& network,
                  mcast::MulticastRouter& mcast, transport::DemuxRegistry& demuxes,
                  Config config);

  /// Installs the responder on a receiver node (the "mtrace daemon").
  void register_receiver(net::SessionId session, net::NodeId receiver);

  void track_session(net::SessionId session, net::LayerId max_layer) override;
  void start() override;
  [[nodiscard]] const TopologySnapshot* snapshot(net::SessionId session) const override;

  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }
  [[nodiscard]] std::uint64_t responses_received() const { return responses_received_; }

 private:
  void run_round();
  void assemble_round(std::uint32_t round);
  void handle_response(const net::Packet& packet);

  sim::Simulation& simulation_;
  net::Network& network_;
  mcast::MulticastRouter& mcast_;
  transport::DemuxRegistry& demuxes_;
  Config config_;
  // Ordered: run_round() iterates these and its iteration order decides the
  // order queries enter the network, which must be deterministic.
  std::map<net::SessionId, net::LayerId> tracked_;
  std::map<net::SessionId, std::vector<net::NodeId>> receivers_;
  std::vector<MtraceResponse> pending_;  ///< responses of the current round
  std::unordered_map<net::SessionId, TopologySnapshot> latest_;
  std::uint32_t round_{0};
  std::uint64_t queries_sent_{0};
  std::uint64_t responses_received_{0};
  bool started_{false};
};

}  // namespace tsim::topo
