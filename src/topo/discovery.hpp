#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mcast/multicast_router.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "topo/provider.hpp"

namespace tsim::topo {

/// Simulated multicast topology discovery tool.
///
/// The paper treats discovery as a black box that yields the session tree in
/// the controller's domain, possibly out of date; the *only* property it
/// studies is staleness (Fig 10). We therefore sample the ground-truth trees
/// periodically and serve, at query time `t`, the newest sample captured at
/// or before `t - staleness`.
class DiscoveryService final : public TopologyProvider {
 public:
  struct Config {
    sim::Time sample_period{sim::Time::seconds(1)};
    sim::Time staleness{sim::Time::zero()};
    std::size_t history_limit{128};

    /// Domain scoping (§II / Fig 3): when non-empty, snapshots contain only
    /// tree edges with both endpoints inside the domain, rooted at
    /// `domain_root` (the domain's ingress/border router). A controller
    /// scoped this way manages its subtree independently of other domains.
    std::unordered_set<net::NodeId> domain_nodes{};
    net::NodeId domain_root{net::kInvalidNode};
  };

  DiscoveryService(sim::Simulation& simulation, mcast::MulticastRouter& mcast, Config config);

  /// Registers a session for periodic sampling. `max_layer` bounds the
  /// per-layer tree overlay.
  void track_session(net::SessionId session, net::LayerId max_layer) override;

  /// Begins periodic sampling (first sample immediately).
  void start() override;

  /// Newest snapshot for `session` captured at or before now - staleness;
  /// nullptr when none old enough exists yet.
  [[nodiscard]] const TopologySnapshot* snapshot(net::SessionId session) const override;

  [[nodiscard]] const Config& config() const { return config_; }
  void set_staleness(sim::Time staleness) { config_.staleness = staleness; }

 private:
  void sample_all();

  sim::Simulation& simulation_;
  mcast::MulticastRouter& mcast_;
  Config config_;
  // Ordered: sample_all() iterates tracked_ and its iteration order decides
  // lazy tree-rebuild (and audit-hook) order, which must be deterministic.
  std::map<net::SessionId, net::LayerId> tracked_;
  std::unordered_map<net::SessionId, std::deque<TopologySnapshot>> history_;
  bool started_{false};
};

}  // namespace tsim::topo
