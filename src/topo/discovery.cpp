#include "topo/discovery.hpp"

namespace tsim::topo {

DiscoveryService::DiscoveryService(sim::Simulation& simulation, mcast::MulticastRouter& mcast,
                                   Config config)
    : simulation_{simulation}, mcast_{mcast}, config_{config} {}

void DiscoveryService::track_session(net::SessionId session, net::LayerId max_layer) {
  tracked_[session] = max_layer;
}

void DiscoveryService::start() {
  if (started_) return;
  started_ = true;
  sample_all();
}

void DiscoveryService::sample_all() {
  const bool scoped = !config_.domain_nodes.empty();
  for (const auto& [session, max_layer] : tracked_) {
    TopologySnapshot snap;
    snap.session = session;
    snap.source = scoped ? config_.domain_root : mcast_.session_source(session);
    snap.edges = mcast_.session_tree_edges(session, max_layer);
    snap.receivers = mcast_.members(net::GroupAddr{session, 1});
    if (scoped) {
      std::erase_if(snap.edges, [&](const auto& edge) {
        return config_.domain_nodes.count(edge.first) == 0 ||
               config_.domain_nodes.count(edge.second) == 0;
      });
      std::erase_if(snap.receivers, [&](net::NodeId r) {
        return config_.domain_nodes.count(r) == 0;
      });
    }
    snap.captured_at = simulation_.now();

    std::deque<TopologySnapshot>& hist = history_[session];
    hist.push_back(std::move(snap));
    while (hist.size() > config_.history_limit) hist.pop_front();
  }
  simulation_.after(config_.sample_period, [this]() { sample_all(); });
}

const TopologySnapshot* DiscoveryService::snapshot(net::SessionId session) const {
  const auto it = history_.find(session);
  if (it == history_.end() || it->second.empty()) return nullptr;
  const sim::Time cutoff = simulation_.now() - config_.staleness;
  const TopologySnapshot* best = nullptr;
  for (const TopologySnapshot& snap : it->second) {
    if (snap.captured_at <= cutoff) best = &snap;
  }
  return best;
}

}  // namespace tsim::topo
