#pragma once

#include "core/units.hpp"
#include "net/packet.hpp"

namespace tsim::traffic {

/// Receives integrated fluid-model deliveries from traffic::FluidEngine.
///
/// In fluid mode no data packets exist: once per integration step the engine
/// walks each group tree and credits every subscribed member with the bytes
/// and (derived) packet counts that arrived at its node during the step, plus
/// the packets lost upstream on its path. transport::ReceiverEndpoint
/// implements this so its report windows — and through them ReceiverAgent and
/// ControllerAgent — consume fluid results through the exact counters the
/// packet path feeds.
class FluidSink {
 public:
  virtual ~FluidSink() = default;

  /// `received`/`lost` partition the packets the source emitted for this
  /// member during the step; `bytes` is the payload of the received share.
  virtual void on_fluid_delivery(net::GroupAddr group, units::Bytes bytes,
                                 units::PacketCount received,
                                 units::PacketCount lost) = 0;
};

}  // namespace tsim::traffic
