#include "traffic/fluid_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsim::traffic {

FluidEngine::FluidEngine(sim::Simulation& simulation, net::Network& network,
                         mcast::MulticastRouter& mcast, Config config)
    : simulation_{simulation}, network_{network}, mcast_{mcast}, config_{config} {
  const std::int64_t step_ns = config_.step.as_nanoseconds();
  if (step_ns <= 0 || 1'000'000'000 % step_ns != 0) {
    throw std::invalid_argument("FluidEngine: step must divide one second");
  }
}

void FluidEngine::add_source(FluidSource* source) { sources_.push_back(source); }

void FluidEngine::register_sink(net::NodeId node, FluidSink* sink) {
  if (sinks_by_node_.size() <= node) sinks_by_node_.resize(node + 1);
  sinks_by_node_[node].push_back(sink);
}

void FluidEngine::add_background_flow(net::NodeId src, net::NodeId dst,
                                      units::BitsPerSec rate, sim::Time start,
                                      sim::Time stop) {
  BackgroundFlow flow;
  flow.src = src;
  flow.dst = dst;
  flow.rate = rate;
  flow.start = start;
  flow.stop = stop;
  background_.push_back(std::move(flow));
}

void FluidEngine::start() {
  // Engine and Simulation share the Scenario's lifetime; no events run once
  // teardown begins.  NOLINT(callback-lifetime)
  simulation_.after(config_.step, [this]() { step(); });
}

void FluidEngine::ensure_capacity() {
  if (link_state_.size() < network_.link_count()) {
    link_state_.resize(network_.link_count());
    // Pre-size the per-step scratch so the hot tree walks never grow it:
    // touched_ holds at most one entry per link, and the walk stack's
    // worst-case depth is one frame per tree edge (again bounded by links).
    touched_.reserve(link_state_.size());
    stack_.reserve(link_state_.size() + 1);
  }
  const std::uint32_t groups = network_.group_stats_count();
  if (cells_.size() < groups) {
    cells_.resize(groups);
    members_.resize(groups);
  }
}

void FluidEngine::touch(net::LinkId link) {
  LinkState& st = link_state_[link];
  if (st.touched) return;
  st.touched = true;
  // HOTPATH_ALLOW(container-growth: one slot per link into capacity reserved by ensure_capacity)
  touched_.push_back(link);
  const std::uint64_t gap = steps_ - 1 - st.last_step;
  if (gap > 0 && st.last_step > 0) {
    // The link sat idle for `gap` full steps: nothing was offered, so the
    // backlog drained at line rate and any stale loss fraction is over.
    const double drained = network_.link(link).bandwidth().bps() *
                           config_.step.as_seconds() * static_cast<double>(gap);
    st.queue.backlog_bits =
        st.queue.backlog_bits > drained ? st.queue.backlog_bits - drained : 0.0;
    st.loss_prev = 0.0;
  }
}

double FluidEngine::effective_rate(FluidSource& source, net::LayerId layer, sim::Time t0,
                                   sim::Time t1) {
  const auto& cfg = source.config();
  const sim::Time lo = std::max(t0, cfg.start);
  const sim::Time hi = std::min(t1, cfg.stop);
  if (hi <= lo) return 0.0;
  const double overlap = (hi - lo) / (t1 - t0);
  return source.layer_rate(layer, lo).bps() * overlap;
}

void FluidEngine::walk_offered(const mcast::GroupTree& tree, double rate) {
  stack_.clear();
  // HOTPATH_ALLOW(container-growth: walk stack bounded by tree edges; capacity reserved by ensure_capacity)
  stack_.push_back({tree.source, rate});
  while (!stack_.empty()) {
    const auto [node, inflow] = stack_.back();
    stack_.pop_back();
    if (node >= tree.fan.size()) continue;
    const mcast::GroupTree::FanSlot& slot = tree.fan[node];
    for (std::uint32_t i = 0; i < slot.count; ++i) {
      const net::LinkId link = tree.fan_links[slot.offset + i];
      touch(link);
      LinkState& st = link_state_[link];
      st.offered += inflow;
      // Pass B must visit exactly this link set, so descend even at rate 0.
      // HOTPATH_ALLOW(container-growth: walk stack bounded by tree edges; capacity reserved by ensure_capacity)
      stack_.push_back({network_.link(link).to(), inflow * (1.0 - st.loss_prev)});
    }
  }
}

void FluidEngine::credit_cell(Cell& cell, std::uint32_t gid, net::LinkId link,
                              double inflow, double delivered, double packet_size) {
  const double dt_s = config_.step.as_seconds();
  cell.delivered_acc += delivered * dt_s / 8.0;
  cell.dropped_acc += (inflow - delivered) * dt_s / (8.0 * packet_size);
  const auto del_bytes = static_cast<std::uint64_t>(cell.delivered_acc);
  const auto del_packets = static_cast<std::uint64_t>(cell.delivered_acc / packet_size);
  const auto drop_packets = static_cast<std::uint64_t>(cell.dropped_acc);
  const auto drop_bytes = static_cast<std::uint64_t>(cell.dropped_acc * packet_size);
  network_.credit_fluid_link(
      link, gid, units::Bytes{del_bytes - cell.delivered_bytes_credited},
      units::PacketCount{del_packets - cell.delivered_packets_credited},
      units::Bytes{drop_bytes - cell.dropped_bytes_credited},
      units::PacketCount{drop_packets - cell.dropped_packets_credited});
  cell.delivered_bytes_credited = del_bytes;
  cell.delivered_packets_credited = del_packets;
  cell.dropped_bytes_credited = drop_bytes;
  cell.dropped_packets_credited = drop_packets;
}

void FluidEngine::credit_member(net::GroupAddr group, std::uint32_t gid, net::NodeId node,
                                double rate, double source_rate, double packet_size) {
  if (node >= sinks_by_node_.size() || sinks_by_node_[node].empty()) return;
  const double dt_s = config_.step.as_seconds();
  MemberCredit& mc = members_[gid][node];
  mc.byte_acc += rate * dt_s / 8.0;
  mc.recv_acc += rate * dt_s / (8.0 * packet_size);
  mc.lost_acc += (source_rate - rate) * dt_s / (8.0 * packet_size);
  const auto bytes = static_cast<std::uint64_t>(mc.byte_acc);
  const auto recv = static_cast<std::uint64_t>(mc.recv_acc);
  const auto lost = static_cast<std::uint64_t>(mc.lost_acc);
  const units::Bytes d_bytes{bytes - mc.bytes_credited};
  const units::PacketCount d_recv{recv - mc.recv_credited};
  const units::PacketCount d_lost{lost - mc.lost_credited};
  mc.bytes_credited = bytes;
  mc.recv_credited = recv;
  mc.lost_credited = lost;
  if (d_bytes.count() == 0 && d_recv.count() == 0 && d_lost.count() == 0) return;
  for (FluidSink* sink : sinks_by_node_[node]) {
    sink->on_fluid_delivery(group, d_bytes, d_recv, d_lost);
  }
}

void FluidEngine::walk_credit(const mcast::GroupTree& tree, net::GroupAddr group,
                              std::uint32_t gid, double rate, double source_packet_size) {
  auto& cells = cells_[gid];
  stack_.clear();
  // HOTPATH_ALLOW(container-growth: walk stack bounded by tree edges; capacity reserved by ensure_capacity)
  stack_.push_back({tree.source, rate});
  while (!stack_.empty()) {
    const auto [node, inflow] = stack_.back();
    stack_.pop_back();
    if (node >= tree.fan.size()) continue;
    const mcast::GroupTree::FanSlot& slot = tree.fan[node];
    if (slot.deliver_locally != 0) {
      credit_member(group, gid, node, inflow, rate, source_packet_size);
    }
    for (std::uint32_t i = 0; i < slot.count; ++i) {
      const net::LinkId link = tree.fan_links[slot.offset + i];
      const double delivered = inflow * (1.0 - link_state_[link].loss_now);
      credit_cell(cells[link], gid, link, inflow, delivered, source_packet_size);
      // HOTPATH_ALLOW(container-growth: walk stack bounded by tree edges; capacity reserved by ensure_capacity)
      stack_.push_back({network_.link(link).to(), delivered});
    }
  }
}

void FluidEngine::resolve_background(BackgroundFlow& flow) {
  flow.resolved = true;
  const std::vector<net::NodeId> nodes = network_.routes().path(flow.src, flow.dst);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    for (const net::LinkId link : network_.links_between(nodes[i], nodes[i + 1])) {
      if (network_.link(link).from() == nodes[i]) {
        flow.path_links.push_back(link);
        break;
      }
    }
  }
  flow.cells.resize(flow.path_links.size());
}

void FluidEngine::step() {
  const sim::Time t1 = simulation_.now();
  const sim::Time t0 = t1 - config_.step;
  ++steps_;
  touched_.clear();

  // Group gids/trees/rates are re-fetched per pass: interning is idempotent
  // and tree() is lazy-clean, so both passes see identical state.
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) {
      // Between the passes: advance every touched link's analytic queue to
      // turn this step's aggregate offered rate into its loss fraction.
      for (const net::LinkId link : touched_) {
        LinkState& st = link_state_[link];
        const net::Link& l = network_.link(link);
        const units::Bytes limit{static_cast<std::uint64_t>(l.queue_limit()) *
                                 config_.packet_size_bytes};
        st.loss_now = net::fluid_queue_step(st.queue, units::BitsPerSec{st.offered},
                                            l.bandwidth(), limit, config_.step);
        st.last_step = steps_;
      }
    }
    for (FluidSource* source : sources_) {
      const auto& cfg = source->config();
      for (int l = 1; l <= cfg.layers.num_layers; ++l) {
        const auto layer = static_cast<net::LayerId>(l);
        const double rate = effective_rate(*source, layer, t0, t1);
        const net::GroupAddr group{cfg.session, layer};
        const mcast::GroupTree* tree = mcast_.tree(group);
        if (tree == nullptr || tree->source == net::kInvalidNode) continue;
        if (pass == 0) {
          ensure_capacity();  // tree() may have interned nothing, but joins did
          walk_offered(*tree, rate);
        } else {
          const std::uint32_t gid = network_.intern_group(group);
          ensure_capacity();
          walk_credit(*tree, group, gid, rate,
                      static_cast<double>(cfg.layers.packet_size_bytes));
        }
      }
    }
    for (BackgroundFlow& flow : background_) {
      if (!flow.resolved) resolve_background(flow);
      const sim::Time lo = std::max(t0, flow.start);
      const sim::Time hi = std::min(t1, flow.stop);
      if (hi <= lo) continue;
      double rate = flow.rate.bps() * ((hi - lo) / (t1 - t0));
      ensure_capacity();
      for (std::size_t i = 0; i < flow.path_links.size(); ++i) {
        const net::LinkId link = flow.path_links[i];
        if (pass == 0) {
          touch(link);
          LinkState& st = link_state_[link];
          st.offered += rate;
          rate *= 1.0 - st.loss_prev;
        } else {
          const double delivered = rate * (1.0 - link_state_[link].loss_now);
          credit_cell(flow.cells[i], net::kInvalidGroupStatsId, link, rate, delivered,
                      static_cast<double>(config_.packet_size_bytes));
          rate = delivered;
        }
      }
    }
  }

  // Roll this step's loss into next step's pass-A attenuation.
  for (const net::LinkId link : touched_) {
    LinkState& st = link_state_[link];
    st.loss_prev = st.loss_now;
    st.offered = 0.0;
    st.touched = false;
  }

  // Same lifetime argument as start().  NOLINT(callback-lifetime)
  simulation_.after(config_.step, [this]() { step(); });
}

}  // namespace tsim::traffic
