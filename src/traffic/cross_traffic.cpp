#include "traffic/cross_traffic.hpp"

#include <string>

namespace tsim::traffic {

namespace {

tsim::net::Packet unicast_packet(net::Network& network, net::NodeId src, net::NodeId dst,
                                 std::uint32_t size_bytes) {
  net::Packet p;
  p.uid = network.next_packet_uid();
  p.kind = net::PacketKind::kData;
  p.size_bytes = size_bytes;
  p.src = src;
  p.dst = dst;
  return p;
}

}  // namespace

CbrFlow::CbrFlow(sim::Simulation& simulation, net::Network& network, Config config)
    : simulation_{simulation},
      network_{network},
      config_{config},
      rng_{simulation.rng_stream("cbrflow/" + std::to_string(config.src) + "/" +
                                 std::to_string(config.dst))} {}

void CbrFlow::start() {
  const double pps = config_.rate_bps / (8.0 * config_.packet_size_bytes);
  const sim::Time stagger = sim::Time::seconds(rng_.uniform(0.0, 1.0 / pps));
  simulation_.at(config_.start + stagger, [this]() { emit(); });
}

void CbrFlow::emit() {
  if (simulation_.now() >= config_.stop) return;
  network_.send_unicast(
      unicast_packet(network_, config_.src, config_.dst, config_.packet_size_bytes));
  ++sent_packets_;
  const double pps = config_.rate_bps / (8.0 * config_.packet_size_bytes);
  const double spacing = (1.0 / pps) * rng_.uniform(0.9, 1.1);
  simulation_.after(sim::Time::seconds(spacing), [this]() { emit(); });
}

OnOffFlow::OnOffFlow(sim::Simulation& simulation, net::Network& network, Config config)
    : simulation_{simulation},
      network_{network},
      config_{config},
      rng_{simulation.rng_stream("onoff/" + std::to_string(config.src) + "/" +
                                 std::to_string(config.dst))} {}

void OnOffFlow::start() {
  simulation_.at(config_.start, [this]() { begin_off_period(); });
}

void OnOffFlow::begin_on_period() {
  if (simulation_.now() >= config_.stop) return;
  on_ = true;
  const sim::Time duration = sim::Time::seconds(rng_.exponential(config_.mean_on_s));
  on_until_ = simulation_.now() + duration;
  emit();
  simulation_.after(duration, [this]() { begin_off_period(); });
}

void OnOffFlow::begin_off_period() {
  on_ = false;
  if (simulation_.now() >= config_.stop) return;
  simulation_.after(sim::Time::seconds(rng_.exponential(config_.mean_off_s)),
                    [this]() { begin_on_period(); });
}

void OnOffFlow::emit() {
  if (!on_ || simulation_.now() >= on_until_ || simulation_.now() >= config_.stop) return;
  network_.send_unicast(
      unicast_packet(network_, config_.src, config_.dst, config_.packet_size_bytes));
  ++sent_packets_;
  const double pps = config_.peak_bps / (8.0 * config_.packet_size_bytes);
  simulation_.after(sim::Time::seconds((1.0 / pps) * rng_.uniform(0.9, 1.1)),
                    [this]() { emit(); });
}

}  // namespace tsim::traffic
