#include "traffic/cross_traffic.hpp"

#include <string>

namespace tsim::traffic {

namespace {

tsim::net::Packet unicast_packet(net::Network& network, net::NodeId src, net::NodeId dst,
                                 std::uint32_t size_bytes) {
  net::Packet p;
  p.uid = network.next_packet_uid();
  p.kind = net::PacketKind::kData;
  p.size_bytes = size_bytes;
  p.src = src;
  p.dst = dst;
  return p;
}

}  // namespace

CbrFlow::CbrFlow(sim::Simulation& simulation, net::Network& network, Config config)
    : simulation_{simulation},
      network_{network},
      config_{config},
      rng_{simulation.rng_stream("cbrflow/" + std::to_string(config.src) + "/" +
                                 std::to_string(config.dst))},
      emit_thunk_{this} {
  // 1/pps hoisted out of emit(): same division the per-packet path computed,
  // done once, so spacing draws stay bit-identical.
  const double pps = config_.rate_bps / (8.0 * config_.packet_size_bytes);
  period_s_ = 1.0 / pps;
}

void CbrFlow::start() {
  const sim::Time stagger = sim::Time::seconds(rng_.uniform(0.0, period_s_));
  simulation_.at(config_.start + stagger, emit_thunk_);
}

void CbrFlow::emit() {
  if (simulation_.now() >= config_.stop) return;
  network_.send_unicast(
      unicast_packet(network_, config_.src, config_.dst, config_.packet_size_bytes));
  ++sent_packets_;
  const double spacing = period_s_ * rng_.uniform(0.9, 1.1);
  simulation_.after(sim::Time::seconds(spacing), emit_thunk_);
}

OnOffFlow::OnOffFlow(sim::Simulation& simulation, net::Network& network, Config config)
    : simulation_{simulation},
      network_{network},
      config_{config},
      rng_{simulation.rng_stream("onoff/" + std::to_string(config.src) + "/" +
                                 std::to_string(config.dst))},
      emit_thunk_{this} {
  const double pps = config_.peak_bps / (8.0 * config_.packet_size_bytes);
  period_s_ = 1.0 / pps;
}

void OnOffFlow::start() {
  simulation_.at(config_.start, [this]() { begin_off_period(); });
}

void OnOffFlow::begin_on_period() {
  if (simulation_.now() >= config_.stop) return;
  on_ = true;
  const sim::Time duration = sim::Time::seconds(rng_.exponential(config_.mean_on_s));
  on_until_ = simulation_.now() + duration;
  emit();
  simulation_.after(duration, [this]() { begin_off_period(); });
}

void OnOffFlow::begin_off_period() {
  on_ = false;
  if (simulation_.now() >= config_.stop) return;
  simulation_.after(sim::Time::seconds(rng_.exponential(config_.mean_off_s)),
                    [this]() { begin_on_period(); });
}

void OnOffFlow::emit() {
  if (!on_ || simulation_.now() >= on_until_ || simulation_.now() >= config_.stop) return;
  network_.send_unicast(
      unicast_packet(network_, config_.src, config_.dst, config_.packet_size_bytes));
  ++sent_packets_;
  simulation_.after(sim::Time::seconds(period_s_ * rng_.uniform(0.9, 1.1)), emit_thunk_);
}

}  // namespace tsim::traffic
