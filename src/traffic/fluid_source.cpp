#include "traffic/fluid_source.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace tsim::traffic {

FluidSource::FluidSource(sim::Simulation& simulation, Config config)
    : config_{config},
      rng_{simulation.rng_stream("fluid-source/" + std::to_string(config.session))},
      interval_packets_(static_cast<std::size_t>(config.layers.num_layers), 0.0) {
  pps_by_layer_.reserve(static_cast<std::size_t>(config_.layers.num_layers));
  for (int l = 1; l <= config_.layers.num_layers; ++l) {
    pps_by_layer_.push_back(config_.layers.packets_per_second(static_cast<net::LayerId>(l)));
  }
}

units::BitsPerSec FluidSource::layer_rate(net::LayerId layer, sim::Time when) {
  if (config_.model == TrafficModel::kCbr) {
    return config_.layers.layer_rate(layer);
  }
  advance_to_interval(when.as_nanoseconds() / 1'000'000'000);
  const double packets = interval_packets_[static_cast<std::size_t>(layer - 1)];
  return units::BitsPerSec{packets * static_cast<double>(config_.layers.packet_size_bytes) * 8.0};
}

void FluidSource::advance_to_interval(std::int64_t index) {
  // One draw per (interval, layer), always in order: the trajectory is a pure
  // function of the interval index regardless of engine step size.
  while (current_interval_ < index) {
    ++current_interval_;
    const double p = std::max(1.0, config_.peak_to_mean);
    for (int l = 1; l <= config_.layers.num_layers; ++l) {
      const double avg = pps_by_layer_[static_cast<std::size_t>(l - 1)];
      long n = 1;
      if (rng_.bernoulli(1.0 / p)) {
        n = std::lround(p * avg + 1.0 - p);
        n = std::max(n, 1L);
      }
      interval_packets_[static_cast<std::size_t>(l - 1)] = static_cast<double>(n);
    }
  }
}

}  // namespace tsim::traffic
