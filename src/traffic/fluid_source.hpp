#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "traffic/layered_source.hpp"

namespace tsim::traffic {

/// The fluid-approximation counterpart of LayeredSource: instead of emitting
/// one scheduler event per packet, it exposes the per-layer rate trajectory
/// and lets traffic::FluidEngine integrate it once per step.
///
/// CBR layers are flat at LayerSpec::layer_rate. VBR reproduces the paper's
/// on/off process at its native granularity: per one-second interval a layer
/// carries n packets (n = 1 w.p. 1-1/P, n = P*A + 1 - P w.p. 1/P), so the
/// layer's rate during that interval is n * packet_size * 8 bps. The draws
/// come from a dedicated stream ("fluid-source/<session>") and are consumed
/// strictly in (interval, layer) order, so trajectories are deterministic and
/// independent of how the engine interleaves queries across sources.
///
/// Deliberate divergence from the packet model: the per-layer start stagger
/// and the +/-10% spacing jitter vanish — both are sub-interval phase effects
/// a rate trajectory cannot represent (see docs/performance.md).
class FluidSource {
 public:
  using Config = LayeredSource::Config;

  FluidSource(sim::Simulation& simulation, Config config);

  /// Rate of `layer` during the one-second interval containing `when`.
  /// `when` must be non-decreasing across calls (the engine integrates
  /// forward); VBR draws advance one interval at a time so skipped intervals
  /// still consume their draws.
  [[nodiscard]] units::BitsPerSec layer_rate(net::LayerId layer, sim::Time when);

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void advance_to_interval(std::int64_t index);

  Config config_;
  sim::Rng rng_;
  std::vector<double> pps_by_layer_;
  /// Packets in the current one-second interval, per layer (VBR only).
  std::vector<double> interval_packets_;
  std::int64_t current_interval_{-1};
};

}  // namespace tsim::traffic
