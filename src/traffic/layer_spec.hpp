#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "net/packet.hpp"

namespace tsim::traffic {

/// The layered encoding the paper simulates: `num_layers` cumulative layers,
/// base layer at `base_rate`, each subsequent layer doubling (geometric
/// factor configurable for the §V layer-granularity ablation). Layers are
/// 1-based: layer 1 is the base layer; a receiver at subscription level k
/// receives layers 1..k.
struct LayerSpec {
  int num_layers{6};
  units::BitsPerSec base_rate{32'000.0};
  double layer_growth{2.0};
  std::uint32_t packet_size_bytes{1000};

  /// Rate of layer `layer` (1-based).
  [[nodiscard]] units::BitsPerSec layer_rate(net::LayerId layer) const;

  /// Total rate of layers 1..k (zero for k <= 0).
  [[nodiscard]] units::BitsPerSec cumulative_rate(int k) const;

  /// Largest k (possibly 0) with cumulative_rate(k) <= bandwidth.
  [[nodiscard]] int max_layers_for_bandwidth(units::BitsPerSec bandwidth) const;

  /// Average packets per second of layer `layer`.
  [[nodiscard]] double packets_per_second(net::LayerId layer) const;
};

}  // namespace tsim::traffic
