#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "traffic/layer_spec.hpp"

namespace tsim::traffic {

enum class TrafficModel : std::uint8_t {
  kCbr,  ///< constant bit rate: evenly spaced packets per layer
  kVbr,  ///< the Gopalakrishnan et al. on/off model the paper uses
};

/// A layered multicast video source (hierarchical source model, McCanne et
/// al.). Every layer of the session is transmitted on its own multicast group
/// continuously; receivers adapt by joining/leaving groups — the source never
/// adapts.
///
/// VBR follows the paper exactly: per one-second interval a layer sends n
/// packets where n = n_min with probability 1 - 1/P and n = P*A + n_min - P
/// with probability 1/P (A = average packets/second of that layer, P =
/// peak-to-mean ratio), so E[n] = A. n_min is 1 in the paper's formulation.
class LayeredSource {
 public:
  struct Config {
    net::SessionId session{0};
    net::NodeId node{net::kInvalidNode};
    LayerSpec layers{};
    TrafficModel model{TrafficModel::kCbr};
    double peak_to_mean{3.0};  ///< P, used by VBR only (paper studies 3 and 6)
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::max()};
  };

  LayeredSource(sim::Simulation& simulation, net::Network& network, Config config);

  /// Begins transmission at config.start.
  void start();

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint32_t next_seq(net::LayerId layer) const {
    return next_seq_[layer - 1];
  }
  [[nodiscard]] std::uint64_t sent_packets(net::LayerId layer) const {
    return sent_packets_[layer - 1];
  }
  [[nodiscard]] std::uint64_t sent_bytes_total() const { return sent_bytes_total_; }

 private:
  void schedule_cbr_layer(net::LayerId layer);
  void schedule_vbr_interval(net::LayerId layer);
  void emit(net::LayerId layer);

  sim::Simulation& simulation_;
  net::Network& network_;
  Config config_;
  sim::Rng rng_;
  std::vector<std::uint32_t> next_seq_;
  std::vector<std::uint64_t> sent_packets_;
  /// packets_per_second(layer), precomputed once — the formula calls pow(),
  /// which is far too slow to re-evaluate on every emitted packet.
  std::vector<double> pps_by_layer_;
  std::uint64_t sent_bytes_total_{0};
};

}  // namespace tsim::traffic
