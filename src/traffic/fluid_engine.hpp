#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/hotpath.hpp"
#include "core/units.hpp"
#include "mcast/multicast_router.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "traffic/fluid_sink.hpp"
#include "traffic/fluid_source.hpp"

namespace tsim::traffic {

/// The fluid datapath: integrates every FluidSource's rate trajectory over
/// the current multicast trees once per step instead of scheduling one event
/// per packet. Each step (one scheduler event for the whole network):
///
///  1. Pass A walks each group tree accumulating the aggregate offered rate
///     per link, attenuating by each upstream link's loss fraction from the
///     PREVIOUS step (the relaxation that makes one pass sufficient — loss
///     reacts one step late, documented in docs/performance.md).
///  2. Each touched link advances its analytic drop-tail queue
///     (net::fluid_queue_step) to get this step's loss fraction.
///  3. Pass B re-walks with this step's loss, crediting integerized
///     per-(group,link) delivered/dropped deltas into the Network's dense
///     tables + LinkHot counters (Network::credit_fluid_link), and delivering
///     per-member byte/packet/loss credits to registered FluidSinks.
///
/// Control traffic (reports, suggestions, discovery) stays packet-level on
/// the same links; the fluid backlog lives outside the real queues, so
/// control packets see empty queues (no data-induced queueing delay — a
/// documented divergence). Steps integrate the TRAILING window: the event at
/// t = k*step integrates [(k-1)*step, k*step) against membership as of its
/// end, so joins at t=0 are live in the very first step.
///
/// Determinism: sources are walked in add order, layers in order, tree links
/// in CSR order, background flows in add order; the unordered_maps here are
/// lookup-only (never iterated). All timing derives from sim::Time.
class FluidEngine {
 public:
  struct Config {
    /// Integration step. Must divide one second exactly, so a step never
    /// spans two of the VBR trajectory's one-second intervals.
    sim::Time step{sim::Time::milliseconds(100)};
    /// Packet size used to convert link queue limits (packets) to bits and
    /// to account background-flow packets; per-group packet math uses each
    /// source's own LayerSpec packet size.
    std::uint32_t packet_size_bytes{1000};
  };

  FluidEngine(sim::Simulation& simulation, net::Network& network,
              mcast::MulticastRouter& mcast, Config config);

  /// Registers a source; not owned. All sources must be added before start().
  void add_source(FluidSource* source);

  /// Registers a per-node delivery sink (a ReceiverEndpoint). Multiple sinks
  /// per node are allowed (each filters by session).
  void register_sink(net::NodeId node, FluidSink* sink);

  /// Unicast background (cross-traffic) flow at a constant rate: resolved to
  /// its directed link path on first step and credited into LinkHot counters
  /// only (no group cells) — it competes for fluid capacity like CbrFlow
  /// competes for queue slots.
  void add_background_flow(net::NodeId src, net::NodeId dst, units::BitsPerSec rate,
                           sim::Time start, sim::Time stop);

  /// Schedules the first integration step one step-width from now.
  void start();

  [[nodiscard]] std::uint64_t steps_executed() const { return steps_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// Per-link integration state, dense by LinkId (parallel to LinkHot).
  struct LinkState {
    net::FluidQueue queue;
    double loss_prev{0.0};     ///< loss fraction of the previous step
    double loss_now{0.0};      ///< loss fraction of the current step
    double offered{0.0};       ///< aggregate offered rate (bps), pass A
    std::uint64_t last_step{0};  ///< last step with offered traffic
    bool touched{false};
  };

  /// Exact-accumulator + credited-integer pair for one (group, link) cell.
  /// Credits are floor(exact) - credited, so integerization error never
  /// accumulates beyond one packet/byte regardless of step count.
  struct Cell {
    double delivered_acc{0.0};  ///< cumulative delivered volume, in bytes
    double dropped_acc{0.0};    ///< cumulative dropped volume, in packets
    std::uint64_t delivered_bytes_credited{0};
    std::uint64_t delivered_packets_credited{0};
    std::uint64_t dropped_bytes_credited{0};
    std::uint64_t dropped_packets_credited{0};
  };

  struct MemberCredit {
    double byte_acc{0.0};
    double recv_acc{0.0};
    double lost_acc{0.0};
    std::uint64_t bytes_credited{0};
    std::uint64_t recv_credited{0};
    std::uint64_t lost_credited{0};
  };

  struct BackgroundFlow {
    net::NodeId src{net::kInvalidNode};
    net::NodeId dst{net::kInvalidNode};
    units::BitsPerSec rate{};
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::max()};
    bool resolved{false};
    std::vector<net::LinkId> path_links;
    std::vector<Cell> cells;  ///< parallel to path_links
  };

  void step();
  HOT_PATH_EXEMPT(
      "per-step capacity warm-up: resizes the link table and reserves the walk scratch "
      "only when the topology or group count grew; a size check thereafter")
  void ensure_capacity();
  /// Marks a link as carrying fluid this step; on the first touch after an
  /// idle gap, drains the backlog for the gap at line rate and zeroes the
  /// stale loss fraction.
  void touch(net::LinkId link);
  /// Source rate over the trailing step window [t0, t1), scaled by the
  /// overlap with the source's [start, stop).
  [[nodiscard]] double effective_rate(FluidSource& source, net::LayerId layer,
                                      sim::Time t0, sim::Time t1);
  HOT_PATH void walk_offered(const mcast::GroupTree& tree, double rate);
  HOT_PATH void walk_credit(const mcast::GroupTree& tree, net::GroupAddr group,
                            std::uint32_t gid, double rate, double source_packet_size);
  void credit_cell(Cell& cell, std::uint32_t gid, net::LinkId link, double inflow,
                   double delivered, double packet_size);
  void credit_member(net::GroupAddr group, std::uint32_t gid, net::NodeId node, double rate,
                     double source_rate, double packet_size);
  HOT_PATH_EXEMPT(
      "lazy one-shot path resolution per background flow, after routes first converge; "
      "steps after that reuse flow.path_links")
  void resolve_background(BackgroundFlow& flow);

  sim::Simulation& simulation_;
  net::Network& network_;
  mcast::MulticastRouter& mcast_;
  Config config_;
  std::vector<FluidSource*> sources_;
  std::vector<std::vector<FluidSink*>> sinks_by_node_;
  std::vector<BackgroundFlow> background_;
  std::vector<LinkState> link_state_;
  std::vector<net::LinkId> touched_;
  /// Per-group-stats-id cell/member maps (lookup-only; iteration always goes
  /// through the deterministic tree walk).
  std::vector<std::unordered_map<net::LinkId, Cell>> cells_;
  std::vector<std::unordered_map<net::NodeId, MemberCredit>> members_;
  std::vector<std::pair<net::NodeId, double>> stack_;  ///< walk scratch
  std::uint64_t steps_{0};
};

}  // namespace tsim::traffic
