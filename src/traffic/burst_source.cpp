#include "traffic/burst_source.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace tsim::traffic {

BurstSource::BurstSource(sim::Simulation& simulation, net::Network& network, Config config)
    : simulation_{simulation},
      network_{network},
      config_{config},
      rng_{simulation.rng_stream("burst-source/" + std::to_string(config.source.session))},
      next_seq_(static_cast<std::size_t>(config.source.layers.num_layers), 0),
      sent_packets_(static_cast<std::size_t>(config.source.layers.num_layers), 0) {
  config_.train_packets = std::max(config_.train_packets, 1);
  pps_by_layer_.reserve(static_cast<std::size_t>(config_.source.layers.num_layers));
  for (int l = 1; l <= config_.source.layers.num_layers; ++l) {
    pps_by_layer_.push_back(
        config_.source.layers.packets_per_second(static_cast<net::LayerId>(l)));
  }
}

void BurstSource::start() {
  for (int l = 1; l <= config_.source.layers.num_layers; ++l) {
    const auto layer = static_cast<net::LayerId>(l);
    // Same per-layer phase stagger as LayeredSource, for the same reason.
    const sim::Time stagger = sim::Time::seconds(rng_.uniform(
        0.0, config_.source.model == TrafficModel::kCbr ? 0.25 : 1.0));
    simulation_.at(config_.source.start + stagger, [this, layer]() {
      if (config_.source.model == TrafficModel::kCbr) {
        schedule_cbr_layer(layer);
      } else {
        schedule_vbr_interval(layer);
      }
    });
  }
}

void BurstSource::emit_train(net::LayerId layer, long packets) {
  for (long i = 0; i < packets; ++i) {
    net::Packet packet;
    packet.uid = network_.next_packet_uid();
    packet.kind = net::PacketKind::kData;
    packet.size_bytes = config_.source.layers.packet_size_bytes;
    packet.src = config_.source.node;
    packet.multicast = true;
    packet.group = net::GroupAddr{config_.source.session, layer};
    packet.seq = next_seq_[layer - 1]++;
    ++sent_packets_[layer - 1];
    sent_bytes_total_ += packet.size_bytes;
    network_.send_multicast(packet);
  }
}

void BurstSource::schedule_cbr_layer(net::LayerId layer) {
  if (simulation_.now() >= config_.source.stop) return;
  const long train = config_.train_packets;
  emit_train(layer, train);
  const double pps = pps_by_layer_[layer - 1];
  // Event spacing is K packet periods, so the mean rate matches LayeredSource;
  // the +/-10% jitter de-phase-locks trains from link service times.
  const double spacing =
      (static_cast<double>(train) / pps) * rng_.uniform(0.9, 1.1);
  simulation_.after(sim::Time::seconds(spacing),
                    [this, layer]() { schedule_cbr_layer(layer); });
}

void BurstSource::schedule_vbr_interval(net::LayerId layer) {
  if (simulation_.now() >= config_.source.stop) return;

  const double avg = pps_by_layer_[layer - 1];              // A
  const double p = std::max(1.0, config_.source.peak_to_mean);  // P
  long n = 1;
  if (rng_.bernoulli(1.0 / p)) {
    n = std::lround(p * avg + 1.0 - p);
    n = std::max(n, 1L);
  }

  // The interval's n packets ride in ceil(n/K) trains spread evenly across
  // the second; the last train carries the remainder.
  const long train = config_.train_packets;
  const long trains = (n + train - 1) / train;
  const double spacing = 1.0 / static_cast<double>(trains);
  for (long i = 0; i < trains; ++i) {
    const long in_train = std::min(train, n - i * train);
    simulation_.after(sim::Time::seconds(spacing * static_cast<double>(i)),
                      [this, layer, in_train]() {
                        if (simulation_.now() < config_.source.stop) {
                          emit_train(layer, in_train);
                        }
                      });
  }
  simulation_.after(sim::Time::seconds(1),
                    [this, layer]() { schedule_vbr_interval(layer); });
}

}  // namespace tsim::traffic
