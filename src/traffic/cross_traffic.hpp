#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace tsim::traffic {

/// Unicast constant-bit-rate cross-traffic — the "transient non-conforming
/// flow" of the paper's §III/§V. TopoSense must adapt when such a flow takes
/// a cut of a bottleneck link, and must recover (via the periodic capacity
/// re-estimation) when it stops.
class CbrFlow {
 public:
  struct Config {
    net::NodeId src{net::kInvalidNode};
    net::NodeId dst{net::kInvalidNode};
    double rate_bps{256e3};
    std::uint32_t packet_size_bytes{1000};
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::max()};
  };

  CbrFlow(sim::Simulation& simulation, net::Network& network, Config config);

  void start();

  [[nodiscard]] std::uint64_t sent_packets() const { return sent_packets_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void emit();

  /// Pre-bound reschedule callback: an 8-byte trivially-copyable functor
  /// built once at construction, so every per-packet reschedule copies it
  /// straight into the scheduler's inline slot storage instead of capturing
  /// a fresh lambda (and re-deriving the packet period) per packet.
  struct EmitThunk {
    CbrFlow* flow;
    void operator()() const { flow->emit(); }
  };

  sim::Simulation& simulation_;
  net::Network& network_;
  Config config_;
  sim::Rng rng_;
  EmitThunk emit_thunk_;
  double period_s_{0.0};  ///< seconds per packet at the configured rate
  std::uint64_t sent_packets_{0};
};

/// Unicast on/off (exponential burst/idle) flow: a rough Pareto-ish stand-in
/// for web-like background traffic. During ON periods it transmits at
/// `peak_bps`; ON and OFF durations are exponentially distributed.
class OnOffFlow {
 public:
  struct Config {
    net::NodeId src{net::kInvalidNode};
    net::NodeId dst{net::kInvalidNode};
    double peak_bps{512e3};
    double mean_on_s{2.0};
    double mean_off_s{6.0};
    std::uint32_t packet_size_bytes{1000};
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::max()};
  };

  OnOffFlow(sim::Simulation& simulation, net::Network& network, Config config);

  void start();

  [[nodiscard]] std::uint64_t sent_packets() const { return sent_packets_; }
  [[nodiscard]] bool on() const { return on_; }

 private:
  void begin_on_period();
  void begin_off_period();
  void emit();

  /// Pre-bound per-packet reschedule callback; see CbrFlow::EmitThunk.
  struct EmitThunk {
    OnOffFlow* flow;
    void operator()() const { flow->emit(); }
  };

  sim::Simulation& simulation_;
  net::Network& network_;
  Config config_;
  sim::Rng rng_;
  EmitThunk emit_thunk_;
  double period_s_{0.0};  ///< seconds per packet at the peak rate
  bool on_{false};
  sim::Time on_until_{};
  std::uint64_t sent_packets_{0};
};

}  // namespace tsim::traffic
