#include "traffic/layered_source.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace tsim::traffic {

LayeredSource::LayeredSource(sim::Simulation& simulation, net::Network& network, Config config)
    : simulation_{simulation},
      network_{network},
      config_{config},
      rng_{simulation.rng_stream("source/" + std::to_string(config.session))},
      next_seq_(static_cast<std::size_t>(config.layers.num_layers), 0),
      sent_packets_(static_cast<std::size_t>(config.layers.num_layers), 0) {
  pps_by_layer_.reserve(static_cast<std::size_t>(config_.layers.num_layers));
  for (int l = 1; l <= config_.layers.num_layers; ++l) {
    pps_by_layer_.push_back(config_.layers.packets_per_second(static_cast<net::LayerId>(l)));
  }
}

void LayeredSource::start() {
  for (int l = 1; l <= config_.layers.num_layers; ++l) {
    const auto layer = static_cast<net::LayerId>(l);
    // Random per-layer phase so layers (and sessions) do not emit in lockstep
    // — real encoders are not clock-synchronized across the Internet.
    const sim::Time stagger = sim::Time::seconds(rng_.uniform(
        0.0, config_.model == TrafficModel::kCbr ? 0.25 : 1.0));
    simulation_.at(config_.start + stagger, [this, layer]() {
      if (config_.model == TrafficModel::kCbr) {
        schedule_cbr_layer(layer);
      } else {
        schedule_vbr_interval(layer);
      }
    });
  }
}

void LayeredSource::emit(net::LayerId layer) {
  net::Packet packet;
  packet.uid = network_.next_packet_uid();
  packet.kind = net::PacketKind::kData;
  packet.size_bytes = config_.layers.packet_size_bytes;
  packet.src = config_.node;
  packet.multicast = true;
  packet.group = net::GroupAddr{config_.session, layer};
  packet.seq = next_seq_[layer - 1]++;
  ++sent_packets_[layer - 1];
  sent_bytes_total_ += packet.size_bytes;
  network_.send_multicast(packet);
}

void LayeredSource::schedule_cbr_layer(net::LayerId layer) {
  if (simulation_.now() >= config_.stop) return;
  emit(layer);
  const double pps = pps_by_layer_[layer - 1];
  // +/-10% spacing jitter (mean-preserving): without it, a layer whose packet
  // period exactly matches a link's service time phase-locks with the
  // transmitter and captures the whole drop-tail queue — an artifact real,
  // unsynchronized senders do not exhibit.
  const double spacing = (1.0 / pps) * rng_.uniform(0.9, 1.1);
  simulation_.after(sim::Time::seconds(spacing),
                    [this, layer]() { schedule_cbr_layer(layer); });
}

void LayeredSource::schedule_vbr_interval(net::LayerId layer) {
  if (simulation_.now() >= config_.stop) return;

  const double avg = pps_by_layer_[layer - 1];  // A
  const double p = std::max(1.0, config_.peak_to_mean);         // P
  // n = 1 w.p. 1-1/P, n = P*A + 1 - P w.p. 1/P, so E[n] = A.
  long n = 1;
  if (rng_.bernoulli(1.0 / p)) {
    n = std::lround(p * avg + 1.0 - p);
    n = std::max(n, 1L);
  }

  // The n packets of this one-second interval are spread evenly across it;
  // burstiness lives at the seconds scale, as in the source model the paper
  // cites.
  const double spacing = 1.0 / static_cast<double>(n);
  for (long i = 0; i < n; ++i) {
    simulation_.after(sim::Time::seconds(spacing * static_cast<double>(i)),
                      [this, layer]() {
                        if (simulation_.now() < config_.stop) emit(layer);
                      });
  }
  simulation_.after(sim::Time::seconds(1),
                    [this, layer]() { schedule_vbr_interval(layer); });
}

}  // namespace tsim::traffic
