#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "traffic/layered_source.hpp"

namespace tsim::traffic {

/// Packet-train source for queue-transient studies: the middle point between
/// the per-packet LayeredSource and the event-free FluidSource. Each scheduler
/// event emits a back-to-back train of `train_packets` data packets, so the
/// event load drops by ~K while queues still see real packet arrivals — in
/// K-deep bursts, which is exactly what makes drop-tail transients visible.
///
/// CBR: trains of K evenly spaced events (spacing K/pps, same +/-10% jitter
/// as LayeredSource). VBR: the paper's per-second n draw, emitted as
/// ceil(n/K) trains spread across the interval. Sequence numbers stay dense
/// per layer, so receiver gap accounting works unchanged.
class BurstSource {
 public:
  struct Config {
    LayeredSource::Config source{};
    int train_packets{4};  ///< K: packets per scheduler event
  };

  BurstSource(sim::Simulation& simulation, net::Network& network, Config config);

  /// Begins transmission at config.source.start.
  void start();

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint32_t next_seq(net::LayerId layer) const {
    return next_seq_[layer - 1];
  }
  [[nodiscard]] std::uint64_t sent_packets(net::LayerId layer) const {
    return sent_packets_[layer - 1];
  }
  [[nodiscard]] std::uint64_t sent_bytes_total() const { return sent_bytes_total_; }

 private:
  void schedule_cbr_layer(net::LayerId layer);
  void schedule_vbr_interval(net::LayerId layer);
  void emit_train(net::LayerId layer, long packets);

  sim::Simulation& simulation_;
  net::Network& network_;
  Config config_;
  sim::Rng rng_;
  std::vector<std::uint32_t> next_seq_;
  std::vector<std::uint64_t> sent_packets_;
  std::vector<double> pps_by_layer_;
  std::uint64_t sent_bytes_total_{0};
};

}  // namespace tsim::traffic
