#include "traffic/layer_spec.hpp"

#include <cmath>

namespace tsim::traffic {

units::BitsPerSec LayerSpec::layer_rate(net::LayerId layer) const {
  return base_rate * std::pow(layer_growth, static_cast<int>(layer) - 1);
}

units::BitsPerSec LayerSpec::cumulative_rate(int k) const {
  units::BitsPerSec total = units::BitsPerSec::zero();
  for (int l = 1; l <= k && l <= num_layers; ++l) {
    total += layer_rate(static_cast<net::LayerId>(l));
  }
  return total;
}

int LayerSpec::max_layers_for_bandwidth(units::BitsPerSec bandwidth) const {
  int k = 0;
  units::BitsPerSec total = units::BitsPerSec::zero();
  while (k < num_layers) {
    total += layer_rate(static_cast<net::LayerId>(k + 1));
    if (total > bandwidth) break;
    ++k;
  }
  return k;
}

double LayerSpec::packets_per_second(net::LayerId layer) const {
  return layer_rate(layer).bps() / (8.0 * static_cast<double>(packet_size_bytes));
}

}  // namespace tsim::traffic
