#include "traffic/layer_spec.hpp"

#include <cmath>

namespace tsim::traffic {

double LayerSpec::layer_rate_bps(net::LayerId layer) const {
  return base_rate_bps * std::pow(layer_growth, static_cast<int>(layer) - 1);
}

double LayerSpec::cumulative_rate_bps(int k) const {
  double total = 0.0;
  for (int l = 1; l <= k && l <= num_layers; ++l) {
    total += layer_rate_bps(static_cast<net::LayerId>(l));
  }
  return total;
}

int LayerSpec::max_layers_for_bandwidth(double bandwidth_bps) const {
  int k = 0;
  double total = 0.0;
  while (k < num_layers) {
    total += layer_rate_bps(static_cast<net::LayerId>(k + 1));
    if (total > bandwidth_bps) break;
    ++k;
  }
  return k;
}

double LayerSpec::packets_per_second(net::LayerId layer) const {
  return layer_rate_bps(layer) / (8.0 * static_cast<double>(packet_size_bytes));
}

}  // namespace tsim::traffic
