#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/units.hpp"
#include "fault/fault_plan.hpp"
#include "sim/time.hpp"

namespace tsim::scenarios {

/// Parsed form of the line-based topology description language used by the
/// `toposense_sim` CLI. Grammar (one directive per line, `#` comments):
///
///   node <name>
///   link <a> <b> <bandwidth> <latency> [queue <packets>] [red]
///   source <session> <node>
///   receiver <node> <session> [start <seconds>] [stop <seconds>]
///   controller <node>
///   domain <name> <border-node> [<node>...]
///   traffic packet
///   traffic fluid [step <seconds>]
///   traffic burst [train <packets>]
///   fault link <a> <b> down <t> [up <t>]
///   fault link <a> <b> lossy <p> <t0> <t1>
///   fault link <a> <b> flap <t0> <t1> period <seconds> [duty <d>]
///   fault controller down <t0> up <t1>
///   fault suggestions drop <p> <t0> <t1>
///
/// Bandwidth accepts `bps`, `kbps`, `Mbps` suffixes (case-insensitive);
/// latency accepts `ms` and `s`. Fault times are plain seconds. Links are
/// duplex; link faults hit both directions.
///
/// `domain` declares a routing domain: the named nodes get their own
/// TopoSense controller, stationed at the border node (the first listed
/// node — the point where the parent domain's tree enters). Nodes in no
/// `domain` line form the implicit root domain around the `controller` node,
/// which therefore must not itself be claimed by a `domain` line. Each node
/// belongs to at most one domain.
/// Traffic engine requested by a `traffic` directive. kDefault means the
/// file said nothing and the ScenarioConfig's selection stands.
enum class TrafficEngineSpec {
  kDefault,
  kPacket,
  kFluid,
  kBurst,
};

struct TopologyDescription {
  struct LinkSpec {
    std::string a;
    std::string b;
    units::BitsPerSec bandwidth{};
    sim::Time latency{};
    std::optional<std::size_t> queue_packets;  ///< default: BDP sizing
    bool red{false};
    int line{0};  ///< 1-based source line, for semantic diagnostics
  };
  struct SourceSpec {
    std::uint16_t session{0};
    std::string node;
    int line{0};
  };
  struct ReceiverSpec {
    std::string node;
    std::uint16_t session{0};
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::max()};
    int line{0};
  };
  struct DomainSpec {
    std::string name;
    std::vector<std::string> nodes;  ///< first entry is the border/controller node
    int line{0};
  };

  std::vector<std::string> nodes;
  std::vector<LinkSpec> links;
  std::vector<SourceSpec> sources;
  std::vector<ReceiverSpec> receivers;
  std::vector<DomainSpec> domains;
  std::string controller_node;
  int controller_line{0};
  /// Traffic engine selection (`traffic` directive; kDefault when absent).
  TrafficEngineSpec engine{TrafficEngineSpec::kDefault};
  std::optional<double> fluid_step_s;  ///< `traffic fluid step <seconds>`
  std::optional<int> burst_train;     ///< `traffic burst train <packets>`
  int traffic_line{0};
  /// Schedule parsed from `fault` directives (empty when the file has none).
  fault::FaultPlan faults;
  /// Source line of each entry in `faults.events()`, same order (a directive
  /// like `fault link a b down .. up ..` contributes two events, one line).
  std::vector<int> fault_lines;
};

/// Parse result: either a description or a one-line error naming the line.
struct ParseResult {
  std::optional<TopologyDescription> description;
  std::string error;
  [[nodiscard]] bool ok() const { return description.has_value(); }
};

/// Parses the topology language. Validates that every referenced node is
/// declared, every session has a source, and a controller is set.
[[nodiscard]] ParseResult parse_topology(std::string_view text);

/// Reads and parses a topology file from disk. Throws std::runtime_error on
/// unreadable files or parse errors (message includes the parser's
/// line-numbered diagnostic).
[[nodiscard]] TopologyDescription parse_topology_file(const std::string& path);

/// Parses "256kbps" / "1.5Mbps" / "8000bps" (case-insensitive suffix).
/// Returns a rate <= 0 on malformed input.
[[nodiscard]] units::BitsPerSec parse_bandwidth(std::string_view token);

/// Parses "200ms" / "1.5s". Returns negative time on malformed input.
[[nodiscard]] sim::Time parse_latency(std::string_view token);

}  // namespace tsim::scenarios
