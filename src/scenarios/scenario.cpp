#include "scenarios/scenario.hpp"

#include "core/optimal_allocator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace tsim::scenarios {

using sim::Time;

namespace {

/// Queue provisioning: at least the configured floor, grown to the link's
/// bandwidth-delay product when queues.bdp_sizing is on.
std::size_t queue_limit_for(const ScenarioConfig& config, double bandwidth_bps) {
  if (!config.queues.bdp_sizing) return config.queues.limit_packets;
  const double bdp_bytes = bandwidth_bps * config.link_latency.as_seconds() / 8.0;
  const auto bdp_packets =
      static_cast<std::size_t>(bdp_bytes / config.params.layers.packet_size_bytes);
  return std::max(config.queues.limit_packets, bdp_packets);
}

}  // namespace

Scenario::Scenario(const ScenarioConfig& config)
    : config_{config},
      simulation_{std::make_unique<sim::Simulation>(config.seed)},
      network_{std::make_unique<net::Network>(*simulation_)},
      mcast_{std::make_unique<mcast::MulticastRouter>(*simulation_, *network_, config.mcast)},
      demuxes_{std::make_unique<transport::DemuxRegistry>(*network_)} {}

void Scenario::add_session_source(const traffic::LayeredSource::Config& cfg) {
  switch (config_.traffic.engine) {
    case TrafficEngine::kPacket:
      sources_.push_back(std::make_unique<traffic::LayeredSource>(*simulation_, *network_, cfg));
      return;
    case TrafficEngine::kFluid:
      fluid_sources_.push_back(std::make_unique<traffic::FluidSource>(*simulation_, cfg));
      return;
    case TrafficEngine::kBurst: {
      traffic::BurstSource::Config bcfg;
      bcfg.source = cfg;
      bcfg.train_packets = config_.traffic.burst_train;
      burst_sources_.push_back(
          std::make_unique<traffic::BurstSource>(*simulation_, *network_, bcfg));
      return;
    }
  }
  throw std::logic_error("unknown traffic engine");
}

void Scenario::add_receiver(net::NodeId node, net::SessionId session, int optimal,
                            std::string name, sim::Time start, sim::Time stop) {
  // The endpoint is constructed in finalize(): its report destination is the
  // controller of whichever domain ends up owning `node`, and the partition
  // is only resolved once the topology is complete.
  pending_receivers_.push_back(PendingReceiver{node, session, start, stop});
  results_.push_back(ReceiverResult{node, session, std::move(name), optimal, 0,
                                    metrics::SubscriptionTimeline{Time::zero(), 0}, 0.0});
}

std::vector<control::Domain> Scenario::resolve_domains() const {
  if (!declared_domains_.empty()) return declared_domains_;

  control::Domain root;
  root.name = "core";
  root.controller_node = controller_node_;
  root.parent = -1;

  const int want = config_.domains.auto_partition;
  if (want <= 1) {
    for (net::NodeId n = 0; n < network_->node_count(); ++n) root.nodes.push_back(n);
    return {std::move(root)};
  }

  // Automatic partitioner: group every node by the first hop of its route
  // from the controller. The want-1 largest depth-1 subtrees become child
  // domains rooted at their gateway (the border the parent's tree enters
  // through); everything else — including unreachable nodes — stays in the
  // root domain.
  root.nodes.push_back(controller_node_);
  std::map<net::NodeId, std::vector<net::NodeId>> by_gateway;
  for (net::NodeId n = 0; n < network_->node_count(); ++n) {
    if (n == controller_node_) continue;
    const auto path = network_->routes().path(controller_node_, n);
    if (path.size() < 2) {
      root.nodes.push_back(n);
      continue;
    }
    by_gateway[path[1]].push_back(n);
  }
  std::vector<std::pair<net::NodeId, std::size_t>> sized;
  sized.reserve(by_gateway.size());
  for (const auto& [gateway, members] : by_gateway) sized.emplace_back(gateway, members.size());
  std::sort(sized.begin(), sized.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  const std::size_t children =
      std::min<std::size_t>(static_cast<std::size_t>(want - 1), sized.size());

  std::vector<control::Domain> domains;
  domains.push_back(std::move(root));
  for (std::size_t c = 0; c < children; ++c) {
    control::Domain child;
    child.name = "auto" + std::to_string(c);
    child.controller_node = sized[c].first;
    child.nodes = by_gateway.at(sized[c].first);
    child.parent = 0;
    domains.push_back(std::move(child));
  }
  for (std::size_t c = children; c < sized.size(); ++c) {
    const auto& members = by_gateway.at(sized[c].first);
    domains.front().nodes.insert(domains.front().nodes.end(), members.begin(), members.end());
  }
  return domains;
}

std::unique_ptr<control::AdaptationController> Scenario::make_scheme(
    std::size_t index, const control::Domain& domain,
    const std::vector<control::Domain>& all) {
  switch (config_.control.kind) {
    case ControllerKind::kTopoSense: {
      control::TopoSenseDomain::Config tcfg;
      tcfg.agent.node = domain.controller_node;
      tcfg.agent.params = config_.params;
      tcfg.agent.info_staleness = config_.control.info_staleness;
      // Offset the controller's period from the receivers' report period so a
      // run always has fresh reports to read.
      tcfg.agent.start = Time::milliseconds(2500);
      tcfg.watchdog = config_.control.receiver_agent;
      // Wire the watchdog to the controller cadence it actually faces, unless
      // the experiment pinned an explicit expectation.
      if (tcfg.watchdog.expected_interval == Time::zero()) {
        tcfg.watchdog.expected_interval = config_.params.interval;
      }

      std::unique_ptr<topo::TopologyProvider> discovery;
      if (config_.control.discovery == DiscoveryMode::kOracle) {
        topo::DiscoveryService::Config dcfg;
        dcfg.sample_period = Time::seconds(1);
        dcfg.staleness = config_.control.info_staleness;
        if (all.size() > 1) {
          // Scope the oracle to this domain plus its children's borders (the
          // pseudo-receivers the parent prescribes for). Single-domain runs
          // stay unscoped — the pre-domain configuration, byte for byte.
          for (const net::NodeId n : domain.nodes) dcfg.domain_nodes.insert(n);
          for (const auto& child : all) {
            if (child.parent == static_cast<int>(index)) {
              dcfg.domain_nodes.insert(child.controller_node);
            }
          }
          dcfg.domain_root = domain.controller_node;
        }
        discovery = std::make_unique<topo::DiscoveryService>(*simulation_, *mcast_, dcfg);
      } else {
        topo::MtraceDiscovery::Config dcfg;
        dcfg.tool_node = domain.controller_node;
        dcfg.query_period = config_.params.interval;
        auto mtrace = std::make_unique<topo::MtraceDiscovery>(*simulation_, *network_, *mcast_,
                                                              *demuxes_, dcfg);
        // mtrace scoping is per-receiver registration: this domain's own
        // receivers plus each child's border for the sessions the child has
        // receivers in.
        const std::unordered_set<net::NodeId> members{domain.nodes.begin(), domain.nodes.end()};
        for (const ReceiverResult& r : results_) {
          if (members.count(r.node) != 0) mtrace->register_receiver(r.session, r.node);
        }
        for (const auto& child : all) {
          if (child.parent != static_cast<int>(index)) continue;
          const std::unordered_set<net::NodeId> child_members{child.nodes.begin(),
                                                              child.nodes.end()};
          std::set<net::SessionId> child_sessions;
          for (const ReceiverResult& r : results_) {
            if (child_members.count(r.node) != 0) child_sessions.insert(r.session);
          }
          for (const net::SessionId session : child_sessions) {
            mtrace->register_receiver(session, child.controller_node);
          }
        }
        discovery = std::move(mtrace);
      }
      return std::make_unique<control::TopoSenseDomain>(*simulation_, *network_, *demuxes_,
                                                        std::move(discovery), tcfg);
    }
    case ControllerKind::kReceiverDriven: {
      baseline::ReceiverDrivenController::Config rd = config_.control.receiver_driven;
      rd.period = config_.params.interval;
      return std::make_unique<baseline::ReceiverDrivenController>(*simulation_, rd);
    }
    case ControllerKind::kNone:
      return std::make_unique<control::NullController>();
  }
  throw std::logic_error("unknown controller kind");
}

void Scenario::finalize() {
  network_->compute_routes();
  if (config_.queues.red) {
    for (net::LinkId id = 0; id < network_->link_count(); ++id) {
      network_->link(id).enable_red({});
    }
  }

  const std::vector<control::Domain> domains = resolve_domains();
  const bool toposense = config_.control.kind == ControllerKind::kTopoSense;

  // Each receiver reports to the controller of the domain owning its node.
  std::unordered_map<net::NodeId, net::NodeId> controller_of;
  for (const control::Domain& d : domains) {
    for (const net::NodeId n : d.nodes) controller_of.emplace(n, d.controller_node);
  }

  for (std::size_t i = 0; i < pending_receivers_.size(); ++i) {
    const PendingReceiver& pending = pending_receivers_[i];
    transport::ReceiverEndpoint::Config cfg;
    cfg.node = pending.node;
    cfg.session = pending.session;
    cfg.layers = config_.params.layers;
    cfg.controller = toposense ? controller_of.at(pending.node) : net::kInvalidNode;
    cfg.report_period = config_.control.report_period == Time::zero()
                            ? config_.params.interval
                            : config_.control.report_period;
    cfg.initial_subscription = config_.control.initial_subscription;
    cfg.start = pending.start;
    cfg.stop = pending.stop;
    endpoints_.push_back(std::make_unique<transport::ReceiverEndpoint>(
        *simulation_, *network_, *mcast_, demuxes_->at(pending.node), cfg));
    endpoints_.back()->on_subscription_change([this, i](Time when, int /*old*/, int now_level) {
      results_[i].timeline.record(when, now_level);
    });
  }

  control::DomainManager::Config mcfg;
  mcfg.domains = domains;
  mcfg.summary_period = config_.domains.summary_period;
  mcfg.summary_start = config_.domains.summary_start;
  domain_manager_ = std::make_unique<control::DomainManager>(
      *simulation_, *network_, *demuxes_, std::move(mcfg),
      [this, &domains](std::size_t index, const control::Domain& domain) {
        return make_scheme(index, domain, domains);
      });
  for (const auto& endpoint : endpoints_) {
    control::ReceiverAgent* watchdog = domain_manager_->register_receiver(*endpoint);
    if (watchdog != nullptr) receiver_agents_.push_back(watchdog);
  }
  domain_manager_->start();

  if (config_.audit.mode != check::AuditMode::kOff) {
    auditor_ = std::make_unique<check::InvariantAuditor>(config_.audit);
    auditor_->attach_simulation(*simulation_);
    auditor_->attach_network(*network_);
    auditor_->attach_multicast(*mcast_);
    for (std::size_t d = 0; d < domain_manager_->domain_count(); ++d) {
      control::ControllerAgent* agent = domain_manager_->agent(d);
      if (agent == nullptr) continue;
      agent->set_audit_hook(
          [this, agent](const core::AlgorithmInput& input, const core::AlgorithmOutput& output) {
            auditor_->on_algorithm_output(input, output, agent->algorithm());
          });
    }
    if (domain_manager_->domain_count() > 1) {
      auditor_->register_check("control.domains", [this]() {
        domain_manager_->check_consistency([this](const std::string& detail) {
          check::Violation violation;
          violation.invariant = "control.domains";
          violation.when = simulation_->now();
          violation.detail = detail;
          auditor_->report(violation);
        });
      });
    }
    // receiver_agents_ is built one per receiver, in add_receiver order, so
    // it is index-parallel with results_.
    for (std::size_t i = 0; i < receiver_agents_.size() && i < results_.size(); ++i) {
      control::ReceiverAgent& agent = *receiver_agents_[i];
      const net::NodeId node = results_[i].node;
      agent.set_unilateral_hook(
          [this, node, &agent](const control::ReceiverAgent::UnilateralAction& action) {
            check::InvariantAuditor::WatchdogObservation obs;
            obs.node = node;
            obs.add = action.add;
            obs.loss = action.loss;
            obs.starved = action.starved;
            obs.add_loss_threshold = agent.config().unilateral_add_loss;
            obs.drop_loss_threshold = agent.config().unilateral_drop_loss;
            auditor_->on_unilateral_action(obs);
          });
    }
    auditor_->start();
  }

  if (config_.traffic.engine == TrafficEngine::kFluid) {
    traffic::FluidEngine::Config ecfg;
    ecfg.step = config_.traffic.fluid_step;
    ecfg.packet_size_bytes =
        static_cast<std::uint32_t>(config_.params.layers.packet_size_bytes);
    fluid_engine_ =
        std::make_unique<traffic::FluidEngine>(*simulation_, *network_, *mcast_, ecfg);
    for (const auto& source : fluid_sources_) fluid_engine_->add_source(source.get());
    for (const auto& endpoint : endpoints_) {
      fluid_engine_->register_sink(endpoint->config().node, endpoint.get());
    }
  }

  for (const auto& source : sources_) source->start();
  for (const auto& source : burst_sources_) source->start();
  if (fluid_engine_) {
    // Cross-traffic competes for fluid capacity as a constant-rate background
    // flow instead of a packet train (the packet flow objects stay unstarted).
    for (const auto& flow : cross_flows_) {
      const traffic::CbrFlow::Config& c = flow->config();
      fluid_engine_->add_background_flow(c.src, c.dst, units::BitsPerSec{c.rate_bps}, c.start,
                                         c.stop);
    }
    fluid_engine_->start();
  } else {
    for (const auto& flow : cross_flows_) flow->start();
  }
  for (const auto& endpoint : endpoints_) endpoint->start();
  domain_manager_->start_receiver_policies();
  started_ = true;
}

control::ControllerAgent* Scenario::controller() {
  return domain_manager_ ? domain_manager_->agent(0) : nullptr;
}

topo::TopologyProvider* Scenario::discovery() {
  if (!domain_manager_) return nullptr;
  auto* domain = dynamic_cast<control::TopoSenseDomain*>(&domain_manager_->scheme(0));
  return domain != nullptr ? &domain->discovery() : nullptr;
}

void Scenario::run_until(Time until) {
  simulation_->run_until(until);
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    results_[i].final_subscription = endpoints_[i]->subscription();
    results_[i].loss_overall = endpoints_[i]->lifetime_loss_rate().value();
  }
}

void Scenario::run() { run_until(config_.duration); }

fault::FaultInjector& Scenario::install_faults(const fault::FaultPlan& plan) {
  fault::FaultInjector::Hooks hooks;
  if (controller() != nullptr) {
    // A controller fault takes down the whole control plane (every domain);
    // per-domain outages go through domains()->scheme(i).set_enabled.
    hooks.set_controller_enabled = [this](bool enabled) {
      domain_manager_->set_enabled(enabled);
    };
  }
  fault_injectors_.push_back(
      std::make_unique<fault::FaultInjector>(*simulation_, *network_, plan, hooks));
  fault_injectors_.back()->start();
  return *fault_injectors_.back();
}

void Scenario::add_cross_traffic(const CrossTrafficSpec& spec) {
  const net::NodeId src = network_->find_node(spec.src);
  const net::NodeId dst = network_->find_node(spec.dst);
  if (src == net::kInvalidNode || dst == net::kInvalidNode) {
    throw std::invalid_argument("cross-traffic endpoint '" +
                                (src == net::kInvalidNode ? spec.src : spec.dst) +
                                "' is not a node of this topology");
  }
  traffic::CbrFlow::Config xcfg;
  xcfg.src = src;
  xcfg.dst = dst;
  xcfg.rate_bps = spec.rate_bps;
  xcfg.start = spec.start;
  xcfg.stop = spec.stop;
  cross_flows_.push_back(std::make_unique<traffic::CbrFlow>(*simulation_, *network_, xcfg));
  if (!started_) return;
  if (fluid_engine_) {
    fluid_engine_->add_background_flow(src, dst, units::BitsPerSec{spec.rate_bps}, spec.start,
                                       spec.stop);
  } else {
    cross_flows_.back()->start();
  }
}

std::unique_ptr<Scenario> Scenario::topology_a(const ScenarioConfig& config,
                                               const TopologyAOptions& options) {
  return build_topology_a(config, options);
}

std::unique_ptr<Scenario> Scenario::topology_b(const ScenarioConfig& config,
                                               const TopologyBOptions& options) {
  return build_topology_b(config, options);
}

std::unique_ptr<Scenario> Scenario::tiered(const ScenarioConfig& config,
                                           const TieredOptions& options) {
  return build_tiered(config, options);
}

std::unique_ptr<Scenario> Scenario::build_topology_a(const ScenarioConfig& config,
                                                     const TopologyAOptions& options) {
  std::unique_ptr<Scenario> s{new Scenario{config}};
  net::Network& netw = *s->network_;

  const net::NodeId source = netw.add_node("source");
  const net::NodeId r0 = netw.add_node("r0");
  const net::NodeId r1 = netw.add_node("r1");
  const net::NodeId r2 = netw.add_node("r2");
  netw.add_duplex_link(source, r0, units::BitsPerSec{options.backbone_bps}, config.link_latency,
                       queue_limit_for(config, options.backbone_bps));
  netw.add_duplex_link(r0, r1, units::BitsPerSec{options.bottleneck1_bps}, config.link_latency,
                       queue_limit_for(config, options.bottleneck1_bps));
  netw.add_duplex_link(r0, r2, units::BitsPerSec{options.bottleneck2_bps}, config.link_latency,
                       queue_limit_for(config, options.bottleneck2_bps));

  s->controller_node_ = source;
  s->mcast_->set_session_source(0, source);

  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = source;
  scfg.layers = config.params.layers;
  scfg.model = config.traffic.model;
  scfg.peak_to_mean = config.traffic.peak_to_mean;
  s->add_session_source(scfg);

  const int optimal1 =
      config.params.layers.max_layers_for_bandwidth(units::BitsPerSec{options.bottleneck1_bps});
  const int optimal2 =
      config.params.layers.max_layers_for_bandwidth(units::BitsPerSec{options.bottleneck2_bps});

  const int leavers = static_cast<int>(
      std::ceil(options.leave_fraction * options.receivers_per_set));
  const auto window_for = [&](int i) {
    const Time start = options.join_stagger * i;
    const bool leaves = options.leave_at > Time::zero() &&
                        i >= options.receivers_per_set - leavers;
    return std::pair{start, leaves ? options.leave_at : Time::max()};
  };

  for (int i = 0; i < options.receivers_per_set; ++i) {
    const net::NodeId rcv = netw.add_node("set1_recv" + std::to_string(i));
    netw.add_duplex_link(r1, rcv, units::BitsPerSec{options.access_bps}, config.link_latency,
                         queue_limit_for(config, options.access_bps));
    const auto [start, stop] = window_for(i);
    s->add_receiver(rcv, 0, optimal1, "set1/" + std::to_string(i), start, stop);
  }
  for (int i = 0; i < options.receivers_per_set; ++i) {
    const net::NodeId rcv = netw.add_node("set2_recv" + std::to_string(i));
    netw.add_duplex_link(r2, rcv, units::BitsPerSec{options.access_bps}, config.link_latency,
                         queue_limit_for(config, options.access_bps));
    const auto [start, stop] = window_for(i);
    s->add_receiver(rcv, 0, optimal2, "set2/" + std::to_string(i), start, stop);
  }

  if (options.cross_traffic_bps > 0.0) {
    traffic::CbrFlow::Config xcfg;
    xcfg.src = r0;
    xcfg.dst = r1;
    xcfg.rate_bps = options.cross_traffic_bps;
    xcfg.start = options.cross_start;
    xcfg.stop = options.cross_stop;
    s->cross_flows_.push_back(
        std::make_unique<traffic::CbrFlow>(*s->simulation_, netw, xcfg));
  }

  s->finalize();
  return s;
}

std::unique_ptr<Scenario> Scenario::build_topology_b(const ScenarioConfig& config,
                                                     const TopologyBOptions& options) {
  std::unique_ptr<Scenario> s{new Scenario{config}};
  net::Network& netw = *s->network_;

  const net::NodeId ra = netw.add_node("ra");
  const net::NodeId rb = netw.add_node("rb");
  const double shared_bps = options.per_session_bps * options.sessions;
  netw.add_duplex_link(ra, rb, units::BitsPerSec{shared_bps}, config.link_latency,
                       queue_limit_for(config, shared_bps));

  const int optimal = config.params.layers.max_layers_for_bandwidth(units::BitsPerSec{options.per_session_bps});

  std::vector<net::NodeId> source_nodes;
  for (int k = 0; k < options.sessions; ++k) {
    const net::NodeId src = netw.add_node("source" + std::to_string(k));
    netw.add_duplex_link(src, ra, units::BitsPerSec{options.access_bps}, config.link_latency,
                         queue_limit_for(config, options.access_bps));
    source_nodes.push_back(src);
    s->mcast_->set_session_source(static_cast<net::SessionId>(k), src);

    traffic::LayeredSource::Config scfg;
    scfg.session = static_cast<net::SessionId>(k);
    scfg.node = src;
    scfg.layers = config.params.layers;
    scfg.model = config.traffic.model;
    scfg.peak_to_mean = config.traffic.peak_to_mean;
    s->add_session_source(scfg);
  }
  // "The controller agent was stationed at one of the source nodes."
  s->controller_node_ = source_nodes.front();

  for (int k = 0; k < options.sessions; ++k) {
    const net::NodeId rcv = netw.add_node("recv" + std::to_string(k));
    netw.add_duplex_link(rb, rcv, units::BitsPerSec{options.access_bps}, config.link_latency,
                         queue_limit_for(config, options.access_bps));
    s->add_receiver(rcv, static_cast<net::SessionId>(k), optimal,
                    "session" + std::to_string(k), options.session_stagger * k);
  }

  if (options.cross_traffic_bps > 0.0) {
    traffic::CbrFlow::Config xcfg;
    xcfg.src = ra;
    xcfg.dst = rb;
    xcfg.rate_bps = options.cross_traffic_bps;
    xcfg.start = options.cross_start;
    xcfg.stop = options.cross_stop;
    s->cross_flows_.push_back(
        std::make_unique<traffic::CbrFlow>(*s->simulation_, netw, xcfg));
  }

  s->finalize();
  return s;
}


std::unique_ptr<Scenario> Scenario::build_tiered(const ScenarioConfig& config,
                                                 const TieredOptions& options) {
  std::unique_ptr<Scenario> s{new Scenario{config}};
  net::Network& netw = *s->network_;
  sim::Rng rng = s->simulation_->rng_stream("tiered-topology");

  // Physical tree, remembering each link's true capacity for the offline
  // optimal computation (TopoSense never sees these numbers).
  std::unordered_map<core::LinkKey, units::BitsPerSec> capacities;
  const net::NodeId source = netw.add_node("source");
  const net::NodeId national = netw.add_node("national");
  netw.add_duplex_link(source, national, units::BitsPerSec{options.backbone_bps}, config.link_latency,
                       queue_limit_for(config, options.backbone_bps));
  capacities[core::LinkKey{source, national}] = units::BitsPerSec{options.backbone_bps};

  struct PendingTierReceiver {
    net::NodeId node;
    net::NodeId parent;
  };
  std::vector<PendingTierReceiver> receivers;
  std::vector<core::SessionNodeInput> tree_nodes;
  {
    core::SessionNodeInput n;
    n.node = source;
    n.parent = net::kInvalidNode;
    tree_nodes.push_back(n);
    n.node = national;
    n.parent = source;
    tree_nodes.push_back(n);
  }

  auto add_tier_node = [&](const std::string& name, net::NodeId parent, double bps) {
    const net::NodeId id = netw.add_node(name);
    netw.add_duplex_link(parent, id, units::BitsPerSec{bps}, config.link_latency,
                         queue_limit_for(config, bps));
    capacities[core::LinkKey{parent, id}] = units::BitsPerSec{bps};
    core::SessionNodeInput n;
    n.node = id;
    n.parent = parent;
    tree_nodes.push_back(n);
    return id;
  };

  for (int r = 0; r < options.regionals; ++r) {
    const net::NodeId regional =
        add_tier_node("regional" + std::to_string(r), national,
                      rng.uniform(options.regional_min_bps, options.regional_max_bps));
    for (int l = 0; l < options.locals_per_regional; ++l) {
      const net::NodeId local = add_tier_node(
          "local" + std::to_string(r) + "_" + std::to_string(l), regional,
          rng.uniform(options.local_min_bps, options.local_max_bps));
      for (int i = 0; i < options.receivers_per_local; ++i) {
        const net::NodeId rcv = add_tier_node(
            "recv" + std::to_string(r) + "_" + std::to_string(l) + "_" + std::to_string(i),
            local, rng.uniform(options.access_min_bps, options.access_max_bps));
        tree_nodes.back().is_receiver = true;
        receivers.push_back(PendingTierReceiver{rcv, local});
      }
    }
  }

  s->controller_node_ = source;
  s->mcast_->set_session_source(0, source);

  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = source;
  scfg.layers = config.params.layers;
  scfg.model = config.traffic.model;
  scfg.peak_to_mean = config.traffic.peak_to_mean;
  s->add_session_source(scfg);

  // Offline reference: greedy lexicographic max-min on the true capacities.
  core::SessionInput session;
  session.session = 0;
  session.source = source;
  session.nodes = tree_nodes;
  const core::OptimalAllocator allocator{config.params.layers, capacities};
  const auto optima = allocator.allocate({session});
  auto optimum_of = [&](net::NodeId node) {
    for (const auto& p : optima) {
      if (p.receiver == node) return p.subscription;
    }
    return 0;
  };

  for (const PendingTierReceiver& r : receivers) {
    s->add_receiver(r.node, 0, optimum_of(r.node), netw.node(r.node).name);
  }

  s->finalize();
  return s;
}


std::unique_ptr<Scenario> Scenario::build_star(const ScenarioConfig& config,
                                               const StarOptions& options) {
  std::unique_ptr<Scenario> s{new Scenario{config}};
  net::Network& netw = *s->network_;

  const net::NodeId source = netw.add_node("source");
  const net::NodeId hub = netw.add_node("hub");
  netw.add_duplex_link(source, hub, units::BitsPerSec{options.backbone_bps}, config.link_latency,
                       queue_limit_for(config, options.backbone_bps));

  s->controller_node_ = source;
  s->mcast_->set_session_source(0, source);
  // N receivers all report to the controller: answer their unicast routes
  // from one destination-rooted row (see StarOptions).
  netw.add_routing_sink(source);

  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = source;
  scfg.layers = config.params.layers;
  scfg.model = config.traffic.model;
  scfg.peak_to_mean = config.traffic.peak_to_mean;
  s->add_session_source(scfg);

  const int optimal =
      config.params.layers.max_layers_for_bandwidth(units::BitsPerSec{options.access_bps});
  for (int i = 0; i < options.receivers; ++i) {
    const net::NodeId rcv = netw.add_node("recv" + std::to_string(i));
    netw.add_duplex_link(hub, rcv, units::BitsPerSec{options.access_bps}, config.link_latency,
                         queue_limit_for(config, options.access_bps));
    s->add_receiver(rcv, 0, optimal, "star/" + std::to_string(i));
  }

  s->finalize();
  return s;
}

std::unique_ptr<Scenario> Scenario::from_description(const ScenarioConfig& config,
                                                     const TopologyDescription& description) {
  std::unique_ptr<Scenario> s{new Scenario{config}};
  net::Network& netw = *s->network_;

  // A `traffic` directive overrides the config's engine selection.
  switch (description.engine) {
    case TrafficEngineSpec::kDefault:
      break;
    case TrafficEngineSpec::kPacket:
      s->config_.traffic.engine = TrafficEngine::kPacket;
      break;
    case TrafficEngineSpec::kFluid:
      s->config_.traffic.engine = TrafficEngine::kFluid;
      break;
    case TrafficEngineSpec::kBurst:
      s->config_.traffic.engine = TrafficEngine::kBurst;
      break;
  }
  if (description.fluid_step_s) {
    s->config_.traffic.fluid_step = sim::Time::seconds(*description.fluid_step_s);
  }
  if (description.burst_train) s->config_.traffic.burst_train = *description.burst_train;

  std::unordered_map<std::string, net::NodeId> by_name;
  for (const std::string& name : description.nodes) {
    by_name[name] = netw.add_node(name);
  }

  std::unordered_map<core::LinkKey, units::BitsPerSec> capacities;
  for (const auto& link : description.links) {
    const net::NodeId a = by_name.at(link.a);
    const net::NodeId b = by_name.at(link.b);
    const std::size_t queue =
        link.queue_packets.value_or(queue_limit_for(config, link.bandwidth.bps()));
    const auto [ab, ba] = netw.add_duplex_link(a, b, link.bandwidth, link.latency, queue);
    if (link.red || config.queues.red) {
      netw.link(ab).enable_red({});
      netw.link(ba).enable_red({});
    }
    capacities[core::LinkKey{a, b}] = link.bandwidth;
    capacities[core::LinkKey{b, a}] = link.bandwidth;
  }
  netw.compute_routes();

  s->controller_node_ = by_name.at(description.controller_node);

  // Declared routing domains: each `domain` line is a child of the implicit
  // root domain around the controller node; the root owns every node no
  // domain claimed (iterated in declaration order — determinism).
  if (!description.domains.empty()) {
    std::unordered_set<net::NodeId> owned;
    std::vector<control::Domain> child_domains;
    for (const auto& spec : description.domains) {
      control::Domain child;
      child.name = spec.name;
      child.parent = 0;
      for (const std::string& name : spec.nodes) {
        const net::NodeId id = by_name.at(name);
        child.nodes.push_back(id);
        owned.insert(id);
      }
      child.controller_node = child.nodes.front();
      child_domains.push_back(std::move(child));
    }
    control::Domain root;
    root.name = "core";
    root.controller_node = s->controller_node_;
    root.parent = -1;
    for (const std::string& name : description.nodes) {
      const net::NodeId id = by_name.at(name);
      if (owned.count(id) == 0) root.nodes.push_back(id);
    }
    s->declared_domains_.push_back(std::move(root));
    for (auto& child : child_domains) s->declared_domains_.push_back(std::move(child));
  }

  for (const auto& src : description.sources) {
    s->mcast_->set_session_source(src.session, by_name.at(src.node));
    traffic::LayeredSource::Config scfg;
    scfg.session = src.session;
    scfg.node = by_name.at(src.node);
    scfg.layers = config.params.layers;
    scfg.model = config.traffic.model;
    scfg.peak_to_mean = config.traffic.peak_to_mean;
    s->add_session_source(scfg);
  }

  // Offline optima from the declared (true) capacities: build each session's
  // tree as the union of routed source->receiver paths.
  std::vector<core::SessionInput> session_inputs;
  for (const auto& src : description.sources) {
    core::SessionInput in;
    in.session = src.session;
    in.source = by_name.at(src.node);
    // Ordered map: iteration below fixes the allocator's node (and thus
    // tie-breaking) order, which must not depend on hash layout.
    std::map<net::NodeId, net::NodeId> parent_of;
    parent_of[in.source] = net::kInvalidNode;
    std::set<net::NodeId> receiver_nodes;
    for (const auto& rcv : description.receivers) {
      if (rcv.session != src.session) continue;
      const auto path = netw.routes().path(in.source, by_name.at(rcv.node));
      if (path.empty()) {
        throw std::invalid_argument("receiver '" + rcv.node + "' unreachable from source");
      }
      for (std::size_t i = 1; i < path.size(); ++i) parent_of.emplace(path[i], path[i - 1]);
      receiver_nodes.insert(by_name.at(rcv.node));
    }
    for (const auto& [node, parent] : parent_of) {
      core::SessionNodeInput n;
      n.node = node;
      n.parent = parent;
      n.is_receiver = receiver_nodes.count(node) != 0;
      in.nodes.push_back(n);
    }
    session_inputs.push_back(std::move(in));
  }
  const core::OptimalAllocator allocator{config.params.layers, capacities};
  const auto optima = allocator.allocate(session_inputs);
  auto optimum_of = [&](net::SessionId session, net::NodeId node) {
    for (const auto& p : optima) {
      if (p.session == session && p.receiver == node) return p.subscription;
    }
    return 0;
  };

  for (const auto& rcv : description.receivers) {
    const net::NodeId node = by_name.at(rcv.node);
    s->add_receiver(node, rcv.session, optimum_of(rcv.session, node),
                    rcv.node + "/s" + std::to_string(rcv.session), rcv.start, rcv.stop);
  }

  s->finalize();
  if (!description.faults.events().empty()) s->install_faults(description.faults);
  return s;
}

}  // namespace tsim::scenarios
