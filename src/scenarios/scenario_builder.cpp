#include "scenarios/scenario_builder.hpp"

#include <stdexcept>
#include <utility>

namespace tsim::scenarios {

void ScenarioBuilder::select(const char* what) {
  if (selected_ != nullptr) {
    throw std::logic_error(std::string{"ScenarioBuilder: topology already selected ("} +
                           selected_ + "), cannot also select " + what);
  }
  selected_ = what;
}

ScenarioBuilder& ScenarioBuilder::topology_a(const TopologyAOptions& options) {
  select("topology_a");
  topo_a_ = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::topology_b(const TopologyBOptions& options) {
  select("topology_b");
  topo_b_ = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::tiered(const TieredOptions& options) {
  select("tiered");
  tiered_ = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::star(const StarOptions& options) {
  select("star");
  star_ = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::topology(TopologyDescription description) {
  select("topology(description)");
  description_ = std::move(description);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::topology_file(const std::string& path) {
  select("topology_file");
  description_ = parse_topology_file(path);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::with_faults(const fault::FaultPlan& plan) {
  fault_plans_.push_back(plan);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::with_cross_traffic(const CrossTrafficSpec& spec) {
  cross_traffic_.push_back(spec);
  return *this;
}

std::unique_ptr<Scenario> ScenarioBuilder::build() {
  std::unique_ptr<Scenario> scenario;
  if (topo_a_) {
    scenario = Scenario::build_topology_a(config_, *topo_a_);
  } else if (topo_b_) {
    scenario = Scenario::build_topology_b(config_, *topo_b_);
  } else if (tiered_) {
    scenario = Scenario::build_tiered(config_, *tiered_);
  } else if (star_) {
    scenario = Scenario::build_star(config_, *star_);
  } else if (description_) {
    scenario = Scenario::from_description(config_, *description_);
  } else {
    throw std::logic_error(
        "ScenarioBuilder: no topology selected — call topology_a/topology_b/tiered/"
        "topology(...) before build()");
  }
  for (const CrossTrafficSpec& spec : cross_traffic_) scenario->add_cross_traffic(spec);
  for (const fault::FaultPlan& plan : fault_plans_) scenario->install_faults(plan);
  return scenario;
}

}  // namespace tsim::scenarios
