#include "scenarios/topology_file.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace tsim::scenarios {

namespace {

std::string lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in{line};
  std::string token;
  while (in >> token) {
    if (token.front() == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

bool parse_double(std::string_view s, double& out) {
  // std::from_chars for double is unevenly supported; go through strtod.
  const std::string copy{s};
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

bool parse_seconds(const std::string& token, sim::Time& out, std::string& error,
                   const char* what) {
  double value = 0.0;
  if (!parse_double(token, value) || value < 0.0) {
    error = std::string{"bad "} + what + " '" + token + "' (plain seconds, e.g. 60)";
    return false;
  }
  out = sim::Time::seconds(value);
  return true;
}

bool parse_probability(const std::string& token, double& out, std::string& error) {
  if (!parse_double(token, out) || out < 0.0 || out > 1.0) {
    error = "bad probability '" + token + "' (must be in [0, 1])";
    return false;
  }
  return true;
}

bool parse_session(const std::string& token, std::uint16_t& out, std::string& error) {
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || value > 0xFFFFu) {
    error = "bad session id '" + token + "' (integer in [0, 65535])";
    return false;
  }
  out = static_cast<std::uint16_t>(value);
  return true;
}

/// Parses one `fault ...` directive (tokens[0] == "fault") into `plan`.
bool parse_fault_line(const std::vector<std::string>& tokens, fault::FaultPlan& plan,
                      std::string& error) {
  if (tokens.size() < 2) {
    error = "fault needs: link|controller|suggestions ...";
    return false;
  }
  const std::string& target = tokens[1];

  if (target == "link") {
    if (tokens.size() < 5) {
      error = "fault link needs: a b down|lossy|flap ...";
      return false;
    }
    const std::string& a = tokens[2];
    const std::string& b = tokens[3];
    const std::string& mode = tokens[4];
    if (mode == "down") {
      // fault link a b down <t> [up <t>]
      sim::Time down_at{};
      if (tokens.size() != 6 && !(tokens.size() == 8 && tokens[6] == "up")) {
        error = "fault link down needs: down <t> [up <t>]";
        return false;
      }
      if (!parse_seconds(tokens[5], down_at, error, "down time")) return false;
      if (tokens.size() == 8) {
        sim::Time up_at{};
        if (!parse_seconds(tokens[7], up_at, error, "up time")) return false;
        plan.link_outage(a, b, down_at, up_at);
      } else {
        plan.link_down(a, b, down_at);
      }
      return true;
    }
    if (mode == "lossy") {
      // fault link a b lossy <p> <t0> <t1>
      if (tokens.size() != 8) {
        error = "fault link lossy needs: lossy <p> <t0> <t1>";
        return false;
      }
      double p = 0.0;
      sim::Time from{};
      sim::Time to{};
      if (!parse_probability(tokens[5], p, error)) return false;
      if (!parse_seconds(tokens[6], from, error, "start time")) return false;
      if (!parse_seconds(tokens[7], to, error, "end time")) return false;
      plan.link_lossy(a, b, p, from, to);
      return true;
    }
    if (mode == "flap") {
      // fault link a b flap <t0> <t1> period <seconds> [duty <d>]
      if (tokens.size() != 9 && tokens.size() != 11) {
        error = "fault link flap needs: flap <t0> <t1> period <seconds> [duty <d>]";
        return false;
      }
      sim::Time from{};
      sim::Time to{};
      sim::Time period{};
      double duty = 0.5;
      if (!parse_seconds(tokens[5], from, error, "start time")) return false;
      if (!parse_seconds(tokens[6], to, error, "end time")) return false;
      if (tokens[7] != "period" || !parse_seconds(tokens[8], period, error, "period")) {
        if (error.empty()) error = "fault link flap: expected 'period <seconds>'";
        return false;
      }
      if (tokens.size() == 11) {
        if (tokens[9] != "duty" || !parse_probability(tokens[10], duty, error)) {
          if (error.empty()) error = "fault link flap: expected 'duty <fraction>'";
          return false;
        }
      }
      plan.link_flap(a, b, from, to, period, duty);
      return true;
    }
    error = "unknown fault link mode '" + mode + "' (down|lossy|flap)";
    return false;
  }

  if (target == "controller") {
    // fault controller down <t0> up <t1>
    if (tokens.size() != 6 || tokens[2] != "down" || tokens[4] != "up") {
      error = "fault controller needs: down <t0> up <t1>";
      return false;
    }
    sim::Time from{};
    sim::Time to{};
    if (!parse_seconds(tokens[3], from, error, "down time")) return false;
    if (!parse_seconds(tokens[5], to, error, "up time")) return false;
    plan.controller_outage(from, to);
    return true;
  }

  if (target == "suggestions") {
    // fault suggestions drop <p> <t0> <t1>
    if (tokens.size() != 6 || tokens[2] != "drop") {
      error = "fault suggestions needs: drop <p> <t0> <t1>";
      return false;
    }
    double p = 0.0;
    sim::Time from{};
    sim::Time to{};
    if (!parse_probability(tokens[3], p, error)) return false;
    if (!parse_seconds(tokens[4], from, error, "start time")) return false;
    if (!parse_seconds(tokens[5], to, error, "end time")) return false;
    plan.drop_suggestions(p, from, to);
    return true;
  }

  error = "unknown fault target '" + target + "' (link|controller|suggestions)";
  return false;
}

}  // namespace

units::BitsPerSec parse_bandwidth(std::string_view token) {
  const std::string t = lower(token);
  double scale = 1.0;
  std::string_view digits = t;
  if (t.size() > 4 && t.substr(t.size() - 4) == "kbps") {
    scale = 1e3;
    digits = std::string_view{t}.substr(0, t.size() - 4);
  } else if (t.size() > 4 && t.substr(t.size() - 4) == "mbps") {
    scale = 1e6;
    digits = std::string_view{t}.substr(0, t.size() - 4);
  } else if (t.size() > 4 && t.substr(t.size() - 4) == "gbps") {
    scale = 1e9;
    digits = std::string_view{t}.substr(0, t.size() - 4);
  } else if (t.size() > 3 && t.substr(t.size() - 3) == "bps") {
    digits = std::string_view{t}.substr(0, t.size() - 3);
  } else {
    return units::BitsPerSec{-1.0};
  }
  double value = 0.0;
  if (!parse_double(digits, value) || value <= 0.0) return units::BitsPerSec{-1.0};
  return units::BitsPerSec{value * scale};
}

sim::Time parse_latency(std::string_view token) {
  const std::string t = lower(token);
  double scale_to_seconds = 0.0;
  std::string_view digits = t;
  if (t.size() > 2 && t.substr(t.size() - 2) == "ms") {
    scale_to_seconds = 1e-3;
    digits = std::string_view{t}.substr(0, t.size() - 2);
  } else if (t.size() > 1 && t.back() == 's') {
    scale_to_seconds = 1.0;
    digits = std::string_view{t}.substr(0, t.size() - 1);
  } else {
    return sim::Time::seconds(-1.0);
  }
  double value = 0.0;
  if (!parse_double(digits, value) || value < 0.0) return sim::Time::seconds(-1.0);
  return sim::Time::seconds(value * scale_to_seconds);
}

ParseResult parse_topology(std::string_view text) {
  TopologyDescription desc;
  std::set<std::string> node_names;

  auto fail = [](int line_no, const std::string& message) {
    ParseResult r;
    // line 0 = file-level error with no single offending line
    r.error = line_no > 0 ? "line " + std::to_string(line_no) + ": " + message : message;
    return r;
  };

  std::istringstream in{std::string{text}};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "node") {
      if (tokens.size() != 2) return fail(line_no, "node takes exactly one name");
      if (!node_names.insert(tokens[1]).second) {
        return fail(line_no, "duplicate node '" + tokens[1] + "'");
      }
      desc.nodes.push_back(tokens[1]);
    } else if (directive == "link") {
      if (tokens.size() < 5) return fail(line_no, "link needs: a b bandwidth latency");
      TopologyDescription::LinkSpec link;
      link.line = line_no;
      link.a = tokens[1];
      link.b = tokens[2];
      link.bandwidth = parse_bandwidth(tokens[3]);
      if (link.bandwidth <= units::BitsPerSec::zero()) {
        return fail(line_no, "bad bandwidth '" + tokens[3] + "' (use e.g. 256kbps, 1.5Mbps)");
      }
      if (link.bandwidth > units::BitsPerSec{1e12}) {
        return fail(line_no,
                    "bandwidth '" + tokens[3] + "' out of range (max 1000Gbps)");
      }
      link.latency = parse_latency(tokens[4]);
      if (link.latency < sim::Time::zero()) {
        return fail(line_no, "bad latency '" + tokens[4] + "' (use e.g. 200ms, 1s)");
      }
      for (std::size_t i = 5; i < tokens.size(); ++i) {
        if (tokens[i] == "red") {
          link.red = true;
        } else if (tokens[i] == "queue" && i + 1 < tokens.size()) {
          std::size_t packets = 0;
          const auto [ptr, ec] = std::from_chars(
              tokens[i + 1].data(), tokens[i + 1].data() + tokens[i + 1].size(), packets);
          if (ec != std::errc{} || packets == 0) {
            return fail(line_no, "bad queue size '" + tokens[i + 1] + "'");
          }
          link.queue_packets = packets;
          ++i;
        } else {
          return fail(line_no, "unknown link option '" + tokens[i] + "'");
        }
      }
      desc.links.push_back(link);
    } else if (directive == "source") {
      if (tokens.size() != 3) return fail(line_no, "source needs: session node");
      TopologyDescription::SourceSpec src;
      src.line = line_no;
      std::string error;
      if (!parse_session(tokens[1], src.session, error)) return fail(line_no, error);
      src.node = tokens[2];
      desc.sources.push_back(src);
    } else if (directive == "receiver") {
      if (tokens.size() < 3) return fail(line_no, "receiver needs: node session");
      TopologyDescription::ReceiverSpec rcv;
      rcv.line = line_no;
      rcv.node = tokens[1];
      std::string error;
      if (!parse_session(tokens[2], rcv.session, error)) return fail(line_no, error);
      for (std::size_t i = 3; i < tokens.size(); i += 2) {
        if (i + 1 >= tokens.size()) {
          return fail(line_no, "receiver option '" + tokens[i] + "' needs a value");
        }
        double value = 0.0;
        if (!parse_double(tokens[i + 1], value) || value < 0.0) {
          return fail(line_no,
                      "bad time '" + tokens[i + 1] + "' (non-negative seconds)");
        }
        if (tokens[i] == "start") {
          rcv.start = sim::Time::seconds(value);
        } else if (tokens[i] == "stop") {
          rcv.stop = sim::Time::seconds(value);
        } else {
          return fail(line_no, "unknown receiver option '" + tokens[i] + "'");
        }
      }
      if (rcv.stop <= rcv.start) {
        return fail(line_no, "receiver stop must be after start");
      }
      desc.receivers.push_back(rcv);
    } else if (directive == "controller") {
      if (tokens.size() != 2) return fail(line_no, "controller takes one node");
      desc.controller_node = tokens[1];
      desc.controller_line = line_no;
    } else if (directive == "domain") {
      if (tokens.size() < 3) {
        return fail(line_no, "domain needs: name border-node [node...]");
      }
      TopologyDescription::DomainSpec dom;
      dom.line = line_no;
      dom.name = tokens[1];
      for (const auto& existing : desc.domains) {
        if (existing.name == dom.name) {
          return fail(line_no, "duplicate domain '" + dom.name + "'");
        }
      }
      dom.nodes.assign(tokens.begin() + 2, tokens.end());
      desc.domains.push_back(std::move(dom));
    } else if (directive == "traffic") {
      if (tokens.size() < 2) {
        return fail(line_no, "traffic needs: packet|fluid|burst [options]");
      }
      const std::string& engine = tokens[1];
      if (engine == "packet") {
        desc.engine = TrafficEngineSpec::kPacket;
      } else if (engine == "fluid") {
        desc.engine = TrafficEngineSpec::kFluid;
      } else if (engine == "burst") {
        desc.engine = TrafficEngineSpec::kBurst;
      } else {
        return fail(line_no, "unknown traffic engine '" + engine + "' (packet|fluid|burst)");
      }
      desc.traffic_line = line_no;
      for (std::size_t i = 2; i < tokens.size(); i += 2) {
        if (i + 1 >= tokens.size()) {
          return fail(line_no, "traffic option '" + tokens[i] + "' needs a value");
        }
        if (tokens[i] == "step" && desc.engine == TrafficEngineSpec::kFluid) {
          double step_s = 0.0;
          if (!parse_double(tokens[i + 1], step_s) || step_s <= 0.0 || step_s > 1.0) {
            return fail(line_no, "bad step '" + tokens[i + 1] + "' (seconds in (0, 1])");
          }
          // The fluid engine requires a step that divides one second exactly
          // (a step must never span two VBR intervals); diagnose here with a
          // line number instead of at FluidEngine construction.
          const auto step_ns = sim::Time::seconds(step_s).as_nanoseconds();
          if (step_ns <= 0 || 1'000'000'000 % step_ns != 0) {
            return fail(line_no,
                        "step '" + tokens[i + 1] + "' must divide one second exactly");
          }
          desc.fluid_step_s = step_s;
        } else if (tokens[i] == "train" && desc.engine == TrafficEngineSpec::kBurst) {
          int packets = 0;
          const auto [ptr, ec] = std::from_chars(
              tokens[i + 1].data(), tokens[i + 1].data() + tokens[i + 1].size(), packets);
          if (ec != std::errc{} || ptr != tokens[i + 1].data() + tokens[i + 1].size() ||
              packets < 1) {
            return fail(line_no, "bad train size '" + tokens[i + 1] + "' (integer >= 1)");
          }
          desc.burst_train = packets;
        } else {
          return fail(line_no, "unknown traffic option '" + tokens[i] + "' for engine '" +
                                   engine + "'");
        }
      }
    } else if (directive == "fault") {
      std::string error;
      if (!parse_fault_line(tokens, desc.faults, error)) return fail(line_no, error);
      // resize only fills the events this directive just appended
      desc.fault_lines.resize(desc.faults.size(), line_no);
    } else {
      return fail(line_no, "unknown directive '" + directive + "'");
    }
  }

  // Semantic validation. Every diagnostic points at the offending line.
  auto known = [&](const std::string& name) { return node_names.count(name) != 0; };
  std::set<std::pair<std::string, std::string>> link_pairs;
  for (const auto& link : desc.links) {
    if (!known(link.a)) {
      return fail(link.line, "link references undeclared node '" + link.a + "'");
    }
    if (!known(link.b)) {
      return fail(link.line, "link references undeclared node '" + link.b + "'");
    }
    link_pairs.insert(link.a < link.b ? std::make_pair(link.a, link.b)
                                      : std::make_pair(link.b, link.a));
  }
  std::set<std::uint16_t> sessions_with_source;
  for (const auto& src : desc.sources) {
    if (!known(src.node)) {
      return fail(src.line, "source on undeclared node '" + src.node + "'");
    }
    sessions_with_source.insert(src.session);
  }
  for (const auto& rcv : desc.receivers) {
    if (!known(rcv.node)) {
      return fail(rcv.line, "receiver on undeclared node '" + rcv.node + "'");
    }
    if (sessions_with_source.count(rcv.session) == 0) {
      return fail(rcv.line,
                  "receiver session " + std::to_string(rcv.session) + " has no source");
    }
  }
  const auto& fault_events = desc.faults.events();
  for (std::size_t i = 0; i < fault_events.size(); ++i) {
    const auto& ev = fault_events[i];
    const int ev_line = i < desc.fault_lines.size() ? desc.fault_lines[i] : 0;
    if (!ev.a.empty() && !known(ev.a)) {
      return fail(ev_line, "fault references undeclared node '" + ev.a + "'");
    }
    if (!ev.b.empty() && !known(ev.b)) {
      return fail(ev_line, "fault references undeclared node '" + ev.b + "'");
    }
    const bool is_link_fault = ev.kind == fault::FaultKind::kLinkDown ||
                               ev.kind == fault::FaultKind::kLinkUp ||
                               ev.kind == fault::FaultKind::kLinkFlap ||
                               ev.kind == fault::FaultKind::kLinkLossy;
    if (is_link_fault) {
      const auto pair = ev.a < ev.b ? std::make_pair(ev.a, ev.b)
                                    : std::make_pair(ev.b, ev.a);
      if (link_pairs.count(pair) == 0) {
        return fail(ev_line, "fault on nonexistent link '" + ev.a + " " + ev.b +
                                 "' (no such `link` declared)");
      }
    }
  }
  if (const std::string fault_error = desc.faults.validate(); !fault_error.empty()) {
    return fail(0, "fault plan: " + fault_error);
  }
  if (desc.receivers.empty()) return fail(0, "no receivers declared");
  if (desc.controller_node.empty()) return fail(0, "no controller declared");
  if (!known(desc.controller_node)) {
    return fail(desc.controller_line,
                "controller on undeclared node '" + desc.controller_node + "'");
  }
  std::map<std::string, std::string> domain_of_node;  // node -> domain name
  for (const auto& dom : desc.domains) {
    for (const auto& name : dom.nodes) {
      if (!known(name)) {
        return fail(dom.line,
                    "domain '" + dom.name + "' references undeclared node '" + name + "'");
      }
      const auto [it, inserted] = domain_of_node.emplace(name, dom.name);
      if (!inserted) {
        return fail(dom.line, "node '" + name + "' already belongs to domain '" +
                                  it->second + "'");
      }
    }
    // The controller node anchors the implicit root domain; claiming it would
    // leave the root headless.
    if (domain_of_node.count(desc.controller_node) != 0) {
      return fail(dom.line, "controller node '" + desc.controller_node +
                                "' cannot belong to a domain (it anchors the root)");
    }
  }

  ParseResult result;
  result.description = std::move(desc);
  return result;
}

TopologyDescription parse_topology_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot read topology file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  ParseResult result = parse_topology(text.str());
  if (!result.ok()) {
    throw std::runtime_error("topology file '" + path + "': " + result.error);
  }
  return std::move(*result.description);
}

}  // namespace tsim::scenarios
