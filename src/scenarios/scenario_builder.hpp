#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/topology_file.hpp"

namespace tsim::scenarios {

/// Fluent front door for constructing experiments. Replaces the static
/// `Scenario::topology_*` factories:
///
///   auto scenario = ScenarioBuilder(config)
///                       .topology_a({.receivers_per_set = 4})
///                       .with_faults(plan)
///                       .with_cross_traffic({"r0", "r1", 500e3})
///                       .build();
///
/// Exactly one topology_* / topology() call selects the network shape;
/// build() throws std::logic_error if none (or more than one) was chosen.
/// Faults declared in a topology file and faults added via with_faults()
/// compose: file faults are installed first, builder faults after.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(ScenarioConfig config) : config_{std::move(config)} {}
  ScenarioBuilder() = default;

  /// --- config tweaks (override fields of the seed config) -----------------
  ScenarioBuilder& seed(std::uint64_t seed) {
    config_.seed = seed;
    return *this;
  }
  ScenarioBuilder& duration(sim::Time duration) {
    config_.duration = duration;
    return *this;
  }
  ScenarioBuilder& controller(ControllerKind kind) {
    config_.control.kind = kind;
    return *this;
  }
  ScenarioBuilder& discovery(DiscoveryMode mode) {
    config_.control.discovery = mode;
    return *this;
  }
  /// Requests an automatic partition into up to `count` routing domains when
  /// the topology declares none (see ScenarioConfig::Domains).
  ScenarioBuilder& domains(int count) {
    config_.domains.auto_partition = count;
    return *this;
  }
  /// Child -> parent DomainSummary cadence (multi-domain runs only).
  ScenarioBuilder& summary_period(sim::Time period) {
    config_.domains.summary_period = period;
    return *this;
  }
  ScenarioBuilder& params(const core::Params& params) {
    config_.params = params;
    return *this;
  }
  ScenarioBuilder& config(const ScenarioConfig& config) {
    config_ = config;
    return *this;
  }
  /// Enables invariant auditing (see check::InvariantAuditor). `cadence` is
  /// the period of the sweeping checks; event-driven checks always fire.
  ScenarioBuilder& audit(check::AuditMode mode,
                         sim::Time cadence = sim::Time::seconds(1)) {
    config_.audit.mode = mode;
    config_.audit.cadence = cadence;
    return *this;
  }
  ScenarioBuilder& audit(const check::AuditConfig& audit) {
    config_.audit = audit;
    return *this;
  }
  [[nodiscard]] const ScenarioConfig& current_config() const { return config_; }

  /// --- topology selection (exactly one) -----------------------------------
  ScenarioBuilder& topology_a(const TopologyAOptions& options = {});
  ScenarioBuilder& topology_b(const TopologyBOptions& options = {});
  ScenarioBuilder& tiered(const TieredOptions& options = {});
  /// Scale star: one source, one hub, N identical access links (the fluid
  /// engine's 100k-receiver tier; works with any traffic engine).
  ScenarioBuilder& star(const StarOptions& options = {});
  /// A parsed topology file; its `fault` lines install automatically.
  ScenarioBuilder& topology(TopologyDescription description);
  /// Parses `path` as a topology file (throws std::runtime_error on errors).
  ScenarioBuilder& topology_file(const std::string& path);

  /// --- extras --------------------------------------------------------------
  /// Adds the plan's events on top of whatever the topology declares.
  /// Callable repeatedly; plans are installed in call order.
  ScenarioBuilder& with_faults(const fault::FaultPlan& plan);
  ScenarioBuilder& with_cross_traffic(const CrossTrafficSpec& spec);

  /// Builds, wires and starts the scenario. Throws std::logic_error when no
  /// topology was selected, plus whatever the underlying factory throws
  /// (unknown fault link names, unreachable receivers, ...).
  [[nodiscard]] std::unique_ptr<Scenario> build();

 private:
  void select(const char* what);

  ScenarioConfig config_{};
  const char* selected_{nullptr};
  std::optional<TopologyAOptions> topo_a_;
  std::optional<TopologyBOptions> topo_b_;
  std::optional<TieredOptions> tiered_;
  std::optional<StarOptions> star_;
  std::optional<TopologyDescription> description_;
  std::vector<fault::FaultPlan> fault_plans_;
  std::vector<CrossTrafficSpec> cross_traffic_;
};

}  // namespace tsim::scenarios
