#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/receiver_driven.hpp"
#include "check/invariant_auditor.hpp"
#include "control/adaptation_controller.hpp"
#include "control/controller_agent.hpp"
#include "control/domain_manager.hpp"
#include "control/receiver_agent.hpp"
#include "core/params.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "mcast/multicast_router.hpp"
#include "metrics/subscription_metrics.hpp"
#include "net/network.hpp"
#include "scenarios/topology_file.hpp"
#include "sim/simulation.hpp"
#include "topo/discovery.hpp"
#include "topo/mtrace.hpp"
#include "traffic/burst_source.hpp"
#include "traffic/cross_traffic.hpp"
#include "traffic/fluid_engine.hpp"
#include "traffic/fluid_source.hpp"
#include "traffic/layered_source.hpp"
#include "transport/demux.hpp"
#include "transport/receiver_endpoint.hpp"

namespace tsim::scenarios {

/// How the controller obtains topology: the oracle sampler with configurable
/// staleness (the paper's evaluation model), or packet-based mtrace queries
/// whose cost/latency/loss are emergent.
enum class DiscoveryMode {
  kOracle,
  kMtrace,
};

/// Which traffic engine carries session data. Control traffic (reports,
/// suggestions, discovery) is always packet-level.
enum class TrafficEngine {
  kPacket,  ///< one scheduler event per packet (LayeredSource, the default)
  kFluid,   ///< rate trajectories integrated per step (traffic::FluidEngine)
  kBurst,   ///< K-packet trains per event (traffic::BurstSource)
};

/// Which adaptation scheme drives the receivers. The scenario wiring itself
/// is kind-agnostic: each kind maps to a control::AdaptationController
/// implementation behind the per-domain scheme factory.
enum class ControllerKind {
  kTopoSense,       ///< the paper's domain controller
  kReceiverDriven,  ///< RLM-style baseline, no topology information
  kNone,            ///< receivers stay at their initial subscription
};

/// Configuration shared by every experiment (paper §IV defaults).
///
/// Fields are grouped into sub-structs by subsystem (traffic, queues,
/// control, domains). The old flat names remain as deprecated reference
/// aliases for one release — reading or writing `config.red_queues` still
/// works (it is the same storage as `config.queues.red`) but warns.
struct ScenarioConfig {
  struct Traffic {
    ::tsim::traffic::TrafficModel model{::tsim::traffic::TrafficModel::kCbr};
    double peak_to_mean{3.0};
    TrafficEngine engine{TrafficEngine::kPacket};
    /// Fluid integration step; must divide one second (see FluidEngine).
    sim::Time fluid_step{sim::Time::milliseconds(100)};
    /// Packets per train under TrafficEngine::kBurst.
    int burst_train{4};
  };
  struct Queues {
    std::size_t limit_packets{30};
    /// Size each link's queue to at least its bandwidth-delay product (the
    /// standard drop-tail provisioning rule); the floor above still applies
    /// to slow links. Disable to study shallow-buffer behaviour.
    bool bdp_sizing{true};
    /// Use RED instead of drop-tail on every link (§V burst-loss ablation).
    bool red{false};
  };
  struct Control {
    ControllerKind kind{ControllerKind::kTopoSense};
    DiscoveryMode discovery{DiscoveryMode::kOracle};
    sim::Time info_staleness{sim::Time::zero()};  ///< topology + report staleness
    /// Receiver reporting cadence; zero means "same as the algorithm
    /// interval" (the paper's setup). Faster reporting gives the controller
    /// sub-interval loss visibility at the cost of more control traffic.
    sim::Time report_period{sim::Time::zero()};
    ::tsim::control::ReceiverAgent::Config receiver_agent{};
    ::tsim::baseline::ReceiverDrivenController::Config receiver_driven{};
    /// Layers each receiver joins at start (clamped to [0, num_layers]).
    /// The paper's receivers start at 1; scale studies start higher so the
    /// data plane dominates from t=0.
    int initial_subscription{1};
  };
  struct Domains {
    /// Automatic partitioner: when > 1 and the topology declares no `domain`
    /// lines, split the topology into up to this many routing domains (the
    /// largest depth-1 subtrees below the controller become child domains,
    /// everything else stays in the root). 1 = single-domain (the default,
    /// byte-identical to the pre-domain wiring).
    int auto_partition{1};
    /// Child -> parent DomainSummary cadence and first exchange.
    sim::Time summary_period{sim::Time::seconds(5)};
    sim::Time summary_start{sim::Time::seconds(5)};
  };

  std::uint64_t seed{1};
  core::Params params{};
  sim::Time duration{sim::Time::seconds(1200)};
  sim::Time link_latency{sim::Time::milliseconds(200)};
  Traffic traffic{};
  Queues queues{};
  Control control{};
  Domains domains{};
  mcast::MulticastRouter::Config mcast{};
  /// Invariant auditing (off by default; see ScenarioBuilder::audit and the
  /// --audit flag on toposense_sim / bench_runner).
  check::AuditConfig audit{};

  /// --- deprecated flat aliases (same storage as the sub-structs) ----------
  [[deprecated("use traffic.model")]] ::tsim::traffic::TrafficModel& model = traffic.model;
  [[deprecated("use traffic.peak_to_mean")]] double& peak_to_mean = traffic.peak_to_mean;
  [[deprecated("use queues.limit_packets")]] std::size_t& queue_limit_packets =
      queues.limit_packets;
  [[deprecated("use queues.bdp_sizing")]] bool& queue_bdp_sizing = queues.bdp_sizing;
  [[deprecated("use queues.red")]] bool& red_queues = queues.red;
  [[deprecated("use control.kind")]] ControllerKind& controller = control.kind;
  [[deprecated("use control.discovery")]] DiscoveryMode& discovery = control.discovery;
  [[deprecated("use control.info_staleness")]] sim::Time& info_staleness =
      control.info_staleness;
  [[deprecated("use control.report_period")]] sim::Time& report_period = control.report_period;
  [[deprecated("use control.receiver_agent")]] ::tsim::control::ReceiverAgent::Config&
      receiver_agent = control.receiver_agent;
  [[deprecated("use control.receiver_driven")]] ::tsim::baseline::ReceiverDrivenController::
      Config& receiver_driven = control.receiver_driven;

  // The aliases are references into this object, so copies must rebind them
  // to the copy's own sub-structs: value members are copied explicitly and
  // the references fall back to their default member initializers. (The
  // implicit alias initialization inside these members would itself trip the
  // deprecation warning, hence the suppression.)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ScenarioConfig() = default;
  ScenarioConfig(const ScenarioConfig& other)
      : seed{other.seed},
        params{other.params},
        duration{other.duration},
        link_latency{other.link_latency},
        traffic{other.traffic},
        queues{other.queues},
        control{other.control},
        domains{other.domains},
        mcast{other.mcast},
        audit{other.audit} {}
  ScenarioConfig(ScenarioConfig&& other) noexcept : ScenarioConfig{other} {}
  ScenarioConfig& operator=(const ScenarioConfig& other) {
    seed = other.seed;
    params = other.params;
    duration = other.duration;
    link_latency = other.link_latency;
    traffic = other.traffic;
    queues = other.queues;
    control = other.control;
    domains = other.domains;
    mcast = other.mcast;
    audit = other.audit;
    return *this;
  }
  ScenarioConfig& operator=(ScenarioConfig&& other) noexcept { return *this = other; }
#pragma GCC diagnostic pop
};

/// Topology A (Fig 5): one session, two receiver sets behind different
/// bottlenecks — the heterogeneity scenario.
///
///   source -- backbone -- r0 --(bottleneck1)-- r1 -- N receivers (set 1)
///                           \--(bottleneck2)-- r2 -- N receivers (set 2)
struct TopologyAOptions {
  int receivers_per_set{2};
  double backbone_bps{10e6};
  double bottleneck1_bps{256e3};  ///< optimal 3 layers (cum. 224 Kbps)
  double bottleneck2_bps{1e6};    ///< optimal 5 layers (cum. 992 Kbps)
  double access_bps{10e6};

  /// Receiver churn: receiver i of each set joins at i * join_stagger, and
  /// the last ceil(leave_fraction * N) receivers of each set leave at
  /// leave_at (when non-zero).
  sim::Time join_stagger{sim::Time::zero()};
  double leave_fraction{0.0};
  sim::Time leave_at{sim::Time::zero()};

  /// Optional non-conforming unicast CBR cross-flow across bottleneck 1
  /// (source-side router to set-1 hub) active in [cross_start, cross_stop).
  double cross_traffic_bps{0.0};
  sim::Time cross_start{sim::Time::zero()};
  sim::Time cross_stop{sim::Time::max()};
};

/// Topology B (Fig 5): n independent single-receiver sessions sharing one
/// link sized so each session can ideally take 4 layers — the inter-session
/// fairness scenario.
///
///   source_k -- access -- ra ==(shared, n*per_session)== rb -- receiver_k
struct TopologyBOptions {
  int sessions{4};
  double per_session_bps{500e3};  ///< shared link = sessions * this
  double access_bps{10e6};

  /// Session k starts at k * session_stagger (the paper starts all sessions
  /// together; staggering is the late-joiner fairness ablation).
  sim::Time session_stagger{sim::Time::zero()};

  /// Optional unicast CBR cross-flow across the shared link.
  double cross_traffic_bps{0.0};
  sim::Time cross_start{sim::Time::zero()};
  sim::Time cross_stop{sim::Time::max()};
};

/// Tiered Internet topology (Fig 2): a source at a national ISP, a random
/// hierarchy of regional and local ISPs with decreasing (randomized) link
/// capacities, and receivers at institutional leaves. Per-receiver optimal
/// subscriptions are computed by the offline OptimalAllocator from the true
/// capacities (which TopoSense itself never sees).
struct TieredOptions {
  int regionals{3};
  int locals_per_regional{2};
  int receivers_per_local{2};
  double backbone_bps{45e6};
  double regional_min_bps{1e6};
  double regional_max_bps{4e6};
  double local_min_bps{256e3};
  double local_max_bps{2e6};
  double access_min_bps{128e3};
  double access_max_bps{1.5e6};
};

/// Star scale topology: one source behind a fat backbone, N receivers on
/// identical access links off a single hub. The shape the fluid engine is
/// built for — one shared bottleneck class, very high receiver count. Reports
/// from all N receivers converge on the controller (at the source), so the
/// factory registers the controller as a routing sink: one destination-rooted
/// row answers every receiver->controller route instead of N source-rooted
/// tables (16 bytes * N per row would be ~160 GB at N = 100k).
struct StarOptions {
  int receivers{1000};
  // Raw doubles to match the sibling topology option structs (one shared
  // CLI/file-parsing surface).
  double backbone_bps{1e9};  // NOLINT(raw-units)
  double access_bps{1.2e6};  // NOLINT(raw-units) optimal 5 layers (cum. 992 Kbps)
};

/// A unicast CBR cross-flow between two named nodes, active in
/// [start, stop). Named endpoints make specs portable across topology
/// factories and topology files.
struct CrossTrafficSpec {
  std::string src;
  std::string dst;
  double rate_bps{0.0};
  sim::Time start{sim::Time::zero()};
  sim::Time stop{sim::Time::max()};
};

/// One receiver's results after a run.
struct ReceiverResult {
  net::NodeId node{net::kInvalidNode};
  net::SessionId session{0};
  std::string name;
  int optimal{0};
  int final_subscription{0};
  metrics::SubscriptionTimeline timeline{sim::Time::zero(), 0};
  double loss_overall{0.0};  ///< lifetime loss fraction
};

/// A fully wired simulation: network, multicast, sources, receivers, agents,
/// controller and metrics. Construction order is fixed by the factories;
/// everything lives exactly as long as the Scenario.
///
/// The adaptation control plane is always a control::DomainManager — a
/// single-domain manager over the whole topology by default, or one scheme
/// per routing domain when the topology declares `domain` lines (or
/// config.domains.auto_partition asks for a split).
class Scenario {
 public:
  [[deprecated("use ScenarioBuilder(config).topology_a(options).build()")]] static std::
      unique_ptr<Scenario>
      topology_a(const ScenarioConfig& config, const TopologyAOptions& options);
  [[deprecated("use ScenarioBuilder(config).topology_b(options).build()")]] static std::
      unique_ptr<Scenario>
      topology_b(const ScenarioConfig& config, const TopologyBOptions& options);
  [[deprecated("use ScenarioBuilder(config).tiered(options).build()")]] static std::
      unique_ptr<Scenario>
      tiered(const ScenarioConfig& config, const TieredOptions& options);
  /// Builds a scenario from a parsed topology file (see topology_file.hpp).
  /// Per-receiver optima come from the offline allocator on the declared
  /// capacities; `fault` lines in the file are installed automatically.
  /// Throws std::invalid_argument on unreachable receivers.
  static std::unique_ptr<Scenario> from_description(const ScenarioConfig& config,
                                                    const TopologyDescription& description);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs the simulation to config.duration.
  void run();

  /// Runs to an intermediate time (callable repeatedly, monotonic).
  void run_until(sim::Time until);

  /// Installs a fault plan: validates it, resolves every named link against
  /// the built network (throws std::invalid_argument on unknown names) and
  /// schedules the events. Callable repeatedly; each call adds an injector.
  /// Controller outage events require ControllerKind::kTopoSense.
  fault::FaultInjector& install_faults(const fault::FaultPlan& plan);

  /// Adds (and starts) a unicast CBR cross-flow between two named nodes.
  void add_cross_traffic(const CrossTrafficSpec& spec);

  [[nodiscard]] const std::vector<ReceiverResult>& results() const { return results_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& simulation() { return *simulation_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] mcast::MulticastRouter& multicast() { return *mcast_; }
  /// The control plane behind the kind-agnostic interface (never null after
  /// construction; a NullController manager when the kind is kNone).
  [[nodiscard]] control::AdaptationController* adaptation() { return domain_manager_.get(); }
  /// The domain manager itself: domain layout, per-domain schemes and the
  /// inter-domain summary counters.
  [[nodiscard]] control::DomainManager* domains() { return domain_manager_.get(); }
  /// The root domain's ControllerAgent, or nullptr when the adaptation
  /// scheme is not TopoSense. Single-domain scenarios (the default) have
  /// exactly one agent, so this is "the" controller of the classic API.
  [[nodiscard]] control::ControllerAgent* controller();
  /// The invariant auditor, or nullptr when auditing is off.
  [[nodiscard]] check::InvariantAuditor* auditor() { return auditor_.get(); }
  /// The root domain's topology provider (oracle or mtrace), or nullptr when
  /// the scheme runs without discovery.
  [[nodiscard]] topo::TopologyProvider* discovery();
  /// Per-node packet demux registry — attach extra endpoints (e.g. TCP
  /// flows) to nodes without clobbering the scenario's own handlers.
  [[nodiscard]] transport::DemuxRegistry& demuxes() { return *demuxes_; }
  [[nodiscard]] const std::vector<std::unique_ptr<transport::ReceiverEndpoint>>& endpoints()
      const {
    return endpoints_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<traffic::LayeredSource>>& sources() const {
    return sources_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<traffic::FluidSource>>& fluid_sources() const {
    return fluid_sources_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<traffic::BurstSource>>& burst_sources() const {
    return burst_sources_;
  }
  /// The fluid datapath, or nullptr unless config.traffic.engine is kFluid.
  [[nodiscard]] traffic::FluidEngine* fluid_engine() { return fluid_engine_.get(); }
  [[nodiscard]] const std::vector<std::unique_ptr<fault::FaultInjector>>& fault_injectors()
      const {
    return fault_injectors_;
  }
  /// Per-receiver watchdog agents, index-parallel with results()/endpoints()
  /// (TopoSense only; empty for other kinds). The agents are owned by their
  /// domain's scheme.
  [[nodiscard]] const std::vector<control::ReceiverAgent*>& receiver_agents() const {
    return receiver_agents_;
  }

  /// Index into results()/endpoints() of receiver `r` (they are parallel).
  [[nodiscard]] const ReceiverResult& result(std::size_t i) const { return results_[i]; }

 private:
  friend class ScenarioBuilder;

  explicit Scenario(const ScenarioConfig& config);

  /// Factory bodies (the deprecated public factories and ScenarioBuilder both
  /// forward here).
  static std::unique_ptr<Scenario> build_topology_a(const ScenarioConfig& config,
                                                    const TopologyAOptions& options);
  static std::unique_ptr<Scenario> build_topology_b(const ScenarioConfig& config,
                                                    const TopologyBOptions& options);
  static std::unique_ptr<Scenario> build_tiered(const ScenarioConfig& config,
                                                const TieredOptions& options);
  static std::unique_ptr<Scenario> build_star(const ScenarioConfig& config,
                                              const StarOptions& options);

  /// Creates the session source for `cfg` on whichever traffic engine the
  /// config selects (packet, fluid or burst). finalize() starts it.
  void add_session_source(const traffic::LayeredSource::Config& cfg);

  /// Records one receiver (endpoint + policy agent + metrics) at `node`,
  /// active in [start, stop). The endpoint itself is constructed in
  /// finalize(), once the domain partition (and with it the receiver's
  /// controller node) is known.
  void add_receiver(net::NodeId node, net::SessionId session, int optimal, std::string name,
                    sim::Time start = sim::Time::zero(), sim::Time stop = sim::Time::max());
  /// Resolves the domain partition: declared domains when the topology file
  /// had `domain` lines, else the automatic partitioner when
  /// config.domains.auto_partition > 1, else one root domain over everything.
  [[nodiscard]] std::vector<control::Domain> resolve_domains() const;
  /// Builds the per-domain adaptation scheme for the configured kind.
  [[nodiscard]] std::unique_ptr<control::AdaptationController> make_scheme(
      std::size_t index, const control::Domain& domain,
      const std::vector<control::Domain>& all);
  void finalize();  ///< wires controller/discovery and starts everything

  ScenarioConfig config_;
  std::unique_ptr<sim::Simulation> simulation_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<mcast::MulticastRouter> mcast_;
  std::unique_ptr<transport::DemuxRegistry> demuxes_;
  net::NodeId controller_node_{net::kInvalidNode};
  /// Domains declared by the topology description (empty for the factories;
  /// resolve_domains() falls back to the auto partitioner / single root).
  std::vector<control::Domain> declared_domains_;
  std::vector<std::unique_ptr<traffic::LayeredSource>> sources_;
  std::vector<std::unique_ptr<traffic::FluidSource>> fluid_sources_;
  std::vector<std::unique_ptr<traffic::BurstSource>> burst_sources_;
  /// Built in finalize() when traffic.engine is kFluid. Holds non-owning
  /// pointers to fluid_sources_ and endpoints_ (as FluidSinks); safe because
  /// no events run during destruction.
  std::unique_ptr<traffic::FluidEngine> fluid_engine_;
  std::vector<std::unique_ptr<traffic::CbrFlow>> cross_flows_;
  std::vector<std::unique_ptr<fault::FaultInjector>> fault_injectors_;
  struct PendingReceiver {
    net::NodeId node{net::kInvalidNode};
    net::SessionId session{0};
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::max()};
  };
  std::vector<PendingReceiver> pending_receivers_;
  std::vector<std::unique_ptr<transport::ReceiverEndpoint>> endpoints_;
  std::vector<control::ReceiverAgent*> receiver_agents_;  ///< owned by domain schemes
  /// Declared after endpoints_: the schemes' watchdog agents reference the
  /// endpoints, so the manager (and with it the watchdogs) is torn down
  /// first.
  std::unique_ptr<control::DomainManager> domain_manager_;
  /// Declared after everything it observes: the auditor is destroyed first,
  /// and the hooks it installed are never invoked after teardown begins (no
  /// events run during destruction).
  std::unique_ptr<check::InvariantAuditor> auditor_;
  std::vector<ReceiverResult> results_;
  bool started_{false};
};

}  // namespace tsim::scenarios
