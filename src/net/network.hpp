#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/hotpath.hpp"
#include "core/units.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"

namespace tsim::net {

/// Strategy interface for multicast forwarding. The mcast subsystem installs
/// an implementation; keeping it an interface lets `net` stay independent of
/// the group-management layer (and lets tests stub multicast trivially).
class MulticastForwarder {
 public:
  virtual ~MulticastForwarder() = default;

  /// Decides replication for `packet` arriving (or originating) at `node`:
  /// fills `out_links` with the links to copy the packet onto and sets
  /// `deliver_locally` when the node hosts a subscribed receiver.
  virtual void route(NodeId node, const Packet& packet, std::vector<LinkId>& out_links,
                     bool& deliver_locally) = 0;

  /// Invoked after the network topology changed (a link failed or was
  /// repaired) and unicast routes were recomputed: distribution trees built
  /// on the old routes must be pruned and re-grafted.
  virtual void on_topology_change() {}
};

/// A named node. Behaviour lives in the Network (forwarding) and in local
/// sinks registered by endpoints (traffic receivers, controller agents).
struct Node {
  NodeId id{kInvalidNode};
  std::string name;
  std::vector<LinkId> out_links;
  std::function<void(const PacketRef&)> local_sink;  ///< invoked on local delivery
};

/// The simulated network: nodes, links, unicast routing and the packet
/// forwarding engine. Multicast replication is delegated to an installed
/// MulticastForwarder.
///
/// The per-packet datapath state is struct-of-arrays: a dense LinkId-indexed
/// LinkHot table (counters + transmitter/queue occupancy + gate flags), a
/// dense read-only LinkParams table, and flat per-(group,link) delivery/drop
/// tables. A 10k-receiver fan-out therefore walks three contiguous arrays
/// instead of 10k heap-scattered Link objects; the Link slow paths (down,
/// fault loss, RED) mutate the same entries, so the tables are the single
/// source of truth.
class Network {
 public:
  explicit Network(sim::Simulation& simulation) : simulation_{simulation} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// --- Topology construction -------------------------------------------

  NodeId add_node(std::string name = {});

  /// Adds a unidirectional link. Queue limit defaults to the ns drop-tail
  /// default of 50 packets.
  LinkId add_link(NodeId from, NodeId to, units::BitsPerSec bandwidth, sim::Time latency,
                  std::size_t queue_limit_packets = 50);

  /// Adds a duplex link (two unidirectional links); returns {a->b, b->a}.
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b, units::BitsPerSec bandwidth,
                                            sim::Time latency,
                                            std::size_t queue_limit_packets = 50);

  /// (Re)computes unicast shortest-path routes. Must be called after the
  /// topology is final and before any traffic is sent. Links that are down
  /// are excluded, so failed links are routed around when an alternate path
  /// exists.
  void compute_routes();

  /// Declares a topology change (links went down or came back up): routes
  /// are recomputed over the surviving links, the topology epoch is bumped,
  /// and the multicast forwarder is told to prune/re-graft its trees.
  void on_topology_changed();

  /// Monotonic counter bumped by on_topology_changed(); lets caches keyed on
  /// the physical topology (controller tree caches, snapshots) detect change.
  [[nodiscard]] std::uint64_t topology_version() const { return topology_version_; }

  /// --- Sending -----------------------------------------------------------

  /// Sends a unicast packet from `packet.src` toward `packet.dst` through the
  /// network (hop-by-hop over the same queues data traffic uses, so control
  /// traffic competes for bandwidth and can be lost — as in the paper).
  void send_unicast(Packet packet);

  /// Originates a multicast packet at `packet.src`; replication follows the
  /// installed forwarder.
  void send_multicast(Packet packet);

  /// Internal: invoked by links when a packet finishes traversing them.
  HOT_PATH void on_packet_arrival(NodeId node, const PacketRef& packet);

  /// --- Datapath (internal: Link and Network cooperate through these) ------

  /// Offers `packet` to link `id`. The healthy cases — idle link starts
  /// transmitting; busy link queues or tail-drops — complete against the hot
  /// table alone; any other flag state detours to Link::enqueue_slow.
  HOT_PATH void enqueue(LinkId id, const PacketRef& packet) {
    LinkHot& hot = link_hot_[id];
    const std::uint32_t size = packet->size_bytes;
    ++hot.enqueued_packets;
    hot.enqueued_bytes += size;
    if (hot.flags == LinkHot::kUp) {  // idle and healthy: straight to the wire
      start_transmission(id, packet);
      return;
    }
    if (hot.flags == (LinkHot::kUp | LinkHot::kTransmitting)) {  // busy, healthy
      if (hot.queue_len < hot.queue_limit) {
        ++hot.queue_len;
        links_[id]->push_queue(packet);
      } else {
        ++hot.dropped_packets;
        hot.dropped_bytes += size;
        if (packet->multicast) {
          ++group_dropped_cell(stamped_group_id(*packet), id);
        }
      }
      return;
    }
    links_[id]->enqueue_slow(packet);  // down / fault loss / RED
  }

  /// Puts `packet` on link `id`'s transmitter and schedules its completion.
  /// The transmitter must be free; shared by the fast path and Link's slow
  /// enqueue so scheduling is identical on both.
  HOT_PATH void start_transmission(LinkId id, const PacketRef& packet) {
    LinkHot& hot = link_hot_[id];
    hot.flags |= LinkHot::kTransmitting;
    hot.transmitting_bytes = packet->size_bytes;
    const sim::Time tx =
        transmission_time_for(packet->size_bytes, link_params_[id].bandwidth);
    simulation_.after(tx, [this, id, packet]() { on_tx_complete(id, packet); });
  }

  [[nodiscard]] LinkHot& link_hot(LinkId id) { return link_hot_[id]; }
  [[nodiscard]] const LinkHot& link_hot(LinkId id) const { return link_hot_[id]; }

  /// Credits one integration step's worth of fluid-model traffic on link
  /// `id` into the same counters the packet datapath maintains: the LinkHot
  /// totals and (for interned groups — pass kInvalidGroupStatsId for
  /// background unicast flows) the per-(group,link) tables. The enqueued
  /// side is bumped by exactly delivered + dropped, so the conservation
  /// invariant (enqueued == delivered + dropped + queued + transmitting)
  /// holds with the fluid backlog living outside these counters.
  HOT_PATH void credit_fluid_link(LinkId id, std::uint32_t gid, units::Bytes delivered_bytes,
                         units::PacketCount delivered_packets, units::Bytes dropped_bytes,
                         units::PacketCount dropped_packets) {
    LinkHot& hot = link_hot_[id];
    hot.enqueued_packets += delivered_packets.count() + dropped_packets.count();
    hot.enqueued_bytes += delivered_bytes.count() + dropped_bytes.count();
    hot.delivered_packets += delivered_packets.count();
    hot.delivered_bytes += delivered_bytes.count();
    hot.dropped_packets += dropped_packets.count();
    hot.dropped_bytes += dropped_bytes.count();
    if (gid != kInvalidGroupStatsId) {
      group_delivered_cell(gid, id) += delivered_bytes.count();
      group_dropped_cell(gid, id) += dropped_packets.count();
    }
  }

  /// Per-(group,link) delivery/drop cells, laid out as one contiguous row per
  /// group so a fan-out over many links stays on one row. Rows exist for
  /// every interned group (intern_group grows them).
  [[nodiscard]] std::uint64_t& group_delivered_cell(std::uint32_t gid, LinkId link) {
    return group_delivered_bytes_[static_cast<std::size_t>(gid) * group_link_stride_ + link];
  }
  [[nodiscard]] std::uint64_t& group_dropped_cell(std::uint32_t gid, LinkId link) {
    return group_dropped_packets_[static_cast<std::size_t>(gid) * group_link_stride_ + link];
  }
  [[nodiscard]] std::uint64_t group_delivered_cell(std::uint32_t gid, LinkId link) const {
    return group_delivered_bytes_[static_cast<std::size_t>(gid) * group_link_stride_ + link];
  }
  [[nodiscard]] std::uint64_t group_dropped_cell(std::uint32_t gid, LinkId link) const {
    return group_dropped_packets_[static_cast<std::size_t>(gid) * group_link_stride_ + link];
  }

  /// --- Wiring ------------------------------------------------------------

  void set_local_sink(NodeId node, std::function<void(const PacketRef&)> sink);
  void set_multicast_forwarder(MulticastForwarder* forwarder) { forwarder_ = forwarder; }

  /// Optional egress filter consulted by send_unicast; returning false drops
  /// the packet before it enters the network. Installed by the fault injector
  /// for targeted control-plane loss (e.g. suggestion-packet drop).
  void set_unicast_filter(std::function<bool(const Packet&)> filter) {
    unicast_filter_ = std::move(filter);
  }

  /// --- Introspection -------------------------------------------------------

  [[nodiscard]] std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }
  /// Node id by name (linear scan; topologies are tens of nodes).
  /// Returns kInvalidNode when no node has that name.
  [[nodiscard]] NodeId find_node(std::string_view name) const;
  /// All links between `a` and `b` in either direction (a duplex pair).
  [[nodiscard]] std::vector<LinkId> links_between(NodeId a, NodeId b) const;
  [[nodiscard]] std::uint32_t link_count() const { return static_cast<std::uint32_t>(links_.size()); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] Link& link(LinkId id) { return *links_[id]; }
  [[nodiscard]] const Link& link(LinkId id) const { return *links_[id]; }
  [[nodiscard]] const RoutingTable& routes() const { return routing_; }
  /// Registers `dst` as a unicast sink (see RoutingTable::add_sink): lookups
  /// toward it share one destination-rooted row instead of materializing a
  /// per-source row per sender. Used by scale-tier scenarios where 100k
  /// receivers unicast reports at one controller.
  void add_routing_sink(NodeId dst) { routing_.add_sink(dst); }
  [[nodiscard]] sim::Simulation& simulation() { return simulation_; }

  /// Fresh globally-unique packet uid.
  [[nodiscard]] std::uint64_t next_packet_uid() { return next_uid_++; }

  /// --- Group stats interning ----------------------------------------------
  /// Dense ids for multicast groups, in first-encounter order. The
  /// per-(group,link) tables index by these instead of hashing GroupAddr per
  /// packet; send_multicast stamps the id into the packet once per send.

  /// Id for `group`, interning it on first sight. The flat table makes the
  /// hit path (every send_multicast) an array load; the miss path lives in
  /// the .cpp.
  [[nodiscard]] std::uint32_t intern_group(GroupAddr group) {
    const std::uint32_t key = group.key();
    if (key < group_stats_table_.size() &&
        group_stats_table_[key] != kInvalidGroupStatsId) {
      return group_stats_table_[key];
    }
    return intern_group_slow(group);
  }
  /// Id for `group`, or kInvalidGroupStatsId when it was never interned.
  [[nodiscard]] std::uint32_t find_group_id(GroupAddr group) const {
    const std::uint32_t key = group.key();
    return key < group_stats_table_.size() ? group_stats_table_[key]
                                           : kInvalidGroupStatsId;
  }
  [[nodiscard]] std::uint32_t group_stats_count() const {
    return static_cast<std::uint32_t>(group_stats_keys_.size());
  }
  /// The GroupAddr behind a dense id (inverse of intern_group).
  [[nodiscard]] GroupAddr group_stats_key(std::uint32_t id) const {
    return group_stats_keys_[id];
  }

 private:
  HOT_PATH_EXEMPT(
      "first-sight group interning: grows the dense id tables once per new group; every "
      "later send takes the inline array-hit path in intern_group")
  [[nodiscard]] std::uint32_t intern_group_slow(GroupAddr group);

  /// Cold diagnostic for the no-route unicast drop. Out of line so the
  /// formatting + logging it does never sits inline in the arrival path.
  HOT_PATH_EXEMPT(
      "cold diagnostic: fires only for unroutable packets during partition windows; "
      "string formatting and stderr logging are off the per-packet contract")
  void log_no_route(const Node& node) const;

  /// The dense id for a multicast packet: the stamp from send_multicast, or
  /// an on-the-fly intern for packets injected below it (tests).
  [[nodiscard]] std::uint32_t stamped_group_id(const Packet& packet) {
    if (packet.group_stats_id != kInvalidGroupStatsId) return packet.group_stats_id;
    return intern_group(packet.group);
  }

  /// A transmission on link `id` finished: deliver or fail the packet, then
  /// pull the next one from the queue or park the transmitter idle.
  HOT_PATH void on_tx_complete(LinkId id, PacketRef packet);

  /// Widens the per-(group,link) tables when links outgrow the row stride.
  void restride_group_tables();

  sim::Simulation& simulation_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  /// Hot datapath state, one cache line per link (see LinkHot).
  std::vector<LinkHot> link_hot_;
  /// Read-only fast-path parameters, parallel to link_hot_.
  std::vector<LinkParams> link_params_;
  RoutingTable routing_;
  MulticastForwarder* forwarder_{nullptr};
  std::function<bool(const Packet&)> unicast_filter_;
  std::uint64_t next_uid_{1};
  std::uint64_t topology_version_{0};
  bool routes_valid_{false};
  /// GroupAddr::key() -> dense id, kInvalidGroupStatsId for never-seen keys.
  /// key() packs (session, layer) into a small integer, so a grow-on-demand
  /// flat table beats a hash map on the per-send hit path.
  std::vector<std::uint32_t> group_stats_table_;
  std::vector<GroupAddr> group_stats_keys_;
  /// Per-(group,link) ground-truth counters: row-per-group flat tables,
  /// cell [gid * stride + link]. Stride grows geometrically with the link
  /// count (links are normally all added before the first group is interned,
  /// so re-striding is a startup-only event).
  std::vector<std::uint64_t> group_delivered_bytes_;
  std::vector<std::uint64_t> group_dropped_packets_;
  std::size_t group_link_stride_{0};
};

}  // namespace tsim::net
