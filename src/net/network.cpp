#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/logging.hpp"

namespace tsim::net {

NodeId Network::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  nodes_.push_back(Node{id, std::move(name), {}, {}});
  routes_valid_ = false;
  return id;
}

LinkId Network::add_link(NodeId from, NodeId to, units::BitsPerSec bandwidth, sim::Time latency,
                         std::size_t queue_limit_packets) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("Network::add_link: unknown node");
  }
  if (bandwidth <= units::BitsPerSec::zero()) {
    throw std::invalid_argument("Network::add_link: bandwidth must be positive");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(std::make_unique<Link>(simulation_, *this, id, from, to, bandwidth,
                                          latency, queue_limit_packets));
  LinkHot hot;
  hot.queue_limit = static_cast<std::uint32_t>(queue_limit_packets);
  link_hot_.push_back(hot);
  link_params_.push_back(LinkParams{bandwidth, latency, to});
  if (link_count() > group_link_stride_ && group_stats_count() > 0) {
    restride_group_tables();
  }
  nodes_[from].out_links.push_back(id);
  routes_valid_ = false;
  return id;
}

std::pair<LinkId, LinkId> Network::add_duplex_link(NodeId a, NodeId b, units::BitsPerSec bandwidth,
                                                   sim::Time latency,
                                                   std::size_t queue_limit_packets) {
  const LinkId ab = add_link(a, b, bandwidth, latency, queue_limit_packets);
  const LinkId ba = add_link(b, a, bandwidth, latency, queue_limit_packets);
  return {ab, ba};
}

void Network::compute_routes() {
  std::vector<EdgeView> edges;
  edges.reserve(links_.size());
  for (const auto& link : links_) {
    if (!link->is_up()) continue;  // failed links carry no routes
    edges.push_back(EdgeView{link->from(), link->to(), link->id(),
                             link->latency().as_seconds()});
  }
  routing_.build(node_count(), edges);
  routes_valid_ = true;
}

void Network::on_topology_changed() {
  ++topology_version_;
  compute_routes();
  if (forwarder_ != nullptr) forwarder_->on_topology_change();
}

NodeId Network::find_node(std::string_view name) const {
  for (const Node& node : nodes_) {
    if (node.name == name) return node.id;
  }
  return kInvalidNode;
}

std::vector<LinkId> Network::links_between(NodeId a, NodeId b) const {
  std::vector<LinkId> result;
  for (const auto& link : links_) {
    if ((link->from() == a && link->to() == b) || (link->from() == b && link->to() == a)) {
      result.push_back(link->id());
    }
  }
  return result;
}

void Network::send_unicast(Packet packet) {
  if (!routes_valid_) throw std::logic_error("Network: compute_routes() not called");
  if (unicast_filter_ && !unicast_filter_(packet)) return;  // injected fault ate it
  packet.multicast = false;
  if (packet.uid == 0) packet.uid = next_packet_uid();
  packet.sent_at = simulation_.now();
  on_packet_arrival(packet.src, PacketRef::make(std::move(packet)));
}

void Network::send_multicast(Packet packet) {
  if (!routes_valid_) throw std::logic_error("Network: compute_routes() not called");
  packet.multicast = true;
  if (packet.uid == 0) packet.uid = next_packet_uid();
  packet.sent_at = simulation_.now();
  packet.group_stats_id = intern_group(packet.group);
  on_packet_arrival(packet.src, PacketRef::make(std::move(packet)));
}

std::uint32_t Network::intern_group_slow(GroupAddr group) {
  const std::uint32_t key = group.key();
  if (key >= group_stats_table_.size()) {
    group_stats_table_.resize(key + 1, kInvalidGroupStatsId);
  }
  const std::uint32_t id = group_stats_count();
  group_stats_table_[key] = id;
  group_stats_keys_.push_back(group);
  // Open this group's row in the per-(group,link) tables. The stride is fixed
  // on first intern (links are normally all present by then); add_link
  // re-strides if the topology keeps growing afterwards.
  if (group_link_stride_ < link_count()) restride_group_tables();
  if (group_link_stride_ == 0) group_link_stride_ = 1;  // keep rows non-empty
  const std::size_t cells = static_cast<std::size_t>(id + 1) * group_link_stride_;
  group_delivered_bytes_.resize(cells, 0);
  group_dropped_packets_.resize(cells, 0);
  return id;
}

void Network::restride_group_tables() {
  // Geometric growth so a stream of add_link calls after the first intern
  // costs amortized O(cells), not O(cells) per link.
  const std::size_t new_stride = std::max<std::size_t>(link_count(), group_link_stride_ * 2);
  const std::uint32_t groups = group_stats_count();
  std::vector<std::uint64_t> delivered(static_cast<std::size_t>(groups) * new_stride, 0);
  std::vector<std::uint64_t> dropped(delivered.size(), 0);
  for (std::uint32_t gid = 0; gid < groups; ++gid) {
    for (std::size_t l = 0; l < group_link_stride_; ++l) {
      delivered[gid * new_stride + l] = group_delivered_bytes_[gid * group_link_stride_ + l];
      dropped[gid * new_stride + l] = group_dropped_packets_[gid * group_link_stride_ + l];
    }
  }
  group_delivered_bytes_ = std::move(delivered);
  group_dropped_packets_ = std::move(dropped);
  group_link_stride_ = new_stride;
}

void Network::on_tx_complete(LinkId id, PacketRef packet) {
  LinkHot& hot = link_hot_[id];
  if ((hot.flags & LinkHot::kUp) == 0) {
    // The link failed while this packet was on the transmitter: it is lost.
    // (A repair may have raced new arrivals into the queue, so keep the
    // transmitter pipeline alive for them either way.)
    links_[id]->count_drop(*packet, /*fault=*/true);
  } else {
    ++hot.delivered_packets;
    hot.delivered_bytes += packet->size_bytes;
    if (packet->multicast) {
      group_delivered_cell(stamped_group_id(*packet), id) += packet->size_bytes;
    }
    // Propagation is pipelined: the next packet starts transmitting while
    // this one is in flight.
    const LinkParams& params = link_params_[id];
    simulation_.after(params.latency, [this, to = params.to, packet = std::move(packet)]() {
      on_packet_arrival(to, packet);
    });
  }

  if (hot.queue_len == 0) {
    hot.flags &= static_cast<std::uint8_t>(~LinkHot::kTransmitting);
    hot.transmitting_bytes = 0;
    // Only RED's EWMA idle decay ever reads the idle timestamp; skipping the
    // Link touch for plain links keeps the idle transition hot-table-only.
    if ((hot.flags & LinkHot::kRed) != 0) links_[id]->note_idle(simulation_.now());
    return;
  }
  PacketRef next = links_[id]->pop_queue();
  --hot.queue_len;
  // transmitting stays set: the transmitter goes straight to the next packet.
  hot.transmitting_bytes = next->size_bytes;
  const sim::Time tx =
      transmission_time_for(next->size_bytes, link_params_[id].bandwidth);
  simulation_.after(tx, [this, id, next = std::move(next)]() { on_tx_complete(id, next); });
}

void Network::on_packet_arrival(NodeId node_id, const PacketRef& packet) {
  Node& node = nodes_[node_id];

  if (packet->multicast) {
    if (forwarder_ == nullptr) return;  // no multicast routing installed
    thread_local std::vector<LinkId> out_links;
    out_links.clear();
    bool deliver_locally = false;
    forwarder_->route(node_id, *packet, out_links, deliver_locally);
    if (deliver_locally && node.local_sink) node.local_sink(packet);
    for (const LinkId link_id : out_links) enqueue(link_id, packet);
    return;
  }

  // Unicast path.
  if (packet->dst == node_id) {
    if (node.local_sink) node.local_sink(packet);
    return;
  }
  const LinkId hop = routing_.next_hop(node_id, packet->dst);
  if (hop == kInvalidLink) {
    log_no_route(node);
    return;
  }
  enqueue(hop, packet);
}

void Network::log_no_route(const Node& node) const {
  // Info, not warn: with fault injection a partitioned network legitimately
  // has unroutable control traffic for the whole outage window.
  sim::Logger::log(sim::LogLevel::kInfo, simulation_.now(), "net",
                   "dropping unicast packet: no route from " + node.name);
}

void Network::set_local_sink(NodeId node, std::function<void(const PacketRef&)> sink) {
  nodes_[node].local_sink = std::move(sink);
}

}  // namespace tsim::net
