#include "net/network.hpp"

#include <stdexcept>
#include <utility>

#include "sim/logging.hpp"

namespace tsim::net {

NodeId Network::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  nodes_.push_back(Node{id, std::move(name), {}, {}});
  routes_valid_ = false;
  return id;
}

LinkId Network::add_link(NodeId from, NodeId to, units::BitsPerSec bandwidth, sim::Time latency,
                         std::size_t queue_limit_packets) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("Network::add_link: unknown node");
  }
  if (bandwidth <= units::BitsPerSec::zero()) {
    throw std::invalid_argument("Network::add_link: bandwidth must be positive");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(std::make_unique<Link>(simulation_, *this, id, from, to, bandwidth,
                                          latency, queue_limit_packets));
  nodes_[from].out_links.push_back(id);
  routes_valid_ = false;
  return id;
}

std::pair<LinkId, LinkId> Network::add_duplex_link(NodeId a, NodeId b, units::BitsPerSec bandwidth,
                                                   sim::Time latency,
                                                   std::size_t queue_limit_packets) {
  const LinkId ab = add_link(a, b, bandwidth, latency, queue_limit_packets);
  const LinkId ba = add_link(b, a, bandwidth, latency, queue_limit_packets);
  return {ab, ba};
}

void Network::compute_routes() {
  std::vector<EdgeView> edges;
  edges.reserve(links_.size());
  for (const auto& link : links_) {
    if (!link->is_up()) continue;  // failed links carry no routes
    edges.push_back(EdgeView{link->from(), link->to(), link->id(),
                             link->latency().as_seconds()});
  }
  routing_.build(node_count(), edges);
  routes_valid_ = true;
}

void Network::on_topology_changed() {
  ++topology_version_;
  compute_routes();
  if (forwarder_ != nullptr) forwarder_->on_topology_change();
}

NodeId Network::find_node(std::string_view name) const {
  for (const Node& node : nodes_) {
    if (node.name == name) return node.id;
  }
  return kInvalidNode;
}

std::vector<LinkId> Network::links_between(NodeId a, NodeId b) const {
  std::vector<LinkId> result;
  for (const auto& link : links_) {
    if ((link->from() == a && link->to() == b) || (link->from() == b && link->to() == a)) {
      result.push_back(link->id());
    }
  }
  return result;
}

void Network::send_unicast(Packet packet) {
  if (!routes_valid_) throw std::logic_error("Network: compute_routes() not called");
  if (unicast_filter_ && !unicast_filter_(packet)) return;  // injected fault ate it
  packet.multicast = false;
  if (packet.uid == 0) packet.uid = next_packet_uid();
  packet.sent_at = simulation_.now();
  on_packet_arrival(packet.src, PacketRef::make(std::move(packet)));
}

void Network::send_multicast(Packet packet) {
  if (!routes_valid_) throw std::logic_error("Network: compute_routes() not called");
  packet.multicast = true;
  if (packet.uid == 0) packet.uid = next_packet_uid();
  packet.sent_at = simulation_.now();
  packet.group_stats_id = intern_group(packet.group);
  on_packet_arrival(packet.src, PacketRef::make(std::move(packet)));
}

std::uint32_t Network::intern_group_slow(GroupAddr group) {
  const std::uint32_t key = group.key();
  if (key >= group_stats_table_.size()) {
    group_stats_table_.resize(key + 1, kInvalidGroupStatsId);
  }
  const std::uint32_t id = group_stats_count();
  group_stats_table_[key] = id;
  group_stats_keys_.push_back(group);
  return id;
}

void Network::on_packet_arrival(NodeId node_id, const PacketRef& packet) {
  Node& node = nodes_[node_id];

  if (packet->multicast) {
    if (forwarder_ == nullptr) return;  // no multicast routing installed
    thread_local std::vector<LinkId> out_links;
    out_links.clear();
    bool deliver_locally = false;
    forwarder_->route(node_id, *packet, out_links, deliver_locally);
    if (deliver_locally && node.local_sink) node.local_sink(packet);
    for (const LinkId link_id : out_links) links_[link_id]->enqueue(packet);
    return;
  }

  // Unicast path.
  if (packet->dst == node_id) {
    if (node.local_sink) node.local_sink(packet);
    return;
  }
  const LinkId hop = routing_.next_hop(node_id, packet->dst);
  if (hop == kInvalidLink) {
    // Info, not warn: with fault injection a partitioned network legitimately
    // has unroutable control traffic for the whole outage window.
    sim::Logger::log(sim::LogLevel::kInfo, simulation_.now(), "net",
                     "dropping unicast packet: no route from " + node.name);
    return;
  }
  links_[hop]->enqueue(packet);
}

void Network::set_local_sink(NodeId node, std::function<void(const PacketRef&)> sink) {
  nodes_[node].local_sink = std::move(sink);
}

}  // namespace tsim::net
