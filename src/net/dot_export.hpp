#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace tsim::net {

/// Renders the network as Graphviz DOT: nodes by name, one edge per duplex
/// pair (or per unidirectional link when no reverse twin exists), labelled
/// with bandwidth and latency. Highlighted edges (e.g. a session tree) are
/// drawn bold/colored.
[[nodiscard]] std::string to_dot(const Network& network,
                                 const std::vector<std::pair<NodeId, NodeId>>& highlight = {});

}  // namespace tsim::net
