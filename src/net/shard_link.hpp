#pragma once

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/shard_executor.hpp"
#include "sim/time.hpp"

namespace tsim::net {

/// Carries packets across a ShardExecutor channel into another shard's
/// Network. The two Networks are separate objects on separate schedulers, so
/// nothing in-flight may be shared: send() deep-copies the packet *fields*
/// (PacketRef storage is thread-local and never crosses shards) and the
/// destination shard re-stamps the per-network state — a fresh uid from its
/// own counter and its own dense group-stats id — before the packet enters at
/// `entry_node` through the normal arrival path.
///
/// The channel's latency models the inter-shard access link; it doubles as
/// the executor's conservative lookahead, so it must be at least the real
/// propagation delay between the two partitions.
class ShardLink {
 public:
  ShardLink(sim::ShardExecutor::Channel& channel, Network& destination, NodeId entry_node)
      : channel_{channel}, destination_{destination}, entry_node_{entry_node} {}

  /// Hands `packet` to the destination shard, arriving at `entry_node` at
  /// `now + latency`. Legal only from the source shard's thread while its
  /// window runs (Channel::post's contract).
  void send(const Packet& packet, sim::Time now) {
    Packet copy = packet;      // deep copy: no PacketRef crosses the boundary
    copy.uid = 0;              // re-stamped from the destination's counter
    copy.group_stats_id = kInvalidGroupStatsId;  // dense ids are per-Network
    const sim::Time arrival = now + channel_.latency();
    channel_.post(arrival, [this, copy = std::move(copy)]() mutable {
      copy.uid = destination_.next_packet_uid();
      if (copy.multicast) copy.group_stats_id = destination_.intern_group(copy.group);
      destination_.on_packet_arrival(entry_node_, PacketRef::make(std::move(copy)));
    });
  }

  [[nodiscard]] NodeId entry_node() const { return entry_node_; }
  [[nodiscard]] sim::Time latency() const { return channel_.latency(); }
  [[nodiscard]] std::uint64_t forwarded() const { return channel_.posted(); }

 private:
  sim::ShardExecutor::Channel& channel_;
  Network& destination_;
  NodeId entry_node_;
};

}  // namespace tsim::net
