#include "net/link.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "net/network.hpp"

namespace tsim::net {

Link::Link(sim::Simulation& simulation, Network& network, LinkId id, NodeId from, NodeId to,
           units::BitsPerSec bandwidth, sim::Time latency, std::size_t queue_limit_packets)
    : simulation_{simulation},
      network_{network},
      id_{id},
      from_{from},
      to_{to},
      bandwidth_{bandwidth},
      latency_{latency},
      queue_limit_{queue_limit_packets},
      red_rng_{simulation.rng_stream("link/" + std::to_string(id))},
      fault_rng_{simulation.rng_stream("fault-loss/" + std::to_string(id))} {}

void Link::enable_red(RedConfig config) {
  red_enabled_ = true;
  red_ = config;
  red_avg_ = 0.0;
}

namespace {
/// Grow-on-demand add into a dense-id-indexed counter array.
void bump_group_counter(std::vector<std::uint64_t>& counters, std::uint32_t id,
                        std::uint64_t delta) {
  if (id >= counters.size()) counters.resize(id + 1, 0);
  counters[id] += delta;
}
}  // namespace

std::uint32_t Link::group_stats_index(const Packet& packet) const {
  if (packet.group_stats_id != kInvalidGroupStatsId) return packet.group_stats_id;
  return network_.intern_group(packet.group);
}

units::Bytes Link::delivered_bytes_for_group(GroupAddr group) const {
  const std::uint32_t id = network_.find_group_id(group);
  if (id == kInvalidGroupStatsId || id >= stats_.delivered_bytes_by_group.size()) {
    return units::Bytes::zero();
  }
  return units::Bytes{stats_.delivered_bytes_by_group[id]};
}

std::uint64_t Link::dropped_packets_for_group(GroupAddr group) const {
  const std::uint32_t id = network_.find_group_id(group);
  if (id == kInvalidGroupStatsId || id >= stats_.dropped_packets_by_group.size()) return 0;
  return stats_.dropped_packets_by_group[id];
}

void Link::count_drop(const Packet& packet, bool fault) {
  ++stats_.dropped_packets;
  stats_.dropped_bytes += units::Bytes{packet.size_bytes};
  if (fault) ++stats_.fault_dropped_packets;
  if (packet.multicast) {
    bump_group_counter(stats_.dropped_packets_by_group, group_stats_index(packet), 1);
  }
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    // The cut loses everything waiting for the transmitter. The packet being
    // transmitted (if any) fails in on_transmission_complete; packets already
    // propagating were past the cut and still arrive downstream.
    while (!queue_.empty()) {
      count_drop(*queue_.front(), /*fault=*/true);
      queue_.pop_front();
    }
    queued_bytes_ = units::Bytes::zero();
  }
}

sim::Time Link::transmission_time(std::uint32_t size_bytes) const {
  const double seconds = units::Bytes{size_bytes}.bits() / bandwidth_.bps();
  return sim::Time::seconds(seconds);
}

void Link::enqueue(const PacketRef& packet) {
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += units::Bytes{packet->size_bytes};

  if (!up_) {
    count_drop(*packet, /*fault=*/true);
    return;
  }
  if (fault_loss_ > 0.0 && fault_rng_.bernoulli(fault_loss_)) {
    count_drop(*packet, /*fault=*/true);
    return;
  }

  if (red_enabled_) {
    // Idle-time decay (Floyd/Jacobson §4): arrivals stop while the link is
    // idle, so the EWMA would otherwise freeze at its last (possibly high)
    // value and spuriously early-drop the first packets of a new burst.
    // Decay by the number of packets that *could* have been transmitted
    // during the idle period, as if each had sampled an empty queue.
    if (!transmitting_ && queue_.empty() && red_avg_ > 0.0) {
      const double slot_s = transmission_time(packet->size_bytes).as_seconds();
      const double idle_s = (simulation_.now() - idle_since_).as_seconds();
      if (slot_s > 0.0 && idle_s > 0.0) {
        red_avg_ *= std::pow(1.0 - red_.queue_weight, idle_s / slot_s);
      }
    }
    // EWMA of the instantaneous queue length, updated per arrival.
    red_avg_ = (1.0 - red_.queue_weight) * red_avg_ +
               red_.queue_weight * static_cast<double>(queue_.size());
    const double min_th = red_.min_threshold_frac * static_cast<double>(queue_limit_);
    const double max_th = red_.max_threshold_frac * static_cast<double>(queue_limit_);
    bool early_drop = false;
    if (red_avg_ >= max_th) {
      early_drop = true;
    } else if (red_avg_ > min_th) {
      const double p = red_.max_drop_probability * (red_avg_ - min_th) / (max_th - min_th);
      early_drop = red_rng_.bernoulli(p);
    }
    if (early_drop) {
      count_drop(*packet, /*fault=*/false);
      return;
    }
  }

  if (!transmitting_) {
    start_transmission(packet);
    return;
  }
  if (queue_.size() >= queue_limit_) {
    count_drop(*packet, /*fault=*/false);
    return;
  }
  queue_.push_back(packet);
  queued_bytes_ += units::Bytes{packet->size_bytes};
}

void Link::start_transmission(const PacketRef& packet) {
  transmitting_ = true;
  transmitting_bytes_ = units::Bytes{packet->size_bytes};
  simulation_.after(transmission_time(packet->size_bytes),
                    [this, packet]() { on_transmission_complete(packet); });
}

void Link::begin_next_or_idle() {
  if (!queue_.empty()) {
    PacketRef next = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= units::Bytes{next->size_bytes};
    transmitting_bytes_ = units::Bytes{next->size_bytes};
    // transmitting_ stays set: the transmitter goes straight to the next packet.
    // The delay must be computed before the capture moves `next` out.
    const sim::Time tx = transmission_time(next->size_bytes);
    simulation_.after(tx, [this, next = std::move(next)]() { on_transmission_complete(next); });
  } else {
    transmitting_ = false;
    transmitting_bytes_ = units::Bytes::zero();
    idle_since_ = simulation_.now();
  }
}

void Link::on_transmission_complete(PacketRef packet) {
  if (!up_) {
    // The link failed while this packet was on the transmitter: it is lost.
    // (A repair may have raced new arrivals into the queue, so keep the
    // transmitter pipeline alive for them either way.)
    count_drop(*packet, /*fault=*/true);
    begin_next_or_idle();
    return;
  }
  ++stats_.delivered_packets;
  stats_.delivered_bytes += units::Bytes{packet->size_bytes};
  if (packet->multicast) {
    bump_group_counter(stats_.delivered_bytes_by_group, group_stats_index(*packet),
                       packet->size_bytes);
  }

  // Propagation is pipelined: the next packet starts transmitting while this
  // one is in flight.
  simulation_.after(latency_, [this, packet = std::move(packet)]() {
    network_.on_packet_arrival(to_, packet);
  });

  begin_next_or_idle();
}

}  // namespace tsim::net
