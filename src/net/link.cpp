#include "net/link.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "net/network.hpp"

namespace tsim::net {

Link::Link(sim::Simulation& simulation, Network& network, LinkId id, NodeId from, NodeId to,
           units::BitsPerSec bandwidth, sim::Time latency, std::size_t queue_limit_packets)
    : simulation_{simulation},
      network_{network},
      id_{id},
      from_{from},
      to_{to},
      bandwidth_{bandwidth},
      latency_{latency},
      queue_limit_{queue_limit_packets},
      red_rng_{simulation.rng_stream("link/" + std::to_string(id))},
      fault_rng_{simulation.rng_stream("fault-loss/" + std::to_string(id))} {}

LinkHot& Link::hot() const { return network_.link_hot(id_); }

void Link::enable_red(RedConfig config) {
  red_enabled_ = true;
  red_ = config;
  red_avg_ = 0.0;
  hot().flags |= LinkHot::kRed;
}

bool Link::is_up() const { return (hot().flags & LinkHot::kUp) != 0; }

bool Link::transmitting() const { return (hot().flags & LinkHot::kTransmitting) != 0; }

units::Bytes Link::transmitting_bytes() const { return units::Bytes{hot().transmitting_bytes}; }

void Link::set_fault_loss(double probability) {
  fault_loss_ = probability;
  if (probability > 0.0) {
    hot().flags |= LinkHot::kFaultLoss;
  } else {
    hot().flags &= static_cast<std::uint8_t>(~LinkHot::kFaultLoss);
  }
}

std::uint32_t Link::group_stats_index(const Packet& packet) const {
  if (packet.group_stats_id != kInvalidGroupStatsId) return packet.group_stats_id;
  return network_.intern_group(packet.group);
}

units::Bytes Link::delivered_bytes_for_group(GroupAddr group) const {
  const std::uint32_t id = network_.find_group_id(group);
  if (id == kInvalidGroupStatsId || id >= network_.group_stats_count()) {
    return units::Bytes::zero();
  }
  return units::Bytes{network_.group_delivered_cell(id, id_)};
}

std::uint64_t Link::dropped_packets_for_group(GroupAddr group) const {
  const std::uint32_t id = network_.find_group_id(group);
  if (id == kInvalidGroupStatsId || id >= network_.group_stats_count()) return 0;
  return network_.group_dropped_cell(id, id_);
}

const LinkStats& Link::stats() const {
  const LinkHot& h = hot();
  stats_.enqueued_packets = h.enqueued_packets;
  stats_.enqueued_bytes = units::Bytes{h.enqueued_bytes};
  stats_.delivered_packets = h.delivered_packets;
  stats_.delivered_bytes = units::Bytes{h.delivered_bytes};
  stats_.dropped_packets = h.dropped_packets;
  stats_.dropped_bytes = units::Bytes{h.dropped_bytes};
  const std::uint32_t groups = network_.group_stats_count();
  stats_.delivered_bytes_by_group.assign(groups, 0);
  stats_.dropped_packets_by_group.assign(groups, 0);
  for (std::uint32_t gid = 0; gid < groups; ++gid) {
    stats_.delivered_bytes_by_group[gid] = network_.group_delivered_cell(gid, id_);
    stats_.dropped_packets_by_group[gid] = network_.group_dropped_cell(gid, id_);
  }
  return stats_;
}

void Link::reset_stats() {
  LinkHot& h = hot();
  h.enqueued_packets = 0;
  h.enqueued_bytes = 0;
  h.delivered_packets = 0;
  h.delivered_bytes = 0;
  h.dropped_packets = 0;
  h.dropped_bytes = 0;
  stats_ = LinkStats{};
  for (std::uint32_t gid = 0; gid < network_.group_stats_count(); ++gid) {
    network_.group_delivered_cell(gid, id_) = 0;
    network_.group_dropped_cell(gid, id_) = 0;
  }
}

void Link::corrupt_accounting_for_test() {
  LinkHot& h = hot();
  h.delivered_packets += 1;
  h.delivered_bytes += 100;
}

void Link::count_drop(const Packet& packet, bool fault) {
  LinkHot& h = hot();
  ++h.dropped_packets;
  h.dropped_bytes += packet.size_bytes;
  if (fault) ++stats_.fault_dropped_packets;
  if (packet.multicast) {
    ++network_.group_dropped_cell(group_stats_index(packet), id_);
  }
}

void Link::set_up(bool up) {
  LinkHot& h = hot();
  if (up == ((h.flags & LinkHot::kUp) != 0)) return;
  if (up) {
    h.flags |= LinkHot::kUp;
    return;
  }
  h.flags &= static_cast<std::uint8_t>(~LinkHot::kUp);
  // The cut loses everything waiting for the transmitter. The packet being
  // transmitted (if any) fails in Network::on_tx_complete; packets already
  // propagating were past the cut and still arrive downstream.
  while (!queue_.empty()) {
    count_drop(*queue_.front(), /*fault=*/true);
    queue_.pop_front();
  }
  h.queue_len = 0;
  queued_bytes_ = units::Bytes::zero();
}

void Link::enqueue(const PacketRef& packet) { network_.enqueue(id_, packet); }

void Link::enqueue_slow(const PacketRef& packet) {
  LinkHot& h = hot();
  if ((h.flags & LinkHot::kUp) == 0) {
    count_drop(*packet, /*fault=*/true);
    return;
  }
  if (fault_loss_ > 0.0 && fault_rng_.bernoulli(fault_loss_)) {
    count_drop(*packet, /*fault=*/true);
    return;
  }

  if (red_enabled_) {
    // Idle-time decay (Floyd/Jacobson §4): arrivals stop while the link is
    // idle, so the EWMA would otherwise freeze at its last (possibly high)
    // value and spuriously early-drop the first packets of a new burst.
    // Decay by the number of packets that *could* have been transmitted
    // during the idle period, as if each had sampled an empty queue.
    if ((h.flags & LinkHot::kTransmitting) == 0 && queue_.empty() && red_avg_ > 0.0) {
      const double slot_s = transmission_time(packet->size_bytes).as_seconds();
      const double idle_s = (simulation_.now() - idle_since_).as_seconds();
      if (slot_s > 0.0 && idle_s > 0.0) {
        red_avg_ *= std::pow(1.0 - red_.queue_weight, idle_s / slot_s);
      }
    }
    // EWMA of the instantaneous queue length, updated per arrival.
    red_avg_ = (1.0 - red_.queue_weight) * red_avg_ +
               red_.queue_weight * static_cast<double>(queue_.size());
    const double min_th = red_.min_threshold_frac * static_cast<double>(queue_limit_);
    const double max_th = red_.max_threshold_frac * static_cast<double>(queue_limit_);
    bool early_drop = false;
    if (red_avg_ >= max_th) {
      early_drop = true;
    } else if (red_avg_ > min_th) {
      const double p = red_.max_drop_probability * (red_avg_ - min_th) / (max_th - min_th);
      early_drop = red_rng_.bernoulli(p);
    }
    if (early_drop) {
      count_drop(*packet, /*fault=*/false);
      return;
    }
  }

  if ((h.flags & LinkHot::kTransmitting) == 0) {
    network_.start_transmission(id_, packet);
    return;
  }
  if (queue_.size() >= queue_limit_) {
    count_drop(*packet, /*fault=*/false);
    return;
  }
  ++h.queue_len;
  push_queue(packet);
}

}  // namespace tsim::net
