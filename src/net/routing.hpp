#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hotpath.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tsim::net {

/// A directed edge view used by the routing computation.
struct EdgeView {
  NodeId from;
  NodeId to;
  LinkId link;
  double cost;  ///< routing metric; we use propagation latency in seconds
};

/// Next-hop routing with per-source rows computed lazily by Dijkstra.
///
/// The seed computed the full all-pairs table eagerly, which is O(V²) memory
/// and O(V·E·logV) build time — at the scale tier's ~10k receivers that is
/// gigabytes of tables rebuilt on every topology change, even though only a
/// handful of nodes ever originate unicast traffic (sources, receivers that
/// report, the controller). Now build() just snapshots the adjacency (CSR
/// layout) and each source's row is computed on first lookup and cached, so
/// memory scales with the nodes that actually send. Rows are invalidated
/// wholesale by the next build().
///
/// Determinism: a row's content depends only on the adjacency snapshot (the
/// per-source Dijkstra relaxation order matches the seed's), never on lookup
/// order. Lookups are logically const; the row cache is a mutable memo.
/// Single-threaded by design, like the Scheduler.
class RoutingTable {
 public:
  /// Snapshots the adjacency for `node_count` nodes and drops all cached
  /// rows. Unreachable pairs get kInvalidLink / +inf cost.
  void build(std::uint32_t node_count, const std::vector<EdgeView>& edges);

  /// Next-hop link id on the path `from` -> `to` (kInvalidLink if none).
  /// Destinations registered with add_sink resolve through their shared
  /// destination-rooted row instead of materializing a per-source row.
  [[nodiscard]] LinkId next_hop(NodeId from, NodeId to) const {
    if (to < sink_registered_.size() && sink_registered_[to]) {
      return sink_row(to).toward[from];
    }
    return row(from).next_hop[to];
  }

  /// Declares `dst` a unicast sink: a node many sources send to (the
  /// controller of a 100k-receiver star, say). next_hop lookups toward a sink
  /// are answered from ONE destination-rooted row (reverse Dijkstra over the
  /// reversed adjacency) instead of one per-source row per sender — per-source
  /// rows are O(V) each, so 100k report senders would otherwise materialize
  /// O(V²) of table. Registration survives build(); the row itself is
  /// recomputed lazily after each build. path()/path_cost are unaffected
  /// (they keep using per-source rows).
  void add_sink(NodeId dst);

  /// Total path cost (sum of edge costs) from -> to; +inf if unreachable.
  [[nodiscard]] double path_cost(NodeId from, NodeId to) const {
    return row(from).cost[to];
  }

  /// Ordered node sequence from -> to, inclusive; empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  [[nodiscard]] std::uint32_t node_count() const { return node_count_; }

  /// Number of per-source rows materialized since the last build() — exposed
  /// so tests and the scale bench can pin the lazy behaviour.
  [[nodiscard]] std::size_t computed_rows() const { return computed_rows_; }

  /// Number of destination-rooted sink rows materialized since the last
  /// build().
  [[nodiscard]] std::size_t computed_sink_rows() const { return computed_sink_rows_; }

 private:
  /// One source's shortest-path tree, flattened for O(1) lookups.
  struct Row {
    std::vector<LinkId> next_hop;
    std::vector<NodeId> next_node;  ///< successor node along the path
    std::vector<double> cost;
  };

  /// One sink's destination-rooted tree: toward[u] is u's first forward link
  /// on its shortest path to the sink (kInvalidLink if unreachable).
  struct SinkRow {
    std::vector<LinkId> toward;
  };

  /// The cached row for `from`, running Dijkstra to materialize it if needed.
  HOT_PATH_EXEMPT(
      "lazy row materialization: the first lookup from a source runs Dijkstra once and "
      "caches the row; the hot path takes the pointer-hit return on line one")
  [[nodiscard]] const Row& row(NodeId from) const;

  /// The cached destination-rooted row for sink `dst`, running reverse
  /// Dijkstra (over the lazily built reversed adjacency) if needed.
  HOT_PATH_EXEMPT(
      "lazy sink-row materialization: first lookup toward a sink runs one reverse "
      "Dijkstra and caches the shared row; later lookups hit the cached pointer")
  [[nodiscard]] const SinkRow& sink_row(NodeId dst) const;

  std::uint32_t node_count_{0};
  /// Adjacency in CSR form: edges of node u are
  /// adj_edges_[adj_offset_[u] .. adj_offset_[u + 1]), in add_link order.
  std::vector<std::uint32_t> adj_offset_;
  std::vector<EdgeView> adj_edges_;
  /// Reversed adjacency (edges grouped by e.to, add_link order within a
  /// group), built lazily on the first sink-row computation after a build().
  mutable std::vector<std::uint32_t> radj_offset_;
  mutable std::vector<EdgeView> radj_edges_;
  mutable bool radj_built_{false};
  /// Lazily materialized rows (memo — see class comment).
  mutable std::vector<std::unique_ptr<Row>> rows_;
  mutable std::size_t computed_rows_{0};
  /// Sink registrations (persist across build) and their memoized rows
  /// (cleared by build, like rows_).
  std::vector<bool> sink_registered_;
  mutable std::vector<std::unique_ptr<SinkRow>> sink_rows_;
  mutable std::size_t computed_sink_rows_{0};
};

}  // namespace tsim::net
