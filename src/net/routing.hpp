#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tsim::net {

/// A directed edge view used by the routing computation.
struct EdgeView {
  NodeId from;
  NodeId to;
  LinkId link;
  double cost;  ///< routing metric; we use propagation latency in seconds
};

/// All-pairs next-hop routing computed with Dijkstra per source node.
/// The simulated topologies are small (tens of nodes), so the O(V·E·logV)
/// build cost is negligible and lookups are O(1) array reads on the hot path.
class RoutingTable {
 public:
  /// Builds next-hop tables for `node_count` nodes over the given edges.
  /// Unreachable pairs get kInvalidLink.
  void build(std::uint32_t node_count, const std::vector<EdgeView>& edges);

  /// Next-hop link id on the path `from` -> `to` (kInvalidLink if none).
  [[nodiscard]] LinkId next_hop(NodeId from, NodeId to) const {
    return next_hop_[static_cast<std::size_t>(from) * node_count_ + to];
  }

  /// Total path cost (sum of edge costs) from -> to; +inf if unreachable.
  [[nodiscard]] double path_cost(NodeId from, NodeId to) const {
    return cost_[static_cast<std::size_t>(from) * node_count_ + to];
  }

  /// Ordered node sequence from -> to, inclusive; empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  [[nodiscard]] std::uint32_t node_count() const { return node_count_; }

 private:
  std::uint32_t node_count_{0};
  std::vector<LinkId> next_hop_;
  std::vector<double> cost_;
  std::vector<NodeId> next_node_;  ///< successor node along the path
};

}  // namespace tsim::net
