#include "net/routing.hpp"

#include <limits>
#include <queue>

namespace tsim::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void RoutingTable::build(std::uint32_t node_count, const std::vector<EdgeView>& edges) {
  node_count_ = node_count;
  const std::size_t n = node_count;
  next_hop_.assign(n * n, kInvalidLink);
  next_node_.assign(n * n, kInvalidNode);
  cost_.assign(n * n, kInf);

  // Adjacency lists.
  std::vector<std::vector<EdgeView>> adj(n);
  for (const EdgeView& e : edges) adj[e.from].push_back(e);

  struct QItem {
    double dist;
    NodeId node;
    bool operator>(const QItem& o) const { return dist > o.dist; }
  };

  std::vector<double> dist(n);
  std::vector<LinkId> first_link(n);
  std::vector<NodeId> first_node(n);
  std::vector<NodeId> prev(n);

  for (NodeId src = 0; src < node_count; ++src) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(first_link.begin(), first_link.end(), kInvalidLink);
    std::fill(first_node.begin(), first_node.end(), kInvalidNode);
    std::fill(prev.begin(), prev.end(), kInvalidNode);
    dist[src] = 0.0;

    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    pq.push({0.0, src});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const EdgeView& e : adj[u]) {
        const double nd = d + e.cost;
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          prev[e.to] = u;
          if (u == src) {
            first_link[e.to] = e.link;
            first_node[e.to] = e.to;
          } else {
            first_link[e.to] = first_link[u];
            first_node[e.to] = first_node[u];
          }
          pq.push({nd, e.to});
        }
      }
    }

    const std::size_t row = static_cast<std::size_t>(src) * n;
    for (NodeId dst = 0; dst < node_count; ++dst) {
      cost_[row + dst] = dist[dst];
      next_hop_[row + dst] = first_link[dst];
      next_node_[row + dst] = first_node[dst];
    }
  }
}

std::vector<NodeId> RoutingTable::path(NodeId from, NodeId to) const {
  std::vector<NodeId> result;
  if (from == to) return {from};
  if (path_cost(from, to) == kInf) return result;
  result.push_back(from);
  NodeId cur = from;
  while (cur != to) {
    cur = next_node_[static_cast<std::size_t>(cur) * node_count_ + to];
    if (cur == kInvalidNode) return {};
    result.push_back(cur);
  }
  return result;
}

}  // namespace tsim::net
