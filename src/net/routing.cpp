#include "net/routing.hpp"

#include <limits>
#include <queue>

namespace tsim::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void RoutingTable::build(std::uint32_t node_count, const std::vector<EdgeView>& edges) {
  node_count_ = node_count;
  const std::size_t n = node_count;

  // CSR adjacency via counting sort, stable in input (add_link) order so the
  // relaxation order — and therefore equal-cost tie-breaking — matches the
  // seed's per-source adjacency lists exactly.
  adj_offset_.assign(n + 1, 0);
  for (const EdgeView& e : edges) ++adj_offset_[e.from + 1];
  for (std::size_t i = 1; i <= n; ++i) adj_offset_[i] += adj_offset_[i - 1];
  adj_edges_.resize(edges.size());
  std::vector<std::uint32_t> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (const EdgeView& e : edges) adj_edges_[cursor[e.from]++] = e;

  rows_.clear();
  rows_.resize(n);
  computed_rows_ = 0;

  radj_offset_.clear();
  radj_edges_.clear();
  radj_built_ = false;
  if (sink_registered_.size() < n) sink_registered_.resize(n, false);
  sink_rows_.clear();
  sink_rows_.resize(sink_registered_.size());
  computed_sink_rows_ = 0;
}

void RoutingTable::add_sink(NodeId dst) {
  if (dst >= sink_registered_.size()) sink_registered_.resize(dst + 1, false);
  if (dst >= sink_rows_.size()) sink_rows_.resize(dst + 1);
  sink_registered_[dst] = true;
}

const RoutingTable::SinkRow& RoutingTable::sink_row(NodeId dst) const {
  std::unique_ptr<SinkRow>& slot = sink_rows_[dst];
  if (slot != nullptr) return *slot;

  const std::size_t n = node_count_;
  if (!radj_built_) {
    // Reversed CSR via the same stable counting sort as build(), grouped by
    // e.to — deterministic relaxation order in add_link order per group.
    radj_offset_.assign(n + 1, 0);
    for (const EdgeView& e : adj_edges_) ++radj_offset_[e.to + 1];
    for (std::size_t i = 1; i <= n; ++i) radj_offset_[i] += radj_offset_[i - 1];
    radj_edges_.resize(adj_edges_.size());
    std::vector<std::uint32_t> cursor(radj_offset_.begin(), radj_offset_.end() - 1);
    for (const EdgeView& e : adj_edges_) radj_edges_[cursor[e.to]++] = e;
    radj_built_ = true;
  }

  auto fresh = std::make_unique<SinkRow>();
  fresh->toward.assign(n, kInvalidLink);
  std::vector<double> dist(n, kInf);
  dist[dst] = 0.0;

  struct QItem {
    double dist;
    NodeId node;
    bool operator>(const QItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  pq.push({0.0, dst});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (std::uint32_t i = radj_offset_[u]; i < radj_offset_[u + 1]; ++i) {
      // Forward edge e.from -> e.to with e.to == u: relaxing it means e.from
      // reaches the sink through u, so e.from's next hop IS this edge.
      const EdgeView& e = radj_edges_[i];
      const double nd = d + e.cost;
      if (nd < dist[e.from]) {
        dist[e.from] = nd;
        fresh->toward[e.from] = e.link;
        pq.push({nd, e.from});
      }
    }
  }

  ++computed_sink_rows_;
  slot = std::move(fresh);
  return *slot;
}

const RoutingTable::Row& RoutingTable::row(NodeId from) const {
  std::unique_ptr<Row>& slot = rows_[from];
  if (slot != nullptr) return *slot;

  const std::size_t n = node_count_;
  auto fresh = std::make_unique<Row>();
  fresh->next_hop.assign(n, kInvalidLink);
  fresh->next_node.assign(n, kInvalidNode);
  fresh->cost.assign(n, kInf);
  std::vector<LinkId>& first_link = fresh->next_hop;
  std::vector<NodeId>& first_node = fresh->next_node;
  std::vector<double>& dist = fresh->cost;
  dist[from] = 0.0;

  struct QItem {
    double dist;
    NodeId node;
    bool operator>(const QItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  pq.push({0.0, from});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (std::uint32_t i = adj_offset_[u]; i < adj_offset_[u + 1]; ++i) {
      const EdgeView& e = adj_edges_[i];
      const double nd = d + e.cost;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        if (u == from) {
          first_link[e.to] = e.link;
          first_node[e.to] = e.to;
        } else {
          first_link[e.to] = first_link[u];
          first_node[e.to] = first_node[u];
        }
        pq.push({nd, e.to});
      }
    }
  }

  ++computed_rows_;
  slot = std::move(fresh);
  return *slot;
}

std::vector<NodeId> RoutingTable::path(NodeId from, NodeId to) const {
  std::vector<NodeId> result;
  if (from == to) return {from};
  if (path_cost(from, to) == kInf) return result;
  result.push_back(from);
  NodeId cur = from;
  while (cur != to) {
    // Each hop's successor toward `to` comes from that hop's own row: rows
    // store the first hop of from->dst, not the predecessor tree.
    cur = row(cur).next_node[to];
    if (cur == kInvalidNode) return {};
    result.push_back(cur);
  }
  return result;
}

}  // namespace tsim::net
