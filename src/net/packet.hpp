#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace tsim::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using SessionId = std::uint16_t;
using LayerId = std::uint8_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// Dense per-Network index of a multicast group for flat stats arrays; see
/// Network::intern_group. Stamped into packets at send_multicast so links
/// never hash a GroupAddr on the per-packet path.
inline constexpr std::uint32_t kInvalidGroupStatsId = static_cast<std::uint32_t>(-1);

/// A multicast group address. The paper's layered model sends every layer of
/// a session on its own multicast address; receivers subscribe cumulatively.
struct GroupAddr {
  SessionId session{0};
  LayerId layer{0};

  [[nodiscard]] friend bool operator==(GroupAddr, GroupAddr) = default;
  [[nodiscard]] friend auto operator<=>(GroupAddr, GroupAddr) = default;
  /// Dense index usable as an array/hash key.
  [[nodiscard]] std::uint32_t key() const {
    return (static_cast<std::uint32_t>(session) << 8) | layer;
  }
};

enum class PacketKind : std::uint8_t {
  kData,            ///< multicast media payload
  kReport,          ///< receiver -> controller loss/byte report (unicast)
  kSuggestion,      ///< controller -> receiver subscription suggestion (unicast)
  kMtraceQuery,     ///< discovery tool -> receiver path query (unicast)
  kMtraceResponse,  ///< receiver -> discovery tool path response (unicast)
  kTcpData,         ///< simplified TCP segment (unicast cross-traffic)
  kTcpAck,          ///< simplified TCP cumulative ACK
  kSummary,         ///< inter-domain controller summary (unicast)
};

/// Number of PacketKind values; keep in sync with the enum above. Lets
/// per-kind state live in flat arrays indexed by the kind instead of hashes.
inline constexpr std::size_t kPacketKindCount =
    static_cast<std::size_t>(PacketKind::kSummary) + 1;

/// Base class for control-plane payloads (defined by higher layers). Packets
/// share payloads by pointer so multicast replication stays O(1) per copy.
struct ControlPayload {
  virtual ~ControlPayload() = default;
};

/// A simulated packet's fields. Callers build one of these per *send*; inside
/// the network it travels behind a PacketRef flyweight, so replication down a
/// multicast tree and the per-hop timer captures copy one pointer, not the
/// struct (and never touch the control shared_ptr's refcount).
struct Packet {
  std::uint64_t uid{0};
  PacketKind kind{PacketKind::kData};
  std::uint32_t size_bytes{0};
  NodeId src{kInvalidNode};
  NodeId dst{kInvalidNode};  ///< unicast destination; kInvalidNode for multicast
  bool multicast{false};
  GroupAddr group{};         ///< valid when multicast
  std::uint32_t seq{0};      ///< per-(session,layer) sequence number
  sim::Time sent_at{};
  std::shared_ptr<const ControlPayload> control{};
  /// Dense stats index of `group` (Network::intern_group), stamped by
  /// send_multicast; kInvalidGroupStatsId until then.
  std::uint32_t group_stats_id{kInvalidGroupStatsId};
};

/// Shared, immutable in-flight packet: one refcounted copy of the fields per
/// send, handed around by 8-byte PacketRef values. The refcount is plain (not
/// atomic) because a simulation is single-threaded by design — parallel
/// benches run one whole simulation per thread, and nodes come from a
/// thread_local pool, so a packet's life never crosses threads.
class PacketRef {
 public:
  PacketRef() = default;

  /// Moves `fields` into pooled shared storage with refcount 1.
  static PacketRef make(Packet&& fields) {
    Node* node = acquire_node();
    node->packet = std::move(fields);
    node->refs = 1;
    return PacketRef{node};
  }

  PacketRef(const PacketRef& other) : node_{other.node_} {
    if (node_ != nullptr) ++node_->refs;
  }
  PacketRef(PacketRef&& other) noexcept : node_{std::exchange(other.node_, nullptr)} {}
  PacketRef& operator=(const PacketRef& other) {
    PacketRef copy{other};
    std::swap(node_, copy.node_);
    return *this;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    std::swap(node_, other.node_);
    return *this;
  }
  ~PacketRef() { release(); }

  [[nodiscard]] explicit operator bool() const { return node_ != nullptr; }
  [[nodiscard]] const Packet& operator*() const { return node_->packet; }
  [[nodiscard]] const Packet* operator->() const { return &node_->packet; }

 private:
  struct Node {
    Packet packet;
    std::uint32_t refs{0};
  };

  explicit PacketRef(Node* node) : node_{node} {}

  void release() {
    if (node_ == nullptr || --node_->refs != 0) return;
    node_->packet.control.reset();  // drop the payload eagerly, keep the node
    pool().push_back(node_);
    node_ = nullptr;
  }

  static std::vector<Node*>& pool() {
    struct Pool {
      std::vector<Node*> free_nodes;
      ~Pool() {
        for (Node* node : free_nodes) delete node;
      }
    };
    thread_local Pool pool;
    return pool.free_nodes;
  }

  static Node* acquire_node() {
    auto& free_nodes = pool();
    if (free_nodes.empty()) return new Node{};
    Node* node = free_nodes.back();
    free_nodes.pop_back();
    return node;
  }

  Node* node_{nullptr};
};

}  // namespace tsim::net

template <>
struct std::hash<tsim::net::GroupAddr> {
  std::size_t operator()(tsim::net::GroupAddr g) const noexcept {
    return std::hash<std::uint32_t>{}(g.key());
  }
};
