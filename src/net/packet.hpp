#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/time.hpp"

namespace tsim::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using SessionId = std::uint16_t;
using LayerId = std::uint8_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// A multicast group address. The paper's layered model sends every layer of
/// a session on its own multicast address; receivers subscribe cumulatively.
struct GroupAddr {
  SessionId session{0};
  LayerId layer{0};

  [[nodiscard]] friend bool operator==(GroupAddr, GroupAddr) = default;
  [[nodiscard]] friend auto operator<=>(GroupAddr, GroupAddr) = default;
  /// Dense index usable as an array/hash key.
  [[nodiscard]] std::uint32_t key() const {
    return (static_cast<std::uint32_t>(session) << 8) | layer;
  }
};

enum class PacketKind : std::uint8_t {
  kData,            ///< multicast media payload
  kReport,          ///< receiver -> controller loss/byte report (unicast)
  kSuggestion,      ///< controller -> receiver subscription suggestion (unicast)
  kMtraceQuery,     ///< discovery tool -> receiver path query (unicast)
  kMtraceResponse,  ///< receiver -> discovery tool path response (unicast)
  kTcpData,         ///< simplified TCP segment (unicast cross-traffic)
  kTcpAck,          ///< simplified TCP cumulative ACK
};

/// Base class for control-plane payloads (defined by higher layers). Packets
/// share payloads by pointer so multicast replication stays O(1) per copy.
struct ControlPayload {
  virtual ~ControlPayload() = default;
};

/// A simulated packet. Kept small and value-semantic: links copy packets when
/// replicating down a multicast tree.
struct Packet {
  std::uint64_t uid{0};
  PacketKind kind{PacketKind::kData};
  std::uint32_t size_bytes{0};
  NodeId src{kInvalidNode};
  NodeId dst{kInvalidNode};  ///< unicast destination; kInvalidNode for multicast
  bool multicast{false};
  GroupAddr group{};         ///< valid when multicast
  std::uint32_t seq{0};      ///< per-(session,layer) sequence number
  sim::Time sent_at{};
  std::shared_ptr<const ControlPayload> control{};
};

}  // namespace tsim::net

template <>
struct std::hash<tsim::net::GroupAddr> {
  std::size_t operator()(tsim::net::GroupAddr g) const noexcept {
    return std::hash<std::uint32_t>{}(g.key());
  }
};
