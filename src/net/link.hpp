#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/hotpath.hpp"
#include "core/units.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace tsim::net {

class Network;

/// Hot per-link state: everything the no-drop datapath (enqueue -> transmit ->
/// deliver) reads or writes per packet, packed into one cache line. The
/// Network owns one dense LinkId-indexed array of these, so a 10k-receiver
/// fan-out sweeps a contiguous 640 KB table instead of chasing 10k
/// heap-scattered Link objects. Cold state (the queue deque, RED/fault
/// machinery, RNGs) stays on the Link and is only touched on the slow paths
/// gated by `flags`.
struct alignas(64) LinkHot {
  /// Datapath gate bits. The fast paths fire only on exact flag values:
  /// `kUp` (idle, healthy) and `kUp|kTransmitting` (busy, healthy); any other
  /// combination — down, RED, or fault-loss — detours to Link's slow path.
  static constexpr std::uint8_t kUp = 1U;
  static constexpr std::uint8_t kTransmitting = 2U;
  static constexpr std::uint8_t kRed = 4U;
  static constexpr std::uint8_t kFaultLoss = 8U;

  std::uint64_t enqueued_packets{0};
  std::uint64_t enqueued_bytes{0};
  std::uint64_t delivered_packets{0};
  std::uint64_t delivered_bytes{0};
  std::uint64_t dropped_packets{0};
  std::uint64_t dropped_bytes{0};
  std::uint32_t transmitting_bytes{0};  ///< size of the packet on the transmitter
  std::uint32_t queue_len{0};           ///< mirrors Link::queue_.size()
  std::uint32_t queue_limit{0};
  std::uint8_t flags{kUp};
};
static_assert(sizeof(LinkHot) == 64, "LinkHot must stay one cache line");

/// Read-only per-link parameters for the fast datapath, dense by LinkId.
/// Written once at add_link; never touched again, so the array shares cleanly.
struct LinkParams {
  units::BitsPerSec bandwidth{};
  sim::Time latency{};
  NodeId to{kInvalidNode};
};

/// Serialization delay of one packet at `bandwidth`. Shared by Link and the
/// Network fast path so both compute bit-identical times.
[[nodiscard]] inline sim::Time transmission_time_for(std::uint32_t size_bytes,
                                                     units::BitsPerSec bandwidth) {
  const double seconds = units::Bytes{size_bytes}.bits() / bandwidth.bps();
  return sim::Time::seconds(seconds);
}

/// Fluid-model queue state for one link. In fluid mode data traffic carries
/// no packets, so this backlog lives beside — not inside — LinkHot (which is
/// pinned to one cache line): the real queue stays empty and control packets
/// traverse it normally. The backlog exists purely to time drop-tail
/// overflow onset; see fluid_queue_step.
struct FluidQueue {
  double backlog_bits{0.0};
};

/// Advances one link's fluid queue by `dt` under aggregate offered rate
/// `offered` against `capacity`, and returns the fraction of offered traffic
/// lost during the step (drop-tail overflow fraction).
///
/// The analytic drop-tail step: while offered <= capacity the backlog drains
/// at (capacity - offered) and nothing is lost. While offered > capacity the
/// backlog fills at (offered - capacity) until it hits the queue limit after
///   t_fill = (limit - backlog) / (offered - capacity);
/// for the remainder of the step the queue overflows, shedding
/// (offered - capacity) * (dt - t_fill) bits, i.e. a loss fraction of
/// overflow / (offered * dt). The queue is a pure accounting device here —
/// fluid traffic sees no queueing delay (documented divergence from the
/// packet model, docs/performance.md).
HOT_PATH [[nodiscard]] inline double fluid_queue_step(FluidQueue& queue,
                                                      units::BitsPerSec offered,
                                                      units::BitsPerSec capacity,
                                                      units::Bytes queue_limit, sim::Time dt) {
  const double dt_s = dt.as_seconds();
  const double rate = offered.bps();
  const double cap = capacity.bps();
  if (rate <= cap) {
    const double drained = (cap - rate) * dt_s;
    queue.backlog_bits = queue.backlog_bits > drained ? queue.backlog_bits - drained : 0.0;
    return 0.0;
  }
  const double limit_bits = queue_limit.bits();
  const double headroom = limit_bits - queue.backlog_bits;
  const double fill_time = headroom > 0.0 ? headroom / (rate - cap) : 0.0;
  if (fill_time >= dt_s) {
    queue.backlog_bits += (rate - cap) * dt_s;
    return 0.0;
  }
  queue.backlog_bits = limit_bits;
  const double overflow_bits = (rate - cap) * (dt_s - fill_time);
  return overflow_bits / (rate * dt_s);
}

/// Per-link counters. `delivered_*` counts packets that finished transmission
/// and were handed to the downstream node; per-group counters give tests and
/// benches ground truth the algorithm itself never sees.
///
/// Since the struct-of-arrays split this is a read-only VIEW materialized by
/// Link::stats(): the live counters are the Network's LinkHot entry and its
/// dense per-(group,link) tables; only `fault_dropped_packets` (slow-path
/// only) accumulates here directly.
struct LinkStats {
  std::uint64_t enqueued_packets{0};
  units::Bytes enqueued_bytes{};
  std::uint64_t delivered_packets{0};
  units::Bytes delivered_bytes{};
  std::uint64_t dropped_packets{0};
  units::Bytes dropped_bytes{};
  std::uint64_t fault_dropped_packets{0};  ///< subset of drops caused by injected faults
  /// Flat per-group counters indexed by the Network's dense group-stats id
  /// (Network::intern_group / group_stats_key). Synced from the Network's
  /// per-(group,link) tables on stats(); query by GroupAddr via
  /// Link::delivered_bytes_for_group / dropped_packets_for_group.
  std::vector<std::uint64_t> delivered_bytes_by_group;
  std::vector<std::uint64_t> dropped_packets_by_group;
};

/// A unidirectional link with finite bandwidth, fixed propagation latency and
/// a drop-tail FIFO queue — the queueing model the paper simulates in ns.
/// Transmission is serialized: one packet occupies the transmitter for
/// size*8/bandwidth seconds, then propagates for `latency` before arriving.
///
/// The per-packet state machine lives in Network (fast paths over the LinkHot
/// array); the Link keeps the queue storage and the slow paths (down links,
/// fault loss, RED) that the flag gate routes here.
class Link {
 public:
  /// Random Early Detection parameters (Floyd/Jacobson); thresholds are
  /// fractions of the queue limit.
  struct RedConfig {
    double min_threshold_frac{0.25};
    double max_threshold_frac{0.75};
    double max_drop_probability{0.1};
    double queue_weight{0.02};  ///< EWMA weight for the average queue length
  };

  Link(sim::Simulation& simulation, Network& network, LinkId id, NodeId from, NodeId to,
       units::BitsPerSec bandwidth, sim::Time latency, std::size_t queue_limit_packets);

  /// Switches the queue from drop-tail to RED. Call before traffic flows.
  void enable_red(RedConfig config);
  [[nodiscard]] bool red_enabled() const { return red_enabled_; }
  [[nodiscard]] double red_average_queue() const { return red_avg_; }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a packet to the link. Drops it (drop-tail) when the queue is full,
  /// unconditionally while the link is down, and with the configured Bernoulli
  /// probability while a lossy-link fault is active. (Forwards to the
  /// Network's datapath; kept so tests can drive a single link directly.)
  void enqueue(const PacketRef& packet);

  /// --- Fault state (driven by fault::FaultInjector) ------------------------

  /// Takes the link down or brings it back up. Going down drains the queue
  /// (every queued packet is dropped) and fails the packet currently being
  /// transmitted; packets already propagating were past the cut and still
  /// arrive. While down the link accepts nothing. The caller is responsible
  /// for recomputing routes (Network::on_topology_changed).
  void set_up(bool up);
  [[nodiscard]] bool is_up() const;

  /// Bernoulli drop probability applied to every enqueue (0 disables). Draws
  /// come from the link's own seeded fault stream, so enabling loss on one
  /// link never perturbs any other component's randomness.
  void set_fault_loss(double probability);
  [[nodiscard]] double fault_loss() const { return fault_loss_; }

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] NodeId from() const { return from_; }
  [[nodiscard]] NodeId to() const { return to_; }
  [[nodiscard]] units::BitsPerSec bandwidth() const { return bandwidth_; }
  [[nodiscard]] sim::Time latency() const { return latency_; }
  [[nodiscard]] std::size_t queue_limit() const { return queue_limit_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] bool transmitting() const;
  /// Counters as a coherent snapshot (synced from the hot table on call).
  [[nodiscard]] const LinkStats& stats() const;
  void reset_stats();

  /// Per-group counters by address (the dense tables are indexed by group id);
  /// 0 for groups this link never saw.
  [[nodiscard]] units::Bytes delivered_bytes_for_group(GroupAddr group) const;
  [[nodiscard]] std::uint64_t dropped_packets_for_group(GroupAddr group) const;

  /// --- Conservation accounting (audited by check::InvariantAuditor) --------
  /// Every packet offered to the link (stats().enqueued_*) is, at any instant,
  /// in exactly one of: delivered, dropped, waiting in the queue, or occupying
  /// the transmitter. Packets propagating after transmission count as
  /// delivered. The auditor checks
  ///   enqueued == delivered + dropped + queued + transmitting
  /// at both packet and byte granularity.
  [[nodiscard]] units::Bytes queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] units::Bytes transmitting_bytes() const;

  /// Test-only: skips a byte credit (and a packet credit) so the conservation
  /// invariants fail — used to prove the auditor detects accounting leaks.
  /// Never call outside tests.
  void corrupt_accounting_for_test();

  /// Serialization delay of one packet at this link's bandwidth.
  [[nodiscard]] sim::Time transmission_time(std::uint32_t size_bytes) const {
    return transmission_time_for(size_bytes, bandwidth_);
  }

  /// --- Internal: Network datapath hooks ------------------------------------

  /// Slow-path enqueue for links with any non-fast flag set (down, fault
  /// loss, RED). The caller has already bumped the enqueued_* counters.
  void enqueue_slow(const PacketRef& packet);

  /// Queue storage ops for the Network datapath; the caller maintains the
  /// LinkHot queue_len mirror.
  void push_queue(const PacketRef& packet) {
    // HOTPATH_ALLOW(container-growth: deque append bounded by the link's queue_limit; block storage is recycled across pops after warmup)
    queue_.push_back(packet);
    queued_bytes_ += units::Bytes{packet->size_bytes};
  }
  [[nodiscard]] PacketRef pop_queue() {
    PacketRef next = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= units::Bytes{next->size_bytes};
    return next;
  }

  /// Records the transmitter going idle (read by the RED EWMA idle decay;
  /// only invoked for RED links — non-RED links never read it).
  void note_idle(sim::Time now) { idle_since_ = now; }

  /// Drop accounting shared by every drop site (tail, RED, fault, down):
  /// bumps the hot drop counters, the fault subset, and the per-group table.
  void count_drop(const Packet& packet, bool fault);

 private:
  /// This link's hot entry in the Network's dense table (slow paths only —
  /// the fast paths index the array directly in Network).
  [[nodiscard]] LinkHot& hot() const;
  /// Dense stats index for a multicast packet: the stamped id, or an
  /// on-the-fly intern for packets that bypassed Network::send_multicast.
  [[nodiscard]] std::uint32_t group_stats_index(const Packet& packet) const;

  sim::Simulation& simulation_;
  Network& network_;
  LinkId id_;
  NodeId from_;
  NodeId to_;
  units::BitsPerSec bandwidth_;
  sim::Time latency_;
  std::size_t queue_limit_;
  std::deque<PacketRef> queue_;
  units::Bytes queued_bytes_{};
  /// Mirror for stats(): hot counters and per-group columns are copied in on
  /// demand; fault_dropped_packets accumulates here directly (slow path only).
  mutable LinkStats stats_;
  bool red_enabled_{false};
  RedConfig red_;
  double red_avg_{0.0};
  sim::Time idle_since_{sim::Time::zero()};  ///< when the transmitter last went idle
  sim::Rng red_rng_;
  double fault_loss_{0.0};
  sim::Rng fault_rng_;
};

}  // namespace tsim::net
