#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace tsim::net {

class Network;

/// Per-link counters. `delivered_*` counts packets that finished transmission
/// and were handed to the downstream node; per-group counters give tests and
/// benches ground truth the algorithm itself never sees.
struct LinkStats {
  std::uint64_t enqueued_packets{0};
  units::Bytes enqueued_bytes{};
  std::uint64_t delivered_packets{0};
  units::Bytes delivered_bytes{};
  std::uint64_t dropped_packets{0};
  units::Bytes dropped_bytes{};
  std::uint64_t fault_dropped_packets{0};  ///< subset of drops caused by injected faults
  /// Flat per-group counters indexed by the Network's dense group-stats id
  /// (Network::intern_group / group_stats_key), grown on demand. Replaces the
  /// seed's std::map<GroupAddr, ...>, which paid a tree walk (and sometimes a
  /// node allocation) on every multicast enqueue/deliver. Query by GroupAddr
  /// via Link::delivered_bytes_for_group / dropped_packets_for_group.
  std::vector<std::uint64_t> delivered_bytes_by_group;
  std::vector<std::uint64_t> dropped_packets_by_group;
};

/// A unidirectional link with finite bandwidth, fixed propagation latency and
/// a drop-tail FIFO queue — the queueing model the paper simulates in ns.
/// Transmission is serialized: one packet occupies the transmitter for
/// size*8/bandwidth seconds, then propagates for `latency` before arriving.
class Link {
 public:
  /// Random Early Detection parameters (Floyd/Jacobson); thresholds are
  /// fractions of the queue limit.
  struct RedConfig {
    double min_threshold_frac{0.25};
    double max_threshold_frac{0.75};
    double max_drop_probability{0.1};
    double queue_weight{0.02};  ///< EWMA weight for the average queue length
  };

  Link(sim::Simulation& simulation, Network& network, LinkId id, NodeId from, NodeId to,
       units::BitsPerSec bandwidth, sim::Time latency, std::size_t queue_limit_packets);

  /// Switches the queue from drop-tail to RED. Call before traffic flows.
  void enable_red(RedConfig config);
  [[nodiscard]] bool red_enabled() const { return red_enabled_; }
  [[nodiscard]] double red_average_queue() const { return red_avg_; }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a packet to the link. Drops it (drop-tail) when the queue is full,
  /// unconditionally while the link is down, and with the configured Bernoulli
  /// probability while a lossy-link fault is active.
  void enqueue(const PacketRef& packet);

  /// --- Fault state (driven by fault::FaultInjector) ------------------------

  /// Takes the link down or brings it back up. Going down drains the queue
  /// (every queued packet is dropped) and fails the packet currently being
  /// transmitted; packets already propagating were past the cut and still
  /// arrive. While down the link accepts nothing. The caller is responsible
  /// for recomputing routes (Network::on_topology_changed).
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  /// Bernoulli drop probability applied to every enqueue (0 disables). Draws
  /// come from the link's own seeded fault stream, so enabling loss on one
  /// link never perturbs any other component's randomness.
  void set_fault_loss(double probability) { fault_loss_ = probability; }
  [[nodiscard]] double fault_loss() const { return fault_loss_; }

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] NodeId from() const { return from_; }
  [[nodiscard]] NodeId to() const { return to_; }
  [[nodiscard]] units::BitsPerSec bandwidth() const { return bandwidth_; }
  [[nodiscard]] sim::Time latency() const { return latency_; }
  [[nodiscard]] std::size_t queue_limit() const { return queue_limit_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] bool transmitting() const { return transmitting_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = LinkStats{}; }

  /// Per-group counters by address (the flat arrays are indexed by dense id);
  /// 0 for groups this link never saw.
  [[nodiscard]] units::Bytes delivered_bytes_for_group(GroupAddr group) const;
  [[nodiscard]] std::uint64_t dropped_packets_for_group(GroupAddr group) const;

  /// --- Conservation accounting (audited by check::InvariantAuditor) --------
  /// Every packet offered to the link (stats().enqueued_*) is, at any instant,
  /// in exactly one of: delivered, dropped, waiting in the queue, or occupying
  /// the transmitter. Packets propagating after transmission count as
  /// delivered. The auditor checks
  ///   enqueued == delivered + dropped + queued + transmitting
  /// at both packet and byte granularity.
  [[nodiscard]] units::Bytes queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] units::Bytes transmitting_bytes() const { return transmitting_bytes_; }

  /// Test-only: skips a byte credit (and a packet credit) so the conservation
  /// invariants fail — used to prove the auditor detects accounting leaks.
  /// Never call outside tests.
  void corrupt_accounting_for_test() {
    stats_.delivered_packets += 1;
    stats_.delivered_bytes += units::Bytes{100};
  }

  /// Serialization delay of one packet at this link's bandwidth.
  [[nodiscard]] sim::Time transmission_time(std::uint32_t size_bytes) const;

 private:
  void start_transmission(const PacketRef& packet);
  void on_transmission_complete(PacketRef packet);
  /// Pulls the next queued packet onto the transmitter, or parks it idle.
  void begin_next_or_idle();
  /// Dense stats index for a multicast packet: the stamped id, or an
  /// on-the-fly intern for packets that bypassed Network::send_multicast.
  [[nodiscard]] std::uint32_t group_stats_index(const Packet& packet) const;

  sim::Simulation& simulation_;
  Network& network_;
  LinkId id_;
  NodeId from_;
  NodeId to_;
  units::BitsPerSec bandwidth_;
  sim::Time latency_;
  std::size_t queue_limit_;
  std::deque<PacketRef> queue_;
  units::Bytes queued_bytes_{};
  units::Bytes transmitting_bytes_{};
  bool transmitting_{false};
  LinkStats stats_;
  bool red_enabled_{false};
  RedConfig red_;
  double red_avg_{0.0};
  sim::Time idle_since_{sim::Time::zero()};  ///< when the transmitter last went idle
  sim::Rng red_rng_;
  bool up_{true};
  double fault_loss_{0.0};
  sim::Rng fault_rng_;

  void count_drop(const Packet& packet, bool fault);
};

}  // namespace tsim::net
