#include "net/dot_export.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace tsim::net {

namespace {

std::string bandwidth_label(double bps) {
  char buf[32];
  if (bps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gMbps", bps / 1e6);
  } else if (bps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3gkbps", bps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gbps", bps);
  }
  return buf;
}

}  // namespace

std::string to_dot(const Network& network,
                   const std::vector<std::pair<NodeId, NodeId>>& highlight) {
  std::set<std::pair<NodeId, NodeId>> highlighted;
  for (const auto& [a, b] : highlight) {
    highlighted.emplace(a, b);
    highlighted.emplace(b, a);
  }

  std::string out = "graph network {\n  node [shape=box, fontsize=10];\n";
  for (NodeId n = 0; n < network.node_count(); ++n) {
    out += "  n" + std::to_string(n) + " [label=\"" + network.node(n).name + "\"];\n";
  }

  // Collapse duplex pairs: emit each undirected edge once.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (LinkId id = 0; id < network.link_count(); ++id) {
    const Link& link = network.link(id);
    const NodeId lo = std::min(link.from(), link.to());
    const NodeId hi = std::max(link.from(), link.to());
    if (!seen.emplace(lo, hi).second) continue;
    char attrs[160];
    const bool hot = highlighted.count({link.from(), link.to()}) != 0;
    std::snprintf(attrs, sizeof(attrs),
                  " [label=\"%s %.0fms\", fontsize=9%s];\n",
                  bandwidth_label(link.bandwidth().bps()).c_str(),
                  link.latency().as_milliseconds(),
                  hot ? ", color=red, penwidth=2" : "");
    out += "  n" + std::to_string(link.from()) + " -- n" + std::to_string(link.to()) + attrs;
  }
  out += "}\n";
  return out;
}

}  // namespace tsim::net
