#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tsim::fault {

/// What a single fault event does. Link faults name their target link by its
/// endpoint node names (faults apply to both directions of a duplex link), so
/// a plan can be authored before — and independently of — the concrete
/// network it will run against; the FaultInjector resolves names to link ids
/// at install time.
enum class FaultKind : std::uint8_t {
  kLinkDown,        ///< hard failure at `at`: queue drained, in-flight packets fail
  kLinkUp,          ///< repair at `at`
  kLinkFlap,        ///< periodic down/up in [at, until) with `period` and `duty`
  kLinkLossy,       ///< Bernoulli(p) drop on every enqueue in [at, until)
  kControllerDown,  ///< controller agent stops computing/sending at `at`
  kControllerUp,    ///< controller restarts (with cleared report state) at `at`
  kSuggestionDrop,  ///< drop suggestion packets with probability p in [at, until)
};

/// One timed event of a fault plan. Which fields are meaningful depends on
/// `kind`; unused fields keep their defaults.
struct FaultEvent {
  FaultKind kind{FaultKind::kLinkDown};
  std::string a;  ///< link endpoint (node name); empty for non-link faults
  std::string b;  ///< other link endpoint
  sim::Time at{sim::Time::zero()};       ///< event time (window start for windowed kinds)
  sim::Time until{sim::Time::max()};     ///< window end (flap, lossy, suggestion drop)
  double probability{0.0};               ///< lossy / suggestion-drop probability
  sim::Time period{sim::Time::zero()};   ///< flap cycle length
  double duty{0.5};                      ///< flap fraction of each cycle spent UP
};

/// A deterministic, schedule-driven fault plan: an ordered list of timed
/// events built fluently (or parsed from a topology file's `fault`
/// directives) and handed to a FaultInjector. The plan itself is pure data —
/// it references nodes by name and knows nothing about the simulator — so it
/// can be validated, printed, and reused across scenarios.
class FaultPlan {
 public:
  /// Hard link failure at `at`; the link stays down until a later link_up.
  FaultPlan& link_down(std::string a, std::string b, sim::Time at);

  /// Repairs a failed link at `at`.
  FaultPlan& link_up(std::string a, std::string b, sim::Time at);

  /// Convenience: failure at `down_at`, repair at `up_at`.
  FaultPlan& link_outage(std::string a, std::string b, sim::Time down_at, sim::Time up_at);

  /// Link flapping in [from, to): each `period` starts with (1-duty)*period
  /// down, then duty*period up; the link is restored to UP at `to`.
  FaultPlan& link_flap(std::string a, std::string b, sim::Time from, sim::Time to,
                       sim::Time period, double duty = 0.5);

  /// Bernoulli packet loss with probability `p` on the link in [from, to).
  FaultPlan& link_lossy(std::string a, std::string b, double p, sim::Time from, sim::Time to);

  /// Controller outage in [from, to): no reports consumed, no suggestions
  /// sent; on restart the controller's report history is gone.
  FaultPlan& controller_outage(sim::Time from, sim::Time to);

  /// Drops controller suggestion packets with probability `p` in [from, to) —
  /// the targeted "suggestions stop arriving" fault of the paper's
  /// resilience argument, without touching data traffic.
  FaultPlan& drop_suggestions(double p, sim::Time from, sim::Time to);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events in insertion order (as authored / parsed).
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

  /// Events stably sorted by start time — the order the injector installs.
  [[nodiscard]] std::vector<FaultEvent> sorted_events() const;

  /// Empty string when the plan is well-formed; otherwise a one-line
  /// description of the first problem (probability out of range, inverted
  /// window, non-positive flap period, ...).
  [[nodiscard]] std::string validate() const;

  /// One-line-per-event human-readable rendering (for CLI banners and logs).
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace tsim::fault
