#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace tsim::fault {

/// Drives a FaultPlan through the event scheduler against a concrete network:
/// resolves node names to links, schedules every event at its absolute time,
/// and — for link failures/repairs — bumps the network's topology epoch so
/// unicast routes are recomputed and multicast trees pruned/re-grafted.
///
/// Controller faults are delivered through an injected hook (a
/// std::function), so this library depends only on sim + net and any
/// control-plane implementation can participate.
///
/// Determinism: every event time comes from the plan, every random draw
/// (lossy links, suggestion drop) comes from seeded per-purpose RNG streams,
/// so two same-seed runs of the same plan are bit-identical.
class FaultInjector {
 public:
  struct Hooks {
    /// Called with false at a controller-down event, true at controller-up.
    std::function<void(bool enabled)> set_controller_enabled;
  };

  struct Stats {
    std::uint64_t link_down_transitions{0};  ///< includes flap cycles
    std::uint64_t link_up_transitions{0};
    std::uint64_t controller_outages{0};
    std::uint64_t suggestions_dropped{0};
  };

  /// Validates and resolves the plan against `network`. Throws
  /// std::invalid_argument on a malformed plan or an unknown node name, and
  /// std::invalid_argument when a named pair has no link between it.
  FaultInjector(sim::Simulation& simulation, net::Network& network, FaultPlan plan,
                Hooks hooks = {});

  /// Schedules every event (idempotent; call once before running the
  /// simulation past the first event time).
  void start();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// True while a suggestion-drop window is active (visible for tests).
  [[nodiscard]] double suggestion_drop_probability() const { return suggestion_drop_p_; }

 private:
  struct ResolvedLinks {
    std::vector<net::LinkId> links;  ///< both directions of the duplex pair
  };

  [[nodiscard]] ResolvedLinks resolve_link(const std::string& a, const std::string& b) const;
  void set_links_up(const ResolvedLinks& links, bool up);
  void schedule_event(const FaultEvent& event);
  void install_suggestion_filter();

  sim::Simulation& simulation_;
  net::Network& network_;
  FaultPlan plan_;
  Hooks hooks_;
  Stats stats_;
  sim::Rng suggestion_rng_;
  double suggestion_drop_p_{0.0};
  bool started_{false};
  bool filter_installed_{false};
};

}  // namespace tsim::fault
