#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace tsim::fault {

FaultPlan& FaultPlan::link_down(std::string a, std::string b, sim::Time at) {
  FaultEvent e;
  e.kind = FaultKind::kLinkDown;
  e.a = std::move(a);
  e.b = std::move(b);
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_up(std::string a, std::string b, sim::Time at) {
  FaultEvent e;
  e.kind = FaultKind::kLinkUp;
  e.a = std::move(a);
  e.b = std::move(b);
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_outage(std::string a, std::string b, sim::Time down_at,
                                  sim::Time up_at) {
  link_down(a, b, down_at);
  return link_up(std::move(a), std::move(b), up_at);
}

FaultPlan& FaultPlan::link_flap(std::string a, std::string b, sim::Time from, sim::Time to,
                                sim::Time period, double duty) {
  FaultEvent e;
  e.kind = FaultKind::kLinkFlap;
  e.a = std::move(a);
  e.b = std::move(b);
  e.at = from;
  e.until = to;
  e.period = period;
  e.duty = duty;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_lossy(std::string a, std::string b, double p, sim::Time from,
                                 sim::Time to) {
  FaultEvent e;
  e.kind = FaultKind::kLinkLossy;
  e.a = std::move(a);
  e.b = std::move(b);
  e.at = from;
  e.until = to;
  e.probability = p;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::controller_outage(sim::Time from, sim::Time to) {
  FaultEvent down;
  down.kind = FaultKind::kControllerDown;
  down.at = from;
  events_.push_back(std::move(down));
  FaultEvent up;
  up.kind = FaultKind::kControllerUp;
  up.at = to;
  events_.push_back(std::move(up));
  return *this;
}

FaultPlan& FaultPlan::drop_suggestions(double p, sim::Time from, sim::Time to) {
  FaultEvent e;
  e.kind = FaultKind::kSuggestionDrop;
  e.at = from;
  e.until = to;
  e.probability = p;
  events_.push_back(std::move(e));
  return *this;
}

std::vector<FaultEvent> FaultPlan::sorted_events() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
  return sorted;
}

std::string FaultPlan::validate() const {
  const auto is_link_fault = [](FaultKind k) {
    return k == FaultKind::kLinkDown || k == FaultKind::kLinkUp ||
           k == FaultKind::kLinkFlap || k == FaultKind::kLinkLossy;
  };
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const std::string where = "fault event " + std::to_string(i) + ": ";
    if (e.at < sim::Time::zero()) return where + "negative time";
    if (is_link_fault(e.kind) && (e.a.empty() || e.b.empty())) {
      return where + "link fault needs two endpoint names";
    }
    switch (e.kind) {
      case FaultKind::kLinkFlap:
        if (e.period <= sim::Time::zero()) return where + "flap period must be positive";
        if (e.duty < 0.0 || e.duty > 1.0) return where + "flap duty must be in [0, 1]";
        if (e.until <= e.at) return where + "flap window must end after it starts";
        break;
      case FaultKind::kLinkLossy:
      case FaultKind::kSuggestionDrop:
        if (e.probability < 0.0 || e.probability > 1.0) {
          return where + "probability must be in [0, 1]";
        }
        if (e.until <= e.at) return where + "loss window must end after it starts";
        break;
      default:
        break;
    }
  }

  // Down/up pairing per link (both directions share one physical link): a
  // second down while already down means two outage schedules overlap, and an
  // up with no preceding down repairs nothing — both are authoring mistakes.
  std::map<std::pair<std::string, std::string>, std::vector<std::pair<sim::Time, bool>>>
      updown;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kLinkDown && e.kind != FaultKind::kLinkUp) continue;
    auto key = e.a < e.b ? std::make_pair(e.a, e.b) : std::make_pair(e.b, e.a);
    updown[std::move(key)].emplace_back(e.at, e.kind == FaultKind::kLinkDown);
  }
  for (const auto& [link, schedule] : updown) {
    std::vector<std::pair<sim::Time, bool>> sorted = schedule;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& x, const auto& y) { return x.first < y.first; });
    bool down = false;
    for (const auto& [at, is_down] : sorted) {
      char when[32];
      std::snprintf(when, sizeof when, "%.1f", at.as_seconds());
      if (is_down && down) {
        return "link " + link.first + "-" + link.second + ": down at t=" + when +
               "s while already down (overlapping down/up schedules)";
      }
      if (!is_down && !down) {
        return "link " + link.first + "-" + link.second + ": up at t=" + when +
               "s without a preceding down";
      }
      down = is_down;
    }
  }
  return {};
}

std::string FaultPlan::summary() const {
  std::string out;
  char buf[160];
  for (const FaultEvent& e : sorted_events()) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
        std::snprintf(buf, sizeof(buf), "t=%.1fs link %s-%s down", e.at.as_seconds(),
                      e.a.c_str(), e.b.c_str());
        break;
      case FaultKind::kLinkUp:
        std::snprintf(buf, sizeof(buf), "t=%.1fs link %s-%s up", e.at.as_seconds(),
                      e.a.c_str(), e.b.c_str());
        break;
      case FaultKind::kLinkFlap:
        std::snprintf(buf, sizeof(buf), "t=[%.1fs,%.1fs) link %s-%s flap period=%.1fs duty=%.2f",
                      e.at.as_seconds(), e.until.as_seconds(), e.a.c_str(), e.b.c_str(),
                      e.period.as_seconds(), e.duty);
        break;
      case FaultKind::kLinkLossy:
        std::snprintf(buf, sizeof(buf), "t=[%.1fs,%.1fs) link %s-%s lossy p=%.3f",
                      e.at.as_seconds(), e.until.as_seconds(), e.a.c_str(), e.b.c_str(),
                      e.probability);
        break;
      case FaultKind::kControllerDown:
        std::snprintf(buf, sizeof(buf), "t=%.1fs controller down", e.at.as_seconds());
        break;
      case FaultKind::kControllerUp:
        std::snprintf(buf, sizeof(buf), "t=%.1fs controller up", e.at.as_seconds());
        break;
      case FaultKind::kSuggestionDrop:
        std::snprintf(buf, sizeof(buf), "t=[%.1fs,%.1fs) drop suggestions p=%.3f",
                      e.at.as_seconds(), e.until.as_seconds(), e.probability);
        break;
    }
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace tsim::fault
