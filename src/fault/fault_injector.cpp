#include "fault/fault_injector.hpp"

#include <stdexcept>
#include <utility>

#include "sim/logging.hpp"

namespace tsim::fault {

FaultInjector::FaultInjector(sim::Simulation& simulation, net::Network& network,
                             FaultPlan plan, Hooks hooks)
    : simulation_{simulation},
      network_{network},
      plan_{std::move(plan)},
      hooks_{std::move(hooks)},
      suggestion_rng_{simulation.rng_stream("fault/suggestion-drop")} {
  const std::string problem = plan_.validate();
  if (!problem.empty()) throw std::invalid_argument("FaultPlan: " + problem);
  // Resolve every link reference eagerly so a typo fails at construction, not
  // halfway through a long run.
  for (const FaultEvent& e : plan_.events()) {
    if (!e.a.empty()) (void)resolve_link(e.a, e.b);
    if ((e.kind == FaultKind::kControllerDown || e.kind == FaultKind::kControllerUp) &&
        !hooks_.set_controller_enabled) {
      throw std::invalid_argument(
          "FaultPlan: controller fault scheduled but no controller hook installed");
    }
  }
}

FaultInjector::ResolvedLinks FaultInjector::resolve_link(const std::string& a,
                                                         const std::string& b) const {
  const net::NodeId na = network_.find_node(a);
  const net::NodeId nb = network_.find_node(b);
  if (na == net::kInvalidNode) throw std::invalid_argument("FaultPlan: unknown node '" + a + "'");
  if (nb == net::kInvalidNode) throw std::invalid_argument("FaultPlan: unknown node '" + b + "'");
  ResolvedLinks resolved;
  resolved.links = network_.links_between(na, nb);
  if (resolved.links.empty()) {
    throw std::invalid_argument("FaultPlan: no link between '" + a + "' and '" + b + "'");
  }
  return resolved;
}

void FaultInjector::set_links_up(const ResolvedLinks& links, bool up) {
  bool changed = false;
  for (const net::LinkId id : links.links) {
    net::Link& link = network_.link(id);
    if (link.is_up() != up) {
      link.set_up(up);
      changed = true;
    }
  }
  if (!changed) return;
  network_.on_topology_changed();
  if (up) {
    ++stats_.link_up_transitions;
  } else {
    ++stats_.link_down_transitions;
  }
  sim::Logger::log(sim::LogLevel::kInfo, simulation_.now(), "fault",
                   up ? "link repaired, routes recomputed" : "link failed, routes recomputed");
}

void FaultInjector::install_suggestion_filter() {
  if (filter_installed_) return;
  filter_installed_ = true;
  network_.set_unicast_filter([this](const net::Packet& packet) {
    if (packet.kind != net::PacketKind::kSuggestion) return true;
    if (suggestion_drop_p_ <= 0.0) return true;
    if (!suggestion_rng_.bernoulli(suggestion_drop_p_)) return true;
    ++stats_.suggestions_dropped;
    return false;
  });
}

void FaultInjector::schedule_event(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kLinkDown: {
      const ResolvedLinks links = resolve_link(event.a, event.b);
      simulation_.at(event.at, [this, links]() { set_links_up(links, false); });
      break;
    }
    case FaultKind::kLinkUp: {
      const ResolvedLinks links = resolve_link(event.a, event.b);
      simulation_.at(event.at, [this, links]() { set_links_up(links, true); });
      break;
    }
    case FaultKind::kLinkFlap: {
      // Precompute the whole transition timetable: each cycle is
      // (1-duty)*period down, then duty*period up; the link is left UP at
      // the window end regardless of where the last cycle was cut off.
      const ResolvedLinks links = resolve_link(event.a, event.b);
      const sim::Time down_span =
          sim::Time::seconds(event.period.as_seconds() * (1.0 - event.duty));
      for (sim::Time cycle = event.at; cycle < event.until; cycle = cycle + event.period) {
        simulation_.at(cycle, [this, links]() { set_links_up(links, false); });
        const sim::Time up_at = cycle + down_span;
        if (up_at < event.until) {
          simulation_.at(up_at, [this, links]() { set_links_up(links, true); });
        }
      }
      simulation_.at(event.until, [this, links]() { set_links_up(links, true); });
      break;
    }
    case FaultKind::kLinkLossy: {
      const ResolvedLinks links = resolve_link(event.a, event.b);
      const double p = event.probability;
      simulation_.at(event.at, [this, links, p]() {
        for (const net::LinkId id : links.links) network_.link(id).set_fault_loss(p);
      });
      simulation_.at(event.until, [this, links]() {
        for (const net::LinkId id : links.links) network_.link(id).set_fault_loss(0.0);
      });
      break;
    }
    case FaultKind::kControllerDown:
      simulation_.at(event.at, [this]() {
        ++stats_.controller_outages;
        hooks_.set_controller_enabled(false);
        sim::Logger::log(sim::LogLevel::kInfo, simulation_.now(), "fault", "controller down");
      });
      break;
    case FaultKind::kControllerUp:
      simulation_.at(event.at, [this]() {
        hooks_.set_controller_enabled(true);
        sim::Logger::log(sim::LogLevel::kInfo, simulation_.now(), "fault", "controller up");
      });
      break;
    case FaultKind::kSuggestionDrop: {
      install_suggestion_filter();
      const double p = event.probability;
      simulation_.at(event.at, [this, p]() { suggestion_drop_p_ = p; });
      simulation_.at(event.until, [this]() { suggestion_drop_p_ = 0.0; });
      break;
    }
  }
}

void FaultInjector::start() {
  if (started_) return;
  started_ = true;
  for (const FaultEvent& event : plan_.sorted_events()) schedule_event(event);
}

}  // namespace tsim::fault
