#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace tsim::sim {

namespace {

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

/// std::push_heap/pop_heap build a max-heap under their comparator; inverting
/// Entry's total order makes the (when, seq) minimum the heap front.
constexpr auto kMinFirst = [](const auto& a, const auto& b) { return b < a; };

}  // namespace

// --- slot pool --------------------------------------------------------------

EventId Scheduler::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    // HOTPATH_ALLOW(throw-expr: scheduling into the past is a programming error; the guard costs one predicted-not-taken branch per schedule)
    throw std::invalid_argument("Scheduler::schedule_at: time is in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    // HOTPATH_ALLOW(container-growth: slot-pool high-water growth; slots recycle through free_slots_, so steady state never reallocates)
    slots_.push_back(Slot{});
  }
  slots_[slot].cancelled = false;
  slots_[slot].cb = std::move(cb);
  const std::uint64_t id = encode(slot, slots_[slot].generation);
  push_entry(Entry{when.as_nanoseconds(), next_seq_++, id});
  return EventId{id};
}

EventId Scheduler::schedule_after(Time delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::cancel(EventId id) {
  if (id.value == 0) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu) - 1;
  const std::uint32_t generation = static_cast<std::uint32_t>(id.value >> 32);
  // Stale handles (event already fired, or never existed) miss on the
  // generation check and are dropped — no tombstone accumulates.
  if (slot >= slots_.size() || slots_[slot].generation != generation) return;
  if (!slots_[slot].cancelled) {
    slots_[slot].cancelled = true;
    ++cancelled_pending_;
  }
}

bool Scheduler::take_front(Callback& out, Time& when) {
  return resolve_entry(pop_min(), out, when);
}

bool Scheduler::resolve_entry(const Entry& entry, Callback& out, Time& when) {
  const std::uint32_t slot = static_cast<std::uint32_t>(entry.id & 0xFFFFFFFFu) - 1;
  const bool cancelled = slots_[slot].cancelled;
  if (cancelled) {
    slots_[slot].cancelled = false;
    slots_[slot].cb = Callback{};
    --cancelled_pending_;
  } else {
    out = std::move(slots_[slot].cb);
    when = Time::nanoseconds(entry.when_ns);
  }
  ++slots_[slot].generation;  // invalidate outstanding handles to this event
  // HOTPATH_ALLOW(container-growth: returns a slot to the free list; capacity is bounded by the slot pool's own high-water mark)
  free_slots_.push_back(slot);
  return !cancelled;
}

// --- queue structure --------------------------------------------------------

void Scheduler::push_entry(Entry entry) {
  ++entries_;
  if (impl_ == QueueImpl::kHeap) {
    // HOTPATH_ALLOW(container-growth: reference heap keeps capacity across pops; appends reallocate only at a new high-water mark)
    overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(), kMinFirst);
    return;
  }

  if (entries_ == 1) {
    // Empty queue: re-anchor the window at this event so small workloads and
    // fresh simulations never pay a migration.
    start_window(entry.when_ns);
    insert_into_bucket(entry, 0);
    return;
  }
  if (entry.when_ns < win_start_ns_) {
    // Only reachable by external scheduling after run_until() advanced the
    // clock into a gap before the current window (never from callbacks, whose
    // now() is inside the window). Rebuild around the new minimum.
    // HOTPATH_ALLOW(container-growth: cold re-base feeding rebuild_window; see the exemption on that function)
    overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(), kMinFirst);
    rebuild_window();
    return;
  }
  const std::size_t idx = bucket_index(entry.when_ns);
  if (idx < bucket_count_) {
    insert_into_bucket(entry, idx);
  } else {
      // HOTPATH_ALLOW(container-growth: far-future park into the overflow heap; capacity persists across migrations)
      overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(), kMinFirst);
  }
}

void Scheduler::insert_into_bucket(Entry entry, std::size_t idx) {
  Bucket& bucket = buckets_[idx];
  if (bucket.entries.empty()) {
    // HOTPATH_ALLOW(container-growth: bucket append; bucket vectors keep their capacity across windows, so steady state is a store + length bump)
    bucket.entries.push_back(entry);
    mark_occupied(idx);
  } else if (bucket.dirty || bucket.entries.back() < entry) {
    // Append blindly: either the bucket already awaits its lazy sort, or the
    // entry extends the sorted suffix anyway.
    // HOTPATH_ALLOW(container-growth: bucket append into retained capacity; see above)
    bucket.entries.push_back(entry);
  } else if (idx == cursor_) {
    // The bucket is draining right now — keep it sorted in place rather than
    // re-sorting the live suffix on every subsequent pop.
    // HOTPATH_ALLOW(container-growth: ordered insert into the draining bucket; bounded by that bucket's live suffix and reuses its capacity)
    bucket.entries.insert(
        std::upper_bound(bucket.entries.begin() + static_cast<std::ptrdiff_t>(bucket.head),
                         bucket.entries.end(), entry),
        entry);
  } else {
    // Not reached yet: defer ordering to one sort when the cursor arrives.
    // HOTPATH_ALLOW(container-growth: bucket append into retained capacity; see above)
    bucket.entries.push_back(entry);
    bucket.dirty = true;
  }
  if (idx < cursor_) cursor_ = idx;
}

void Scheduler::sort_bucket(Bucket& bucket) {
  std::sort(bucket.entries.begin() + static_cast<std::ptrdiff_t>(bucket.head),
            bucket.entries.end());
  bucket.dirty = false;
}

void Scheduler::start_window(std::int64_t anchor_ns) {
  if (bucket_count_ == 0) {
    bucket_count_ = 64;
    buckets_.resize(bucket_count_);
    occupancy_.assign((bucket_count_ + 63) / 64, 0);
  }
  win_start_ns_ = anchor_ns;
  cursor_ = 0;
}

void Scheduler::migrate_overflow() {
  // Pre: every bucket is empty; the overflow heap is not.
  assert(!overflow_.empty());

  // Adapt geometry to the traffic. Bucket width tracks the *mean*
  // inter-execution gap of the window just drained: that measures event
  // density where the cursor actually drains, unlike the span of the parked
  // overflow band (dominated by sparse long-horizon timers) or a per-pop
  // EWMA (sampled here, right after the inter-burst gap that emptied the
  // buckets, so biased wide by orders of magnitude). A width estimated
  // milliseconds wide puts every short-horizon datapath event in the
  // currently-draining bucket, where each pays an ordered-insert memmove —
  // the degenerate case this estimator exists to avoid. Target ~8 events
  // per bucket so cursor-bucket inserts stay a handful of moves.
  if (window_pops_ >= 64) {
    const std::int64_t span = last_pop_when_ns_ - window_first_pop_ns_;
    const std::int64_t mean_gap = span / static_cast<std::int64_t>(window_pops_);
    // Smooth across windows (1/2 weight) so one anomalous window does not
    // whipsaw the geometry; seed with the first window's mean directly.
    window_gap_ewma_ns_ =
        window_gap_ewma_ns_ < 0 ? mean_gap : (window_gap_ewma_ns_ + mean_gap) / 2;
  }
  window_pops_ = 0;
  if (window_gap_ewma_ns_ >= 0) {
    const std::uint64_t width = 8 * static_cast<std::uint64_t>(window_gap_ewma_ns_) + 1;
    shift_ = std::clamp(static_cast<int>(std::bit_width(width)), 0, 40);
    // Size the ring to a multiple of the pending population so the window
    // spans several scheduling horizons: a window of about one horizon would
    // bounce most callback-scheduled events through the overflow heap —
    // paying heap sifts *plus* bucket work. The extra bucket headers cost a
    // few KB.
    const std::size_t target = std::bit_ceil(
        std::clamp<std::size_t>(entries_ * 2, 64, 65536));
    if (target > bucket_count_ || target * 4 < bucket_count_) {
      bucket_count_ = target;
      buckets_.clear();  // all empty; drop capacity together with the resize
      buckets_.resize(bucket_count_);
      occupancy_.assign((bucket_count_ + 63) / 64, 0);
    }
  }

  start_window(overflow_.front().when_ns);

  // Drain every overflow entry that lands in the new window. Heap pops come
  // out in ascending (when, seq) order, so plain appends keep every bucket
  // sorted.
  while (!overflow_.empty()) {
    const Entry& top = overflow_.front();
    const std::size_t idx = bucket_index(top.when_ns);
    if (idx >= bucket_count_) break;
    Bucket& bucket = buckets_[idx];
    if (bucket.entries.empty()) mark_occupied(idx);
    bucket.entries.push_back(top);
    std::pop_heap(overflow_.begin(), overflow_.end(), kMinFirst);
    overflow_.pop_back();
  }
}

void Scheduler::rebuild_window() {
  for (std::size_t idx = next_occupied(0); idx < bucket_count_;
       idx = next_occupied(idx + 1)) {
    Bucket& bucket = buckets_[idx];
    for (std::size_t i = bucket.head; i < bucket.entries.size(); ++i) {
      overflow_.push_back(bucket.entries[i]);
      std::push_heap(overflow_.begin(), overflow_.end(), kMinFirst);
    }
    bucket.entries.clear();
    bucket.head = 0;
    bucket.dirty = false;
    mark_empty(idx);
  }
  migrate_overflow();
}

std::size_t Scheduler::next_occupied(std::size_t from) const {
  if (from >= bucket_count_) return bucket_count_;
  std::size_t word = from >> 6;
  std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (from & 63));
  const std::size_t words = occupancy_.size();
  while (bits == 0) {
    if (++word >= words) return bucket_count_;
    bits = occupancy_[word];
  }
  return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
}

Scheduler::Entry Scheduler::pop_min() {
  Entry entry;
  const bool popped = pop_min_upto(std::numeric_limits<std::int64_t>::max(), entry);
  assert(popped);
  static_cast<void>(popped);
  return entry;
}

bool Scheduler::pop_min_upto(std::int64_t until_ns, Entry& out) {
  // One positioning pass serves both the bound check and the pop, where a
  // peek-then-pop pair would scan the occupancy bitmap and dirty-check the
  // front bucket twice per executed event.
  if (entries_ == 0) return false;
  if (impl_ == QueueImpl::kHeap) {
    if (overflow_.front().when_ns > until_ns) return false;
    std::pop_heap(overflow_.begin(), overflow_.end(), kMinFirst);
    out = overflow_.back();
    overflow_.pop_back();
    --entries_;
    note_popped(out.when_ns);
    return true;
  }
  for (;;) {
    cursor_ = next_occupied(cursor_);
    if (cursor_ < bucket_count_) {
      ensure_sorted(cursor_);
      Bucket& bucket = buckets_[cursor_];
      out = bucket.entries[bucket.head];
      if (out.when_ns > until_ns) return false;
      ++bucket.head;
      if (bucket.head == bucket.entries.size()) {
        bucket.entries.clear();  // keeps capacity for the bucket's next window
        bucket.head = 0;
        mark_empty(cursor_);
      }
      --entries_;
      note_popped(out.when_ns);
      return true;
    }
    migrate_overflow();  // buckets exhausted; the minimum waits in overflow
  }
}

std::int64_t Scheduler::peek_min_when() const {
  if (entries_ == 0) return kNever;
  if (impl_ == QueueImpl::kHeap) return overflow_.front().when_ns;
  // Memoize the scan: committing cursor advancement is purely structural
  // (buckets below the cursor are verified empty), so peek stays logically
  // const while making the subsequent pop_min O(1).
  cursor_ = next_occupied(cursor_);
  if (cursor_ < bucket_count_) {
    ensure_sorted(cursor_);
    const Bucket& bucket = buckets_[cursor_];
    return bucket.entries[bucket.head].when_ns;
  }
  return overflow_.front().when_ns;
}

Time Scheduler::next_event_time() const {
  const std::int64_t when = peek_min_when();
  return when == kNever ? Time::max() : Time::nanoseconds(when);
}

// --- execution --------------------------------------------------------------

bool Scheduler::step() {
  while (entries_ > 0) {
    assert(peek_min_when() >= now_.as_nanoseconds());
    Callback cb;
    Time when;
    if (!take_front(cb, when)) continue;
    now_ = when;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time until) {
  const std::int64_t until_ns = until.as_nanoseconds();
  Entry entry;
  while (pop_min_upto(until_ns, entry)) {
    Callback cb;
    Time when;
    if (!resolve_entry(entry, cb, when)) continue;
    now_ = when;
    ++executed_;
    cb();
  }
  if (now_ < until) now_ = until;
}

}  // namespace tsim::sim
