#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tsim::sim {

EventId Scheduler::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time is in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(cb)});
  return EventId{id};
}

EventId Scheduler::schedule_after(Time delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::cancel(EventId id) {
  if (id.value != 0) cancelled_.insert(id.value);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the callback is `mutable` so it can be
    // moved out before pop (the entry is dead afterwards either way).
    const Entry& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    assert(top.when >= now_);
    now_ = top.when;
    Callback cb = std::move(top.cb);
    queue_.pop();
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    now_ = top.when;
    Callback cb = std::move(top.cb);
    queue_.pop();
    ++executed_;
    cb();
  }
  if (now_ < until) now_ = until;
}

}  // namespace tsim::sim
