#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tsim::sim {

EventId Scheduler::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time is in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  slots_[slot].cancelled = false;
  slots_[slot].cb = std::move(cb);
  const std::uint64_t id = encode(slot, slots_[slot].generation);
  queue_.push(Entry{when, next_seq_++, id});
  return EventId{id};
}

EventId Scheduler::schedule_after(Time delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::cancel(EventId id) {
  if (id.value == 0) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu) - 1;
  const std::uint32_t generation = static_cast<std::uint32_t>(id.value >> 32);
  // Stale handles (event already fired, or never existed) miss on the
  // generation check and are dropped — no tombstone accumulates.
  if (slot >= slots_.size() || slots_[slot].generation != generation) return;
  if (!slots_[slot].cancelled) {
    slots_[slot].cancelled = true;
    ++cancelled_pending_;
  }
}

bool Scheduler::take_front(Callback& out) {
  const std::uint32_t slot = static_cast<std::uint32_t>(queue_.top().id & 0xFFFFFFFFu) - 1;
  const bool cancelled = slots_[slot].cancelled;
  if (cancelled) {
    slots_[slot].cancelled = false;
    slots_[slot].cb = Callback{};
    --cancelled_pending_;
  } else {
    out = std::move(slots_[slot].cb);
  }
  ++slots_[slot].generation;  // invalidate outstanding handles to this event
  free_slots_.push_back(slot);
  queue_.pop();
  return !cancelled;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    const Time when = queue_.top().when;
    assert(when >= now_);
    Callback cb;
    if (!take_front(cb)) continue;
    now_ = when;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time until) {
  while (!queue_.empty()) {
    const Time when = queue_.top().when;
    if (when > until) break;
    Callback cb;
    if (!take_front(cb)) continue;
    now_ = when;
    ++executed_;
    cb();
  }
  if (now_ < until) now_ = until;
}

}  // namespace tsim::sim
