#include "sim/shard_executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tsim::sim {

ShardExecutor::~ShardExecutor() { stop_pool(); }

std::size_t ShardExecutor::add_shard(Simulation& shard) {
  shards_.push_back(&shard);
  return shards_.size() - 1;
}

ShardExecutor::Channel& ShardExecutor::connect(std::size_t from, std::size_t to, Time latency) {
  if (from >= shards_.size() || to >= shards_.size()) {
    throw std::invalid_argument{"ShardExecutor::connect: unknown shard index"};
  }
  if (from == to) {
    throw std::invalid_argument{"ShardExecutor::connect: self-loop channel"};
  }
  if (latency <= Time::zero()) {
    throw std::invalid_argument{"ShardExecutor::connect: latency must be positive"};
  }
  channels_.push_back(
      std::unique_ptr<Channel>{new Channel{channels_.size(), from, to, latency}});
  lookahead_ = std::min(lookahead_, latency);
  return *channels_.back();
}

void ShardExecutor::run_until(Time end) {
  if (shards_.empty()) return;

  // One shard: the plain sequential path, bit-for-bit identical to running
  // the Simulation directly (no windows, no barrier, no pool).
  if (shards_.size() == 1) {
    shards_.front()->run_until(end);
    return;
  }

  // Any throw below (a worker error surfaced at the barrier, or a lookahead
  // violation in drain_channels) must stop and join the pool exactly once
  // before propagating: the destructor's stop_pool() then sees no joinable
  // workers, and the executor stays usable after the caller catches.
  try {
    const std::int64_t end_ns = end.as_nanoseconds();

    // No channels: the shards are fully independent — one window to the end.
    if (channels_.empty()) {
      run_window(end);
      ++windows_;
      return;
    }

    while (cursor_ns_ <= end_ns) {
      // Events with when < bound run this window; run_until is inclusive, so
      // the shards advance to bound - 1ns. The final window runs through `end`
      // itself (bound = end + 1), matching plain run_until semantics.
      const std::int64_t bound_ns =
          std::min(cursor_ns_ + lookahead_.as_nanoseconds(), end_ns + 1);
      run_window(Time::nanoseconds(bound_ns - 1));
      drain_channels(bound_ns);
      cursor_ns_ = bound_ns;
      ++windows_;
    }
  } catch (...) {
    stop_pool();
    throw;
  }
}

void ShardExecutor::run_claimed_shards(Time bound) {
  for (;;) {
    std::size_t index = 0;
    {
      // HOTPATH_ALLOW(lock: shard-claim handshake — one short critical section per shard per window, never per event)
      core::LockGuard lock{mutex_};
      if (next_shard_ >= shards_.size()) return;
      index = next_shard_++;
    }
    try {
      shards_[index]->run_until(bound);
    } catch (...) {
      // HOTPATH_ALLOW(lock: worker-error capture; runs only when a shard's window throws)
      core::LockGuard lock{mutex_};
      // HOTPATH_ALLOW(container-growth: worker-error capture; runs only when a shard's window throws)
      worker_errors_.push_back(std::current_exception());
    }
  }
}

void ShardExecutor::run_window(Time bound) {
  const std::size_t threads =
      config_.threads != 0
          ? config_.threads
          : std::max<std::size_t>(1, std::min<std::size_t>(
                                         shards_.size(), std::thread::hardware_concurrency()));

  if (threads <= 1) {
    // Sequential windows: identical results, no pool machinery.
    for (Simulation* shard : shards_) shard->run_until(bound);
    return;
  }

  if (workers_.empty()) {
    const std::size_t spawn = std::min(threads, shards_.size());
    {
      core::LockGuard lock{mutex_};
      stopping_ = false;
    }
    workers_.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  {
    core::LockGuard lock{mutex_};
    next_shard_ = 0;
    window_bound_ = bound;
    running_workers_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();

  core::UniqueLock lock{mutex_};
  while (running_workers_ != 0) window_done_.wait(lock);
  if (!worker_errors_.empty()) {
    std::exception_ptr first = worker_errors_.front();
    worker_errors_.clear();
    std::rethrow_exception(first);
  }
}

void ShardExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Time bound{};
    {
      core::UniqueLock lock{mutex_};
      while (!stopping_ && generation_ == seen) work_ready_.wait(lock);
      if (stopping_) return;
      seen = generation_;
      bound = window_bound_;
    }
    run_claimed_shards(bound);
    {
      core::LockGuard lock{mutex_};
      if (--running_workers_ == 0) window_done_.notify_all();
    }
  }
}

void ShardExecutor::drain_channels(std::int64_t bound_ns) {
  // Deterministic merge: every pending handoff, ordered by (when, channel id,
  // post sequence). Channel ids and per-channel sequences are stable across
  // runs and thread counts, so the injection order — and therefore the
  // destination scheduler's tie-breaking sequence numbers — is too.
  struct Pending {
    std::int64_t when_ns;
    std::size_t channel;
    std::uint64_t seq;
    std::function<void()>* action;
  };
  std::vector<Pending> pending;
  for (const std::unique_ptr<Channel>& channel : channels_) {
    for (Channel::Message& message : channel->outbox_) {
      const std::int64_t when_ns = message.when.as_nanoseconds();
      if (when_ns < bound_ns) {
        throw std::logic_error{
            "ShardExecutor: channel " + std::to_string(channel->id_) + " posted an action at " +
            message.when.to_string() +
            ", inside the current window — lookahead contract violated"};
      }
      pending.push_back(Pending{when_ns, channel->id_, message.seq, &message.action});
    }
  }
  std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    if (a.channel != b.channel) return a.channel < b.channel;
    return a.seq < b.seq;
  });
  for (const Pending& entry : pending) {
    Simulation& destination = *shards_[channels_[entry.channel]->to_];
    destination.at(Time::nanoseconds(entry.when_ns), std::move(*entry.action));
    ++delivered_;
  }
  for (const std::unique_ptr<Channel>& channel : channels_) channel->outbox_.clear();
}

std::uint64_t ShardExecutor::executed_events() const {
  std::uint64_t total = 0;
  for (const Simulation* shard : shards_) total += shard->scheduler().executed_events();
  return total;
}

void ShardExecutor::stop_pool() {
  {
    core::LockGuard lock{mutex_};
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace tsim::sim
