#pragma once

#include <cstdint>
#include <vector>

#include "core/hotpath.hpp"
#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace tsim::sim {

/// Opaque handle to a scheduled event; used for cancellation. Encodes a slot
/// in the scheduler's cancellation pool plus a generation counter, so handles
/// of already-fired events go stale automatically (cancelling one is a no-op
/// instead of leaking tombstone state, as the seed's cancelled-id set did).
struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] friend bool operator==(EventId, EventId) = default;
};

/// Which event-queue structure backs the scheduler. Both execute events in
/// the identical total order (timestamp, then schedule sequence), so runs are
/// bit-for-bit reproducible across implementations — the equivalence test in
/// tests/sim pins this.
enum class QueueImpl {
  kCalendar,  ///< two-level calendar queue (default; O(1) amortized)
  kHeap,      ///< binary heap — reference implementation, kept for tests
};

/// Discrete-event scheduler: a time-ordered queue of callbacks with
/// deterministic FIFO tie-breaking (events scheduled earlier at the same
/// timestamp fire first). Single-threaded by design — determinism is a core
/// requirement for reproducible experiments; parallelism in the benches comes
/// from running independent simulations on separate threads, each with its
/// own Scheduler.
///
/// Queue structure: a two-level calendar queue (R. Brown, CACM '88 — the
/// structure ns-2 uses). Near-future events live in a ring of time buckets
/// whose occupancy is tracked in a bitmap, so pop scans empty buckets a word
/// at a time; far-future events wait in a sorted overflow band and migrate
/// into fresh buckets when the window advances. Bucket count and width adapt
/// to the pending population at each migration, keeping both dense packet
/// bursts and sparse second-scale timers O(1) amortized per event, where the
/// seed's binary heap paid O(log n) sifts on every operation.
///
/// Allocation behaviour: each pending event lives in a free-listed slot pool
/// whose size is bounded by the maximum number of *concurrently pending*
/// events, not by the total number of events ever scheduled or cancelled.
/// Callbacks up to SmallCallback::kInlineBytes are stored inline in the slot
/// (no per-event heap allocation), and the queue entries are 24-byte PODs —
/// bucket and heap shuffles never move callback storage.
class Scheduler {
 public:
  using Callback = SmallCallback;

  explicit Scheduler(QueueImpl impl = QueueImpl::kCalendar) : impl_{impl} {}

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(Time when, Callback cb);

  /// Schedules `cb` `delay` after the current time.
  EventId schedule_after(Time delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a harmless no-op (the common case when a timer raced its cancellation).
  void cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events at exactly `until` are executed.
  void run_until(Time until);

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] QueueImpl queue_impl() const { return impl_; }
  [[nodiscard]] std::size_t pending_events() const { return entries_ - cancelled_pending_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Size of the cancellation slot pool — bounded by the peak number of
  /// simultaneously pending events. Exposed so tests can pin the bound.
  [[nodiscard]] std::size_t slot_pool_size() const { return slots_.size(); }

  /// --- Pool-consistency accessors (audited by check::InvariantAuditor) -----
  /// Every slot is either on the free list or owned by exactly one queue
  /// entry, so slot_pool_size() == free_slot_count() + queued_entries() holds
  /// between events; cancelled entries still own their slot until popped, so
  /// cancelled_pending() <= queued_entries().
  [[nodiscard]] std::size_t free_slot_count() const { return free_slots_.size(); }
  [[nodiscard]] std::size_t queued_entries() const { return entries_; }
  [[nodiscard]] std::size_t cancelled_pending() const { return cancelled_pending_; }

  /// Earliest pending timestamp, Time::max() when the queue is empty. Never
  /// earlier than now() — schedule_at refuses past times.
  [[nodiscard]] Time next_event_time() const;

  /// Test-only: jumps the clock past pending events so the auditor's
  /// event-in-the-past / monotonic-time invariants fire. Never call outside
  /// tests — it breaks the scheduler's ordering contract by design.
  void corrupt_clock_for_test(Time now) { now_ = now; }

 private:
  /// One queue entry: 24-byte POD so bucket inserts and heap sifts move no
  /// callback storage.
  struct Entry {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint64_t id;  ///< encoded EventId (slot + generation)

    /// The execution total order: timestamp, then schedule sequence (FIFO at
    /// equal timestamps). Both queue implementations order by exactly this.
    [[nodiscard]] friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
      return a.seq < b.seq;
    }
  };
  /// One pending event: its callback plus cancellation state. `generation`
  /// is bumped when the slot is released, so EventIds referring to a previous
  /// occupant miss.
  struct Slot {
    std::uint32_t generation{1};  ///< generation 0 never matches: EventId{0} is null
    bool cancelled{false};
    Callback cb;
  };

  static constexpr std::uint64_t encode(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | (slot + 1);
  }

  /// --- queue structure (behind impl_) --------------------------------------

  void push_entry(Entry entry);
  /// Removes and returns the (when, seq)-minimum entry. Pre: entries_ > 0.
  Entry pop_min();
  /// Pops the minimum entry into `out` if its timestamp is <= `until_ns`;
  /// returns false (leaving the queue untouched) when the queue is empty or
  /// the minimum lies beyond the bound. One positioning pass — the run loop's
  /// peek-then-pop fused.
  HOT_PATH bool pop_min_upto(std::int64_t until_ns, Entry& out);
  /// Releases `entry`'s slot. True when the entry was live (not cancelled);
  /// the callback and fire time are moved to `out` / `when`.
  bool resolve_entry(const Entry& entry, Callback& out, Time& when);
  /// Timestamp of the minimum entry without removing it; INT64_MAX when
  /// empty. Const: scans without committing cursor movement or migrations.
  [[nodiscard]] std::int64_t peek_min_when() const;

  // calendar internals
  void insert_into_bucket(Entry entry, std::size_t idx);
  HOT_PATH_EXEMPT(
      "window (re)anchoring: allocates the bucket array on first use and otherwise just "
      "re-bases the window origin; runs when the calendar empties, never per event")
  void start_window(std::int64_t anchor_ns);
  HOT_PATH_EXEMPT(
      "amortized migration: fires once per fully-drained window to re-bucket the overflow "
      "heap and adapt bucket geometry; its cost is spread over every pop in the window")
  void migrate_overflow();
  HOT_PATH_EXEMPT(
      "cold re-base: only reachable when an external schedule_at lands before the live "
      "window, which callbacks (whose now() is inside the window) can never do")
  void rebuild_window();
  [[nodiscard]] std::size_t bucket_index(std::int64_t when_ns) const {
    return static_cast<std::size_t>((when_ns - win_start_ns_) >> shift_);
  }
  void mark_occupied(std::size_t idx) {
    occupancy_[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
  }
  void mark_empty(std::size_t idx) {
    occupancy_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }
  /// First non-empty bucket at or after `from`; bucket_count_ when none.
  [[nodiscard]] std::size_t next_occupied(std::size_t from) const;

  /// Pops the queue minimum, releasing its cancellation slot. Returns true
  /// when the entry was live (not cancelled); the callback is moved to `out`.
  bool take_front(Callback& out, Time& when);

  Time now_{Time::zero()};
  QueueImpl impl_;
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::size_t entries_{0};  ///< live + cancelled entries across both levels

  /// Calendar level 1: buckets_[i] covers
  /// [win_start + (i << shift), win_start + ((i + 1) << shift)). `head` marks
  /// consumed slots; [head, entries.size()) is sorted ascending unless
  /// `dirty`. Inserts into not-yet-draining buckets are O(1) appends (the
  /// bucket is lazily sorted once when the cursor reaches it), so clustered
  /// timestamps never degenerate into per-insert memmoves; pop is an O(1)
  /// index bump.
  struct Bucket {
    std::vector<Entry> entries;
    std::size_t head{0};
    bool dirty{false};
  };
  /// Mutable so the logically-const peek path can commit a pending lazy sort.
  mutable std::vector<Bucket> buckets_;
  /// Sorts buckets_[idx]'s live suffix if an out-of-order append left it dirty.
  /// Inline dirty check so hot pop/peek paths pay one branch when clean; the
  /// actual sort lives out of line.
  void ensure_sorted(std::size_t idx) const {
    Bucket& bucket = buckets_[idx];
    if (bucket.dirty) sort_bucket(bucket);
  }
  static void sort_bucket(Bucket& bucket);
  std::vector<std::uint64_t> occupancy_;  ///< bit i set <=> buckets_[i] non-empty
  std::size_t bucket_count_{0};           ///< power of two (0 until first use)
  int shift_{20};                         ///< bucket width = 1 << shift_ ns (~1 ms)
  std::int64_t win_start_ns_{0};
  /// Buckets below the cursor are empty. Mutable: peek_min_when() memoizes
  /// its occupancy scan here without changing observable state.
  mutable std::size_t cursor_{0};

  /// Calendar level 2 / heap impl: a binary min-heap on (when, seq). The
  /// calendar parks far-future events here; the reference impl keeps
  /// everything here.
  std::vector<Entry> overflow_;

  /// Execution-density estimate migrate_overflow() sizes bucket width from:
  /// the mean timestamp gap over everything popped since the last migration
  /// (window span / pops), EWMA-smoothed across windows. A *mean over the
  /// whole drained window* is the load-bearing choice: migrations fire
  /// exactly when the buckets run dry, i.e. right after the longest
  /// inter-burst gap in the workload, so any instantaneous estimator (the
  /// previous per-pop EWMA) systematically samples at its most inflated
  /// moment. Under a 10k-receiver fan-out that inflated a ~0.4 us true mean
  /// gap to ~1 ms, producing buckets wider than the tx+latency horizon —
  /// every completion then ordered-inserted its arrival into the bucket
  /// being drained, degenerating the calendar into one giant sorted array
  /// (terabytes of memmove over a bench run). Derived purely from popped
  /// timestamps, so it is deterministic and identical across queue
  /// implementations.
  std::int64_t window_gap_ewma_ns_{-1};  ///< -1 until the first full window
  std::int64_t last_pop_when_ns_{0};
  std::int64_t window_first_pop_ns_{0};  ///< first pop of the current window
  std::uint64_t window_pops_{0};         ///< pops since the last migration
  void note_popped(std::int64_t when_ns) {
    if (window_pops_ == 0) window_first_pop_ns_ = when_ns;
    last_pop_when_ns_ = when_ns;
    ++window_pops_;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t cancelled_pending_{0};
};

}  // namespace tsim::sim
