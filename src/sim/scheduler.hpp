#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace tsim::sim {

/// Opaque handle to a scheduled event; used for cancellation. Encodes a slot
/// in the scheduler's cancellation pool plus a generation counter, so handles
/// of already-fired events go stale automatically (cancelling one is a no-op
/// instead of leaking tombstone state, as the seed's cancelled-id set did).
struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] friend bool operator==(EventId, EventId) = default;
};

/// Discrete-event scheduler: a time-ordered queue of callbacks with
/// deterministic FIFO tie-breaking (events scheduled earlier at the same
/// timestamp fire first). Single-threaded by design — determinism is a core
/// requirement for reproducible experiments; parallelism in the benches comes
/// from running independent simulations on separate threads, each with its
/// own Scheduler.
///
/// Allocation behaviour: each pending event lives in a free-listed slot pool
/// whose size is bounded by the maximum number of *concurrently pending*
/// events, not by the total number of events ever scheduled or cancelled.
/// Callbacks up to SmallCallback::kInlineBytes are stored inline in the slot
/// (no per-event heap allocation), and the priority-queue entries are 24-byte
/// PODs — heap sifts never move callback storage.
class Scheduler {
 public:
  using Callback = SmallCallback;

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(Time when, Callback cb);

  /// Schedules `cb` `delay` after the current time.
  EventId schedule_after(Time delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a harmless no-op (the common case when a timer raced its cancellation).
  void cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events at exactly `until` are executed.
  void run_until(Time until);

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_pending_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Size of the cancellation slot pool — bounded by the peak number of
  /// simultaneously pending events. Exposed so tests can pin the bound.
  [[nodiscard]] std::size_t slot_pool_size() const { return slots_.size(); }

  /// --- Pool-consistency accessors (audited by check::InvariantAuditor) -----
  /// Every slot is either on the free list or owned by exactly one queue
  /// entry, so slot_pool_size() == free_slot_count() + queued_entries() holds
  /// between events; cancelled entries still own their slot until popped, so
  /// cancelled_pending() <= queued_entries().
  [[nodiscard]] std::size_t free_slot_count() const { return free_slots_.size(); }
  [[nodiscard]] std::size_t queued_entries() const { return queue_.size(); }
  [[nodiscard]] std::size_t cancelled_pending() const { return cancelled_pending_; }

  /// Earliest pending timestamp, Time::max() when the queue is empty. Never
  /// earlier than now() — schedule_at refuses past times.
  [[nodiscard]] Time next_event_time() const {
    return queue_.empty() ? Time::max() : queue_.top().when;
  }

  /// Test-only: jumps the clock past pending events so the auditor's
  /// event-in-the-past / monotonic-time invariants fire. Never call outside
  /// tests — it breaks the scheduler's ordering contract by design.
  void corrupt_clock_for_test(Time now) { now_ = now; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint64_t id;  ///< encoded EventId (slot + generation)
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// One pending event: its callback plus cancellation state. `generation`
  /// is bumped when the slot is released, so EventIds referring to a previous
  /// occupant miss.
  struct Slot {
    std::uint32_t generation{1};  ///< generation 0 never matches: EventId{0} is null
    bool cancelled{false};
    Callback cb;
  };

  static constexpr std::uint64_t encode(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | (slot + 1);
  }

  /// Pops the queue front, releasing its cancellation slot. Returns true when
  /// the entry was live (not cancelled); the callback is moved to `out`.
  bool take_front(Callback& out);

  Time now_{Time::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t cancelled_pending_{0};
};

}  // namespace tsim::sim
