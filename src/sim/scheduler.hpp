#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace tsim::sim {

/// Opaque handle to a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] friend bool operator==(EventId, EventId) = default;
};

/// Discrete-event scheduler: a time-ordered queue of callbacks with
/// deterministic FIFO tie-breaking (events scheduled earlier at the same
/// timestamp fire first). Single-threaded by design — determinism is a core
/// requirement for reproducible experiments; parallelism in the benches comes
/// from running independent simulations on separate threads, each with its
/// own Scheduler.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId schedule_at(Time when, Callback cb);

  /// Schedules `cb` `delay` after the current time.
  EventId schedule_after(Time delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a harmless no-op (the common case when a timer raced its cancellation).
  void cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events at exactly `until` are executed.
  void run_until(Time until);

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint64_t id;
    // Shared ownership not needed: callbacks are moved into the entry.
    mutable Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_{Time::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace tsim::sim
