#pragma once

#include <cstdint>
#include <compare>
#include <concepts>
#include <limits>
#include <string>

namespace tsim::sim {

/// Simulation time, stored as integer nanoseconds for exact, deterministic
/// arithmetic. All simulator components share this clock; there is no
/// wall-clock anywhere in the library.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors. Fractional inputs are rounded to the nearest
  /// nanosecond, which is far below any timescale the simulation models.
  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t us) { return Time{us * 1'000}; }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
  template <std::integral T>
  [[nodiscard]] static constexpr Time seconds(T s) {
    return Time{static_cast<std::int64_t>(s) * 1'000'000'000};
  }
  [[nodiscard]] static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double as_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) { ns_ += rhs.ns_; return *this; }
  constexpr Time& operator-=(Time rhs) { ns_ -= rhs.ns_; return *this; }

  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  [[nodiscard]] friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  [[nodiscard]] friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  /// "12.345s"-style rendering for logs and traces.
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

namespace time_literals {
constexpr Time operator""_s(unsigned long long v) {
  return Time::seconds(static_cast<std::int64_t>(v));
}
constexpr Time operator""_ms(unsigned long long v) {
  return Time::milliseconds(static_cast<std::int64_t>(v));
}
constexpr Time operator""_us(unsigned long long v) {
  return Time::microseconds(static_cast<std::int64_t>(v));
}
constexpr Time operator""_ns(unsigned long long v) {
  return Time::nanoseconds(static_cast<std::int64_t>(v));
}
}  // namespace time_literals

}  // namespace tsim::sim
