#include "sim/logging.hpp"

#include <cstdio>

namespace tsim::sim {

std::string Time::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", as_seconds());
  return buf;
}

LogLevel& Logger::level_ref() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

LogLevel Logger::level() { return level_ref(); }
void Logger::set_level(LogLevel level) { level_ref() = level; }

void Logger::log(LogLevel level, Time now, std::string_view component,
                 std::string_view message) {
  if (level < level_ref()) return;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%12.6fs] %-5s %.*s: %.*s\n", now.as_seconds(),
               kNames[static_cast<int>(level)], static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace tsim::sim
