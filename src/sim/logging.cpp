#include "sim/logging.hpp"

#include <cstdio>

namespace tsim::sim {

std::string Time::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", as_seconds());
  return buf;
}

std::atomic<LogLevel>& Logger::level_ref() {
  // Atomic, not bare: the level is read from every shard worker thread while
  // tests/tools may set it from the main thread. Relaxed ordering suffices —
  // the level gates diagnostics only, never simulation state.
  static std::atomic<LogLevel> level{LogLevel::kWarn};  // NOLINT(shared-mutable-static) atomic by design
  return level;
}

LogLevel Logger::level() { return level_ref().load(std::memory_order_relaxed); }
void Logger::set_level(LogLevel level) {
  level_ref().store(level, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, Time now, std::string_view component,
                 std::string_view message) {
  if (level < level_ref().load(std::memory_order_relaxed)) return;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%12.6fs] %-5s %.*s: %.*s\n", now.as_seconds(),
               kNames[static_cast<int>(level)], static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace tsim::sim
