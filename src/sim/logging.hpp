#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace tsim::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Minimal leveled logger for simulator internals. Quiet by default so that
/// bench output stays machine-parseable; tests and examples raise the level
/// when debugging a scenario.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Logs `[  12.345s] component: message` to stderr when enabled.
  static void log(LogLevel level, Time now, std::string_view component, std::string_view message);

 private:
  static std::atomic<LogLevel>& level_ref();
};

}  // namespace tsim::sim
