#pragma once

#include <cstdint>
#include <string_view>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tsim::sim {

/// The simulation context shared by every component: the event scheduler and
/// the master random seed. Components hold a `Simulation&` for their whole
/// lifetime; the Simulation outlives everything built on top of it.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : seed_{seed} {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] Time now() const { return scheduler_.now(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  EventId at(Time when, Scheduler::Callback cb) {
    return scheduler_.schedule_at(when, std::move(cb));
  }
  EventId after(Time delay, Scheduler::Callback cb) {
    return scheduler_.schedule_after(delay, std::move(cb));
  }
  void cancel(EventId id) { scheduler_.cancel(id); }

  /// Independent random stream for a named component.
  [[nodiscard]] Rng rng_stream(std::string_view label) const {
    return Rng{seed_}.fork(label);
  }

  void run_until(Time until) { scheduler_.run_until(until); }

 private:
  std::uint64_t seed_;
  Scheduler scheduler_;
};

}  // namespace tsim::sim
