#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tsim::sim {

/// Move-only callable with inline storage: the scheduler's replacement for
/// std::function<void()>. Every simulated packet schedules two events whose
/// closures capture the packet — since the PacketRef flyweight that is an
/// 8-byte handle, so the hot-path captures are [this, PacketRef] = 16 bytes.
/// Callables up to kInlineBytes live inside the event entry itself; larger
/// ones fall back to the heap (rare: one-shot setup/fault lambdas and
/// oversized captures in tests/benches).
class SmallCallback {
 public:
  /// Sized for [this, PacketRef, two words of context]; keeps the
  /// scheduler's Slot (callback + cancellation state) to one cache line.
  static constexpr std::size_t kInlineBytes = 40;

  SmallCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallCallback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(other.buffer_, buffer_);
      other.ops_ = nullptr;
    }
  }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buffer_, buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void operator()() { ops_->invoke(buffer_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into dst from src, then destroy src.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* storage) { (*std::launder(static_cast<Fn*>(storage)))(); },
      [](void* src, void* dst) noexcept {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) noexcept { std::launder(static_cast<Fn*>(storage))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* storage) { (**std::launder(static_cast<Fn**>(storage)))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
      [](void* storage) noexcept { delete *std::launder(static_cast<Fn**>(storage)); }};

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  const Ops* ops_{nullptr};
};

}  // namespace tsim::sim
