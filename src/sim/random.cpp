#include "sim/random.hpp"

#include <cmath>

namespace tsim::sim {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over the label, mixed into the parent seed to derive child streams.
constexpr std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_{seed} {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng Rng::fork(std::string_view label) const {
  std::uint64_t mix = seed_;
  mix ^= hash_label(label) + 0x9E3779B97F4A7C15ULL + (mix << 6) + (mix >> 2);
  return Rng{mix};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free Lemire-style bounded draw; bias is negligible for the
  // span sizes used in the simulator but we debias anyway.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace tsim::sim
