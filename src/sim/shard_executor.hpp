#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/hotpath.hpp"
#include "core/mutex.hpp"
#include "core/thread_annotations.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace tsim::sim {

/// Conservative-lookahead parallel runner for a set of otherwise independent
/// Simulations ("shards"). Each shard keeps its own single-threaded Scheduler
/// — nothing inside a shard changes — and the executor advances all shards in
/// lock-step windows no wider than the smallest cross-shard channel latency.
/// Any event a shard emits for another shard during a window therefore lands
/// at or after the *next* window boundary, so shards never see each other
/// mid-window and every window can run on its own thread.
///
/// Determinism contract:
///  - A single registered shard runs through the plain `Simulation::run_until`
///    path, bit-for-bit identical to not using the executor at all.
///  - Multi-shard runs are bit-for-bit identical for every thread count
///    (including 1): each shard's intra-window execution is sequential, and
///    handoffs are merged at the barrier in (when, channel id, post sequence)
///    order by a single thread before any shard resumes.
///
/// Handoffs are *actions*, not packets: the poster captures whatever state it
/// needs **by value** and the action runs later on the destination shard's
/// thread (see net::ShardLink for the packet adapter). Captured state must not
/// reference source-shard objects — PacketRef, for one, is backed by a
/// thread-local pool and must never cross shards.
///
/// Threading model (statically enforced — see docs/sharding.md): everything
/// the worker pool shares is guarded by `mutex_` and annotated TS_GUARDED_BY,
/// so a Clang `-Wthread-safety` build proves lock discipline at compile time;
/// the TSan shard gate in CI validates the same contract dynamically.
class ShardExecutor {
 public:
  struct Config {
    /// Worker threads for shard windows. 0 picks min(shards, hardware
    /// concurrency); 1 runs shards sequentially on the calling thread (same
    /// results, no pool).
    std::size_t threads{0};
  };

  /// A one-way handoff queue between two shards with a fixed minimum latency.
  /// post() is legal only from the source shard's thread while its window is
  /// running (each channel has exactly one posting shard, so no lock is
  /// needed); the executor drains every channel at the window barrier, on the
  /// barrier thread, after every worker has parked — the two phases never
  /// overlap, which is why `outbox_` needs no capability of its own.
  class Channel {
   public:
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Queues `action` to run in the destination shard at absolute time
    /// `when`. The lookahead contract requires `when >= post time + latency()`
    /// — the barrier throws std::logic_error on violations rather than
    /// silently reordering history.
    void post(Time when, std::function<void()> action) {
      outbox_.push_back(Message{when, next_seq_++, std::move(action)});
    }

    [[nodiscard]] Time latency() const { return latency_; }
    [[nodiscard]] std::size_t source() const { return from_; }
    [[nodiscard]] std::size_t destination() const { return to_; }
    [[nodiscard]] std::uint64_t posted() const { return next_seq_; }

   private:
    friend class ShardExecutor;
    struct Message {
      Time when{};
      std::uint64_t seq{0};
      std::function<void()> action;
    };

    Channel(std::size_t id, std::size_t from, std::size_t to, Time latency)
        : id_{id}, from_{from}, to_{to}, latency_{latency} {}

    std::size_t id_;
    std::size_t from_;
    std::size_t to_;
    Time latency_;
    std::uint64_t next_seq_{0};
    std::vector<Message> outbox_;
  };

  ShardExecutor() = default;
  explicit ShardExecutor(Config config) : config_{config} {}
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;
  ~ShardExecutor();

  /// Registers a shard; returns its index. All shards must be registered
  /// before the first run_until. The executor does not own the Simulation.
  std::size_t add_shard(Simulation& shard);

  /// Declares a handoff channel from shard `from` to shard `to` whose
  /// messages take at least `latency` to arrive. The smallest latency across
  /// all channels becomes the window width (the conservative lookahead).
  /// Throws std::invalid_argument on self-loops, unknown shards, or a
  /// non-positive latency.
  Channel& connect(std::size_t from, std::size_t to, Time latency);

  /// Advances every shard to `end` (events at exactly `end` execute, matching
  /// Simulation::run_until). Callable repeatedly with increasing bounds.
  /// If a window or the barrier throws (worker error, lookahead violation),
  /// the pool is stopped and joined before the exception propagates, so the
  /// executor is left destructible and restartable with no joinable threads.
  HOT_PATH_EXEMPT(
      "coordinator entry: owns per-window pool setup/teardown, not per-event work; it is "
      "reached from the hot worker loop only through name over-approximation of "
      "Simulation::run_until on the claimed shard")
  void run_until(Time end);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Time lookahead() const { return lookahead_; }
  /// Scheduler events executed, summed over all shards.
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }

 private:
  void run_window(Time bound) TS_EXCLUDES(mutex_);
  void drain_channels(std::int64_t bound_ns);
  void stop_pool() TS_EXCLUDES(mutex_);
  void worker_loop() TS_EXCLUDES(mutex_);
  HOT_PATH void run_claimed_shards(Time bound) TS_EXCLUDES(mutex_);

  /// --- barrier-thread state (never touched by workers) --------------------
  Config config_;
  std::vector<Simulation*> shards_;  ///< shard *slots* are claimed via next_shard_
  std::vector<std::unique_ptr<Channel>> channels_;
  Time lookahead_{Time::max()};
  std::int64_t cursor_ns_{0};  ///< next window start
  std::uint64_t windows_{0};
  std::uint64_t delivered_{0};
  std::vector<std::thread> workers_;  ///< spawned/joined by the barrier thread only

  /// --- state shared with the worker pool, all guarded by mutex_ -----------
  core::Mutex mutex_;
  core::ConditionVariable work_ready_;
  core::ConditionVariable window_done_;
  std::uint64_t generation_ TS_GUARDED_BY(mutex_){0};
  std::size_t running_workers_ TS_GUARDED_BY(mutex_){0};
  std::size_t next_shard_ TS_GUARDED_BY(mutex_){0};  ///< claim cursor
  Time window_bound_ TS_GUARDED_BY(mutex_){};
  bool stopping_ TS_GUARDED_BY(mutex_){false};
  std::vector<std::exception_ptr> worker_errors_ TS_GUARDED_BY(mutex_);
};

}  // namespace tsim::sim
