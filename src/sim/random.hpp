#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace tsim::sim {

/// Deterministic xoshiro256++ PRNG. Each simulator component draws from its
/// own stream (derived from a master seed + component label), so adding a
/// component never perturbs the random sequence seen by the others —
/// a prerequisite for reproducible experiments and A/B ablations.
class Rng {
 public:
  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed);

  /// Derives a child stream keyed by a label; stable across runs.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_{};
};

}  // namespace tsim::sim
