#include "sim/simulation.hpp"

// Simulation is header-only today; this TU anchors the target and keeps room
// for future out-of-line growth without touching the build.
