#include "transport/receiver_endpoint.hpp"

#include <algorithm>
#include <memory>

namespace tsim::transport {

ReceiverEndpoint::ReceiverEndpoint(sim::Simulation& simulation, net::Network& network,
                                   mcast::MulticastRouter& mcast, PacketDemux& demux,
                                   Config config)
    : simulation_{simulation},
      network_{network},
      mcast_{mcast},
      config_{config},
      tracks_(static_cast<std::size_t>(config.layers.num_layers)) {
  demux.add_handler(net::PacketKind::kData,
                    [this](const net::PacketRef& p) { handle_data(*p); });
  demux.add_handler(net::PacketKind::kSuggestion,
                    [this](const net::PacketRef& p) { handle_suggestion(*p); });
}

void ReceiverEndpoint::start() {
  simulation_.at(config_.start, [this]() {
    active_ = true;
    window_start_ = simulation_.now();
    set_subscription(config_.initial_subscription);
    simulation_.after(config_.report_period, [this]() { close_window(); });
  });
  if (config_.stop != sim::Time::max()) {
    simulation_.at(config_.stop, [this]() {
      // Close the final (partial) window — folding its sequence-gap loss and
      // mailing the last report — while the layer tracks still exist. Leaving
      // the groups first wipes the tracks, so the loss accrued since the last
      // window close would be silently discarded.
      close_window();
      stopped_ = true;
      active_ = false;
      set_subscription(0);  // leave every group
    });
  }
}

void ReceiverEndpoint::set_subscription(int level) {
  level = std::clamp(level, 0, config_.layers.num_layers);
  if (level == subscription_) return;
  const int old = subscription_;

  if (level > subscription_) {
    for (int l = subscription_ + 1; l <= level; ++l) {
      mcast_.join(config_.node, net::GroupAddr{config_.session, static_cast<net::LayerId>(l)});
      tracks_[l - 1].active = true;
      // Sequence tracking restarts: packets sent while unsubscribed must not
      // count as loss.
      tracks_[l - 1].have_prev_max = false;
      tracks_[l - 1].have_window_max = false;
      tracks_[l - 1].window_received = 0;
    }
  } else {
    for (int l = subscription_; l > level; --l) {
      mcast_.leave(config_.node, net::GroupAddr{config_.session, static_cast<net::LayerId>(l)});
      // Fold the departing layer's sequence-gap loss into the current window
      // before wiping the track. A receiver backs off *because* of loss, so
      // discarding the dropped layer's gap here under-reports exactly when
      // the controller most needs the signal.
      fold_track_loss(tracks_[l - 1]);
      tracks_[l - 1] = LayerTrack{};
    }
  }
  subscription_ = level;
  for (const auto& cb : change_callbacks_) cb(simulation_.now(), old, level);
}

void ReceiverEndpoint::handle_data(const net::Packet& packet) {
  if (!packet.multicast || packet.group.session != config_.session) return;
  const int layer = packet.group.layer;
  if (layer < 1 || layer > config_.layers.num_layers) return;
  LayerTrack& track = tracks_[layer - 1];
  if (!track.active) return;  // stale delivery after a leave

  ++track.window_received;
  if (!track.have_window_max || packet.seq > track.window_max_seq) {
    track.window_max_seq = packet.seq;
    track.have_window_max = true;
  }
  ++window_.received_packets;
  window_.bytes += units::Bytes{packet.size_bytes};
  ++total_packets_;
  total_bytes_ += units::Bytes{packet.size_bytes};
}

void ReceiverEndpoint::on_fluid_delivery(net::GroupAddr group, units::Bytes bytes,
                                         units::PacketCount received,
                                         units::PacketCount lost) {
  if (group.session != config_.session) return;
  const int layer = group.layer;
  if (layer < 1 || layer > config_.layers.num_layers) return;
  if (!tracks_[layer - 1].active) return;  // engine lag after a leave

  window_.received_packets += received;
  window_.lost_packets += lost;
  window_.bytes += bytes;
  total_packets_ += received;
  total_bytes_ += bytes;
}

void ReceiverEndpoint::handle_suggestion(const net::Packet& packet) {
  if (!active_) return;  // a stale suggestion must not resubscribe a leaver
  const auto* suggestion = dynamic_cast<const Suggestion*>(packet.control.get());
  if (suggestion == nullptr) return;
  if (suggestion->receiver != config_.node || suggestion->session != config_.session) return;
  for (const auto& cb : suggestion_callbacks_) cb(*suggestion);
}

void ReceiverEndpoint::fold_track_loss(const LayerTrack& track) {
  if (!track.active) return;
  if (track.have_prev_max && track.have_window_max &&
      track.window_max_seq > track.prev_max_seq) {
    const std::uint64_t expected = track.window_max_seq - track.prev_max_seq;
    if (expected > track.window_received) {
      window_.lost_packets += units::PacketCount{expected - track.window_received};
    }
  }
}

void ReceiverEndpoint::close_window() {
  if (stopped_) return;  // the final window was closed at config_.stop
  // Derive per-layer expected counts from seq-number progress (RTP
  // receiver-report style) and fold into window loss.
  for (LayerTrack& track : tracks_) {
    if (!track.active) continue;
    fold_track_loss(track);
    if (track.have_window_max) {
      track.prev_max_seq = track.window_max_seq;
      track.have_prev_max = true;
    }
    track.have_window_max = false;
    track.window_received = 0;
  }
  total_lost_packets_ += window_.lost_packets;

  if (active_ && config_.controller != net::kInvalidNode) send_report();

  last_window_ = window_;
  window_ = WindowStats{};
  window_start_ = simulation_.now();
  if (active_ || simulation_.now() < config_.stop) {
    simulation_.after(config_.report_period, [this]() { close_window(); });
  }
}

void ReceiverEndpoint::send_report() {
  auto report = std::make_shared<ReceiverReport>();
  report->receiver = config_.node;
  report->session = config_.session;
  report->subscription = subscription_;
  report->loss_rate = window_.loss_rate();
  report->bytes_received = window_.bytes;
  report->received_packets = window_.received_packets;
  report->lost_packets = window_.lost_packets;
  report->window_start = window_start_;
  report->window_end = simulation_.now();
  report->report_seq = report_seq_++;

  net::Packet packet;
  packet.kind = net::PacketKind::kReport;
  packet.size_bytes = kReportPacketBytes;
  packet.src = config_.node;
  packet.dst = config_.controller;
  packet.control = std::move(report);
  network_.send_unicast(packet);
}

}  // namespace tsim::transport
