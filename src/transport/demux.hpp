#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"

namespace tsim::transport {

/// Per-node packet demultiplexer. A node's single local sink fans out to any
/// number of handlers by packet kind, so a receiver endpoint and a controller
/// agent can share a node (the paper stations the controller at a source
/// node).
class PacketDemux {
 public:
  using Handler = std::function<void(const net::PacketRef&)>;

  void add_handler(net::PacketKind kind, Handler handler);
  void dispatch(const net::PacketRef& packet) const;

 private:
  // PacketKind is a dense 7-value enum, so a flat per-kind array beats a hash
  // map on the per-packet dispatch path: one indexed load, no hashing, and
  // kinds with no handlers cost a single empty-vector check.
  std::array<std::vector<Handler>, net::kPacketKindCount> handlers_{};
};

/// Owns one PacketDemux per node and installs it as the node's local sink on
/// first use. Lives as long as the Network it serves.
class DemuxRegistry {
 public:
  explicit DemuxRegistry(net::Network& network) : network_{network} {}

  DemuxRegistry(const DemuxRegistry&) = delete;
  DemuxRegistry& operator=(const DemuxRegistry&) = delete;

  /// Demux for `node`, created and wired on first request.
  PacketDemux& at(net::NodeId node);

 private:
  net::Network& network_;
  // Dense NodeId-indexed (node ids are small and contiguous); the registry
  // lookup sits on every local delivery, so an indexed load beats hashing.
  std::vector<std::unique_ptr<PacketDemux>> demuxes_;
};

}  // namespace tsim::transport
