#pragma once

#include <cstdint>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tsim::transport {

/// RTCP-style receiver report, carried as a unicast packet from a receiver to
/// its domain controller. Contains exactly what the paper's algorithm
/// consumes: loss rate, bytes received and the current subscription level for
/// one session, measured over one reporting window.
struct ReceiverReport final : net::ControlPayload {
  net::NodeId receiver{net::kInvalidNode};
  net::SessionId session{0};
  int subscription{0};               ///< layers currently subscribed (0..num_layers)
  units::LossFraction loss_rate{};   ///< fraction of expected packets lost in the window
  units::Bytes bytes_received{};     ///< data bytes received in the window
  units::PacketCount received_packets{};
  units::PacketCount lost_packets{};
  sim::Time window_start{};
  sim::Time window_end{};
  std::uint32_t report_seq{0};
};

/// Controller -> receiver subscription suggestion.
struct Suggestion final : net::ControlPayload {
  net::NodeId receiver{net::kInvalidNode};
  net::SessionId session{0};
  int subscription{0};   ///< suggested number of layers
  std::uint32_t epoch{0};  ///< controller interval counter, newest wins
};

/// Inter-domain summary, exchanged between per-domain controllers (carried as
/// a unicast kSummary packet through the simulated network, so summaries
/// compete with data and can be lost like any other control traffic).
///
/// Child -> parent (kDemand): the child domain compresses everything it knows
/// about its receivers of one session into a pseudo-receiver stationed at the
/// domain's border node — max subscription as aggregate demand, the *minimum*
/// loss across its receivers as the shared-upstream bottleneck estimate (loss
/// every child receiver sees is loss the child domain cannot fix locally),
/// and the best per-receiver goodput as the border's achievable bandwidth.
/// The parent folds this into its own interval as an ordinary receiver report
/// from the border node.
///
/// Parent -> child (kCap): the parent's prescription for the border
/// pseudo-receiver, i.e. how many layers the shared tree can deliver into the
/// child domain. The child clamps its own prescriptions to this cap, so a
/// bottleneck above the border is still honored by receivers the parent has
/// never heard of.
struct DomainSummary final : net::ControlPayload {
  enum class Direction : std::uint8_t {
    kDemand,  ///< child -> parent aggregate
    kCap,     ///< parent -> child subscription ceiling
  };
  Direction direction{Direction::kDemand};
  std::uint32_t domain{0};                  ///< sender's domain index
  net::SessionId session{0};
  net::NodeId border{net::kInvalidNode};    ///< child domain's root node
  int subscription{1};                      ///< demand (kDemand) or cap (kCap)
  units::LossFraction shared_loss{};        ///< min loss across domain receivers
  units::Bytes bytes_received{};            ///< best per-receiver window goodput
  units::PacketCount received_packets{};
  units::PacketCount lost_packets{};
  std::uint32_t receiver_count{0};          ///< receivers folded into the aggregate
  sim::Time window_start{};
  sim::Time window_end{};
  std::uint32_t summary_seq{0};
};

/// On-the-wire sizes used for the simulated control packets. Small relative
/// to the 1000-byte data packets, as RTCP packets are.
inline constexpr std::uint32_t kReportPacketBytes = 64;
inline constexpr std::uint32_t kSuggestionPacketBytes = 64;
inline constexpr std::uint32_t kSummaryPacketBytes = 64;

}  // namespace tsim::transport
