#pragma once

#include <cstdint>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tsim::transport {

/// RTCP-style receiver report, carried as a unicast packet from a receiver to
/// its domain controller. Contains exactly what the paper's algorithm
/// consumes: loss rate, bytes received and the current subscription level for
/// one session, measured over one reporting window.
struct ReceiverReport final : net::ControlPayload {
  net::NodeId receiver{net::kInvalidNode};
  net::SessionId session{0};
  int subscription{0};               ///< layers currently subscribed (0..num_layers)
  units::LossFraction loss_rate{};   ///< fraction of expected packets lost in the window
  units::Bytes bytes_received{};     ///< data bytes received in the window
  units::PacketCount received_packets{};
  units::PacketCount lost_packets{};
  sim::Time window_start{};
  sim::Time window_end{};
  std::uint32_t report_seq{0};
};

/// Controller -> receiver subscription suggestion.
struct Suggestion final : net::ControlPayload {
  net::NodeId receiver{net::kInvalidNode};
  net::SessionId session{0};
  int subscription{0};   ///< suggested number of layers
  std::uint32_t epoch{0};  ///< controller interval counter, newest wins
};

/// On-the-wire sizes used for the simulated control packets. Small relative
/// to the 1000-byte data packets, as RTCP packets are.
inline constexpr std::uint32_t kReportPacketBytes = 64;
inline constexpr std::uint32_t kSuggestionPacketBytes = 64;

}  // namespace tsim::transport
