#include "transport/tcp_flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace tsim::transport {

namespace {
constexpr std::uint32_t kAckBytes = 40;
}

TcpFlow::TcpFlow(sim::Simulation& simulation, net::Network& network,
                 transport::DemuxRegistry& demuxes, Config config)
    : simulation_{simulation},
      network_{network},
      config_{config},
      ssthresh_{config.initial_ssthresh_packets} {
  // Receiver side: ACK every arriving segment of this flow.
  demuxes.at(config_.dst).add_handler(
      net::PacketKind::kTcpData, [this](const net::PacketRef& p) {
        if (p->src != config_.src || p->dst != config_.dst) return;
        const auto* segment = dynamic_cast<const TcpSegment*>(p->control.get());
        if (segment != nullptr && !segment->ack) on_data_at_receiver(*segment);
      });
  // Sender side: process ACKs.
  demuxes.at(config_.src).add_handler(
      net::PacketKind::kTcpAck, [this](const net::PacketRef& p) {
        if (p->src != config_.dst || p->dst != config_.src) return;
        const auto* segment = dynamic_cast<const TcpSegment*>(p->control.get());
        if (segment != nullptr && segment->ack) on_ack(segment->ack_seq);
      });
}

void TcpFlow::start() {
  simulation_.at(config_.start, [this]() {
    active_ = true;
    started_at_ = simulation_.now();
    maybe_send();
    arm_rto();
  });
}

double TcpFlow::mean_goodput_bps() const {
  const sim::Time end = finished_ ? completion_time_ : simulation_.now();
  const double elapsed = (end - started_at_).as_seconds();
  return elapsed <= 0.0 ? 0.0 : static_cast<double>(delivered_bytes_) * 8.0 / elapsed;
}

void TcpFlow::maybe_send() {
  if (!active_ || finished_ || simulation_.now() >= config_.stop) return;
  const std::uint64_t total_segments =
      config_.transfer_bytes == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : (config_.transfer_bytes + config_.mss_bytes - 1) / config_.mss_bytes;
  while (next_seq_ - highest_acked_ < static_cast<std::uint64_t>(cwnd_) &&
         next_seq_ < total_segments) {
    send_segment(next_seq_, false);
    ++next_seq_;
  }
}

void TcpFlow::send_segment(std::uint64_t seq, bool retransmit) {
  auto payload = std::make_shared<TcpSegment>();
  payload->seq = seq;

  net::Packet packet;
  packet.kind = net::PacketKind::kTcpData;
  packet.size_bytes = config_.mss_bytes;
  packet.src = config_.src;
  packet.dst = config_.dst;
  packet.control = std::move(payload);
  network_.send_unicast(packet);

  if (retransmit || seq < max_sent_) {
    ++retransmits_;
    sent_at_.erase(seq);  // do not RTT-sample retransmissions (Karn's rule)
  } else {
    sent_at_[seq] = simulation_.now();
    max_sent_ = seq + 1;
  }
}

void TcpFlow::on_data_at_receiver(const TcpSegment& segment) {
  if (segment.seq == rcv_next_) {
    ++rcv_next_;
    delivered_bytes_ += config_.mss_bytes;
    // Drain any buffered out-of-order segments.
    auto it = out_of_order_.find(rcv_next_);
    while (it != out_of_order_.end()) {
      out_of_order_.erase(it);
      ++rcv_next_;
      delivered_bytes_ += config_.mss_bytes;
      it = out_of_order_.find(rcv_next_);
    }
  } else if (segment.seq > rcv_next_) {
    out_of_order_[segment.seq] = true;
  }

  auto ack = std::make_shared<TcpSegment>();
  ack->ack = true;
  ack->ack_seq = rcv_next_;
  net::Packet packet;
  packet.kind = net::PacketKind::kTcpAck;
  packet.size_bytes = kAckBytes;
  packet.src = config_.dst;
  packet.dst = config_.src;
  packet.control = std::move(ack);
  network_.send_unicast(packet);
}

void TcpFlow::on_ack(std::uint64_t ack_seq) {
  if (finished_ || !active_) return;

  if (ack_seq > highest_acked_) {
    // New data acked: RTT sample from the newest acked segment.
    const auto it = sent_at_.find(ack_seq - 1);
    if (it != sent_at_.end()) {
      const sim::Time sample = simulation_.now() - it->second;
      if (!have_rtt_) {
        srtt_ = sample;
        rttvar_ = sim::Time::nanoseconds(sample.as_nanoseconds() / 2);
        have_rtt_ = true;
      } else {
        const auto err = std::abs((sample - srtt_).as_nanoseconds());
        rttvar_ = sim::Time::nanoseconds((3 * rttvar_.as_nanoseconds() + err) / 4);
        srtt_ = sim::Time::nanoseconds((7 * srtt_.as_nanoseconds() + sample.as_nanoseconds()) / 8);
      }
    }
    for (std::uint64_t s = highest_acked_; s < ack_seq; ++s) sent_at_.erase(s);

    const std::uint64_t newly_acked = ack_seq - highest_acked_;
    highest_acked_ = ack_seq;
    dup_acks_ = 0;

    if (in_recovery_ && ack_seq >= recovery_point_) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else if (in_recovery_) {
      // NewReno partial ACK: the window had more than one hole — retransmit
      // the next missing segment immediately instead of stalling until RTO.
      send_segment(highest_acked_, true);
    } else {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly_acked);  // slow start
      } else {
        cwnd_ += static_cast<double>(newly_acked) / cwnd_;  // AIMD increase
      }
    }

    const std::uint64_t total_segments =
        config_.transfer_bytes == 0
            ? std::numeric_limits<std::uint64_t>::max()
            : (config_.transfer_bytes + config_.mss_bytes - 1) / config_.mss_bytes;
    if (highest_acked_ >= total_segments) {
      finished_ = true;
      completion_time_ = simulation_.now();
      simulation_.cancel(rto_timer_);
      return;
    }
    arm_rto();
    maybe_send();
    return;
  }

  // Duplicate ACK.
  ++dup_acks_;
  if (dup_acks_ == 3 && !in_recovery_) {
    // Fast retransmit: halve, retransmit the missing segment.
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);
    cwnd_ = ssthresh_;
    in_recovery_ = true;
    recovery_point_ = next_seq_;
    send_segment(highest_acked_, true);
    arm_rto();
  }
}

void TcpFlow::arm_rto() {
  simulation_.cancel(rto_timer_);
  sim::Time rto = config_.min_rto;
  if (have_rtt_) {
    const sim::Time computed = srtt_ + 4 * rttvar_;
    rto = std::max(rto, computed);
  }
  rto_timer_ = simulation_.after(rto, [this]() { on_rto(); });
}

void TcpFlow::on_rto() {
  if (finished_ || !active_ || simulation_.now() >= config_.stop) return;
  if (highest_acked_ >= next_seq_) {
    // Nothing outstanding; try to send and re-arm.
    maybe_send();
    arm_rto();
    return;
  }
  // Timeout: collapse to one segment and go back to the first unacked
  // segment (cumulative-ACK go-back-N restart).
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  next_seq_ = highest_acked_;
  maybe_send();
  arm_rto();
}

}  // namespace tsim::transport
