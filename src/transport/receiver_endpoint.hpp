#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "traffic/fluid_sink.hpp"
#include "traffic/layer_spec.hpp"
#include "transport/control_messages.hpp"
#include "transport/demux.hpp"

namespace tsim::transport {

/// A multicast receiver host for one session: manages cumulative layer
/// subscription (joining/leaving one group per layer), tracks per-window loss
/// via RTP-style sequence-number gaps, and mails RTCP-like reports to the
/// domain controller as real unicast packets (they share queues with data and
/// can be lost).
///
/// Under the fluid traffic engine the endpoint is a traffic::FluidSink: the
/// engine credits integrated byte/packet/loss deltas directly into the open
/// report window (loss arrives pre-computed from the fluid loss fractions, so
/// the sequence-gap machinery stays idle), and everything downstream —
/// reports, ReceiverAgent, ControllerAgent — is unchanged.
class ReceiverEndpoint : public traffic::FluidSink {
 public:
  struct Config {
    net::NodeId node{net::kInvalidNode};
    net::SessionId session{0};
    traffic::LayerSpec layers{};
    net::NodeId controller{net::kInvalidNode};  ///< report destination; kInvalidNode disables reports
    sim::Time report_period{sim::Time::seconds(1)};
    int initial_subscription{1};
    sim::Time start{sim::Time::zero()};
    /// When set, the receiver leaves all groups and stops reporting at this
    /// time (models receiver churn; the controller sees the departure through
    /// the next topology snapshot).
    sim::Time stop{sim::Time::max()};
  };

  ReceiverEndpoint(sim::Simulation& simulation, net::Network& network,
                   mcast::MulticastRouter& mcast, PacketDemux& demux, Config config);

  /// Joins the initial layers and starts the report timer at config.start.
  void start();

  /// Moves the subscription to exactly `level` layers (clamped to
  /// [0, num_layers]), joining or leaving groups as needed.
  void set_subscription(int level);
  [[nodiscard]] int subscription() const { return subscription_; }

  /// False once config.stop has passed (the receiver has left the session).
  [[nodiscard]] bool active() const { return active_; }

  /// Stats of the current (in-progress) report window.
  struct WindowStats {
    units::PacketCount received_packets{};
    units::PacketCount lost_packets{};
    units::Bytes bytes{};
    [[nodiscard]] units::LossFraction loss_rate() const {
      return units::LossFraction::from_counts(lost_packets, received_packets + lost_packets);
    }
  };
  [[nodiscard]] const WindowStats& window() const { return window_; }
  [[nodiscard]] const WindowStats& last_completed_window() const { return last_window_; }
  [[nodiscard]] units::Bytes total_bytes() const { return total_bytes_; }
  [[nodiscard]] units::PacketCount total_packets() const { return total_packets_; }
  [[nodiscard]] units::PacketCount total_lost_packets() const { return total_lost_packets_; }
  /// Lifetime loss fraction across all closed windows.
  [[nodiscard]] units::LossFraction lifetime_loss_rate() const {
    return units::LossFraction::from_counts(total_lost_packets_,
                                            total_packets_ + total_lost_packets_);
  }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Invoked whenever the subscription level changes: (time, old, new).
  void on_subscription_change(std::function<void(sim::Time, int, int)> cb) {
    change_callbacks_.push_back(std::move(cb));
  }

  /// Invoked when a Suggestion addressed to this receiver+session arrives.
  void on_suggestion(std::function<void(const Suggestion&)> cb) {
    suggestion_callbacks_.push_back(std::move(cb));
  }

  /// traffic::FluidSink: integrated delivery from the fluid engine. Credits
  /// the open window and lifetime totals exactly as handle_data does per
  /// packet (lost feeds window_.lost_packets; close_window folds it into the
  /// lifetime total, same as sequence-gap loss).
  void on_fluid_delivery(net::GroupAddr group, units::Bytes bytes,
                         units::PacketCount received, units::PacketCount lost) override;

 private:
  struct LayerTrack;

  void handle_data(const net::Packet& packet);
  void handle_suggestion(const net::Packet& packet);
  void close_window();
  void send_report();
  /// Adds `track`'s sequence-gap loss for the current window to window_.
  void fold_track_loss(const LayerTrack& track);

  struct LayerTrack {
    bool active{false};
    bool have_prev_max{false};
    std::uint32_t prev_max_seq{0};  ///< highest seq at the end of last window
    bool have_window_max{false};
    std::uint32_t window_max_seq{0};
    std::uint64_t window_received{0};
  };

  sim::Simulation& simulation_;
  net::Network& network_;
  mcast::MulticastRouter& mcast_;
  Config config_;
  int subscription_{0};
  bool active_{false};
  /// Set once the stop-time handler closed the final window; later timer
  /// firings must not overwrite last_window_ or reschedule.
  bool stopped_{false};
  std::vector<LayerTrack> tracks_;
  WindowStats window_{};
  WindowStats last_window_{};
  sim::Time window_start_{};
  units::Bytes total_bytes_{};
  units::PacketCount total_packets_{};
  units::PacketCount total_lost_packets_{};
  std::uint32_t report_seq_{0};
  std::vector<std::function<void(sim::Time, int, int)>> change_callbacks_;
  std::vector<std::function<void(const Suggestion&)>> suggestion_callbacks_;
};

}  // namespace tsim::transport
