#include "transport/demux.hpp"

#include <utility>

namespace tsim::transport {

void PacketDemux::add_handler(net::PacketKind kind, Handler handler) {
  handlers_[static_cast<std::size_t>(kind)].push_back(std::move(handler));
}

void PacketDemux::dispatch(const net::PacketRef& packet) const {
  const auto& handlers = handlers_[static_cast<std::size_t>(packet->kind)];
  for (const Handler& h : handlers) h(packet);
}

PacketDemux& DemuxRegistry::at(net::NodeId node) {
  auto it = demuxes_.find(node);
  if (it == demuxes_.end()) {
    it = demuxes_.emplace(node, std::make_unique<PacketDemux>()).first;
    PacketDemux* demux = it->second.get();
    network_.set_local_sink(node, [demux](const net::PacketRef& p) { demux->dispatch(p); });
  }
  return *it->second;
}

}  // namespace tsim::transport
