#include "transport/demux.hpp"

#include <utility>

namespace tsim::transport {

void PacketDemux::add_handler(net::PacketKind kind, Handler handler) {
  handlers_[static_cast<std::size_t>(kind)].push_back(std::move(handler));
}

void PacketDemux::dispatch(const net::PacketRef& packet) const {
  const auto& handlers = handlers_[static_cast<std::size_t>(packet->kind)];
  for (const Handler& h : handlers) h(packet);
}

PacketDemux& DemuxRegistry::at(net::NodeId node) {
  if (node >= demuxes_.size()) demuxes_.resize(node + 1);
  if (!demuxes_[node]) {
    demuxes_[node] = std::make_unique<PacketDemux>();
    PacketDemux* demux = demuxes_[node].get();
    network_.set_local_sink(node, [demux](const net::PacketRef& p) { demux->dispatch(p); });
  }
  return *demuxes_[node];
}

}  // namespace tsim::transport
