#include "transport/demux.hpp"

#include <utility>

namespace tsim::transport {

void PacketDemux::add_handler(net::PacketKind kind, Handler handler) {
  handlers_[static_cast<int>(kind)].push_back(std::move(handler));
}

void PacketDemux::dispatch(const net::PacketRef& packet) const {
  const auto it = handlers_.find(static_cast<int>(packet->kind));
  if (it == handlers_.end()) return;
  for (const Handler& h : it->second) h(packet);
}

PacketDemux& DemuxRegistry::at(net::NodeId node) {
  auto it = demuxes_.find(node);
  if (it == demuxes_.end()) {
    it = demuxes_.emplace(node, std::make_unique<PacketDemux>()).first;
    PacketDemux* demux = it->second.get();
    network_.set_local_sink(node, [demux](const net::PacketRef& p) { demux->dispatch(p); });
  }
  return *it->second;
}

}  // namespace tsim::transport
