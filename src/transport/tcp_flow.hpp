#pragma once

#include <cstdint>
#include <map>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "transport/demux.hpp"

namespace tsim::transport {

/// A simplified TCP Reno sender/receiver pair riding the simulated network —
/// the substrate for the paper's §VI TCP-friendliness discussion. Implements
/// slow start, congestion avoidance (AIMD), fast retransmit on 3 duplicate
/// ACKs, and RTO-based recovery with an exponentially smoothed RTT estimate.
/// No SACK, no delayed ACKs, fixed MSS — the congestion behaviour is what
/// matters here, not wire fidelity.
class TcpFlow {
 public:
  struct Config {
    net::NodeId src{net::kInvalidNode};
    net::NodeId dst{net::kInvalidNode};
    std::uint32_t mss_bytes{1000};
    double initial_ssthresh_packets{64.0};
    sim::Time min_rto{sim::Time::seconds(1)};  // RFC 6298 floor: survives queueing-delay RTT spikes
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::max()};
    /// Bytes to transfer; 0 = unbounded (a long-lived flow).
    std::uint64_t transfer_bytes{0};
  };

  /// Registers the receiver-side ACK generator on dst's demux.
  TcpFlow(sim::Simulation& simulation, net::Network& network,
          transport::DemuxRegistry& demuxes, Config config);

  void start();

  [[nodiscard]] double cwnd_packets() const { return cwnd_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] sim::Time completion_time() const { return completion_time_; }
  [[nodiscard]] const Config& config() const { return config_; }
  /// Mean goodput over the flow's active life so far.
  [[nodiscard]] double mean_goodput_bps() const;

 private:
  struct TcpSegment final : net::ControlPayload {
    std::uint64_t seq{0};   ///< segment index (not bytes)
    bool ack{false};
    std::uint64_t ack_seq{0};  ///< next expected segment (cumulative)
  };

  void maybe_send();
  void send_segment(std::uint64_t seq, bool retransmit);
  void on_ack(std::uint64_t ack_seq);
  void on_data_at_receiver(const TcpSegment& segment);
  void arm_rto();
  void on_rto();

  sim::Simulation& simulation_;
  net::Network& network_;
  Config config_;

  // Sender state.
  double cwnd_{1.0};
  double ssthresh_;
  std::uint64_t next_seq_{0};       ///< next segment to send (rewound on RTO)
  std::uint64_t max_sent_{0};       ///< highest segment ever sent + 1
  std::uint64_t highest_acked_{0};  ///< all segments below this are acked
  int dup_acks_{0};
  bool in_recovery_{false};
  std::uint64_t recovery_point_{0};
  sim::Time srtt_{};
  sim::Time rttvar_{};
  bool have_rtt_{false};
  std::map<std::uint64_t, sim::Time> sent_at_;  ///< unacked send times
  sim::EventId rto_timer_{};
  sim::Time started_at_{};
  bool active_{false};
  bool finished_{false};
  sim::Time completion_time_{};
  std::uint64_t retransmits_{0};

  // Receiver state.
  std::uint64_t rcv_next_{0};
  std::map<std::uint64_t, bool> out_of_order_;
  std::uint64_t delivered_bytes_{0};
};

}  // namespace tsim::transport
