#include "mcast/multicast_router.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

namespace tsim::mcast {

MulticastRouter::MulticastRouter(sim::Simulation& simulation, net::Network& network,
                                 Config config)
    : simulation_{simulation}, network_{network}, config_{config} {
  network_.set_multicast_forwarder(this);
}

MulticastRouter::MulticastRouter(sim::Simulation& simulation, net::Network& network)
    : MulticastRouter{simulation, network, Config{}} {}

void MulticastRouter::set_session_source(net::SessionId session, net::NodeId source) {
  session_sources_[session] = source;
}

net::NodeId MulticastRouter::session_source(net::SessionId session) const {
  const auto it = session_sources_.find(session);
  return it == session_sources_.end() ? net::kInvalidNode : it->second;
}

MulticastRouter::GroupState& MulticastRouter::group_state(net::GroupAddr group) {
  const auto [it, inserted] = groups_.try_emplace(group);
  if (inserted) {
    const std::uint32_t gid = network_.intern_group(group);
    if (gid >= groups_by_stats_id_.size()) groups_by_stats_id_.resize(gid + 1, nullptr);
    groups_by_stats_id_[gid] = &it->second;
  }
  return it->second;
}

void MulticastRouter::join(net::NodeId member, net::GroupAddr group) {
  if (session_sources_.find(group.session) == session_sources_.end()) {
    throw std::logic_error("MulticastRouter::join: session source not set");
  }
  GroupState& state = group_state(group);
  MemberState& ms = state.members[member];
  if (ms.local_active || ms.join_pending) return;

  if (config_.join_latency == sim::Time::zero()) {
    ms.local_active = true;
    ms.forward_until = sim::Time::max();
    state.tree_dirty = true;
    return;
  }
  ms.join_pending = true;
  simulation_.after(config_.join_latency, [this, member, group]() {
    GroupState& s = group_state(group);
    MemberState& m = s.members[member];
    if (!m.join_pending) return;  // leave raced the graft
    m.join_pending = false;
    m.local_active = true;
    m.forward_until = sim::Time::max();
    s.tree_dirty = true;
  });
}

void MulticastRouter::leave(net::NodeId member, net::GroupAddr group) {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return;
  GroupState& state = git->second;
  const auto mit = state.members.find(member);
  if (mit == state.members.end()) return;
  MemberState& ms = mit->second;
  if (!ms.local_active && !ms.join_pending) return;

  if (ms.join_pending && !ms.local_active) {
    // The graft is still in flight: the branch never carried traffic, so there
    // is nothing for the IGMP timeout to prune. Cancel the pending join
    // without touching forward_until — setting it here would graft a fresh
    // branch at the next rebuild and forward onto it for the whole
    // leave-latency window. Any forward_until from an *earlier* real leave
    // stays as it is: that window was earned by a completed graft.
    ms.join_pending = false;
    return;
  }

  ms.join_pending = false;
  ms.local_active = false;  // the host stops listening immediately
  ms.forward_until = simulation_.now() + config_.leave_latency;
  state.tree_dirty = true;  // local-delivery flag must clear now

  // When the IGMP timeout expires the branch is pruned; rebuild then.
  simulation_.after(config_.leave_latency, [this, group]() {
    const auto it = groups_.find(group);
    if (it != groups_.end()) it->second.tree_dirty = true;
  });
}

bool MulticastRouter::is_member(net::NodeId member, net::GroupAddr group) const {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return false;
  const auto mit = git->second.members.find(member);
  return mit != git->second.members.end() && mit->second.local_active;
}

std::vector<net::NodeId> MulticastRouter::members(net::GroupAddr group) const {
  std::vector<net::NodeId> result;
  const auto git = groups_.find(group);
  if (git == groups_.end()) return result;
  for (const auto& [node, ms] : git->second.members) {  // NOLINT-determinism(sorted below)
    if (ms.local_active) result.push_back(node);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void MulticastRouter::rebuild_tree(net::GroupAddr group, GroupState& state) {
  GroupTree tree;
  tree.source = session_source(group.session);
  const sim::Time now = simulation_.now();

  std::set<std::pair<net::NodeId, net::NodeId>> edge_set;
  const net::RoutingTable& routes = network_.routes();
  tree.fan.assign(network_.node_count(), {});

  // Per-member work is independent and accumulates into the ordered edge_set,
  // so the hash iteration order never reaches the finished tree. The CSR
  // deliver flags land in distinct NodeId slots, so order never shows there
  // either.
  for (const auto& [member, ms] : state.members) {  // NOLINT-determinism(order-free)
    const bool carries_traffic = ms.local_active || ms.forward_until > now;
    if (!carries_traffic) continue;
    if (ms.local_active) {
      tree.entries[member].deliver_locally = true;
      tree.fan[member].deliver_locally = 1;
    }
    if (member == tree.source) continue;
    const std::vector<net::NodeId> path = routes.path(tree.source, member);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      edge_set.emplace(path[i], path[i + 1]);
    }
  }

  // edge_set is sorted by (parent, child), so each parent's links form one
  // contiguous run: exactly the CSR span route() replicates from.
  tree.fan_links.reserve(edge_set.size());
  for (const auto& [parent, child] : edge_set) {
    const net::LinkId link = routes.next_hop(parent, child);
    tree.entries[parent].out_links.push_back(link);
    tree.edges.emplace_back(parent, child);
    GroupTree::FanSlot& slot = tree.fan[parent];
    if (slot.count == 0) slot.offset = static_cast<std::uint32_t>(tree.fan_links.size());
    if (slot.count == std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("MulticastRouter: per-node fan-out exceeds FanSlot range");
    }
    ++slot.count;
    tree.fan_links.push_back(link);
  }

  tree.built_topology_version = network_.topology_version();
  state.tree = std::move(tree);
  state.tree_dirty = false;
  if (audit_hook_) audit_hook_(group, state.tree);
}

const GroupTree* MulticastRouter::tree(net::GroupAddr group) const {
  auto* self = const_cast<MulticastRouter*>(this);
  const auto git = self->groups_.find(group);
  if (git == self->groups_.end()) return nullptr;
  if (git->second.tree_dirty) self->rebuild_tree(group, git->second);
  return &git->second.tree;
}

const GroupTree* MulticastRouter::tree_if_clean(net::GroupAddr group) const {
  const auto git = groups_.find(group);
  if (git == groups_.end() || git->second.tree_dirty) return nullptr;
  return &git->second.tree;
}

std::vector<net::GroupAddr> MulticastRouter::active_groups() const {
  std::vector<net::GroupAddr> result;
  result.reserve(groups_.size());
  // Sorted afterwards, so the unordered iteration order never leaks out.
  for (const auto& [group, state] : groups_) {  // NOLINT-determinism(sorted below)
    result.push_back(group);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void MulticastRouter::corrupt_tree_edge_for_test(net::GroupAddr group) {
  GroupState& state = group_state(group);
  if (state.tree_dirty) rebuild_tree(group, state);
  GroupTree& tree = state.tree;
  if (tree.edges.empty()) {
    tree.edges.emplace_back(tree.source, tree.source);
  } else {
    // Reversing an edge gives the child a second parent and closes a cycle.
    tree.edges.emplace_back(tree.edges.front().second, tree.edges.front().first);
  }
}

std::vector<std::pair<net::NodeId, net::NodeId>> MulticastRouter::session_tree_edges(
    net::SessionId session, net::LayerId max_layer) const {
  std::set<std::pair<net::NodeId, net::NodeId>> edge_set;
  for (net::LayerId layer = 1; layer <= max_layer; ++layer) {
    const GroupTree* t = tree(net::GroupAddr{session, layer});
    if (t == nullptr) continue;
    edge_set.insert(t->edges.begin(), t->edges.end());
  }
  return {edge_set.begin(), edge_set.end()};
}

void MulticastRouter::on_topology_change() {
  // Flag-setting only; every group gets the same write, order is irrelevant.
  for (auto& [group, state] : groups_) state.tree_dirty = true;  // NOLINT-determinism(order-free)
}

void MulticastRouter::route(net::NodeId node, const net::Packet& packet,
                            std::vector<net::LinkId>& out_links, bool& deliver_locally) {
  // Fast path: the dense id send_multicast stamped indexes straight into the
  // group table. A stamped packet whose slot is missing or null belongs to a
  // group no one ever joined (group_state is what fills the slot), so the
  // verdict is final without touching the hash table. The hash lookup only
  // remains for packets injected without a stamp (e.g. tests driving route()
  // directly).
  GroupState* state = nullptr;
  if (packet.group_stats_id != net::kInvalidGroupStatsId) {
    if (packet.group_stats_id >= groups_by_stats_id_.size()) return;
    state = groups_by_stats_id_[packet.group_stats_id];
    if (state == nullptr) return;
  } else {
    const auto git = groups_.find(packet.group);
    if (git == groups_.end()) return;
    state = &git->second;
  }
  if (state->tree_dirty) rebuild_tree(packet.group, *state);
  const GroupTree& tree = state->tree;
  if (node >= tree.fan.size()) return;
  const GroupTree::FanSlot slot = tree.fan[node];
  const net::LinkId* span = tree.fan_links.data() + slot.offset;
  // HOTPATH_ALLOW(container-growth: appends into the forwarder's reused scratch vector; its capacity stabilizes at the max per-hop fan-out after warmup)
  out_links.insert(out_links.end(), span, span + slot.count);
  deliver_locally = slot.deliver_locally != 0;
}

}  // namespace tsim::mcast
