#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/hotpath.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace tsim::mcast {

/// Forwarding state of one multicast group: a source-rooted shortest-path
/// tree over the unicast routing, as PIM-SSM would build.
struct GroupTree {
  net::NodeId source{net::kInvalidNode};

  struct ForwardEntry {
    std::vector<net::LinkId> out_links;  ///< links to replicate onto
    bool deliver_locally{false};         ///< a subscribed receiver lives here
  };
  std::unordered_map<net::NodeId, ForwardEntry> entries;

  /// One fan-out slot per node: a (offset, count) span into `fan_links` plus
  /// the local-delivery flag — a few bytes where the per-entry vector layout
  /// paid a heap hop per node. `count` is 32-bit: the scale star hangs every
  /// receiver off one hub, so a single node's fan-out reaches the full
  /// receiver population (100k exceeds uint16).
  struct FanSlot {
    std::uint32_t offset{0};
    std::uint32_t count{0};
    std::uint8_t deliver_locally{0};
  };
  static_assert(sizeof(FanSlot) == 12, "FanSlot must stay within 12 bytes");

  /// `entries` flattened CSR-style: `fan` is NodeId-indexed, `fan_links` is
  /// the shared pool all spans point into (per-node runs are contiguous, in
  /// the same sorted order as entries[].out_links). The per-hop route() path
  /// reads only these two arrays; `entries` stays the sparse view for
  /// auditors and tests.
  std::vector<FanSlot> fan;
  std::vector<net::LinkId> fan_links;

  /// Tree edges as (parent, child) node pairs — what a topology discovery
  /// tool (mtrace-style) would reconstruct.
  std::vector<std::pair<net::NodeId, net::NodeId>> edges;

  /// Network::topology_version() at the instant this tree was (re)built. A
  /// clean tree whose stamp trails the network's current version is stale —
  /// its edges may reference failed links (audited by check::InvariantAuditor).
  std::uint64_t built_topology_version{0};
};

/// IGMP/PIM-flavoured group management and multicast forwarding.
///
/// Two latencies model the paper's §V "group-leave latency" concern:
///  * `join_latency`  — delay between a join request and packets flowing
///    (graft propagation; default 0 as grafts are fast).
///  * `leave_latency` — after a leave, the tree keeps carrying traffic toward
///    the departed member for this long (IGMP last-member query), so dropping
///    a layer does NOT immediately relieve congestion. Local delivery stops
///    immediately, matching a host that closed its socket.
class MulticastRouter final : public net::MulticastForwarder {
 public:
  struct Config {
    sim::Time join_latency{sim::Time::zero()};
    sim::Time leave_latency{sim::Time::seconds(1)};
  };

  MulticastRouter(sim::Simulation& simulation, net::Network& network, Config config);
  /// Default configuration (instant grafts, 1 s leave latency).
  MulticastRouter(sim::Simulation& simulation, net::Network& network);

  /// Declares the source node of every group of a session. Must be set
  /// before members join groups of that session.
  void set_session_source(net::SessionId session, net::NodeId source);
  [[nodiscard]] net::NodeId session_source(net::SessionId session) const;

  /// Subscribes `member` to `group`. Delivery starts after join_latency.
  void join(net::NodeId member, net::GroupAddr group);

  /// Unsubscribes `member`. Local delivery stops now; upstream forwarding
  /// persists for leave_latency.
  void leave(net::NodeId member, net::GroupAddr group);

  /// True when `member` currently receives `group` locally.
  [[nodiscard]] bool is_member(net::NodeId member, net::GroupAddr group) const;

  /// Nodes with active local delivery for `group`.
  [[nodiscard]] std::vector<net::NodeId> members(net::GroupAddr group) const;

  /// Current forwarding tree (nullptr when the group has no state).
  [[nodiscard]] const GroupTree* tree(net::GroupAddr group) const;

  /// Like tree(), but never triggers a lazy rebuild: returns nullptr when the
  /// group is unknown OR its tree is dirty. The auditor uses this so periodic
  /// sweeps observe without perturbing rebuild timing (a tree rebuilt early
  /// could prune differently than one rebuilt at its natural first use).
  [[nodiscard]] const GroupTree* tree_if_clean(net::GroupAddr group) const;

  /// Groups with any state (members past or present), in deterministic
  /// GroupAddr order.
  [[nodiscard]] std::vector<net::GroupAddr> active_groups() const;

  /// Invoked after every tree (re)build — prune, re-graft, or topology-driven
  /// reroute — with the freshly built tree. This is the auditor's
  /// well-formedness hook; the callback must not call tree()/route() for the
  /// same group (the rebuild is already complete, reads are fine).
  void set_audit_hook(std::function<void(net::GroupAddr, const GroupTree&)> hook) {
    audit_hook_ = std::move(hook);
  }

  /// Test-only: appends a reversed copy of the first edge (or a self-edge for
  /// an edgeless tree) to a group's built tree, breaking acyclicity /
  /// well-formedness so auditor tests can prove detection. Forces a rebuild
  /// first so there is a tree to corrupt. Never call outside tests.
  void corrupt_tree_edge_for_test(net::GroupAddr group);

  /// Union of the per-layer tree edges of `session` for layers [1..max_layer]
  /// — the "multicast session topology" the paper's controller consumes.
  [[nodiscard]] std::vector<std::pair<net::NodeId, net::NodeId>> session_tree_edges(
      net::SessionId session, net::LayerId max_layer) const;

  /// net::MulticastForwarder:
  HOT_PATH void route(net::NodeId node, const net::Packet& packet,
                      std::vector<net::LinkId>& out_links, bool& deliver_locally) override;

  /// Topology changed (link failure/repair): every group tree is marked dirty
  /// and lazily rebuilt over the new unicast routes — members cut off from
  /// the source are pruned, members with a restored path are re-grafted.
  void on_topology_change() override;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct MemberState {
    bool local_active{false};                ///< packets delivered to the host
    bool join_pending{false};                ///< graft in flight
    sim::Time forward_until{sim::Time::zero()};  ///< tree carries traffic until then
  };
  struct GroupState {
    std::unordered_map<net::NodeId, MemberState> members;
    GroupTree tree;
    bool tree_dirty{true};
  };

  GroupState& group_state(net::GroupAddr group);
  HOT_PATH_EXEMPT(
      "control plane: a rebuild fires once per membership or topology change and the tree "
      "is cached until re-dirtied; route() serves the cached CSR fan-out per packet")
  void rebuild_tree(net::GroupAddr group, GroupState& state);

  sim::Simulation& simulation_;
  net::Network& network_;
  Config config_;
  std::unordered_map<net::GroupAddr, GroupState> groups_;
  /// groups_ values indexed by the Network's dense group-stats id (stamped
  /// into every multicast packet), so route() skips the GroupAddr hash on the
  /// per-hop path. Pointers are stable: unordered_map never moves its values.
  std::vector<GroupState*> groups_by_stats_id_;
  std::unordered_map<net::SessionId, net::NodeId> session_sources_;
  std::function<void(net::GroupAddr, const GroupTree&)> audit_hook_;
};

}  // namespace tsim::mcast
