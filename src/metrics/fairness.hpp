#pragma once

#include <vector>

namespace tsim::metrics {

/// Jain's fairness index: (Σx)² / (n·Σx²), 1.0 when all values are equal,
/// approaching 1/n as allocation concentrates on one party. The standard
/// single-number companion to the paper's per-session deviation metric.
[[nodiscard]] double jain_index(const std::vector<double>& values);

}  // namespace tsim::metrics
