#include "metrics/sampler.hpp"

// Header-only; this TU anchors the library target.
