#pragma once

#include <optional>

#include "metrics/subscription_metrics.hpp"
#include "sim/time.hpp"

namespace tsim::metrics {

/// Recovery analysis after a fault repair: how long a receiver takes to climb
/// back to (near-)optimal subscription and stay there.
struct RecoveryConfig {
  /// The moment the fault was repaired; the search starts here.
  sim::Time repair{sim::Time::zero()};
  /// Target level, usually the receiver's offline optimum.
  int target{0};
  /// Levels >= target - tolerance count as recovered ("within 1 layer of
  /// optimal" uses tolerance 1).
  int tolerance{0};
  /// The level must hold continuously this long to count (filters the
  /// transient overshoot/undershoot right after repair). Zero accepts the
  /// first touch.
  sim::Time hold{sim::Time::seconds(10)};
  /// End of the observation window (e.g. the run duration).
  sim::Time until{sim::Time::max()};
};

/// Time from `config.repair` until the timeline first reaches
/// target - tolerance and holds it for `config.hold` (the hold must start,
/// not finish, inside the window). std::nullopt when the receiver never
/// recovers within the window.
[[nodiscard]] std::optional<sim::Time> recovery_time(const SubscriptionTimeline& timeline,
                                                     const RecoveryConfig& config);

}  // namespace tsim::metrics
