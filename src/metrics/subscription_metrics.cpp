#include "metrics/subscription_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsim::metrics {

SubscriptionTimeline::SubscriptionTimeline(sim::Time start, int initial) {
  points_.emplace_back(start, initial);
}

void SubscriptionTimeline::record(sim::Time when, int level) {
  if (when < points_.back().first) {
    throw std::invalid_argument("SubscriptionTimeline::record: time went backwards");
  }
  if (points_.back().second == level) return;
  points_.emplace_back(when, level);
}

int SubscriptionTimeline::level_at(sim::Time when) const {
  int level = points_.front().second;
  for (const auto& [t, l] : points_) {
    if (t > when) break;
    level = l;
  }
  return level;
}

double SubscriptionTimeline::relative_deviation(int optimal, sim::Time from,
                                                sim::Time to) const {
  if (to <= from || optimal <= 0) return 0.0;
  double abs_weighted = 0.0;
  double opt_weighted = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const sim::Time seg_start = std::max(points_[i].first, from);
    const sim::Time seg_end =
        std::min(i + 1 < points_.size() ? points_[i + 1].first : to, to);
    if (seg_end <= seg_start) continue;
    const double dt = (seg_end - seg_start).as_seconds();
    abs_weighted += std::abs(points_[i].second - optimal) * dt;
    opt_weighted += optimal * dt;
  }
  return opt_weighted > 0.0 ? abs_weighted / opt_weighted : 0.0;
}

int SubscriptionTimeline::change_count(sim::Time from, sim::Time to) const {
  int count = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first >= from && points_[i].first <= to) ++count;
  }
  return count;
}

double SubscriptionTimeline::mean_time_between_changes_s(sim::Time from, sim::Time to) const {
  std::vector<sim::Time> changes;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first >= from && points_[i].first <= to) changes.push_back(points_[i].first);
  }
  if (changes.size() < 2) return (to - from).as_seconds();
  double total = 0.0;
  for (std::size_t i = 1; i < changes.size(); ++i) {
    total += (changes[i] - changes[i - 1]).as_seconds();
  }
  return total / static_cast<double>(changes.size() - 1);
}

double SubscriptionTimeline::time_at_level_fraction(int level, sim::Time from,
                                                    sim::Time to) const {
  if (to <= from) return 0.0;
  double at_level = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const sim::Time seg_start = std::max(points_[i].first, from);
    const sim::Time seg_end =
        std::min(i + 1 < points_.size() ? points_[i + 1].first : to, to);
    if (seg_end <= seg_start) continue;
    if (points_[i].second == level) at_level += (seg_end - seg_start).as_seconds();
  }
  return at_level / (to - from).as_seconds();
}

}  // namespace tsim::metrics
