#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace tsim::metrics {

/// Samples a set of named double-valued probes at a fixed period — used by
/// the Fig 9 trace bench (per-second layer subscription + loss history).
class TimeSeriesSampler {
 public:
  struct Series {
    std::string name;
    std::function<double()> probe;
    std::vector<double> values;
  };

  TimeSeriesSampler(sim::Simulation& simulation, sim::Time period)
      : simulation_{simulation}, period_{period} {}

  void add_series(std::string name, std::function<double()> probe) {
    series_.push_back(Series{std::move(name), std::move(probe), {}});
  }

  void start(sim::Time at) {
    simulation_.at(at, [this]() { sample(); });
  }

  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] const std::vector<sim::Time>& timestamps() const { return timestamps_; }

 private:
  void sample() {
    timestamps_.push_back(simulation_.now());
    for (Series& s : series_) s.values.push_back(s.probe());
    simulation_.after(period_, [this]() { sample(); });
  }

  sim::Simulation& simulation_;
  sim::Time period_;
  std::vector<Series> series_;
  std::vector<sim::Time> timestamps_;
};

}  // namespace tsim::metrics
