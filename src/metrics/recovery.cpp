#include "metrics/recovery.hpp"

#include <algorithm>

namespace tsim::metrics {

std::optional<sim::Time> recovery_time(const SubscriptionTimeline& timeline,
                                       const RecoveryConfig& config) {
  const int threshold = config.target - config.tolerance;
  const auto& points = timeline.points();

  // Walk the step function from the repair instant; a recovery spell starts
  // whenever the level rises to >= threshold and ends at the next point
  // below it (or the window end, which counts as holding forever).
  std::optional<sim::Time> spell_start;
  if (timeline.level_at(config.repair) >= threshold) spell_start = config.repair;

  auto spell_long_enough = [&](sim::Time start, sim::Time end) {
    return end - start >= config.hold;
  };

  for (const auto& [when, level] : points) {
    if (when <= config.repair) continue;
    if (when > config.until) break;
    if (level >= threshold) {
      if (!spell_start) spell_start = when;
    } else if (spell_start) {
      if (spell_long_enough(*spell_start, when)) return *spell_start - config.repair;
      spell_start.reset();
    }
  }
  if (spell_start && spell_long_enough(*spell_start, config.until)) {
    return *spell_start - config.repair;
  }
  return std::nullopt;
}

}  // namespace tsim::metrics
