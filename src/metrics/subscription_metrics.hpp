#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace tsim::metrics {

/// Step-function record of a receiver's subscription level over time, plus
/// the two statistics the paper reports from it:
///  * relative deviation from the optimal subscription over an interval
///    (§IV's metric: Σ|x_i(Δt)−y_i|·‖Δt‖ / Σ y_i·‖Δt‖), and
///  * stability (number of changes and mean time between successive changes,
///    Figs 6 and 7).
class SubscriptionTimeline {
 public:
  /// `initial` is the level in force at `start`.
  SubscriptionTimeline(sim::Time start, int initial);

  /// Records a change at `when` to `level`. Times must be non-decreasing.
  void record(sim::Time when, int level);

  /// Level in force at `when`.
  [[nodiscard]] int level_at(sim::Time when) const;

  /// The paper's relative deviation from `optimal` over [from, to].
  [[nodiscard]] double relative_deviation(int optimal, sim::Time from, sim::Time to) const;

  /// Number of changes in [from, to].
  [[nodiscard]] int change_count(sim::Time from, sim::Time to) const;

  /// Mean gap between successive changes in [from, to]. With fewer than two
  /// changes the spell is fully stable and the interval length is returned.
  [[nodiscard]] double mean_time_between_changes_s(sim::Time from, sim::Time to) const;

  /// Fraction of [from, to] spent exactly at `optimal`.
  [[nodiscard]] double time_at_level_fraction(int level, sim::Time from, sim::Time to) const;

  [[nodiscard]] const std::vector<std::pair<sim::Time, int>>& points() const { return points_; }

 private:
  std::vector<std::pair<sim::Time, int>> points_;  ///< (time, level), first is start
};

}  // namespace tsim::metrics
