#pragma once

#include <vector>

#include "core/units.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace tsim::metrics {

/// Samples a link's delivered throughput and drop rate per period — the
/// simulator-side ground truth the benches compare the algorithm's estimates
/// against.
class LinkMonitor {
 public:
  struct Sample {
    sim::Time at{};
    units::BitsPerSec throughput{};
    double drop_rate{0.0};       ///< dropped / enqueued in the period
    std::size_t queue_length{0};
  };

  LinkMonitor(sim::Simulation& simulation, net::Network& network, net::LinkId link,
              sim::Time period)
      : simulation_{simulation}, network_{network}, link_{link}, period_{period} {}

  void start() {
    last_delivered_bytes_ = network_.link(link_).stats().delivered_bytes;
    last_enqueued_ = network_.link(link_).stats().enqueued_packets;
    last_dropped_ = network_.link(link_).stats().dropped_packets;
    simulation_.after(period_, [this]() { sample(); });
  }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// Mean utilization (delivered / capacity) across all samples.
  [[nodiscard]] double mean_utilization() const {
    if (samples_.empty()) return 0.0;
    units::BitsPerSec total = units::BitsPerSec::zero();
    for (const Sample& s : samples_) total += s.throughput;
    return total / static_cast<double>(samples_.size()) / network_.link(link_).bandwidth();
  }

 private:
  void sample() {
    const auto& stats = network_.link(link_).stats();
    Sample s;
    s.at = simulation_.now();
    s.throughput = (stats.delivered_bytes - last_delivered_bytes_) / period_;
    const auto enq = stats.enqueued_packets - last_enqueued_;
    const auto drop = stats.dropped_packets - last_dropped_;
    s.drop_rate = enq == 0 ? 0.0 : static_cast<double>(drop) / static_cast<double>(enq);
    s.queue_length = network_.link(link_).queue_length();
    samples_.push_back(s);
    last_delivered_bytes_ = stats.delivered_bytes;
    last_enqueued_ = stats.enqueued_packets;
    last_dropped_ = stats.dropped_packets;
    simulation_.after(period_, [this]() { sample(); });
  }

  sim::Simulation& simulation_;
  net::Network& network_;
  net::LinkId link_;
  sim::Time period_;
  units::Bytes last_delivered_bytes_{};
  std::uint64_t last_enqueued_{0};
  std::uint64_t last_dropped_{0};
  std::vector<Sample> samples_;
};

}  // namespace tsim::metrics
