#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tsim::metrics {

/// Collects named numeric columns over time and renders them as CSV — the
/// bridge from bench runs to external plotting. Rows are appended via
/// add_row(); the writer keeps everything in memory (runs are minutes of
/// simulated time at one row per second, i.e. tiny).
class TraceWriter {
 public:
  explicit TraceWriter(std::vector<std::string> columns);

  /// Appends one row; `values` must match the column count.
  void add_row(sim::Time t, const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const { return times_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] double value(std::size_t row, std::size_t column) const {
    return values_[row * columns_.size() + column];
  }
  [[nodiscard]] sim::Time time(std::size_t row) const { return times_[row]; }

  /// Renders "time,col1,col2,...\n..." CSV.
  [[nodiscard]] std::string to_csv() const;

  /// Writes the CSV to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<sim::Time> times_;
  std::vector<double> values_;
};

}  // namespace tsim::metrics
