#include "metrics/trace_writer.hpp"

#include <cstdio>
#include <stdexcept>

namespace tsim::metrics {

TraceWriter::TraceWriter(std::vector<std::string> columns) : columns_{std::move(columns)} {}

void TraceWriter::add_row(sim::Time t, const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("TraceWriter::add_row: column count mismatch");
  }
  times_.push_back(t);
  values_.insert(values_.end(), values.begin(), values.end());
}

std::string TraceWriter::to_csv() const {
  std::string out = "time_s";
  for (const std::string& c : columns_) {
    out += ',';
    out += c;
  }
  out += '\n';
  char buf[64];
  for (std::size_t row = 0; row < times_.size(); ++row) {
    std::snprintf(buf, sizeof(buf), "%.3f", times_[row].as_seconds());
    out += buf;
    for (std::size_t col = 0; col < columns_.size(); ++col) {
      std::snprintf(buf, sizeof(buf), ",%.6g", value(row, col));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool TraceWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tsim::metrics
