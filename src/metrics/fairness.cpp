#include "metrics/fairness.hpp"

namespace tsim::metrics {

double jain_index(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero: degenerate but equal
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace tsim::metrics
