#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/toposense.hpp"
#include "core/types.hpp"
#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace tsim::check {

/// What the auditor does when an invariant fails.
enum class AuditMode {
  kOff,     ///< no checks run, zero overhead
  kLog,     ///< record (and optionally print) violations, keep running
  kAssert,  ///< throw AuditError on the first violation
};

/// Parses "off" | "log" | "assert"; nullopt on anything else.
[[nodiscard]] std::optional<AuditMode> parse_audit_mode(std::string_view text);
[[nodiscard]] const char* audit_mode_name(AuditMode mode);

struct AuditConfig {
  AuditMode mode{AuditMode::kOff};
  /// Period of the sweeping checks (link conservation, scheduler pool,
  /// clean-tree well-formedness). Event-driven checks (tree rebuilds,
  /// controller passes, watchdog actions) fire regardless of cadence.
  sim::Time cadence{sim::Time::seconds(1)};
  /// Violations kept for the machine-readable report; the total count keeps
  /// incrementing past this bound.
  std::size_t max_recorded{256};
  /// In kLog mode, also print each violation to stderr as it happens.
  bool log_to_stderr{true};
};

/// One invariant failure, with enough context to localize it: which named
/// invariant, when in simulated time, under which topology epoch, and which
/// node/link was involved (kInvalidNode/kInvalidLink when not applicable).
struct Violation {
  std::string invariant;
  sim::Time when{sim::Time::zero()};
  std::uint64_t epoch{0};
  net::NodeId node{net::kInvalidNode};
  net::LinkId link{net::kInvalidLink};
  std::string detail;
};

/// Thrown in kAssert mode. Carries the triggering violation so tests can
/// assert on the invariant id and context.
class AuditError : public std::runtime_error {
 public:
  explicit AuditError(Violation violation);
  [[nodiscard]] const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

/// Registry of named invariant checks over live simulation state (ISSUE 3
/// tentpole; the full catalogue is docs/invariants.md). Checks come in two
/// flavours:
///
///  * sweeps — registered by the attach_* calls and run every `cadence` once
///    start() is called (or on demand via run_checks_now()): per-link
///    packet/byte conservation, scheduler monotonic-time and slot-pool
///    consistency, multicast-tree well-formedness of clean trees;
///  * event-driven — invoked from instrumentation hooks at the exact moment
///    the audited property must hold: tree rebuild (prune/re-graft),
///    controller pass postconditions, receiver watchdog decisions.
///
/// The auditor only observes: sweeps never trigger lazy tree rebuilds and no
/// check draws randomness or schedules behaviour-relevant events, so enabling
/// auditing cannot change a run's outcome.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditConfig config);

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// --- Wiring ------------------------------------------------------------

  /// Registers the scheduler checks and lets the auditor timestamp
  /// violations with simulation time.
  void attach_simulation(sim::Simulation& simulation);
  /// Registers the per-link conservation checks and provides the topology
  /// epoch for violation records.
  void attach_network(net::Network& network);
  /// Registers the tree sweep and installs the router's post-rebuild audit
  /// hook. Requires attach_network first (trees are validated against the
  /// live topology).
  void attach_multicast(mcast::MulticastRouter& router);
  /// Starts the periodic sweeps (no-op when mode is kOff or no simulation is
  /// attached).
  void start();

  /// Registers a custom named sweep check; `fn` reports through `report()`.
  void register_check(std::string name, std::function<void()> fn);
  /// Runs every registered sweep check once, in registration order.
  void run_checks_now();

  /// --- Event-driven validators --------------------------------------------

  /// Validates one freshly built (or clean) group tree: rooted, acyclic,
  /// single-parent, edges alive in the current topology epoch, no orphan
  /// receivers that the topology could reach.
  void check_group_tree(net::GroupAddr group, const mcast::GroupTree& tree);

  /// Validates the controller pass postconditions against one interval's
  /// input/output: bottleneck bandwidth and fair share monotone along every
  /// root-to-leaf path, fair shares on a shared link bounded by its estimated
  /// capacity (modulo the base-layer floor), subscription levels within layer
  /// bounds and prescriptions consistent with the computed supply.
  void on_algorithm_output(const core::AlgorithmInput& input, const core::AlgorithmOutput& output,
                           const core::TopoSense& algorithm);

  /// One receiver watchdog decision, checked against the sanity rules: never
  /// add-probe at/above the add-loss threshold or while starved, never drop
  /// a layer on a clean, un-starved window.
  struct WatchdogObservation {
    net::NodeId node{net::kInvalidNode};
    bool add{false};
    double loss{0.0};
    bool starved{false};
    double add_loss_threshold{0.0};
    double drop_loss_threshold{0.0};
  };
  void on_unilateral_action(const WatchdogObservation& obs);

  /// --- Reporting ----------------------------------------------------------

  /// Records a violation: counts it, keeps it for the report (up to
  /// max_recorded), prints it in kLog mode, throws AuditError in kAssert
  /// mode. No-op in kOff mode.
  void report(Violation violation);

  [[nodiscard]] const AuditConfig& config() const { return config_; }
  [[nodiscard]] AuditMode mode() const { return config_.mode; }
  [[nodiscard]] bool enabled() const { return config_.mode != AuditMode::kOff; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t violation_count() const { return violation_count_; }
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  /// Machine-readable report: mode, counters and the recorded violations.
  [[nodiscard]] std::string report_json() const;

  /// Timestamp source for callers without an attached simulation (library /
  /// bench use); ignored once attach_simulation was called.
  void set_now(sim::Time now) { manual_now_ = now; }

 private:
  [[nodiscard]] sim::Time now() const;
  [[nodiscard]] std::uint64_t epoch() const;

  void check_links();
  void check_scheduler();
  void check_clean_trees();

  AuditConfig config_;
  sim::Simulation* simulation_{nullptr};
  net::Network* network_{nullptr};
  mcast::MulticastRouter* multicast_{nullptr};
  sim::Time manual_now_{sim::Time::zero()};
  sim::Time last_seen_time_{sim::Time::zero()};
  bool seen_time_{false};
  bool started_{false};
  std::vector<std::pair<std::string, std::function<void()>>> checks_;
  std::vector<Violation> violations_;
  std::uint64_t violation_count_{0};
  std::uint64_t checks_run_{0};

  /// Scratch reused across controller passes so the per-pass check allocates
  /// nothing in steady state (keeps log-mode overhead within the 15% budget).
  struct PassScratch {
    /// Stamp-indexed per-node maps: an entry is valid only when its stamp
    /// matches the current session's (or the pass's, for the link-share
    /// accumulator), so switching sessions/passes is O(1) and the whole check
    /// allocates nothing in steady state. All vectors grow together to
    /// max-node-id + 1 via ensure_node().
    std::vector<std::uint64_t> node_stamp;   ///< node -> row validity
    std::vector<std::uint32_t> node_row;     ///< node -> diagnostics row
    std::vector<std::uint64_t> presc_stamp;  ///< node -> level validity
    std::vector<int> presc_level;            ///< node -> prescribed level
    /// Per-child fair-share accumulator across sessions (a child has one tree
    /// parent per session; the rare child sitting under *different* parents in
    /// different sessions spills into `spill`).
    std::vector<std::uint64_t> child_stamp;
    std::vector<std::uint32_t> child_parent;
    std::vector<double> child_sum;
    std::vector<int> child_sessions;
    std::vector<std::uint32_t> touched_children;  ///< diag order => deterministic
    struct Spill {
      std::uint64_t key;  ///< parent<<32|child
      double sum;
      int sessions;
    };
    std::vector<Spill> spill;
    /// Prescription indices bucketed by diagnostics-session index.
    std::vector<std::vector<std::uint32_t>> presc_by_session;
    std::uint64_t stamp{0};

    void ensure_node(std::uint32_t node);
  };
  PassScratch scratch_;
};

}  // namespace tsim::check
