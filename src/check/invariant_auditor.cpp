#include "check/invariant_auditor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace tsim::check {

namespace {

/// Relative slack for floating-point monotonicity comparisons.
constexpr double kRelTol = 1e-9;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string describe(const Violation& v) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "[%s] t=%.6fs epoch=%" PRIu64, v.invariant.c_str(),
                v.when.as_seconds(), v.epoch);
  std::string out{buf};
  if (v.node != net::kInvalidNode) out += " node=" + std::to_string(v.node);
  if (v.link != net::kInvalidLink) out += " link=" + std::to_string(v.link);
  if (!v.detail.empty()) out += " — " + v.detail;
  return out;
}

std::string group_tag(net::GroupAddr group) {
  return "session " + std::to_string(group.session) + " layer " +
         std::to_string(static_cast<int>(group.layer));
}

}  // namespace

std::optional<AuditMode> parse_audit_mode(std::string_view text) {
  if (text == "off") return AuditMode::kOff;
  if (text == "log") return AuditMode::kLog;
  if (text == "assert") return AuditMode::kAssert;
  return std::nullopt;
}

const char* audit_mode_name(AuditMode mode) {
  switch (mode) {
    case AuditMode::kOff: return "off";
    case AuditMode::kLog: return "log";
    case AuditMode::kAssert: return "assert";
  }
  return "?";
}

AuditError::AuditError(Violation violation)
    : std::runtime_error{"audit violation: " + describe(violation)},
      violation_{std::move(violation)} {}

InvariantAuditor::InvariantAuditor(AuditConfig config) : config_{config} {}

sim::Time InvariantAuditor::now() const {
  return simulation_ != nullptr ? simulation_->now() : manual_now_;
}

std::uint64_t InvariantAuditor::epoch() const {
  return network_ != nullptr ? network_->topology_version() : 0;
}

void InvariantAuditor::report(Violation violation) {
  if (!enabled()) return;
  ++violation_count_;
  if (config_.mode == AuditMode::kLog && config_.log_to_stderr) {
    std::fprintf(stderr, "audit: %s\n", describe(violation).c_str());
  }
  if (config_.mode == AuditMode::kAssert) {
    if (violations_.size() < config_.max_recorded) violations_.push_back(violation);
    throw AuditError{std::move(violation)};
  }
  if (violations_.size() < config_.max_recorded) violations_.push_back(std::move(violation));
}

void InvariantAuditor::register_check(std::string name, std::function<void()> fn) {
  checks_.emplace_back(std::move(name), std::move(fn));
}

void InvariantAuditor::run_checks_now() {
  if (!enabled()) return;
  for (const auto& [name, fn] : checks_) {
    ++checks_run_;
    fn();
  }
}

void InvariantAuditor::attach_simulation(sim::Simulation& simulation) {
  simulation_ = &simulation;
  register_check("sim.scheduler", [this]() { check_scheduler(); });
}

void InvariantAuditor::attach_network(net::Network& network) {
  network_ = &network;
  register_check("link.conservation", [this]() { check_links(); });
}

void InvariantAuditor::attach_multicast(mcast::MulticastRouter& router) {
  multicast_ = &router;
  register_check("mcast.trees", [this]() { check_clean_trees(); });
  router.set_audit_hook([this](net::GroupAddr group, const mcast::GroupTree& tree) {
    check_group_tree(group, tree);
  });
}

void InvariantAuditor::start() {
  if (!enabled() || simulation_ == nullptr || started_) return;
  started_ = true;
  // SmallCallback cannot capture itself, so reschedule through a member hop.
  struct Tick {
    InvariantAuditor* auditor;
    void operator()() const {
      auditor->run_checks_now();
      auditor->simulation_->after(auditor->config_.cadence, Tick{auditor});
    }
  };
  simulation_->after(config_.cadence, Tick{this});
}

/// Invariant: everything a link was ever offered is accounted for —
///   enqueued == delivered + dropped + queued + transmitting
/// at packet and byte granularity (tx == rx + dropped + queued + in_flight).
void InvariantAuditor::check_links() {
  for (net::LinkId id = 0; id < network_->link_count(); ++id) {
    const net::Link& link = network_->link(id);
    const net::LinkStats& s = link.stats();

    const std::uint64_t in_transmitter = link.transmitting() ? 1 : 0;
    const std::uint64_t packets_out =
        s.delivered_packets + s.dropped_packets + link.queue_length() + in_transmitter;
    if (s.enqueued_packets != packets_out) {
      report(Violation{"link.packet_conservation", now(), epoch(), link.from(), id,
                       "enqueued " + std::to_string(s.enqueued_packets) + " != delivered " +
                           std::to_string(s.delivered_packets) + " + dropped " +
                           std::to_string(s.dropped_packets) + " + queued " +
                           std::to_string(link.queue_length()) + " + transmitting " +
                           std::to_string(in_transmitter)});
    }

    const units::Bytes bytes_out =
        s.delivered_bytes + s.dropped_bytes + link.queued_bytes() + link.transmitting_bytes();
    if (s.enqueued_bytes != bytes_out) {
      report(Violation{"link.byte_conservation", now(), epoch(), link.from(), id,
                       "enqueued " + std::to_string(s.enqueued_bytes.count()) + "B != delivered " +
                           std::to_string(s.delivered_bytes.count()) + "B + dropped " +
                           std::to_string(s.dropped_bytes.count()) + "B + queued " +
                           std::to_string(link.queued_bytes().count()) + "B + in-flight " +
                           std::to_string(link.transmitting_bytes().count()) + "B"});
    }
  }
}

/// Invariants: simulated time never runs backwards, no pending event sits in
/// the past, and the cancellation slot pool is consistent (every slot either
/// free or owned by exactly one queue entry).
void InvariantAuditor::check_scheduler() {
  const sim::Scheduler& sched = simulation_->scheduler();
  const sim::Time t = sched.now();
  if (seen_time_ && t < last_seen_time_) {
    report(Violation{"sim.time_monotonic", t, epoch(), net::kInvalidNode, net::kInvalidLink,
                     "clock moved backwards: " + std::to_string(last_seen_time_.as_seconds()) +
                         "s -> " + std::to_string(t.as_seconds()) + "s"});
  }
  seen_time_ = true;
  last_seen_time_ = t;

  if (sched.next_event_time() < t) {
    report(Violation{"sim.event_in_past", t, epoch(), net::kInvalidNode, net::kInvalidLink,
                     "pending event at " + std::to_string(sched.next_event_time().as_seconds()) +
                         "s is before now=" + std::to_string(t.as_seconds()) + "s"});
  }

  if (sched.slot_pool_size() != sched.free_slot_count() + sched.queued_entries()) {
    report(Violation{"sim.slot_pool", t, epoch(), net::kInvalidNode, net::kInvalidLink,
                     "pool " + std::to_string(sched.slot_pool_size()) + " != free " +
                         std::to_string(sched.free_slot_count()) + " + queued " +
                         std::to_string(sched.queued_entries())});
  }
  if (sched.cancelled_pending() > sched.queued_entries()) {
    report(Violation{"sim.slot_pool", t, epoch(), net::kInvalidNode, net::kInvalidLink,
                     "cancelled_pending " + std::to_string(sched.cancelled_pending()) +
                         " exceeds queued " + std::to_string(sched.queued_entries())});
  }
}

void InvariantAuditor::check_clean_trees() {
  for (const net::GroupAddr group : multicast_->active_groups()) {
    // Dirty trees are deliberately skipped: validating them would force a
    // rebuild earlier than its natural first use and perturb prune timing.
    const mcast::GroupTree* tree = multicast_->tree_if_clean(group);
    if (tree != nullptr) check_group_tree(group, *tree);
  }
}

/// Invariants: the tree is rooted at the session source, acyclic, every child
/// has one parent, every edge maps to a live link in the current topology
/// epoch, and every locally-delivering member the topology can reach is on
/// the tree.
void InvariantAuditor::check_group_tree(net::GroupAddr group, const mcast::GroupTree& tree) {
  if (!enabled()) return;
  const std::string tag = group_tag(group);

  if (tree.source == net::kInvalidNode) {
    report(Violation{"mcast.tree_root", now(), epoch(), net::kInvalidNode, net::kInvalidLink,
                     tag + ": tree has no source"});
    return;
  }

  if (network_ != nullptr && tree.built_topology_version != network_->topology_version()) {
    report(Violation{"mcast.tree_stale_epoch", now(), epoch(), tree.source, net::kInvalidLink,
                     tag + ": tree built under epoch " +
                         std::to_string(tree.built_topology_version) + ", network is at " +
                         std::to_string(network_->topology_version())});
  }

  std::unordered_map<net::NodeId, net::NodeId> seen_parent;
  std::unordered_map<net::NodeId, std::vector<net::NodeId>> children;
  for (const auto& [parent, child] : tree.edges) {
    if (child == tree.source) {
      report(Violation{"mcast.tree_root", now(), epoch(), tree.source, net::kInvalidLink,
                       tag + ": source has incoming edge from node " + std::to_string(parent)});
      continue;
    }
    const auto [it, inserted] = seen_parent.emplace(child, parent);
    if (!inserted) {
      report(Violation{"mcast.tree_multi_parent", now(), epoch(), child, net::kInvalidLink,
                       tag + ": node has parents " + std::to_string(it->second) + " and " +
                           std::to_string(parent)});
      continue;
    }
    children[parent].push_back(child);
  }

  // Walk down from the source; an edge whose parent is never reached belongs
  // to a cycle or a component detached from the root.
  std::unordered_set<net::NodeId> reached{tree.source};
  std::vector<net::NodeId> frontier{tree.source};
  while (!frontier.empty()) {
    const net::NodeId node = frontier.back();
    frontier.pop_back();
    const auto it = children.find(node);
    if (it == children.end()) continue;
    for (const net::NodeId child : it->second) {
      if (reached.insert(child).second) frontier.push_back(child);
    }
  }
  for (const auto& [parent, child] : tree.edges) {
    if (child == tree.source) continue;  // already reported as a root violation
    if (reached.count(child) == 0) {
      report(Violation{"mcast.tree_cycle", now(), epoch(), child, net::kInvalidLink,
                       tag + ": edge " + std::to_string(parent) + "->" + std::to_string(child) +
                           " unreachable from source (cycle or detached subtree)"});
    }
  }

  // CSR coherence: the dense fan-out tables route() replicates from must
  // mirror the sparse entries view exactly — same spans, same link order,
  // same local-delivery flags, and no fan-out outside any entry's span.
  std::uint64_t entry_links = 0;
  for (const auto& [node, entry] : tree.entries) {  // NOLINT-determinism(order-free)
    entry_links += entry.out_links.size();
    if (node >= tree.fan.size()) {
      report(Violation{"mcast.tree_csr", now(), epoch(), node, net::kInvalidLink,
                       tag + ": entry node has no fan slot"});
      continue;
    }
    const mcast::GroupTree::FanSlot& slot = tree.fan[node];
    const bool span_ok =
        slot.count == entry.out_links.size() &&
        static_cast<std::size_t>(slot.offset) + slot.count <= tree.fan_links.size() &&
        std::equal(entry.out_links.begin(), entry.out_links.end(),
                   tree.fan_links.begin() + slot.offset);
    if (!span_ok || (slot.deliver_locally != 0) != entry.deliver_locally) {
      report(Violation{"mcast.tree_csr", now(), epoch(), node, net::kInvalidLink,
                       tag + ": fan slot disagrees with entry (span " +
                           std::to_string(slot.offset) + "+" + std::to_string(slot.count) +
                           " of " + std::to_string(tree.fan_links.size()) + " links)"});
    }
  }
  if (entry_links != tree.fan_links.size()) {
    report(Violation{"mcast.tree_csr", now(), epoch(), tree.source, net::kInvalidLink,
                     tag + ": fan pool holds " + std::to_string(tree.fan_links.size()) +
                         " links, entries hold " + std::to_string(entry_links)});
  }

  if (network_ != nullptr) {
    for (const auto& [parent, child] : tree.edges) {
      bool alive = false;
      net::LinkId seen_link = net::kInvalidLink;
      for (const net::LinkId lid : network_->links_between(parent, child)) {
        const net::Link& link = network_->link(lid);
        if (link.from() != parent || link.to() != child) continue;
        seen_link = lid;
        if (link.is_up()) alive = true;
      }
      if (!alive) {
        report(Violation{"mcast.tree_dead_edge", now(), epoch(), parent, seen_link,
                         tag + ": edge " + std::to_string(parent) + "->" +
                             std::to_string(child) +
                             (seen_link == net::kInvalidLink ? " has no link"
                                                            : " rides a link that is down")});
      }
    }

    // Orphans: a member still marked for local delivery that the tree does
    // not reach, even though the topology has a path for it. Members with no
    // physical path are excused — the router keeps them for re-grafting once
    // the partition heals, which is correct behaviour, not a stale tree.
    std::vector<net::NodeId> delivering;
    for (const auto& [node, entry] : tree.entries) {  // NOLINT-determinism(sorted below)
      if (entry.deliver_locally) delivering.push_back(node);
    }
    std::sort(delivering.begin(), delivering.end());
    const net::RoutingTable& routes = network_->routes();
    for (const net::NodeId node : delivering) {
      if (node == tree.source || reached.count(node) != 0) continue;
      if (routes.path(tree.source, node).empty()) continue;
      report(Violation{"mcast.tree_orphan_receiver", now(), epoch(), node, net::kInvalidLink,
                       tag + ": subscribed receiver is reachable from source " +
                           std::to_string(tree.source) + " but not on the tree"});
    }
  }
}

/// Invariants over one controller pass (paper §III postconditions): bottleneck
/// bandwidth and fair share are monotone non-increasing from root to leaf,
/// supply respects layer bounds / demand / the parent's supply, prescriptions
/// match the computed supply, and per-link fair shares stay within the
/// estimated capacity plus the base-layer floor the allocator guarantees
/// every session.
void InvariantAuditor::on_algorithm_output(const core::AlgorithmInput& input,
                                           const core::AlgorithmOutput& output,
                                           const core::TopoSense& algorithm) {
  if (!enabled()) return;
  (void)input;
  const double base_rate = algorithm.params().layers.base_rate.bps();
  const int num_layers = algorithm.params().layers.num_layers;
  const sim::Time t = now();
  const std::uint64_t ep = epoch();

  // All pass-local lookup structures live in scratch_, are stamp-invalidated
  // rather than cleared, and are reused between passes; in steady state this
  // function performs no heap allocation and no sorting or hashing, which is
  // what keeps log-mode audit overhead inside the 15% benchmark budget.
  const std::uint64_t pass_stamp = ++scratch_.stamp;
  scratch_.touched_children.clear();
  scratch_.spill.clear();

  for (const core::Prescription& p : output.prescriptions) {
    if (p.subscription < 1 || p.subscription > num_layers) {
      report(Violation{"control.layer_bounds", t, ep, p.receiver, net::kInvalidLink,
                       "session " + std::to_string(p.session) + ": prescription " +
                           std::to_string(p.subscription) + " outside [1, " +
                           std::to_string(num_layers) + "]"});
    }
  }

  // Bucket prescriptions by diagnostics session (sessions are few, the linear
  // scan is cheap). A prescription for a session with no diagnostics is
  // ignored, matching the pre-auditor behaviour of downstream consumers.
  auto& buckets = scratch_.presc_by_session;
  if (buckets.size() < output.diagnostics.size()) buckets.resize(output.diagnostics.size());
  for (std::size_t d = 0; d < output.diagnostics.size(); ++d) buckets[d].clear();
  for (std::size_t i = 0; i < output.prescriptions.size(); ++i) {
    const core::Prescription& p = output.prescriptions[i];
    for (std::size_t d = 0; d < output.diagnostics.size(); ++d) {
      if (output.diagnostics[d].session == p.session) {
        buckets[d].push_back(static_cast<std::uint32_t>(i));
        break;
      }
    }
  }

  for (std::size_t d = 0; d < output.diagnostics.size(); ++d) {
    const core::SessionDiagnostics& diag = output.diagnostics[d];
    // Stamp-indexed node -> row map: bumping the stamp invalidates the
    // previous session's entries without touching the arrays.
    const std::uint64_t stamp = ++scratch_.stamp;
    for (std::size_t row = 0; row < diag.nodes.size(); ++row) {
      const net::NodeId node = diag.nodes[row].node;
      scratch_.ensure_node(node);
      scratch_.node_stamp[node] = stamp;
      scratch_.node_row[node] = static_cast<std::uint32_t>(row);
    }
    for (const std::uint32_t idx : buckets[d]) {
      const core::Prescription& p = output.prescriptions[idx];
      scratch_.ensure_node(p.receiver);
      scratch_.presc_stamp[p.receiver] = stamp;
      scratch_.presc_level[p.receiver] = p.subscription;
    }

    const std::string tag = "session " + std::to_string(diag.session);
    for (const core::NodeDiagnostics& nd : diag.nodes) {
      if (nd.supply < 0 || nd.supply > num_layers || nd.supply > std::max(nd.demand, 1)) {
        report(Violation{"control.layer_bounds", t, ep, nd.node, net::kInvalidLink,
                         tag + ": supply " + std::to_string(nd.supply) + " outside [0, " +
                             std::to_string(num_layers) + "] or above demand " +
                             std::to_string(nd.demand)});
      }
      if (nd.is_receiver) {
        const bool has = scratch_.presc_stamp[nd.node] == stamp;
        const int expected = std::max(1, nd.supply);
        if (!has || scratch_.presc_level[nd.node] != expected) {
          report(Violation{"control.prescription_mismatch", t, ep, nd.node, net::kInvalidLink,
                           tag + ": expected prescription " + std::to_string(expected) +
                               ", got " +
                               (!has ? "none" : std::to_string(scratch_.presc_level[nd.node]))});
        }
      }
      if (nd.parent == net::kInvalidNode) continue;

      if (std::isfinite(nd.share.bps())) {
        if (scratch_.child_stamp[nd.node] != pass_stamp) {
          scratch_.child_stamp[nd.node] = pass_stamp;
          scratch_.child_parent[nd.node] = nd.parent;
          scratch_.child_sum[nd.node] = nd.share.bps();
          scratch_.child_sessions[nd.node] = 1;
          scratch_.touched_children.push_back(nd.node);
        } else if (scratch_.child_parent[nd.node] == nd.parent) {
          scratch_.child_sum[nd.node] += nd.share.bps();
          scratch_.child_sessions[nd.node] += 1;
        } else {
          // Same child under a different parent in another session's tree:
          // rare, so a linear scan of the spill list is fine.
          const std::uint64_t key =
              (static_cast<std::uint64_t>(nd.parent) << 32) | nd.node;
          bool found = false;
          for (PassScratch::Spill& s : scratch_.spill) {
            if (s.key == key) {
              s.sum += nd.share.bps();
              s.sessions += 1;
              found = true;
              break;
            }
          }
          if (!found) scratch_.spill.push_back({key, nd.share.bps(), 1});
        }
      }

      if (nd.parent >= scratch_.node_stamp.size() || scratch_.node_stamp[nd.parent] != stamp) {
        report(Violation{"control.diag_parent_missing", t, ep, nd.node, net::kInvalidLink,
                         tag + ": parent " + std::to_string(nd.parent) +
                             " absent from diagnostics"});
        continue;
      }
      const core::NodeDiagnostics& pd = diag.nodes[scratch_.node_row[nd.parent]];
      if (nd.bottleneck > pd.bottleneck * (1.0 + kRelTol)) {
        report(Violation{"control.bottleneck_monotone", t, ep, nd.node, net::kInvalidLink,
                         tag + ": bottleneck " + std::to_string(nd.bottleneck.bps()) +
                             " bps exceeds parent " + std::to_string(nd.parent) + "'s " +
                             std::to_string(pd.bottleneck.bps()) + " bps"});
      }
      if (nd.share > pd.share * (1.0 + kRelTol)) {
        report(Violation{"control.share_monotone", t, ep, nd.node, net::kInvalidLink,
                         tag + ": fair share " + std::to_string(nd.share.bps()) +
                             " bps exceeds parent " + std::to_string(nd.parent) + "'s " +
                             std::to_string(pd.share.bps()) + " bps"});
      }
      if (nd.supply > std::max(pd.supply, 1)) {
        report(Violation{"control.layer_bounds", t, ep, nd.node, net::kInvalidLink,
                         tag + ": supply " + std::to_string(nd.supply) + " exceeds parent " +
                             std::to_string(nd.parent) + "'s supply " +
                             std::to_string(pd.supply)});
      }
    }
  }

  // A session's per-node share is the minimum link share along its path, so
  // summing the child-node shares of one link never exceeds the link's total
  // allocation: proportional split of the estimated capacity, plus at most
  // one base-layer floor per crossing session (the allocator guarantees every
  // session its base layer even on an over-subscribed link).
  const auto check_link_load = [&](net::NodeId parent, net::NodeId child, double sum,
                                   int sessions) {
    const double cap = algorithm.capacities().capacity_bps(core::LinkKey{parent, child});
    if (!std::isfinite(cap)) return;
    const double allowed = (cap + static_cast<double>(sessions) * base_rate) * (1.0 + 1e-6);
    if (sum > allowed) {
      report(Violation{"control.fair_share_capacity", t, ep, parent, net::kInvalidLink,
                       "link " + std::to_string(parent) + "->" + std::to_string(child) +
                           ": shares of " + std::to_string(sessions) + " session(s) sum to " +
                           std::to_string(sum) + " bps > capacity " + std::to_string(cap) +
                           " bps + base floors"});
    }
  };
  // touched_children follows diagnostics order and spill follows insertion
  // order, so the report sequence is deterministic.
  for (const std::uint32_t child : scratch_.touched_children) {
    check_link_load(scratch_.child_parent[child], child, scratch_.child_sum[child],
                    scratch_.child_sessions[child]);
  }
  for (const PassScratch::Spill& s : scratch_.spill) {
    check_link_load(static_cast<net::NodeId>(s.key >> 32),
                    static_cast<net::NodeId>(s.key & 0xffffffffu), s.sum, s.sessions);
  }
}

void InvariantAuditor::PassScratch::ensure_node(std::uint32_t node) {
  if (node < node_stamp.size()) return;
  const std::size_t n = node + 1;
  node_stamp.resize(n, 0);
  node_row.resize(n, 0);
  presc_stamp.resize(n, 0);
  presc_level.resize(n, 0);
  child_stamp.resize(n, 0);
  child_parent.resize(n, 0);
  child_sum.resize(n, 0.0);
  child_sessions.resize(n, 0);
}

/// Invariants: the watchdog never probes a layer up while its own window loss
/// is at/above the add threshold or while starved, and never sheds a layer on
/// a clean, un-starved window (§V resilience rules).
void InvariantAuditor::on_unilateral_action(const WatchdogObservation& obs) {
  if (!enabled()) return;
  if (obs.add && (obs.starved || obs.loss >= obs.add_loss_threshold)) {
    report(Violation{"control.watchdog_add_under_loss", now(), epoch(), obs.node,
                     net::kInvalidLink,
                     "add-probe with loss " + std::to_string(obs.loss) + " (threshold " +
                         std::to_string(obs.add_loss_threshold) +
                         (obs.starved ? ", starved)" : ")")});
  }
  if (!obs.add && !obs.starved && obs.loss <= obs.drop_loss_threshold) {
    report(Violation{"control.watchdog_drop_clean", now(), epoch(), obs.node, net::kInvalidLink,
                     "layer drop with clean loss " + std::to_string(obs.loss) + " (threshold " +
                         std::to_string(obs.drop_loss_threshold) + ", not starved)"});
  }
}

std::string InvariantAuditor::report_json() const {
  std::string out = "{\"audit\":{\"mode\":\"";
  out += audit_mode_name(config_.mode);
  out += "\",\"checks_run\":" + std::to_string(checks_run_);
  out += ",\"violations_total\":" + std::to_string(violation_count_);
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    const Violation& v = violations_[i];
    if (i != 0) out += ',';
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9f", v.when.as_seconds());
    out += "{\"invariant\":\"" + json_escape(v.invariant) + "\"";
    out += ",\"t_s\":" + std::string{buf};
    out += ",\"epoch\":" + std::to_string(v.epoch);
    out += ",\"node\":" +
           (v.node == net::kInvalidNode ? std::string{"-1"} : std::to_string(v.node));
    out += ",\"link\":" +
           (v.link == net::kInvalidLink ? std::string{"-1"} : std::to_string(v.link));
    out += ",\"detail\":\"" + json_escape(v.detail) + "\"}";
  }
  out += "]}}";
  return out;
}

}  // namespace tsim::check
