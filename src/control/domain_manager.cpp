#include "control/domain_manager.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "transport/control_messages.hpp"

namespace tsim::control {

using sim::Time;

/// --- TopoSenseDomain --------------------------------------------------------

TopoSenseDomain::TopoSenseDomain(sim::Simulation& simulation, net::Network& network,
                                 transport::DemuxRegistry& demuxes,
                                 std::unique_ptr<topo::TopologyProvider> discovery,
                                 Config config)
    : simulation_{simulation}, config_{config}, discovery_{std::move(discovery)} {
  agent_ = std::make_unique<ControllerAgent>(simulation, network, *discovery_,
                                             demuxes.at(config_.agent.node), config_.agent);
}

ReceiverAgent* TopoSenseDomain::register_receiver(transport::ReceiverEndpoint& endpoint) {
  agent_->register_receiver(endpoint.config().session, endpoint.config().node);
  if (!config_.install_watchdogs) return nullptr;
  watchdogs_.push_back(
      std::make_unique<ReceiverAgent>(simulation_, endpoint, config_.watchdog));
  return watchdogs_.back().get();
}

void TopoSenseDomain::start() {
  // Discovery first, then the controller — the order the single-controller
  // scenario wiring used (the first discovery sample runs synchronously).
  discovery_->start();
  agent_->start();
}

void TopoSenseDomain::start_receiver_policies() {
  for (const auto& watchdog : watchdogs_) watchdog->start();
}

/// --- DomainManager ----------------------------------------------------------

namespace {
std::uint64_t window_key(std::size_t domain_index, net::SessionId session) {
  return (static_cast<std::uint64_t>(domain_index) << 32) | session;
}
}  // namespace

DomainManager::DomainManager(sim::Simulation& simulation, net::Network& network,
                             transport::DemuxRegistry& demuxes, Config config,
                             const SchemeFactory& factory)
    : simulation_{simulation}, network_{network}, config_{std::move(config)} {
  entries_.reserve(config_.domains.size());
  for (std::size_t i = 0; i < config_.domains.size(); ++i) {
    Entry entry;
    entry.domain = config_.domains[i];
    entries_.push_back(std::move(entry));
  }
  validate_partition();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (const net::NodeId node : entries_[i].domain.nodes) {
      domain_of_node_.emplace(node, static_cast<int>(i));
    }
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    entry.scheme = factory(i, entry.domain);
    if (entry.scheme == nullptr) {
      throw std::invalid_argument("domain scheme factory returned null for domain '" +
                                  entry.domain.name + "'");
    }
    if (auto* unit = dynamic_cast<TopoSenseDomain*>(entry.scheme.get())) {
      entry.agent = &unit->agent();
    } else {
      entry.agent = dynamic_cast<ControllerAgent*>(entry.scheme.get());
    }
  }

  // The inter-domain exchange needs a ControllerAgent on both ends of every
  // parent link; schemes without one (baseline, null) run their domains
  // independently.
  summaries_enabled_ = entries_.size() > 1 &&
                       std::all_of(entries_.begin(), entries_.end(),
                                   [](const Entry& e) { return e.agent != nullptr; });
  if (summaries_enabled_) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].domain.parent >= 0) {
        child_of_border_.emplace(entries_[i].domain.controller_node, i);
      }
      demuxes.at(entries_[i].domain.controller_node)
          .add_handler(net::PacketKind::kSummary,
                       [this, i](const net::PacketRef& p) { handle_summary(i, *p); });
    }
  }
}

void DomainManager::validate_partition() const {
  if (entries_.empty()) throw std::invalid_argument("DomainManager needs at least one domain");
  std::unordered_map<net::NodeId, std::size_t> owner;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Domain& d = entries_[i].domain;
    if (d.controller_node == net::kInvalidNode) {
      throw std::invalid_argument("domain '" + d.name + "' has no controller node");
    }
    if (std::find(d.nodes.begin(), d.nodes.end(), d.controller_node) == d.nodes.end()) {
      throw std::invalid_argument("domain '" + d.name +
                                  "' does not own its own controller node");
    }
    for (const net::NodeId node : d.nodes) {
      const auto [it, inserted] = owner.emplace(node, i);
      if (!inserted) {
        throw std::invalid_argument("node " + std::to_string(node) + " is owned by domains '" +
                                    entries_[it->second].domain.name + "' and '" + d.name + "'");
      }
    }
    if (d.parent >= 0) {
      if (static_cast<std::size_t>(d.parent) >= entries_.size() ||
          static_cast<std::size_t>(d.parent) == i) {
        throw std::invalid_argument("domain '" + d.name + "' has an invalid parent index");
      }
    }
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    // Walk the parent chain; more steps than domains means a cycle.
    int at = static_cast<int>(i);
    for (std::size_t steps = 0; steps <= entries_.size(); ++steps) {
      const int parent = entries_[static_cast<std::size_t>(at)].domain.parent;
      if (parent < 0) break;
      if (steps == entries_.size()) {
        throw std::invalid_argument("domain parent links contain a cycle");
      }
      at = parent;
    }
  }
}

ReceiverAgent* DomainManager::register_receiver(transport::ReceiverEndpoint& endpoint) {
  const int index = domain_of(endpoint.config().node);
  if (index < 0) {
    throw std::invalid_argument("receiver node " + std::to_string(endpoint.config().node) +
                                " is not owned by any domain");
  }
  return entries_[static_cast<std::size_t>(index)].scheme->register_receiver(endpoint);
}

int DomainManager::domain_of(net::NodeId node) const {
  const auto it = domain_of_node_.find(node);
  return it == domain_of_node_.end() ? -1 : it->second;
}

void DomainManager::start() {
  for (const auto& entry : entries_) entry.scheme->start();
  if (!summaries_enabled_) return;

  // Register every child's border with its parent now, for every session the
  // child participates in: registration order must come from the domain
  // structure, not from which summary packet happens to arrive first.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& child = entries_[i];
    if (child.domain.parent < 0) continue;
    Entry& parent = entries_[static_cast<std::size_t>(child.domain.parent)];
    for (const auto& [session, receivers] : child.agent->registered()) {
      parent.agent->register_border_receiver(session, child.domain.controller_node);
    }
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    const bool has_borders =
        std::any_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
          return e.domain.parent == static_cast<int>(i);
        });
    if (has_borders) {
      entry.agent->set_border_hook(
          [this, i](const core::Prescription& p) { send_cap(i, p); });
    }
    if (entry.domain.parent >= 0) {
      simulation_.at(config_.summary_start, [this, i]() { send_summaries(i); });
    }
  }
}

void DomainManager::start_receiver_policies() {
  for (const auto& entry : entries_) entry.scheme->start_receiver_policies();
}

void DomainManager::set_enabled(bool enabled) {
  for (const auto& entry : entries_) entry.scheme->set_enabled(enabled);
}

bool DomainManager::enabled() const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [](const Entry& e) { return e.scheme->enabled(); });
}

ControllerStats DomainManager::stats() const {
  ControllerStats total;
  for (const auto& entry : entries_) {
    const ControllerStats s = entry.scheme->stats();
    total.reports_received += s.reports_received;
    total.suggestions_sent += s.suggestions_sent;
    total.intervals_run += s.intervals_run;
    total.outages += s.outages;
    total.layers_added += s.layers_added;
    total.layers_dropped += s.layers_dropped;
  }
  return total;
}

void DomainManager::send_summaries(std::size_t index) {
  Entry& child = entries_[index];
  const Entry& parent = entries_[static_cast<std::size_t>(child.domain.parent)];
  if (child.agent->enabled()) {
    const Time now = simulation_.now();
    for (const auto& [session, receivers] : child.agent->registered()) {
      transport::DomainSummary summary = child.agent->build_session_summary(session, now);
      if (summary.receiver_count == 0) continue;  // nothing learned yet
      auto payload = std::make_shared<transport::DomainSummary>(summary);
      payload->direction = transport::DomainSummary::Direction::kDemand;
      payload->domain = static_cast<std::uint32_t>(index);
      payload->border = child.domain.controller_node;
      payload->summary_seq = ++child.summary_seq;

      net::Packet packet;
      packet.kind = net::PacketKind::kSummary;
      packet.size_bytes = transport::kSummaryPacketBytes;
      packet.src = child.domain.controller_node;
      packet.dst = parent.domain.controller_node;
      packet.control = std::move(payload);
      network_.send_unicast(packet);
      ++summaries_sent_;
    }
  }
  simulation_.after(config_.summary_period, [this, index]() { send_summaries(index); });
}

void DomainManager::handle_summary(std::size_t index, const net::Packet& packet) {
  const auto* summary = dynamic_cast<const transport::DomainSummary*>(packet.control.get());
  if (summary == nullptr) return;
  Entry& entry = entries_[index];
  if (entry.agent == nullptr) return;
  switch (summary->direction) {
    case transport::DomainSummary::Direction::kDemand: {
      if (child_of_border_.count(summary->border) == 0) {
        note_violation("demand summary for unknown border node " +
                       std::to_string(summary->border));
        return;
      }
      const std::uint64_t key = window_key(static_cast<std::size_t>(summary->domain),
                                           summary->session);
      const auto it = last_ingested_window_.find(key);
      if (it != last_ingested_window_.end() && summary->window_end < it->second) {
        note_violation("summary windows moved backwards for domain " +
                       std::to_string(summary->domain) + " session " +
                       std::to_string(summary->session));
      } else {
        last_ingested_window_[key] = summary->window_end;
      }
      entry.agent->ingest_border_summary(*summary);
      ++summaries_received_;
      break;
    }
    case transport::DomainSummary::Direction::kCap: {
      entry.agent->set_session_cap(summary->session, summary->subscription);
      ++caps_received_;
      break;
    }
  }
}

void DomainManager::send_cap(std::size_t parent_index, const core::Prescription& prescription) {
  const auto it = child_of_border_.find(prescription.receiver);
  if (it == child_of_border_.end()) return;
  const Entry& parent = entries_[parent_index];
  const Entry& child = entries_[it->second];

  auto payload = std::make_shared<transport::DomainSummary>();
  payload->direction = transport::DomainSummary::Direction::kCap;
  payload->domain = static_cast<std::uint32_t>(parent_index);
  payload->session = prescription.session;
  payload->border = prescription.receiver;
  payload->subscription = prescription.subscription;

  net::Packet packet;
  packet.kind = net::PacketKind::kSummary;
  packet.size_bytes = transport::kSummaryPacketBytes;
  packet.src = parent.domain.controller_node;
  packet.dst = child.domain.controller_node;
  packet.control = std::move(payload);
  network_.send_unicast(packet);
  ++caps_sent_;
}

void DomainManager::note_violation(std::string detail) {
  constexpr std::size_t kMaxRecorded = 64;
  if (violations_.size() < kMaxRecorded) violations_.push_back(std::move(detail));
}

void DomainManager::check_consistency(
    const std::function<void(const std::string&)>& report) const {
  // Ownership: the node->domain map must agree with the domain node lists
  // (they are built together, so a mismatch means memory corruption or a
  // partition edited after construction).
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (const net::NodeId node : entries_[i].domain.nodes) {
      if (domain_of(node) != static_cast<int>(i)) {
        report("node " + std::to_string(node) + " ownership diverged from domain '" +
               entries_[i].domain.name + "'");
      }
    }
  }
  for (const auto& entry : entries_) {
    if (entry.agent == nullptr) continue;
    const int layers = entry.agent->config().params.layers.num_layers;
    for (const auto& [session, receivers] : entry.agent->registered()) {
      const int cap = entry.agent->session_cap(session);
      if (cap != 0 && (cap < 1 || cap > layers)) {
        report("domain '" + entry.domain.name + "' session " + std::to_string(session) +
               " cap " + std::to_string(cap) + " outside [1, " + std::to_string(layers) + "]");
      }
    }
  }
  if (summaries_received_ > summaries_sent_) {
    report("more summaries received (" + std::to_string(summaries_received_) +
           ") than sent (" + std::to_string(summaries_sent_) + ")");
  }
  if (caps_received_ > caps_sent_) {
    report("more caps received (" + std::to_string(caps_received_) + ") than sent (" +
           std::to_string(caps_sent_) + ")");
  }
  for (const std::string& violation : violations_) report(violation);
}

}  // namespace tsim::control
