#include "control/accounting.hpp"

namespace tsim::control {

void AccountingLedger::on_report(const transport::ReceiverReport& report) {
  Account& account = accounts_[{report.session, report.receiver}];
  if (account.reports == 0) account.first_activity = report.window_start;
  account.bytes += report.bytes_received;
  account.layer_seconds += report.subscription *
                           (report.window_end - report.window_start).as_seconds();
  ++account.reports;
  account.last_activity = report.window_end;
  total_bytes_ += report.bytes_received;
}

AccountingLedger::Account AccountingLedger::account(net::SessionId session,
                                                    net::NodeId receiver) const {
  const auto it = accounts_.find({session, receiver});
  return it == accounts_.end() ? Account{} : it->second;
}

std::vector<std::pair<std::pair<net::SessionId, net::NodeId>, AccountingLedger::Account>>
AccountingLedger::accounts() const {
  return {accounts_.begin(), accounts_.end()};
}

}  // namespace tsim::control
