#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "traffic/layer_spec.hpp"
#include "transport/control_messages.hpp"

namespace tsim::control {

/// Per-receiver usage accounting, fed from the same receiver reports the
/// congestion algorithm consumes. The paper (§II) points out that the domain
/// controller is naturally positioned to bill customers for multicast content
/// delivered; this ledger realizes that: delivered bytes and layer-seconds
/// per (session, receiver), and a simple two-part tariff.
class AccountingLedger {
 public:
  struct Account {
    units::Bytes bytes{};            ///< data bytes delivered
    double layer_seconds{0.0};       ///< Σ subscription_level * window length
    std::uint32_t reports{0};        ///< reports folded in
    sim::Time first_activity{};
    sim::Time last_activity{};

    /// Two-part tariff: volume (per MB delivered) + quality (per layer-hour).
    [[nodiscard]] double charge(double per_megabyte, double per_layer_hour) const {
      return static_cast<double>(bytes.count()) / 1e6 * per_megabyte +
             layer_seconds / 3600.0 * per_layer_hour;
    }
  };

  /// Folds one receiver report into the ledger.
  void on_report(const transport::ReceiverReport& report);

  /// Account for one (session, receiver); a zero Account when unknown.
  [[nodiscard]] Account account(net::SessionId session, net::NodeId receiver) const;

  /// All accounts, ordered by (session, receiver).
  [[nodiscard]] std::vector<std::pair<std::pair<net::SessionId, net::NodeId>, Account>>
  accounts() const;

  [[nodiscard]] units::Bytes total_bytes() const { return total_bytes_; }

 private:
  std::map<std::pair<net::SessionId, net::NodeId>, Account> accounts_;
  units::Bytes total_bytes_{};
};

}  // namespace tsim::control
