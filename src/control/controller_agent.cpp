#include "control/controller_agent.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

namespace tsim::control {

namespace {
std::uint64_t key_of(net::SessionId session, net::NodeId receiver) {
  return (static_cast<std::uint64_t>(session) << 32) | receiver;
}
}  // namespace

ControllerAgent::ControllerAgent(sim::Simulation& simulation, net::Network& network,
                                 topo::TopologyProvider& discovery,
                                 transport::PacketDemux& demux, Config config)
    : simulation_{simulation},
      network_{network},
      discovery_{discovery},
      config_{config},
      algorithm_{config.params, simulation.rng_stream("controller")} {
  demux.add_handler(net::PacketKind::kReport,
                    [this](const net::PacketRef& p) { handle_report(*p); });
}

void ControllerAgent::register_receiver(net::SessionId session, net::NodeId receiver) {
  auto& list = registered_[session];
  if (std::find(list.begin(), list.end(), receiver) == list.end()) list.push_back(receiver);
  discovery_.track_session(session, static_cast<net::LayerId>(config_.params.layers.num_layers));
}

ReceiverAgent* ControllerAgent::register_receiver(transport::ReceiverEndpoint& endpoint) {
  register_receiver(endpoint.config().session, endpoint.config().node);
  return nullptr;
}

void ControllerAgent::start() {
  simulation_.at(config_.start, [this]() { run_interval(); });
}

void ControllerAgent::set_enabled(bool enabled) {
  if (enabled == enabled_) return;
  enabled_ = enabled;
  if (!enabled_) {
    ++outages_;
    // The process died: its in-memory report history dies with it. The
    // ledger and wire counters survive by design (see the header contract) —
    // they are the durable billing/audit record, not learned state.
    reports_.clear();
  }
}

ControllerStats ControllerAgent::stats() const {
  ControllerStats s;
  s.reports_received = reports_received_;
  s.suggestions_sent = suggestions_sent_;
  s.intervals_run = epoch_;
  s.outages = outages_;
  return s;
}

std::size_t ControllerAgent::report_history_size() const {
  std::size_t n = 0;
  // Order-insensitive sum over all histories.  NOLINT(determinism)
  for (const auto& [key, history] : reports_) n += history.size();
  return n;
}

void ControllerAgent::register_border_receiver(net::SessionId session, net::NodeId border) {
  borders_[key_of(session, border)] = true;
  register_receiver(session, border);
}

bool ControllerAgent::is_border(net::SessionId session, net::NodeId node) const {
  return borders_.count(key_of(session, node)) != 0;
}

transport::DomainSummary ControllerAgent::build_session_summary(net::SessionId session,
                                                                sim::Time window_end) const {
  transport::DomainSummary summary;
  summary.direction = transport::DomainSummary::Direction::kDemand;
  summary.session = session;
  summary.window_end = window_end;
  summary.window_start = window_end - config_.params.interval;

  const auto it = registered_.find(session);
  if (it == registered_.end()) return summary;
  bool have_shared = false;
  for (const net::NodeId receiver : it->second) {
    // Borders of *our* children already stand in for whole subtrees; folding
    // them into our own upstream summary would double-count and hide which
    // loss is locally fixable, so only direct receivers aggregate.
    if (is_border(session, receiver)) continue;
    const ReportAggregate agg = aggregate_reports(session, receiver, window_end);
    if (!agg.valid) continue;
    ++summary.receiver_count;
    summary.subscription = std::max(summary.subscription, agg.subscription);
    if (agg.bytes > summary.bytes_received) summary.bytes_received = agg.bytes;
    // Minimum loss across receivers: the component every receiver shares,
    // i.e. the part this domain cannot fix below its border.
    if (!have_shared || agg.loss_rate.value() < summary.shared_loss.value()) {
      have_shared = true;
      summary.shared_loss = agg.loss_rate;
      summary.received_packets = agg.received;
      summary.lost_packets = agg.lost;
    }
  }
  return summary;
}

void ControllerAgent::ingest_border_summary(const transport::DomainSummary& summary) {
  if (!enabled_) return;  // a dead controller reads nothing off the wire
  transport::ReceiverReport report;
  report.receiver = summary.border;
  report.session = summary.session;
  report.subscription = summary.subscription;
  report.loss_rate = summary.shared_loss;
  report.bytes_received = summary.bytes_received;
  report.received_packets = summary.received_packets;
  report.lost_packets = summary.lost_packets;
  report.window_start = summary.window_start;
  report.window_end = summary.window_end;
  report.report_seq = summary.summary_seq;
  auto& history = reports_[key_of(report.session, report.receiver)];
  history.push_back(report);
  while (history.size() > config_.report_history_limit) history.pop_front();
  ++summaries_ingested_;
}

void ControllerAgent::set_session_cap(net::SessionId session, int cap) {
  if (cap <= 0) {
    session_caps_.erase(session);
  } else {
    session_caps_[session] = cap;
  }
}

int ControllerAgent::session_cap(net::SessionId session) const {
  const auto it = session_caps_.find(session);
  return it == session_caps_.end() ? 0 : it->second;
}

int ControllerAgent::capped_subscription(const core::Prescription& prescription) {
  const int cap = session_cap(prescription.session);
  if (cap > 0 && prescription.subscription > cap) {
    ++caps_applied_;
    return cap;
  }
  return prescription.subscription;
}

void ControllerAgent::handle_report(const net::Packet& packet) {
  if (!enabled_) return;  // a dead controller reads nothing off the wire
  const auto* report = dynamic_cast<const transport::ReceiverReport*>(packet.control.get());
  if (report == nullptr) return;
  ++reports_received_;
  ledger_.on_report(*report);
  auto& history = reports_[key_of(report->session, report->receiver)];
  history.push_back(*report);
  while (history.size() > config_.report_history_limit) history.pop_front();
}

ControllerAgent::ReportAggregate ControllerAgent::aggregate_reports(
    net::SessionId session, net::NodeId receiver, sim::Time window_end) const {
  ReportAggregate agg;
  const auto it = reports_.find(key_of(session, receiver));
  if (it == reports_.end()) return agg;

  // Fold in the newest reports that ended by `window_end` (staleness already
  // folded in by the caller) until they cover one algorithm interval.
  // Receivers may report more often than the algorithm runs (several small
  // windows per interval) or a report may have been lost to congestion (the
  // previous one stands in) — reports ride the data path and arrive a few
  // hundred ms late, so exact alignment can never be assumed.
  const sim::Time oldest_usable = window_end - config_.params.interval * 3;
  units::Bytes bytes{};
  units::PacketCount received{};
  units::PacketCount lost{};
  sim::Time span_end{};
  sim::Time span_start{};
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    const transport::ReceiverReport& r = *rit;
    if (r.window_end > window_end) continue;
    if (r.window_end <= oldest_usable) break;
    if (!agg.valid) {
      agg.valid = true;
      agg.subscription = r.subscription;  // newest report wins
      span_end = r.window_end;
    }
    bytes += r.bytes_received;
    received += r.received_packets;
    lost += r.lost_packets;
    span_start = r.window_start;
    if (span_end - span_start >= config_.params.interval) break;
  }
  if (agg.valid) {
    // Normalize the covered span to one interval so the algorithm's
    // bandwidth arithmetic (bytes * 8 / interval) stays correct when the
    // reporting cadence differs from the algorithm cadence.
    const double span_s = std::max((span_end - span_start).as_seconds(), 1e-9);
    const double scale = config_.params.interval.as_seconds() / span_s;
    agg.bytes = units::Bytes{
        static_cast<std::uint64_t>(static_cast<double>(bytes.count()) * scale)};
    agg.loss_rate = units::LossFraction::from_counts(lost, received + lost);
    agg.received = received;
    agg.lost = lost;
  }
  return agg;
}

void ControllerAgent::run_interval() {
  if (!enabled_) {
    // Keep the interval clock ticking through the outage so the epoch
    // counter stays monotonic and the restart resumes on the same cadence.
    ++epoch_;
    simulation_.after(config_.params.interval, [this]() { run_interval(); });
    return;
  }
  ++epoch_;
  const sim::Time now = simulation_.now();
  const sim::Time report_cutoff = now - config_.info_staleness;

  core::AlgorithmInput input;
  input.window = config_.params.interval;

  for (const auto& [session, receivers] : registered_) {
    const topo::TopologySnapshot* snap = discovery_.snapshot(session);
    if (snap == nullptr || snap->source == net::kInvalidNode) continue;

    core::SessionInput session_input;
    session_input.session = session;
    session_input.source = snap->source;

    // Collect tree nodes from the snapshot's edges (plus the source). Ordered
    // map: the iteration below fixes the node order of the algorithm input,
    // which must not depend on hash-table layout (determinism lint).
    std::map<net::NodeId, net::NodeId> parent_of;
    parent_of[snap->source] = net::kInvalidNode;
    for (const auto& [parent, child] : snap->edges) parent_of.emplace(child, parent);
    // Edges may mention parents the snapshot didn't root (stale artifacts);
    // TreeIndex drops anything unreachable from the source.
    for (const auto& [parent, child] : snap->edges) parent_of.emplace(parent, net::kInvalidNode);

    const std::unordered_set<net::NodeId> snapshot_receivers{snap->receivers.begin(),
                                                             snap->receivers.end()};

    for (const auto& [node, parent] : parent_of) {
      core::SessionNodeInput n;
      n.node = node;
      n.parent = parent;
      // Border pseudo-receivers are routers, never group members, so they are
      // admitted by registration alone; real receivers need both.
      if ((snapshot_receivers.count(node) != 0 || is_border(session, node)) &&
          std::find(receivers.begin(), receivers.end(), node) != receivers.end()) {
        const ReportAggregate agg = aggregate_reports(session, node, report_cutoff);
        n.is_receiver = true;
        n.loss_rate = agg.loss_rate;
        n.bytes_received = agg.bytes;
        n.subscription = std::max(agg.subscription, 1);
      }
      session_input.nodes.push_back(n);
    }
    if (session_input.nodes.size() > 1) input.sessions.push_back(std::move(session_input));
  }

  if (!input.sessions.empty()) {
    last_output_ = algorithm_.run_interval(input, now);
    if (audit_hook_) audit_hook_(input, last_output_);
    for (const core::Prescription& p : last_output_.prescriptions) {
      if (border_hook_ && is_border(p.session, p.receiver)) {
        // A border's prescription is the cap we grant the child domain; it
        // goes to the DomainManager hook instead of onto the wire.
        core::Prescription capped = p;
        capped.subscription = capped_subscription(p);
        border_hook_(capped);
      } else {
        send_suggestion(p);
      }
    }
  }

  simulation_.after(config_.params.interval, [this]() { run_interval(); });
}

void ControllerAgent::send_suggestion(const core::Prescription& prescription) {
  auto suggestion = std::make_shared<transport::Suggestion>();
  suggestion->receiver = prescription.receiver;
  suggestion->session = prescription.session;
  suggestion->subscription = capped_subscription(prescription);
  suggestion->epoch = epoch_;

  net::Packet packet;
  packet.kind = net::PacketKind::kSuggestion;
  packet.size_bytes = transport::kSuggestionPacketBytes;
  packet.src = config_.node;
  packet.dst = prescription.receiver;
  packet.control = std::move(suggestion);
  network_.send_unicast(packet);
  ++suggestions_sent_;
}

}  // namespace tsim::control
