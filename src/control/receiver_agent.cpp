#include "control/receiver_agent.hpp"

namespace tsim::control {

ReceiverAgent::ReceiverAgent(sim::Simulation& simulation,
                             transport::ReceiverEndpoint& endpoint, Config config)
    : simulation_{simulation}, endpoint_{endpoint}, config_{config} {
  endpoint_.on_suggestion([this](const transport::Suggestion& suggestion) {
    // Stale-but-reordered suggestions are impossible over our FIFO links, but
    // a lost interval makes epochs skip; accept any epoch >= the last seen.
    if (suggestion.epoch < last_epoch_) return;
    last_epoch_ = suggestion.epoch;
    last_suggestion_ = simulation_.now();
    ++suggestions_applied_;
    endpoint_.set_subscription(suggestion.subscription);
  });
}

void ReceiverAgent::start() {
  last_suggestion_ = config_.start;
  if (config_.enable_unilateral) {
    simulation_.at(config_.start + config_.check_period, [this]() { check_silence(); });
  }
}

void ReceiverAgent::check_silence() {
  const sim::Time now = simulation_.now();
  if (endpoint_.active()) {
    const auto& window = endpoint_.last_completed_window();
    const double loss = window.loss_rate();
    const sim::Time horizon = loss > config_.emergency_loss ? config_.emergency_timeout
                                                            : config_.unilateral_timeout;
    if (now - last_suggestion_ > horizon) {
      // No guidance: protect the network on our own, one layer at a time.
      if (loss > config_.unilateral_drop_loss && endpoint_.subscription() > 1) {
        endpoint_.set_subscription(endpoint_.subscription() - 1);
        ++unilateral_actions_;
        last_suggestion_ = now;  // give the drop time to take effect
      }
    }
  }
  simulation_.after(config_.check_period, [this]() { check_silence(); });
}

}  // namespace tsim::control
